#!/usr/bin/env python3
"""Beyond network functions: offloading analytical queries (section 1 / 7.2.5).

The paper argues Thanos's abstraction is general enough to host
applications beyond networking — OLAP, graph queries, multi-dimensional
clustering.  This example treats the filter module as a tiny in-network
OLAP accelerator: a table of per-region sales facts lives in an SMBM, and
dashboard-style slice queries compile to filter chains evaluated at line
rate (one query per clock cycle in hardware terms).

Run:  python examples/olap_offload.py
"""

import random

from repro.core import (
    SMBM,
    Conditional,
    PipelineParams,
    Policy,
    PolicyCompiler,
    TableRef,
    intersection,
    max_of,
    min_of,
    predicate,
)

REGIONS = [
    "us-east", "us-west", "eu-north", "eu-south",
    "apac-1", "apac-2", "latam", "africa",
]


def main() -> None:
    rng = random.Random(42)
    # The fact table: one row per region with three measures.
    facts = SMBM(capacity=len(REGIONS),
                 metric_names=["revenue_k", "units", "returns"])
    for rid, name in enumerate(REGIONS):
        row = {
            "revenue_k": rng.randrange(200, 900),
            "units": rng.randrange(1_000, 9_000),
            "returns": rng.randrange(10, 400),
        }
        facts.add(rid, row)
        print(f"{name:9s} {row}")

    compiler = PolicyCompiler(PipelineParams(n=8, k=4, f=2, chain_length=4))
    t = TableRef()

    # Query 1: regions with revenue > 500k and returns < 200.
    healthy = compiler.compile(Policy(intersection(
        predicate(t, "revenue_k", ">", 500),
        predicate(t, "returns", "<", 200),
    ), name="healthy-regions"))
    print("\nrevenue > 500k and returns < 200:",
          [REGIONS[i] for i in healthy.evaluate(facts).indices()])

    # Query 2: top-3 regions by units shipped.
    top3 = compiler.compile(Policy(max_of(TableRef(), "units", k=3),
                                   name="top3-units"))
    print("top-3 by units:",
          [REGIONS[i] for i in top3.evaluate(facts).indices()])

    # Query 3: the best region to spotlight — the highest-revenue region
    # among low-return ones, or the overall revenue leader as fallback.
    spotlight = compiler.compile(Policy(Conditional(
        max_of(predicate(TableRef(), "returns", "<", 100), "revenue_k"),
        max_of(TableRef(), "revenue_k"),
    ), name="spotlight"))
    choice = spotlight.select(facts)
    print("spotlight region:", REGIONS[choice])

    # The data plane keeps answering as facts stream in (probe-style).
    print("\nlatam books a big quarter (revenue 950k, returns 50)...")
    facts.update(REGIONS.index("latam"),
                 {"revenue_k": 950, "units": 8_500, "returns": 50})
    print("spotlight region now:", REGIONS[spotlight.select(facts)])
    print(f"\n(each query = one pipeline traversal: "
          f"{spotlight.latency_cycles} cycles at ~2.1 GHz "
          f"= ~{spotlight.latency_cycles / 2.1:.0f} ns per decision)")


if __name__ == "__main__":
    main()
