#!/usr/bin/env python3
"""DRILL micro load balancing over switch ports (section 7.2.4, Table 5).

Shows the DRILL policy both ways:

1. **Standalone**, on a single switch with pre-loaded port queues — the
   compiled Thanos pipeline makes the decision: ``d`` random samples
   unioned with the ``m`` best remembered samples, minimum queue wins, and
   the examined set feeds back as next decision's input (the Table 5 chain
   with an explicit feedback input line).
2. **In the fabric**, comparing random / least-queued / DRILL per-packet
   forwarding on the Figure 18 experiment at one load point.

Run:  python examples/drill_port_lb.py   (takes ~1 minute)
"""

import random

from repro.experiments import PortLBExperimentConfig, run_portlb_experiment
from repro.netsim.link import Link
from repro.netsim.packet import NetPacket
from repro.netsim.sim import Simulator
from repro.netsim.switch import NetSwitch
from repro.policies.portlb import DrillPolicy


class _Sink:
    def __init__(self, sim):
        self.sim = sim
        self.name = "sink"

    def receive(self, packet, in_port):
        pass


def standalone_demo() -> None:
    print("=== standalone DRILL decision (compiled Thanos pipeline) ===")
    sim = Simulator()
    switch = NetSwitch(sim, "demo", flowlet_gap_s=None)
    sink = _Sink(sim)
    queue_fill = [9, 3, 0, 6, 2, 8, 1, 5]
    for port, fill in enumerate(queue_fill):
        link = Link(sim, f"p{port}", sink, 0, bandwidth_bps=1e9,
                    queue_capacity_bytes=1_000_000)
        switch.add_port(link)
        for _ in range(fill):
            link.send(NetPacket(1, 0, 1, 0, 1460))
    switch.set_up_ports(list(range(8)))

    drill = DrillPolicy(d=2, m=1, mode="thanos", rng=random.Random(1))
    print(f"port queue fills (packets): {queue_fill}")
    for i in range(8):
        packet = NetPacket(5, 0, 99, i, 1460)
        port = drill.choose(switch, packet, switch.up_ports)
        print(f"  decision {i}: port {port} "
              f"(queued {switch.queue_bytes(port)} bytes)")


def fabric_demo() -> None:
    print("\n=== Figure 18 at 80% load: random vs least-queue vs DRILL ===")
    results = {}
    for policy in ("policy1", "policy2", "policy3"):
        results[policy] = run_portlb_experiment(
            PortLBExperimentConfig(
                policy=policy, load=0.8, duration_s=0.02, seed=3, d=2, m=1
            )
        )
        label = {"policy1": "random      ", "policy2": "least-queue ",
                 "policy3": "DRILL(2,1)  "}[policy]
        print(f"{label}: mean FCT {results[policy].mean_fct * 1e3:6.2f} ms")
    p1 = results["policy1"].mean_fct
    p3 = results["policy3"].mean_fct
    print(f"\nDRILL vs random: {p1 / p3:.2f}x better (paper: ~1.7x)")


def main() -> None:
    standalone_demo()
    fabric_demo()


if __name__ == "__main__":
    main()
