#!/usr/bin/env python3
"""Resource-aware L4 load balancing over graph-database servers (7.2.2).

Replays a Zipf query trace against a replicated graph database twice:

* Policy 1 — pick a server uniformly at random (today's load balancers);
* Policy 2 — pick at random among servers with
  ``cpu < 65% and free memory > 1 GB and free bandwidth > 2 Gbps``,
  falling back to Policy 1 when no server qualifies (Figure 14's policy).

Both policies run through the compiled Thanos pipeline at the (simulated)
spine switch; connection affinity is kept by a SilkRoad-style exact-match
table.  Prints the per-query improvement CDF, Figure 16's quantity.

Run:  python examples/l4_load_balancing.py   (takes ~30 seconds)
"""

import bisect

from repro.experiments import L4LBExperimentConfig, run_l4lb_experiment


def main() -> None:
    print("replaying 1500 queries against 12 database servers...\n")
    r1 = run_l4lb_experiment(L4LBExperimentConfig(which_policy=1, n_queries=1500))
    r2 = run_l4lb_experiment(L4LBExperimentConfig(which_policy=2, n_queries=1500))

    print(f"Policy 1 (random):          mean response {r1.mean() * 1e3:.2f} ms")
    print(f"Policy 2 (resource-aware):  mean response {r2.mean() * 1e3:.2f} ms")
    print(f"mean improvement: {r1.mean() / r2.mean():.2f}x\n")

    ratios = r1.per_query_ratios(r2)
    n = len(ratios)

    def frac_ge(x: float) -> float:
        return 1 - bisect.bisect_left(ratios, x) / n

    print("per-query improvement CDF (Policy1 RT / Policy2 RT):")
    for p in (10, 25, 50, 75, 90):
        print(f"  p{p}: {ratios[min(n - 1, int(p / 100 * (n - 1)))]:.2f}x")
    print(f"\nqueries improved at all: {frac_ge(1.0):.0%}")
    print(f"queries improved >= 1.3x: {frac_ge(1.3):.0%} "
          "(paper: 1.3-1.7x for ~70% of queries)")


if __name__ == "__main__":
    main()
