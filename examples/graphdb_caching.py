#!/usr/bin/env python3
"""In-network caching of graph database queries (section 7.2.5).

Builds a course-prerequisite graph, caches the most popular courses in a
leaf-switch SMBM, and shows:

1. point queries (attributes / prerequisites / dependents) answered at the
   switch when the relevant closure is cached;
2. a popular *filter query* ("fall-term intro courses") compiled onto the
   Thanos pipeline and answered entirely in the data plane;
3. the Figure 19 end-to-end effect: response times with vs without caching.

Run:  python examples/graphdb_caching.py   (takes ~30 seconds)
"""

import random

from repro.experiments import CachingExperimentConfig, run_caching_experiment
from repro.graphdb.cache import InNetworkCache
from repro.graphdb.graph import CourseGraph
from repro.workloads.traces import Query, ZipfQueryTrace


def cache_demo() -> None:
    print("=== leaf-switch SMBM cache ===")
    rng = random.Random(7)
    graph = CourseGraph.random(100, rng, edge_probability=0.05)
    trace = ZipfQueryTrace(100, random.Random(8), alpha=1.4)
    popular = trace.popular_nodes(24)
    cache = InNetworkCache(graph, popular)
    print(f"cached {len(popular)} most popular of {len(graph)} courses")

    node = popular[0]
    answer = cache.serve(Query(0, 0, node, "attributes", 0.0))
    print(f"attributes({node}) from the switch: {answer}")

    cache.install_filter("fall-intro", ("term", "==", 1), ("level", "<", 3))
    matches = cache.run_filter("fall-intro")
    assert matches == cache.reference_filter("fall-intro")
    print(f"filter query 'fall-term intro courses' -> {len(matches)} cached "
          f"courses, via the compiled pipeline: {sorted(matches)[:8]}...")


def figure19_demo() -> None:
    print("\n=== Figure 19: response time with vs without caching ===")
    nc = run_caching_experiment(
        CachingExperimentConfig(enable_cache=False, n_queries=1000)
    )
    wc = run_caching_experiment(
        CachingExperimentConfig(enable_cache=True, n_queries=1000)
    )
    rt_n = sorted(nc.response_times())
    rt_c = sorted(wc.response_times())
    print(f"cache hit fraction: {wc.cache_hit_fraction():.0%}")
    for p in (10, 25, 40):
        i = int(p / 100 * (len(rt_n) - 1))
        print(f"  p{p}: {rt_n[i] * 1e3:.2f} ms -> {rt_c[i] * 1e3:.2f} ms "
              f"({rt_n[i] / rt_c[i]:.1f}x better)")
    print("(paper: cached queries improve 4x-2.8x)")


def main() -> None:
    cache_demo()
    figure19_demo()


if __name__ == "__main__":
    main()
