#!/usr/bin/env python3
"""Performance-aware routing on a simulated leaf-spine fabric (section 7.2.3).

Runs a small version of the Figure 17 experiment end to end: web-search
traffic on an 8-leaf / 8-spine fabric with one degraded and two flaky
spines, comparing

* Policy 1 — random path (ECMP-style),
* Policy 2 — least utilised path (CONGA-style),
* Policy 3 — the Thanos multi-metric policy: paths simultaneously among the
  top-X least queued, least lossy, and least utilised, then least utilised
  of those (falling back to Policy 2).

Policies 2 and 3 run as *compiled filter pipelines* over per-(switch,
destination) SMBM tables refreshed by periodic probes.

Run:  python examples/performance_aware_routing.py   (takes ~1 minute)
"""

from repro.experiments import RoutingExperimentConfig, run_routing_experiment


def main() -> None:
    load = 0.8
    print(f"web-search traffic at {load:.0%} load, 32 hosts, 8 spines")
    print("(1 degraded spine at 0.25x rate, 2 flaky spines at 10% loss)\n")

    results = {}
    for policy in ("policy1", "policy2", "policy3"):
        config = RoutingExperimentConfig(
            policy=policy, load=load, duration_s=0.02, seed=3
        )
        results[policy] = run_routing_experiment(config)
        r = results[policy]
        print(
            f"{policy}: mean FCT {r.mean_fct * 1e3:6.2f} ms   "
            f"p99 {r.p99_fct * 1e3:6.2f} ms   "
            f"flows {r.completed}   drops {r.drops}"
        )

    p1 = results["policy1"].mean_fct
    p2 = results["policy2"].mean_fct
    p3 = results["policy3"].mean_fct
    print(f"\nPolicy 3 vs Policy 1: {p1 / p3:.2f}x better mean FCT "
          "(paper: ~1.6x at 80% load)")
    print(f"Policy 3 vs Policy 2: {p2 / p3:.2f}x better mean FCT "
          "(paper: ~1.3x at 80% load)")


if __name__ == "__main__":
    main()
