#!/usr/bin/env python3
"""Line-rate firewall and data-plane diagnosis (Figures 5 and 6).

Two smaller network functions from the paper's introduction, both running
their filter step as compiled Thanos predicates over SMBM metric tables:

* **diagnosis** — "filter all switch ports with packet rate > t";
* **firewall** — "if the packet rate for an IP destination D is > T,
  black-list all source IPs sending to D".

Run:  python examples/firewall_diagnosis.py
"""

from repro.policies.diagnosis import PortRateMonitor
from repro.policies.firewall import RateFirewall


def diagnosis_demo() -> None:
    print("=== Figure 5: port-rate diagnosis ===")
    monitor = PortRateMonitor(8, rate_threshold_pps=50_000, tau_s=1e-3)
    # Port 2 carries a 200k pps burst, port 5 a modest 40k pps trickle.
    t = 0.0
    for i in range(400):
        monitor.on_packet(port=2, now=t)
        if i % 5 == 0:
            monitor.on_packet(port=5, now=t)
        t += 5e-6
    print(f"rates: port2 ~{monitor.rate_of(2, t):,.0f} pps, "
          f"port5 ~{monitor.rate_of(5, t):,.0f} pps")
    print(f"ports with rate > 50k pps (line-rate query): {monitor.hot_ports()}")


def firewall_demo() -> None:
    print("\n=== Figure 6: rate-based firewall ===")
    firewall = RateFirewall(16, rate_threshold_pps=10_000, tau_s=1e-3)
    t = 0.0
    # Hosts 1 and 2 flood destination 9; host 7 talks politely to 4.
    dropped_at = None
    for i in range(600):
        src = 1 if i % 2 else 2
        forwarded = firewall.on_packet(src=src, dst=9, now=t)
        if not forwarded and dropped_at is None:
            dropped_at = i
        if i % 50 == 0:  # ~5k pps, under the threshold
            assert firewall.on_packet(src=7, dst=4, now=t)
        t += 4e-6
    print(f"flood to destination 9: first drop at packet {dropped_at}")
    print(f"black-listed sources: {sorted(firewall.blacklisted_sources)}")
    print(f"packets dropped: {firewall.packets_dropped}")
    print("the polite flow (7 -> 4) was never touched")


def main() -> None:
    diagnosis_demo()
    firewall_demo()


if __name__ == "__main__":
    main()
