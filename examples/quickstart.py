#!/usr/bin/env python3
"""Quickstart: express, compile, and run a multi-dimensional filter policy.

Builds the paper's running example (Figure 1): from a table of network
paths, select paths with ``delay < d and utilization < u`` — then goes one
step further and picks one of them at random, demonstrating:

1. the SMBM resource table with live metric updates;
2. the policy DSL (predicates, intersection, conditional fallback);
3. compilation onto the programmable filter pipeline;
4. per-packet, line-rate evaluation as the table changes.

Run:  python examples/quickstart.py
"""

from repro.core import (
    Conditional,
    PipelineParams,
    Policy,
    PolicyCompiler,
    SMBM,
    TableRef,
    intersection,
    predicate,
    random_pick,
)


def main() -> None:
    # 1. A resource table: 8 network paths with two stateful metrics.
    paths = SMBM(capacity=8, metric_names=["delay_us", "utilization"])
    initial = {
        0: (12, 80), 1: (3, 55), 2: (7, 20), 3: (2, 95),
        4: (9, 40), 5: (4, 30), 6: (15, 10), 7: (5, 60),
    }
    for path_id, (delay, util) in initial.items():
        paths.add(path_id, {"delay_us": delay, "utilization": util})
    print("paths by delay:", paths.attr_list("delay_us"))

    # 2. The Figure 1 policy with a random pick and a fallback: paths with
    #    delay < 8us and utilization < 60%, one chosen at random; if none
    #    qualifies, any path at random.
    table = TableRef()
    eligible = intersection(
        predicate(table, "delay_us", "<", 8),
        predicate(table, "utilization", "<", 60),
    )
    policy = Policy(
        Conditional(random_pick(eligible), random_pick(TableRef())),
        name="figure1-routing",
    )

    # 3. Compile onto the paper's default pipeline (n=4, k=4, f=2, K=4).
    compiler = PolicyCompiler(PipelineParams())
    compiled = compiler.compile(policy)
    print("\ncompiled configuration:")
    print(compiled.describe())
    print(f"\ndeterministic latency: {compiled.latency_cycles} clock cycles")

    # 4. Evaluate per packet; update metrics (probe-style) and re-evaluate.
    print("\nper-packet selections (eligible: delay<8 and util<60):")
    for packet in range(5):
        print(f"  packet {packet}: path {compiled.select(paths)}")

    print("\npath 2's utilization spikes to 90 (probe update)...")
    paths.update(2, {"delay_us": 7, "utilization": 90})
    for packet in range(5):
        chosen = compiled.select(paths)
        assert chosen != 2, "the spiked path must be filtered out"
        print(f"  packet {packet}: path {chosen}")

    print("\nall paths saturate -> the conditional falls back to any path:")
    for path_id in list(initial):
        paths.update(path_id, {"delay_us": 20, "utilization": 99})
    print(f"  packet: path {compiled.select(paths)} (fallback)")


if __name__ == "__main__":
    main()
