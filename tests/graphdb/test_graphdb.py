"""Tests for the graph database, servers, cluster, and in-network cache."""

import random

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.graphdb.cache import InNetworkCache
from repro.graphdb.cluster import GraphDBCluster
from repro.graphdb.graph import Course, CourseGraph
from repro.graphdb.server import GraphDBServer
from repro.netsim.sim import Simulator
from repro.workloads.traces import Query, ResourceConsumptionTrace, ZipfQueryTrace


def small_graph():
    g = CourseGraph()
    g.add_course(Course(0, 101, 1, 1, 3))
    g.add_course(Course(1, 201, 2, 2, 4))
    g.add_course(Course(2, 301, 1, 3, 3))
    g.add_prerequisite(1, 0)
    g.add_prerequisite(2, 1)
    return g


class TestCourseGraph:
    def test_queries(self):
        g = small_graph()
        assert g.query_attributes(0)["number"] == 101
        assert g.query_prerequisites(2) == {1}
        assert g.query_dependents(0) == {1}

    def test_duplicate_course_rejected(self):
        g = small_graph()
        with pytest.raises(ConfigurationError):
            g.add_course(Course(0, 1, 1, 1, 1))

    def test_self_prerequisite_rejected(self):
        g = small_graph()
        with pytest.raises(ConfigurationError):
            g.add_prerequisite(0, 0)

    def test_unknown_course_rejected(self):
        g = small_graph()
        with pytest.raises(ConfigurationError):
            g.query_attributes(9)

    def test_filter_courses(self):
        g = small_graph()
        assert g.filter_courses(term=("==", 1)) == {0, 2}
        assert g.filter_courses(level=("<", 3), term=("==", 1)) == {0}

    def test_random_graph_is_dag(self):
        g = CourseGraph.random(50, random.Random(1), edge_probability=0.1)
        assert len(g) == 50
        for cid, prereqs in g.prereqs.items():
            assert all(p < cid for p in prereqs)  # edges point backwards

    def test_random_graph_levels_monotone(self):
        g = CourseGraph.random(60, random.Random(2))
        levels = [g.courses[c].level for c in range(60)]
        assert levels == sorted(levels)


class TestGraphDBServer:
    def make(self, seed=1):
        sim = Simulator()
        trace = ResourceConsumptionTrace(2, random.Random(seed))
        return sim, GraphDBServer(sim, 0, trace), trace

    def query(self, kind="attributes", qid=0):
        return Query(qid, client=0, node_id=1, kind=kind, arrival_time=0.0)

    def test_serves_queries_in_order(self):
        sim, server, _ = self.make()
        done = []
        for qid in range(3):
            server.submit(self.query(qid=qid), lambda q: done.append(q.query_id))
        sim.run()
        assert done == [0, 1, 2]
        assert server.queries_served == 3

    def test_service_time_positive_and_kind_dependent(self):
        sim, server, _ = self.make()
        t_attr = server.service_time(self.query("attributes"), 0.0)
        t_dep = server.service_time(self.query("dependents"), 0.0)
        assert 0 < t_attr < t_dep

    def test_unknown_kind_rejected(self):
        sim, server, _ = self.make()
        with pytest.raises(ConfigurationError):
            server.service_time(self.query("drop-tables"), 0.0)

    def test_busier_server_is_slower(self):
        """Service time grows with background CPU use."""
        sim = Simulator()
        trace = ResourceConsumptionTrace(1, random.Random(3))
        server = GraphDBServer(sim, 0, trace)
        times = [
            server.service_time(self.query(), t) for t in [0.0, 10.0, 20.0, 30.0]
        ]
        cpus = [trace.available(0, t)["cpu"] for t in [0.0, 10.0, 20.0, 30.0]]
        # The busiest instant must cost more than the idlest one.
        busiest = max(range(4), key=lambda i: cpus[i])
        idlest = min(range(4), key=lambda i: cpus[i])
        assert times[busiest] > times[idlest]

    def test_queue_depth(self):
        sim, server, _ = self.make()
        for qid in range(4):
            server.submit(self.query(qid=qid), lambda q: None)
        assert server.queue_depth >= 3


class TestGraphDBCluster:
    def run_cluster(self, which_policy, n_queries=300, seed=5):
        sim = Simulator()
        trace = ResourceConsumptionTrace(4, random.Random(seed))
        cluster = GraphDBCluster(sim, 4, which_policy, trace)
        qtrace = ZipfQueryTrace(100, random.Random(seed + 1))
        queries = qtrace.generate(n_queries, clients=[0, 1], rate_hz=600.0)
        cluster.submit_trace(queries)
        sim.run(until=60.0)
        return cluster

    def test_all_queries_answered(self):
        cluster = self.run_cluster(which_policy=1)
        assert len(cluster.results) == 300

    def test_response_time_includes_rtt(self):
        cluster = self.run_cluster(which_policy=1, n_queries=10)
        assert all(r.response_time >= 200e-6 for r in cluster.results)

    def test_policy2_beats_policy1_on_average(self):
        """The Figure 16 direction: resource-aware beats random."""
        p1 = self.run_cluster(which_policy=1)
        p2 = self.run_cluster(which_policy=2)
        mean1 = sum(p1.response_times()) / len(p1.results)
        mean2 = sum(p2.response_times()) / len(p2.results)
        assert mean2 < mean1

    def test_servers_all_usable_under_policy1(self):
        cluster = self.run_cluster(which_policy=1)
        assert len({r.server for r in cluster.results}) == 4


class TestInNetworkCache:
    def make_cache(self, n=40, cached=8):
        g = CourseGraph.random(n, random.Random(7), edge_probability=0.08)
        trace = ZipfQueryTrace(n, random.Random(8))
        nodes = trace.popular_nodes(cached)
        return g, trace, InNetworkCache(g, nodes)

    def test_attribute_hit(self):
        g, trace, cache = self.make_cache()
        node = trace.popular_nodes(1)[0]
        q = Query(0, 0, node, "attributes", 0.0)
        assert cache.serve(q) == g.query_attributes(node)
        assert cache.hits == 1

    def test_miss_on_uncached_node(self):
        g, trace, cache = self.make_cache()
        uncached = [c for c in range(40) if not cache.contains(c)][0]
        q = Query(0, 0, uncached, "attributes", 0.0)
        assert cache.serve(q) is None
        assert cache.misses == 1

    def test_prerequisites_only_if_closure_cached(self):
        g = small_graph()
        cache = InNetworkCache(g, [0, 1])  # 2 not cached
        # prereqs(1) = {0}, fully cached -> hit.
        assert cache.serve(Query(0, 0, 1, "prerequisites", 0.0)) == {0}
        # dependents(1) = {2}, not cached -> miss despite node 1 being cached.
        assert cache.serve(Query(1, 0, 1, "dependents", 0.0)) is None

    def test_compiled_filter_matches_reference(self):
        g, trace, cache = self.make_cache(n=60, cached=16)
        cache.install_filter("fall-intro", ("term", "==", 1), ("level", "<", 4))
        assert cache.run_filter("fall-intro") == cache.reference_filter("fall-intro")

    def test_filter_requires_install(self):
        g, trace, cache = self.make_cache()
        with pytest.raises(ConfigurationError):
            cache.run_filter("ghost")

    def test_capacity_enforced(self):
        g = small_graph()
        with pytest.raises(CapacityError):
            InNetworkCache(g, [0, 1, 2], capacity=2)

    def test_zipf_cache_hit_rate_near_half(self):
        """Section 7.2.5: cached queries account for ~50% of all queries."""
        n = 200
        g = CourseGraph.random(n, random.Random(9), edge_probability=0.02)
        trace = ZipfQueryTrace(n, random.Random(10), alpha=1.2)
        cache = InNetworkCache(g, trace.popular_nodes(20))
        queries = trace.generate(3000, clients=[0], rate_hz=100.0)
        for q in queries:
            cache.serve(q)
        hit_rate = cache.hits / (cache.hits + cache.misses)
        assert 0.3 < hit_rate < 0.8
