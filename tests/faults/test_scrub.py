"""ECCStore lockstep maintenance and Scrubber detection/repair."""

import pytest

from repro import obs
from repro.core.smbm import SMBM, STORED_WORD_BITS
from repro.errors import ConfigurationError, IntegrityError
from repro.faults.scrub import ECCStore, Scrubber

METRICS = ("cpu", "mem")


def make_table(n_rows=6, rng=None):
    smbm = SMBM(max(n_rows, 8), METRICS)
    for rid in range(n_rows):
        if rng is None:
            smbm.add(rid, {"cpu": 10 * rid, "mem": 50 + rid})
        else:
            smbm.add(rid, {"cpu": rng.randrange(1000),
                           "mem": rng.randrange(1000)})
    return smbm


class TestECCStore:
    def test_encodes_existing_rows(self):
        smbm = make_table(3)
        store = ECCStore(smbm)
        assert len(store) == 3
        for rid in range(3):
            assert all(r.clean for r in store.verify_row(rid).values())

    def test_lockstep_on_add_update_delete(self):
        smbm = make_table(2)
        store = ECCStore(smbm)
        smbm.add(4, {"cpu": 1, "mem": 2})
        assert all(r.clean for r in store.verify_row(4).values())
        smbm.update(4, {"cpu": 99, "mem": 98})
        assert all(r.clean for r in store.verify_row(4).values())
        smbm.delete(4)
        with pytest.raises(ConfigurationError):
            store.verify_row(4)

    def test_detects_injected_flip(self):
        smbm = make_table(2)
        store = ECCStore(smbm)
        smbm.corrupt_stored_bit(1, "cpu", 3)
        results = store.verify_row(1)
        assert results["cpu"].status == "corrected"
        assert results["mem"].clean


class TestScrubber:
    def test_full_pass_repairs_to_original(self, rng):
        smbm = make_table(6, rng)
        original = {rid: dict(smbm.metrics_of(rid)) for rid in smbm.snapshot()}
        scrubber = Scrubber(ECCStore(smbm))
        flips = [(0, "cpu", 5), (3, "mem", 60), (5, "cpu", 0)]
        for rid, metric, bit in flips:
            smbm.corrupt_stored_bit(rid, metric, bit)
        events = scrubber.scrub()
        assert {e.resource_id for e in events} == {0, 3, 5}
        assert all(e.action == "corrected" for e in events)
        for rid, row in original.items():
            assert dict(smbm.metrics_of(rid)) == row

    def test_repair_bumps_version(self):
        smbm = make_table(2)
        scrubber = Scrubber(ECCStore(smbm))
        smbm.corrupt_stored_bit(0, "cpu", 1)
        v = smbm.version
        scrubber.scrub()
        assert smbm.version > v  # memo/index invalidation contract

    def test_scrub_step_cursor_bounds_detection(self, rng):
        """Every row is visited within one full cursor rotation."""
        n = 8
        smbm = make_table(n, rng)
        scrubber = Scrubber(ECCStore(smbm))
        rid = rng.randrange(n)
        metric = rng.choice(METRICS)
        smbm.corrupt_stored_bit(rid, metric, rng.randrange(STORED_WORD_BITS))
        detected = []
        for _ in range(n):  # one scrub period at rows=1
            detected += scrubber.scrub_step(rows=1)
        assert [e.resource_id for e in detected] == [rid]

    def test_scrub_step_budget_and_wrap(self):
        smbm = make_table(5)
        scrubber = Scrubber(ECCStore(smbm))
        # Budget larger than the table degrades to one full pass.
        assert scrubber.scrub_step(rows=50) == []
        smbm.corrupt_stored_bit(4, "mem", 2)
        assert [e.resource_id for e in scrubber.scrub_step(rows=5)] == [4]

    def test_quarantine_on_double_bit(self):
        smbm = make_table(3)
        scrubber = Scrubber(ECCStore(smbm))
        smbm.corrupt_stored_bit(1, "cpu", 1)
        smbm.corrupt_stored_bit(1, "cpu", 7)
        events = scrubber.scrub()
        assert events == [e for e in events if e.action == "quarantined"]
        assert 1 not in smbm  # dropped from every filter decision

    def test_raise_on_double_bit(self):
        smbm = make_table(3)
        scrubber = Scrubber(ECCStore(smbm), on_uncorrectable="raise")
        smbm.corrupt_stored_bit(1, "cpu", 1)
        smbm.corrupt_stored_bit(1, "cpu", 7)
        with pytest.raises(IntegrityError) as exc:
            scrubber.scrub()
        assert exc.value.resource == 1

    def test_invalid_policy_rejected(self):
        smbm = make_table(1)
        with pytest.raises(ConfigurationError):
            Scrubber(ECCStore(smbm), on_uncorrectable="ignore")
        scrubber = Scrubber(ECCStore(smbm))
        with pytest.raises(ConfigurationError):
            scrubber.scrub_step(rows=0)

    def test_detection_counters(self):
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            smbm = make_table(4)
            scrubber = Scrubber(ECCStore(smbm))
            smbm.corrupt_stored_bit(0, "cpu", 1)
            smbm.corrupt_stored_bit(2, "mem", 9)
            scrubber.scrub()
            snap = obs.snapshot(registry)
        counters = snap["counters"]
        assert counters['faults_detected_total{kind="seu"}'] == 2
        assert counters["smbm_scrub_repairs_total"] == 2
        assert counters["smbm_scrub_rows_total"] == 4
        hist = snap["histograms"]['repair_latency_ns{component="scrubber"}']
        assert hist["count"] == 2
