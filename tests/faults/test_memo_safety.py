"""Exception-safety of FilterModule memoization: a fault mid-evaluation
must never leave a half-populated memo entry."""

import pytest

from repro.core.pipeline import PipelineParams
from repro.core.policy import Policy, TableRef, intersection, predicate
from repro.errors import CellFault
from repro.switch.filter_module import FilterModule

METRICS = ("cpu", "mem")
PARAMS = PipelineParams(n=6, k=3, f=2, chain_length=2)


def make_module(*, self_healing=False, n_rows=6):
    policy = Policy(
        intersection(
            predicate(TableRef(), "cpu", "<", 70),
            predicate(TableRef(), "mem", ">", 100),
        ),
        name="memo-safety",
    )
    module = FilterModule(n_rows, METRICS, policy, PARAMS,
                          self_healing=self_healing)
    for rid in range(n_rows):
        module.update_resource(rid, {"cpu": 10 * rid, "mem": 60 * rid})
    return module


def test_fault_mid_eval_leaves_no_stale_memo():
    """The old memo entry is dropped before the pipeline runs: after a
    fault escapes, the next evaluation recomputes rather than serving an
    entry whose version no longer matches reality."""
    module = make_module(self_healing=False)
    correct = module.evaluate()
    assert module.cache_hits == 0 and module.cache_misses == 1

    stage, index = module.compiled.pipeline.active_cells()[0]
    module.inject_cell_kill(stage, index)
    module.update_resource(0, {"cpu": 1, "mem": 500})  # invalidate memo
    with pytest.raises(CellFault):
        module.evaluate()

    # The faulted run must not have installed anything: revive the Cell
    # and the next evaluation recomputes against the *current* table.
    module.compiled.pipeline.cell_at(stage, index).revive()
    recovered = module.evaluate()
    # Completed misses only: initial + recovery (the faulted run raised
    # before its miss was accounted).
    assert module.cache_misses == 2
    expected = make_module(self_healing=False)
    expected.update_resource(0, {"cpu": 1, "mem": 500})
    assert recovered == expected.evaluate()
    assert recovered != correct  # row 0 changed eligibility


def test_memo_hit_path_survives_fault_cycle():
    module = make_module(self_healing=False)
    first = module.evaluate()
    assert module.evaluate() == first
    assert module.cache_hits == 1

    stage, index = module.compiled.pipeline.active_cells()[0]
    module.inject_cell_kill(stage, index)
    # Hardware fault without a table write: the version matches, the memo
    # legitimately serves, and nothing faults.
    assert module.evaluate() == first
    assert module.cache_hits == 2


def test_memo_not_installed_when_version_moves_mid_run():
    """A table write that lands *during* the pipeline run (e.g. from a
    fault handler) must prevent installation of the now-stale output."""
    module = make_module(self_healing=True)
    module.evaluate()

    # Healing a dead Cell recompiles mid-evaluation; wire the write in by
    # killing a Cell and updating the table in the same breath so the
    # guarded run observes a version change... simplest deterministic
    # stand-in: poke the version between the miss check and the install by
    # monkey-patching the pipeline runner.
    real_run = module._run_guarded
    poked = {"done": False}

    def run_and_write():
        out = real_run()
        if not poked["done"]:
            poked["done"] = True
            module.smbm.update(0, {"cpu": 99, "mem": 99})
        return out

    module._run_guarded = run_and_write
    module.update_resource(1, {"cpu": 2, "mem": 2})  # force a miss
    module.evaluate()  # version moved mid-run: no memo installed
    module._run_guarded = real_run

    before_hits = module.cache_hits
    module.evaluate()
    assert module.cache_hits == before_hits  # miss: nothing stale served
    assert module.cache_misses >= 3


def test_healing_run_installs_consistent_memo():
    """After a fail-around mid-evaluation, the memo entry (if any) must
    correspond to the healed pipeline's output at the current version."""
    module = make_module(self_healing=True)
    module.evaluate()
    stage, index = module.compiled.pipeline.active_cells()[0]
    module.inject_cell_kill(stage, index)
    module.update_resource(0, {"cpu": 3, "mem": 300})
    healed = module.evaluate()  # faults, recompiles, returns healed output
    assert module.routed_around == {(stage, index)}
    # A subsequent hit serves exactly the healed output.
    again = module.evaluate()
    assert again == healed
    assert module.cache_hits >= 1
