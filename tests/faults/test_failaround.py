"""FilterModule fail-around: dead-Cell healing, BIST localization, and
capacity-exhaustion behaviour."""

import pytest

from repro import obs
from repro.core.compiler import PolicyCompiler
from repro.core.pipeline import PipelineParams
from repro.core.policy import (
    Policy,
    TableRef,
    intersection,
    predicate,
    random_pick,
)
from repro.errors import CellFault, CompilationError, ConfigurationError

from repro.switch.filter_module import FilterModule

METRICS = ("cpu", "mem")
#: Three Cells per stage: room to route around more than one fault.
ROOMY = PipelineParams(n=6, k=3, f=2, chain_length=2)
#: Two Cells per stage: a second stage-1 fault exhausts the pipeline.
TIGHT = PipelineParams(n=4, k=3, f=2, chain_length=2)


def make_policy():
    return Policy(
        intersection(
            predicate(TableRef(), "cpu", "<", 70),
            predicate(TableRef(), "mem", ">", 100),
        ),
        name="failaround",
    )


def make_module(params=ROOMY, *, self_healing=True, n_rows=6, rng=None):
    module = FilterModule(
        max(n_rows, 2), METRICS, make_policy(), params,
        self_healing=self_healing,
    )
    for rid in range(n_rows):
        if rng is None:
            row = {"cpu": 10 * rid, "mem": 60 * rid}
        else:
            row = {"cpu": rng.randrange(100), "mem": rng.randrange(400)}
        module.update_resource(rid, row)
    return module


def first_active(module):
    return module.compiled.pipeline.active_cells()[0]


def test_kill_hidden_by_memo_until_miss():
    """A hardware fault is not a table write: the version-keyed memo
    legitimately serves the pre-fault answer until the next miss."""
    module = make_module()
    baseline = module.evaluate()
    stage, index = first_active(module)
    module.inject_cell_kill(stage, index)
    assert module.evaluate() == baseline  # memo hit, corpse never routed
    assert not module.routed_around
    module.update_resource(0, {"cpu": 1, "mem": 1})  # miss forces the fault
    module.evaluate()
    assert module.routed_around == {(stage, index)}


def test_heal_matches_fault_free_twin(rng):
    module = make_module(rng=rng)
    twin = make_module(self_healing=False)
    for rid in range(6):
        twin.update_resource(rid, dict(module.smbm.metrics_of(rid)))
    stage, index = first_active(module)
    module.inject_cell_kill(stage, index)
    module.update_resource(0, {"cpu": 5, "mem": 500})
    twin.update_resource(0, {"cpu": 5, "mem": 500})
    assert module.evaluate() == twin.evaluate()
    assert module.degraded
    assert module.routed_around == {(stage, index)}


def test_without_self_healing_fault_propagates():
    module = make_module(self_healing=False)
    stage, index = first_active(module)
    module.inject_cell_kill(stage, index)
    module.update_resource(0, {"cpu": 1, "mem": 1})
    with pytest.raises(CellFault) as exc:
        module.evaluate()
    assert (exc.value.stage, exc.value.index) == (stage, index)


def test_capacity_exhaustion_raises_and_rolls_back():
    """When no surviving placement exists, CompilationError surfaces and
    the failed position is NOT left in routed_around."""
    module = make_module(TIGHT)
    module.inject_cell_kill(1, 0)
    module.update_resource(0, {"cpu": 1, "mem": 1})
    module.evaluate()
    assert module.routed_around == {(1, 0)}
    # Stage 1 is the gateway for every input wire; killing its last Cell
    # leaves nothing to compile onto.
    module.inject_cell_kill(1, 1)
    module.update_resource(0, {"cpu": 2, "mem": 2})
    with pytest.raises(CompilationError):
        module.evaluate()
    assert module.routed_around == {(1, 0)}


def test_stuck_fault_is_silent_until_self_test():
    module = make_module()
    twin = make_module(self_healing=False)
    stage, index = first_active(module)
    module.inject_cell_stuck(stage, index, 1, 0)
    healed = module.self_test()
    if healed:  # wedge was observable on this policy/table
        assert {(h["stage"], h["index"]) for h in healed} == {(stage, index)}
        assert module.routed_around == {(stage, index)}
    assert module.evaluate() == twin.evaluate()


def test_self_test_healthy_module_reports_nothing():
    module = make_module()
    assert module.self_test() == []
    assert not module.routed_around


def test_self_test_requires_stateless_policy():
    module = FilterModule(
        4, METRICS, Policy(random_pick(TableRef()), name="stateful"),
        ROOMY, self_healing=True,
    )
    with pytest.raises(ConfigurationError):
        module.self_test()


def test_physical_faults_survive_recompile():
    """A stuck fault on a Cell the new plan still uses must be re-applied
    after a fail-around recompilation (the hardware did not heal)."""
    module = make_module()
    dead_pos = first_active(module)
    # A physically distinct Cell the current plan happens not to use; the
    # fail-around recompile will route onto it, so the wedge must follow.
    stuck_pos = (dead_pos[0], (dead_pos[1] + 1) % 3)
    module.inject_cell_stuck(*stuck_pos, 2, 1)
    module.inject_cell_kill(*dead_pos)
    module.update_resource(0, {"cpu": 1, "mem": 1})
    module.evaluate()  # heals the dead Cell via recompile
    assert module.routed_around == {dead_pos}
    cell = module.compiled.pipeline.cell_at(*stuck_pos)
    assert cell.stuck_faults == {2: 1}


def test_compiler_rejects_out_of_range_dead_cells():
    compiler = PolicyCompiler(ROOMY)
    with pytest.raises(ConfigurationError):
        compiler.compile(make_policy(), dead_cells=[(0, 0)])
    with pytest.raises(ConfigurationError):
        compiler.compile(make_policy(), dead_cells=[(1, 99)])


def test_compiled_with_dead_cells_never_routes_them():
    compiled = PolicyCompiler(ROOMY).compile(
        make_policy(), dead_cells=[(1, 0)]
    )
    assert compiled.dead_cells == frozenset({(1, 0)})
    assert (1, 0) not in compiled.pipeline.active_cells()
    assert compiled.pipeline.cell_at(1, 0).is_dead


def test_degraded_gauge_tracks_routed_around():
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        module = make_module()
        stage, index = first_active(module)
        module.inject_cell_kill(stage, index)
        module.update_resource(0, {"cpu": 1, "mem": 1})
        module.evaluate()
        snap = obs.snapshot(registry)
    assert snap["gauges"]['degraded_mode{policy="failaround"}'] == 1
    assert snap["counters"]['faults_detected_total{kind="cell_dead"}'] == 1
    hist = snap["histograms"]['repair_latency_ns{component="filter_module"}']
    assert hist["count"] == 1 and hist["sum"] > 0
