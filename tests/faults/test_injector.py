"""FaultInjector: seeded determinism and exact injection accounting."""

import pytest

from repro import obs
from repro.core.pipeline import PipelineParams
from repro.core.policy import Policy, TableRef, intersection, predicate
from repro.core.smbm import SMBM
from repro.errors import ConfigurationError
from repro.faults import FaultInjector
from repro.switch.filter_module import FilterModule
from repro.switch.replication import ReplicatedSMBM

METRICS = ("cpu", "mem")
PARAMS = PipelineParams(n=6, k=3, f=2, chain_length=2)


def make_policy():
    return Policy(
        intersection(
            predicate(TableRef(), "cpu", "<", 70),
            predicate(TableRef(), "mem", ">", 100),
        ),
        name="inj",
    )


def make_table(n_rows=6):
    smbm = SMBM(n_rows, METRICS)
    for rid in range(n_rows):
        smbm.add(rid, {"cpu": 10 * rid, "mem": 60 * rid})
    return smbm


def make_module(n_rows=6):
    module = FilterModule(n_rows, METRICS, make_policy(), PARAMS,
                          self_healing=True)
    for rid in range(n_rows):
        module.update_resource(rid, {"cpu": 10 * rid, "mem": 60 * rid})
    return module


def test_same_seed_same_schedule():
    def run(seed):
        inj = FaultInjector(seed)
        smbm = make_table()
        inj.flip_smbm_bits(smbm, 3)
        module = make_module()
        inj.kill_cell(module)
        return [(e.kind, e.target, tuple(sorted(e.detail.items())))
                for e in inj.events]

    assert run(99) == run(99)
    assert run(99) != run(100)


def test_events_and_counters_agree():
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        inj = FaultInjector(1)
        smbm = make_table()
        inj.flip_smbm_bit(smbm)
        inj.flip_smbm_bits(smbm, 2)
        snap = obs.snapshot(registry)
    assert inj.injected() == 3
    assert inj.injected("seu") == 3
    assert inj.injected("link_flap") == 0
    assert snap["counters"]['faults_injected_total{kind="seu"}'] == 3
    assert [e.seq for e in inj.events] == [0, 1, 2]


def test_flip_applies_recorded_bit(rng):
    inj = FaultInjector(rng.randrange(2**32))
    smbm = make_table()
    event = inj.flip_smbm_bit(smbm)
    rid, metric = event.detail["resource"], event.detail["metric"]
    assert smbm.metrics_of(rid)[metric] == event.detail["new"]
    assert event.detail["old"] ^ event.detail["new"] == 1 << event.detail["bit"]


def test_distinct_word_flips_stay_single_bit(rng):
    inj = FaultInjector(rng.randrange(2**32))
    smbm = make_table()
    events = inj.flip_smbm_bits(smbm, 5)
    words = [(e.detail["resource"], e.detail["metric"]) for e in events]
    assert len(set(words)) == 5  # never two flips in one word


def test_flip_rejects_empty_and_oversized():
    inj = FaultInjector(0)
    empty = SMBM(4, METRICS)
    with pytest.raises(ConfigurationError):
        inj.flip_smbm_bit(empty)
    smbm = make_table(2)
    with pytest.raises(ConfigurationError):
        inj.flip_smbm_bits(smbm, 100)


def test_kill_cell_targets_active_cell():
    inj = FaultInjector(5)
    module = make_module()
    event = inj.kill_cell(module)
    pos = (event.detail["stage"], event.detail["index"])
    assert pos in module.compiled.pipeline.active_cells()
    assert module.compiled.pipeline.cell_at(*pos).is_dead


def test_stick_cell_keeps_only_observable_wedges():
    inj = FaultInjector(3)
    module = make_module()
    event = inj.stick_cell(module)
    if event is None:
        pytest.skip("no observable wedge on this policy at this seed")
    # Exactly one wedge left armed: the recorded one.
    wedged = {
        pos: module.compiled.pipeline.cell_at(*pos).stuck_faults
        for pos in module.compiled.pipeline.active_cells()
        if module.compiled.pipeline.cell_at(*pos).stuck_faults
    }
    assert wedged == {
        (event.detail["stage"], event.detail["index"]):
            {event.detail["side"]: event.detail["stuck"]}
    }


def test_diverge_replica_validations():
    inj = FaultInjector(0)
    single = ReplicatedSMBM(1, 4, METRICS)
    with pytest.raises(ConfigurationError):
        inj.diverge_replica(single)
    empty = ReplicatedSMBM(3, 4, METRICS)
    with pytest.raises(ConfigurationError):
        inj.diverge_replica(empty)


def test_contend_writes_requires_two_pipelines():
    inj = FaultInjector(0)
    rep = ReplicatedSMBM(3, 4, METRICS)
    with pytest.raises(ConfigurationError):
        inj.contend_writes(rep, 0, {1: {"cpu": 1, "mem": 1}})
