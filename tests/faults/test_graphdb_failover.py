"""Control-plane failover: probe retry, eviction, drain, readmission."""

import random

from repro.graphdb.cluster import GraphDBCluster
from repro.graphdb.server import GraphDBServer
from repro.netsim.sim import Simulator
from repro.workloads.traces import ResourceConsumptionTrace, ZipfQueryTrace


def make_cluster(n_servers=4, seed=5, **kwargs):
    sim = Simulator()
    trace = ResourceConsumptionTrace(n_servers, random.Random(seed))
    cluster = GraphDBCluster(sim, n_servers, 2, trace, **kwargs)
    return sim, cluster


def submit(cluster, n_queries, seed=6, rate_hz=600.0):
    queries = ZipfQueryTrace(100, random.Random(seed)).generate(
        n_queries, clients=[0, 1], rate_hz=rate_hz
    )
    cluster.submit_trace(queries)
    return queries


class TestServerCrash:
    def test_crash_parks_queries_and_drain_recovers_them(self):
        sim, cluster = make_cluster()
        queries = submit(cluster, 200)
        sim.at(0.05, cluster.servers[1].crash)
        sim.run(until=60.0)
        assert len(cluster.results) == 200
        served = sorted(r.query.query_id for r in cluster.results)
        assert served == sorted(q.query_id for q in queries)
        kinds = {e.kind for e in cluster.failover_log if e.server == 1}
        assert "retry_exhausted" in kinds
        assert "evicted" in kinds
        assert cluster.down_servers == frozenset({1})
        # The dead server serves nothing after its eviction time.
        t_evict = next(e.time for e in cluster.failover_log
                       if e.server == 1 and e.kind == "evicted")
        late_on_dead = [r for r in cluster.results
                        if r.server == 1
                        and r.query.arrival_time > t_evict]
        assert not late_on_dead

    def test_restore_readmits_via_probe(self):
        sim, cluster = make_cluster()
        submit(cluster, 200)
        sim.at(0.05, cluster.servers[2].crash)
        sim.at(0.30, cluster.servers[2].restore)
        sim.run(until=60.0)
        kinds = [e.kind for e in cluster.failover_log if e.server == 2]
        assert "evicted" in kinds and "readmitted" in kinds
        assert not cluster.down_servers
        assert len(cluster.results) == 200

    def test_drained_queries_are_counted(self):
        sim, cluster = make_cluster()
        submit(cluster, 300, rate_hz=3000.0)  # deep queues when the axe falls
        sim.at(0.03, cluster.servers[0].crash)
        sim.run(until=60.0)
        drained = [e for e in cluster.failover_log
                   if e.server == 0 and e.kind == "drained"]
        assert drained and drained[0].detail > 0
        assert len(cluster.results) == 300

    def test_transient_probe_loss_is_absorbed(self):
        """Losses inside the retry budget must not evict."""
        sim, cluster = make_cluster()
        submit(cluster, 100)
        sim.at(0.02, lambda: cluster.servers[3].drop_next_probes(2))
        sim.run(until=60.0)
        assert cluster.probe_timeouts >= 2
        assert not cluster.down_servers
        assert not cluster.failover_log
        assert len(cluster.results) == 100

    def test_probe_loss_beyond_budget_evicts(self):
        sim, cluster = make_cluster()
        submit(cluster, 100)
        # Swallow enough probes to exhaust the 3-attempt budget even if one
        # drop is consumed by the probe tick coinciding with the injection.
        sim.at(0.02, lambda: cluster.servers[3].drop_next_probes(4))
        sim.run(until=60.0)
        kinds = [e.kind for e in cluster.failover_log if e.server == 3]
        assert "evicted" in kinds
        # Probes keep flowing once the drop budget is spent, so the next
        # readmission probe brings the server straight back.
        assert "readmitted" in kinds
        assert kinds.index("evicted") < kinds.index("readmitted")
        assert 3 not in cluster.down_servers
        assert len(cluster.results) == 100


class TestServerSemantics:
    def make_server(self, seed=1):
        sim = Simulator()
        trace = ResourceConsumptionTrace(2, random.Random(seed))
        return sim, GraphDBServer(sim, 0, trace)

    def test_crashed_server_ignores_probes(self):
        sim, server = self.make_server()
        assert server.probe(0.0) is not None
        server.crash()
        assert server.crashed
        assert server.probe(0.0) is None
        server.restore()
        assert server.probe(0.0) is not None

    def test_in_flight_completion_orphaned_by_crash(self):
        """A finish() scheduled before the crash must not fire after it —
        the epoch guard kills the stale closure."""
        from repro.workloads.traces import Query

        sim, server = self.make_server()
        done = []
        server.submit(Query(0, 0, 1, "attributes", 0.0),
                      lambda q: done.append(q.query_id))
        sim.schedule(1e-9, server.crash)
        sim.run(until=10.0)
        assert done == []
        # The parked work is still drainable for redistribution.
        pending = server.take_pending()
        assert [q.query_id for q, _ in pending] == [0]

    def test_take_pending_orders_in_service_first(self):
        from repro.workloads.traces import Query

        sim, server = self.make_server()
        for qid in range(3):
            server.submit(Query(qid, 0, 1, "attributes", 0.0),
                          lambda q: None)
        server.crash()
        pending = server.take_pending()
        assert [q.query_id for q, _ in pending] == [0, 1, 2]
        assert server.take_pending() == []
