"""SECDED (72,64) extended-Hamming encode/decode properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.faults.ecc import ecc_check_word, ecc_decode

WORD = st.integers(min_value=0, max_value=2**64 - 1)
BIT = st.integers(min_value=0, max_value=63)


@given(word=WORD)
def test_clean_word_decodes_clean(word):
    result = ecc_decode(word, ecc_check_word(word))
    assert result.status == "clean"
    assert result.clean and not result.detected
    assert result.corrected == word
    assert result.bit is None


@given(word=WORD, bit=BIT)
def test_single_bit_flip_corrected_to_exact_bit(word, bit):
    check = ecc_check_word(word)
    corrupted = word ^ (1 << bit)
    result = ecc_decode(corrupted, check)
    assert result.status == "corrected"
    assert result.detected and not result.clean
    assert result.corrected == word
    assert result.bit == bit


@given(word=WORD, bits=st.sets(BIT, min_size=2, max_size=2))
def test_double_bit_flip_detected_uncorrectable(word, bits):
    check = ecc_check_word(word)
    corrupted = word
    for bit in bits:
        corrupted ^= 1 << bit
    result = ecc_decode(corrupted, check)
    assert result.status == "uncorrectable"
    assert result.detected
    assert result.corrected is None


def test_zero_and_all_ones_roundtrip():
    for word in (0, 2**64 - 1):
        assert ecc_decode(word, ecc_check_word(word)).clean


def test_out_of_range_word_rejected():
    with pytest.raises(ConfigurationError):
        ecc_check_word(-1)
    with pytest.raises(ConfigurationError):
        ecc_check_word(2**64)


def test_random_words_systematic(rng):
    """Belt-and-braces sweep with the suite seed: correct every bit of a
    few words and verify exact localization."""
    for _ in range(5):
        word = rng.getrandbits(64)
        check = ecc_check_word(word)
        for bit in range(64):
            result = ecc_decode(word ^ (1 << bit), check)
            assert result.status == "corrected" and result.bit == bit
