"""ReplicatedSMBM beyond the happy path: divergence detection, majority
repair, contention sequences, and exception-safety of commit_cycle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core.smbm import STORED_WORD_BITS
from repro.errors import ConfigurationError, IntegrityError
from repro.switch.replication import ReplicatedSMBM, WriteContention

METRICS = ("cpu", "mem")


def make_rep(pipelines=3, capacity=8, **kwargs):
    return ReplicatedSMBM(pipelines, capacity, METRICS, **kwargs)


def fill(rep, n_rows, rng):
    for rid in range(n_rows):
        rep.issue_update(0, rid, {"cpu": rng.randrange(100),
                                  "mem": rng.randrange(400)})
        rep.commit_cycle()


class TestDivergenceAndRepair:
    def test_detects_single_corrupted_replica(self, rng):
        rep = make_rep()
        fill(rep, 4, rng)
        victim = rng.randrange(rep.pipelines)
        rep.replica(victim).corrupt_stored_bit(
            2, "cpu", rng.randrange(STORED_WORD_BITS)
        )
        assert rep.diverged_replicas() == [victim]
        # check_synchronised compares everyone against replica 0, so it
        # flags *a* divergence (localization is diverged_replicas' job).
        with pytest.raises(IntegrityError):
            rep.check_synchronised()

    def test_repair_resyncs_to_majority(self, rng):
        rep = make_rep()
        fill(rep, 4, rng)
        expected = {rid: dict(rep.replica(0).metrics_of(rid))
                    for rid in rep.replica(0).snapshot()}
        victim = rng.randrange(rep.pipelines)
        rep.replica(victim).corrupt_stored_bit(1, "mem", 7)
        assert rep.repair() == [victim]
        rep.check_synchronised()
        for rid, row in expected.items():
            assert dict(rep.replica(victim).metrics_of(rid)) == row

    def test_repair_restores_missing_and_extra_rows(self, rng):
        rep = make_rep()
        fill(rep, 3, rng)
        rep.replica(1).delete(0)                       # missing row
        rep.replica(1).add(7, {"cpu": 1, "mem": 1})    # phantom row
        assert rep.repair() == [1]
        rep.check_synchronised()
        assert 0 in rep.replica(1)
        assert 7 not in rep.replica(1)

    def test_repair_on_healthy_set_is_noop(self, rng):
        rep = make_rep()
        fill(rep, 3, rng)
        assert rep.repair() == []
        rep.check_synchronised()

    def test_repair_counters(self, rng):
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            rep = make_rep()
            fill(rep, 3, rng)
            rep.replica(2).corrupt_stored_bit(1, "cpu", 3)
            rep.repair()
            snap = obs.snapshot(registry)
        counters = snap["counters"]
        assert counters['faults_detected_total{kind="replica_divergence"}'] == 1
        assert counters["replica_repairs_total"] == 1
        hist = snap["histograms"]['repair_latency_ns{component="replicated_smbm"}']
        assert hist["count"] == 1


class TestContention:
    def test_contention_raises_with_context(self, rng):
        rep = make_rep()
        fill(rep, 2, rng)
        rep.issue_update(0, 1, {"cpu": 1, "mem": 1})
        rep.issue_update(2, 1, {"cpu": 2, "mem": 2})
        with pytest.raises(WriteContention) as exc:
            rep.commit_cycle()
        assert exc.value.resource == 1
        assert exc.value.component == "replicated_smbm"

    def test_usable_after_contention(self, rng):
        """Regression: the failed cycle must not leave stale staged writes
        that replay into a later commit."""
        rep = make_rep()
        fill(rep, 2, rng)
        rep.issue_update(0, 1, {"cpu": 1, "mem": 1})
        rep.issue_update(1, 1, {"cpu": 2, "mem": 2})
        with pytest.raises(WriteContention):
            rep.commit_cycle()
        before = dict(rep.replica(0).metrics_of(1))
        rep.commit_cycle()  # nothing staged: a clean no-op cycle
        assert dict(rep.replica(0).metrics_of(1)) == before
        rep.issue_update(1, 1, {"cpu": 9, "mem": 9})
        rep.commit_cycle()
        assert dict(rep.replica(0).metrics_of(1)) == {"cpu": 9, "mem": 9}
        rep.check_synchronised()

    def test_arbitrate_mode_lowest_pipeline_wins(self, rng):
        rep = make_rep(on_contention="arbitrate")
        fill(rep, 2, rng)
        rep.issue_update(2, 0, {"cpu": 22, "mem": 22})
        rep.issue_update(1, 0, {"cpu": 11, "mem": 11})
        rep.commit_cycle()
        assert rep.arbitrations == 1
        assert dict(rep.replica(0).metrics_of(0)) == {"cpu": 11, "mem": 11}
        rep.check_synchronised()

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            make_rep(on_contention="coin-flip")

    @given(
        cycles=st.lists(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=2),  # pipeline
                    st.integers(min_value=0, max_value=3),  # resource
                    st.integers(min_value=0, max_value=99),  # value
                ),
                min_size=1, max_size=4,
            ),
            min_size=1, max_size=6,
        )
    )
    @settings(max_examples=40)
    def test_multi_cycle_sequences_stay_synchronised(self, cycles):
        """Whatever mix of clean and contended cycles runs, the replicas
        are identical afterwards and contended cycles leave no residue."""
        rep = make_rep()
        for writes in cycles:
            pipelines_per_resource: dict[int, set[int]] = {}
            for pipeline, rid, _ in writes:
                pipelines_per_resource.setdefault(rid, set()).add(pipeline)
            contended = any(len(p) > 1 for p in pipelines_per_resource.values())
            for pipeline, rid, value in writes:
                rep.issue_update(pipeline, rid,
                                 {"cpu": value, "mem": value + 1})
            if contended:
                with pytest.raises(WriteContention):
                    rep.commit_cycle()
            else:
                rep.commit_cycle()
            rep.check_synchronised()


class TestMidApplyFailure:
    def test_mid_apply_exception_still_clears_staged_writes(self, rng):
        """Even if a replica write blows up mid-apply, the staged set is
        cleared — the guarantee is try/finally, not happy-path."""
        rep = make_rep()
        fill(rep, 2, rng)
        rep.issue_update(0, 1, {"cpu": 1})  # missing metric: apply fails
        with pytest.raises(ConfigurationError):
            rep.commit_cycle()
        # The poisoned write is gone; the next cycle is clean.
        rep.commit_cycle()
        rep.issue_update(0, 0, {"cpu": 3, "mem": 4})
        rep.commit_cycle()
        assert dict(rep.replica(2).metrics_of(0)) == {"cpu": 3, "mem": 4}
        # The half-applied write (delete landed, add failed on replica 0)
        # is exactly what majority-vote repair exists for.
        assert rep.diverged_replicas() == [0]
        assert rep.repair() == [0]
        rep.check_synchronised()
