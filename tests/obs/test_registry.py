"""MetricsRegistry: instrument identity, label canonicalisation, collect
hooks (summing, weakref pruning), and value_of aggregation."""

from __future__ import annotations

import gc

import pytest

from repro.obs import MetricsRegistry, Sample


class TestInstrumentFactories:
    def test_counter_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("requests_total", {"policy": "min"})
        b = reg.counter("requests_total", {"policy": "min"})
        assert a is b
        a.inc(3)
        assert b.value == 3

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("x", {"b": "2", "a": "1"})
        b = reg.counter("x", {"a": "1", "b": "2"})
        c = reg.counter("x", (("b", "2"), ("a", "1")))
        assert a is b is c
        assert a.labels == (("a", "1"), ("b", "2"))

    def test_label_values_are_stringified(self):
        reg = MetricsRegistry()
        a = reg.gauge("depth", {"stage": 3})
        b = reg.gauge("depth", {"stage": "3"})
        assert a is b

    def test_different_labels_are_different_series(self):
        reg = MetricsRegistry()
        a = reg.counter("x", {"policy": "min"})
        b = reg.counter("x", {"policy": "max"})
        unlabelled = reg.counter("x")
        assert len({id(a), id(b), id(unlabelled)}) == 3

    def test_kinds_are_namespaced_separately(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(2)
        reg.gauge("n").set(7.0)
        samples, _ = reg.collect()
        by_kind = {s.kind: s.value for s in samples if s.name == "n"}
        assert by_kind == {"counter": 2, "gauge": 7.0}

    def test_gauge_arithmetic(self):
        reg = MetricsRegistry()
        g = reg.gauge("queue")
        g.set(10.0)
        g.inc(2.5)
        g.dec()
        assert g.value == 11.5


class _Instrumented:
    """A component instrumented the way SMBM/FilterModule are: plain int
    counters converted to samples by a bound-method collect hook."""

    def __init__(self, reg: MetricsRegistry, policy: str):
        self.hits = 0
        self._policy = policy
        reg.add_hook(self._collect)

    def _collect(self):
        yield Sample("hits_total", self.hits,
                     labels=(("policy", self._policy),))


class TestCollectHooks:
    def test_hook_samples_appear_in_collect(self):
        reg = MetricsRegistry()
        obj = _Instrumented(reg, "min")
        obj.hits = 5
        assert reg.value_of("hits_total", {"policy": "min"}) == 5

    def test_same_series_across_hooks_is_summed(self):
        reg = MetricsRegistry()
        a = _Instrumented(reg, "min")
        b = _Instrumented(reg, "min")
        a.hits, b.hits = 3, 4
        samples, _ = reg.collect()
        series = [s for s in samples if s.name == "hits_total"]
        assert len(series) == 1
        assert series[0].value == 7

    def test_hook_sample_merges_with_direct_instrument(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", {"policy": "min"}).inc(10)
        obj = _Instrumented(reg, "min")
        obj.hits = 5
        assert reg.value_of("hits_total", {"policy": "min"}) == 15

    def test_dead_owner_prunes_hook(self):
        reg = MetricsRegistry()
        obj = _Instrumented(reg, "min")
        obj.hits = 9
        assert reg.value_of("hits_total") == 9
        del obj
        gc.collect()
        assert reg.value_of("hits_total") == 0
        reg.collect()
        assert reg._hooks == []  # dead WeakMethod entries pruned

    def test_plain_function_hook_is_held_strongly(self):
        reg = MetricsRegistry()

        def hook():
            yield Sample("f_total", 2)

        reg.add_hook(hook)
        del hook
        gc.collect()
        assert reg.value_of("f_total") == 2

    def test_collect_is_read_only_and_repeatable(self):
        reg = MetricsRegistry()
        obj = _Instrumented(reg, "min")
        obj.hits = 1
        first = reg.value_of("hits_total")
        second = reg.value_of("hits_total")
        assert first == second == 1  # collecting must not consume anything

    def test_samples_sorted_by_name_then_labels(self):
        reg = MetricsRegistry()
        reg.counter("b_total").inc()
        reg.counter("a_total", {"k": "2"}).inc()
        reg.counter("a_total", {"k": "1"}).inc()
        samples, _ = reg.collect()
        keys = [(s.name, s.labels) for s in samples]
        assert keys == sorted(keys)


class TestValueOf:
    def test_absent_series_is_zero(self):
        assert MetricsRegistry().value_of("nope_total") == 0.0

    def test_none_labels_sums_over_label_sets(self):
        reg = MetricsRegistry()
        reg.counter("x", {"policy": "min"}).inc(2)
        reg.counter("x", {"policy": "max"}).inc(3)
        assert reg.value_of("x") == 5
        assert reg.value_of("x", {"policy": "min"}) == 2


class TestHistogramRegistration:
    def test_histogram_get_or_create(self):
        reg = MetricsRegistry()
        a = reg.histogram("lat_ns", {"span": "s"})
        b = reg.histogram("lat_ns", {"span": "s"})
        assert a is b

    def test_histograms_returned_from_collect(self):
        reg = MetricsRegistry()
        reg.histogram("lat_ns").observe(12)
        _, hists = reg.collect()
        assert [h.name for h in hists] == ["lat_ns"]
        assert hists[0].count == 1


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
