"""Exporter formats: Prometheus text exposition and the JSON snapshot."""

from __future__ import annotations

import json

import pytest

from repro.obs import MetricsRegistry, series_key, snapshot, to_prometheus


def _registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("writes_total", {"op": "add"}, help="committed adds").inc(3)
    reg.counter("writes_total", {"op": "delete"}).inc(1)
    reg.gauge("occupancy", help="live resources").set(12)
    h = reg.histogram("lat_ns", {"span": "eval"}, help="latency",
                      num_buckets=4)
    for v in (1, 3, 900):
        h.observe(v)
    return reg


class TestPrometheusText:
    def test_help_and_type_emitted_once_per_name(self):
        text = to_prometheus(_registry())
        assert text.count("# HELP writes_total committed adds") == 1
        assert text.count("# TYPE writes_total counter") == 1
        assert "# TYPE occupancy gauge" in text
        assert "# TYPE lat_ns histogram" in text

    def test_sample_lines(self):
        lines = to_prometheus(_registry()).splitlines()
        assert 'writes_total{op="add"} 3' in lines
        assert 'writes_total{op="delete"} 1' in lines
        assert "occupancy 12" in lines  # integral floats render as ints

    def test_histogram_lines_are_cumulative_with_le(self):
        lines = to_prometheus(_registry()).splitlines()
        # buckets: bound 1 (v<1): 0; bound 2: the 1; bound 4: +3; bound 8: 0;
        # overflow catches 900.
        assert 'lat_ns_bucket{span="eval",le="1"} 0' in lines
        assert 'lat_ns_bucket{span="eval",le="2"} 1' in lines
        assert 'lat_ns_bucket{span="eval",le="4"} 2' in lines
        assert 'lat_ns_bucket{span="eval",le="8"} 2' in lines
        assert 'lat_ns_bucket{span="eval",le="+Inf"} 3' in lines
        assert 'lat_ns_count{span="eval"} 3' in lines
        assert 'lat_ns_sum{span="eval"} 904' in lines

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        reg.counter("x", {"path": 'a"b\\c\nd'}).inc()
        text = to_prometheus(reg)
        assert 'x{path="a\\"b\\\\c\\nd"} 1' in text

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""

    def test_ends_with_newline_when_nonempty(self):
        assert to_prometheus(_registry()).endswith("\n")


class TestSeriesKey:
    def test_no_labels(self):
        assert series_key("x") == "x"

    def test_with_labels(self):
        assert series_key("x", (("a", "1"), ("b", "2"))) == 'x{a="1",b="2"}'


class TestJsonSnapshot:
    def test_round_trips_through_json(self):
        snap = snapshot(_registry())
        assert json.loads(json.dumps(snap)) == snap

    def test_counters_and_gauges_partitioned(self):
        snap = snapshot(_registry())
        assert snap["counters"]['writes_total{op="add"}'] == 3
        assert snap["counters"]['writes_total{op="delete"}'] == 1
        assert snap["gauges"]["occupancy"] == 12

    def test_histogram_entry_is_sparse(self):
        snap = snapshot(_registry())
        entry = snap["histograms"]['lat_ns{span="eval"}']
        assert entry["count"] == 3
        assert entry["sum"] == 904
        # Only buckets with observations appear: bound 2 (the 1), bound 4
        # (the 3) and the overflow (the 900).
        assert entry["buckets"] == [[2.0, 1], [4.0, 1], ["+Inf", 1]]

    def test_empty_registry_snapshot(self):
        assert snapshot(MetricsRegistry()) == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
