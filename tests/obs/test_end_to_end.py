"""End-to-end observability: a real registry installed around real pipeline
components, validated through the exporter output (the acceptance path:
SMBM rebuild counters, memo hit/miss counters, per-cell activations)."""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.compiler import PolicyCompiler
from repro.core.operators import RelOp
from repro.core.pipeline import PipelineParams
from repro.core.policy import Policy, TableRef, min_of, predicate
from repro.switch.filter_module import FilterModule

CAP = 16
METRICS = ("a", "b")


def _run_workload(reg: obs.MetricsRegistry) -> FilterModule:
    module = FilterModule(
        CAP, METRICS,
        Policy(predicate(TableRef(), "a", RelOp.LT, 8), name="e2e"),
    )
    for rid in range(8):
        module.update_resource(rid, {"a": rid * 2, "b": rid})
    module.evaluate()           # miss: runs the pipeline
    module.evaluate()           # hit: served from the version memo
    module.update_resource(0, {"a": 15, "b": 0})
    module.evaluate()           # miss again: write invalidated the memo
    return module


class TestExporterEndToEnd:
    def test_snapshot_carries_the_acceptance_series(self):
        with obs.use_registry() as reg:
            module = _run_workload(reg)
            snap = obs.snapshot(reg)
        counters = snap["counters"]

        # SMBM write and rebuild accounting.
        assert counters['smbm_writes_total{op="add"}'] == 9
        assert counters['smbm_writes_total{op="delete"}'] == 1  # the update
        assert counters["smbm_index_rebuilds_total"] >= 1

        # Memoization accounting agrees exactly with the module's own ints.
        assert counters['filter_evaluations_total{policy="e2e"}'] == 3
        assert counters['filter_memo_hits_total{policy="e2e"}'] == 1
        assert counters['filter_memo_misses_total{policy="e2e"}'] == 2
        assert module.cache_hits == 1 and module.cache_misses == 2

        # Per-cell pipeline accounting: the static plan's activations,
        # bypasses and skips all scale with packets evaluated.
        activations = {
            k: v for k, v in counters.items()
            if k.startswith("pipeline_cell_activations_total{")
        }
        assert activations, "expected per-cell activation series"
        assert all(v >= 1 for v in activations.values())
        assert 'cell="' in next(iter(activations))
        assert 'stage="' in next(iter(activations))
        # Two pipeline runs: the two memo misses.
        assert counters["pipeline_packets_total"] == 2

        # The compile span fired (module construction compiles the policy).
        assert counters['span_calls_total{span="policy_compile"}'] >= 1
        assert counters['span_cycles_total{span="policy_compile"}'] >= 1

        # Evaluation latency histogram observed once per pipeline run.
        hist = snap["histograms"]['filter_eval_ns{policy="e2e"}']
        assert hist["count"] == 2
        assert hist["sum"] > 0

    def test_prometheus_text_carries_the_acceptance_series(self):
        with obs.use_registry() as reg:
            module = _run_workload(reg)
            text = obs.to_prometheus(reg)
        assert module is not None
        lines = text.splitlines()
        assert 'smbm_writes_total{op="add"} 9' in lines
        assert 'filter_memo_hits_total{policy="e2e"} 1' in lines
        assert 'filter_memo_misses_total{policy="e2e"} 2' in lines
        assert "# TYPE smbm_index_rebuilds_total counter" in lines
        assert "# TYPE filter_eval_ns histogram" in lines
        assert any(l.startswith("pipeline_cell_activations_total{")
                   for l in lines)
        assert any(l.startswith('filter_eval_ns_bucket{')
                   for l in lines)

    def test_value_of_matches_snapshot(self):
        with obs.use_registry() as reg:
            _module = _run_workload(reg)
            assert reg.value_of(
                "filter_memo_hits_total", {"policy": "e2e"}
            ) == 1
            assert reg.value_of("smbm_writes_total") == 10  # add + delete

    def test_objects_built_outside_the_scope_stay_dark(self):
        # Construct under the null registry, *then* enable: the module was
        # never instrumented, so the registry must stay empty.
        module = FilterModule(
            CAP, METRICS,
            Policy(predicate(TableRef(), "a", RelOp.LT, 8), name="dark"),
        )
        with obs.use_registry() as reg:
            for rid in range(4):
                module.update_resource(rid, {"a": rid, "b": rid})
            module.evaluate()
            snap = obs.snapshot(reg)
        assert snap["counters"] == {}
        assert snap["histograms"] == {}

    def test_direct_compiled_policy_reports_pipeline_packets(self):
        with obs.use_registry() as reg:
            module = FilterModule(
                CAP, METRICS,
                Policy(min_of(TableRef(), "b"), name="direct"),
            )
            for rid in range(6):
                module.update_resource(rid, {"a": rid, "b": 10 - rid})
            compiled = PolicyCompiler(PipelineParams()).compile(
                Policy(min_of(TableRef(), "b"), name="direct2")
            )
            for _ in range(5):
                compiled.evaluate(module.smbm)
            # Keep both pipelines alive through the read (weakref hooks).
            total = reg.value_of("pipeline_packets_total")
            assert module is not None and compiled is not None
        assert total == 5


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
