"""The disabled (default) observability path: shared no-op singletons,
zero side effects, zero allocations, and registry install/restore."""

from __future__ import annotations

import tracemalloc

import pytest

from repro import obs
from repro.obs import (
    NULL_REGISTRY,
    NULL_SPAN,
    MetricsRegistry,
    NullRegistry,
    Tracer,
)


class TestDefaultIsNull:
    def test_default_active_registry_is_the_null_singleton(self):
        assert obs.get_registry() is NULL_REGISTRY
        assert not obs.get_registry().enabled

    def test_default_tracer_hands_out_the_null_span(self):
        span = obs.get_tracer().span("anything")
        assert span is NULL_SPAN
        with span as s:
            s.add_cycles(1000)
        assert span.cycles == 0  # add_cycles is a no-op


class TestNullInstruments:
    def test_factories_return_shared_singletons(self):
        reg = NullRegistry()
        assert reg.counter("a") is reg.counter("b", {"x": "1"})
        assert reg.gauge("a") is reg.gauge("b")
        assert reg.histogram("a") is reg.histogram("b", num_buckets=3)

    def test_increments_have_no_effect(self):
        reg = NullRegistry()
        c = reg.counter("c")
        g = reg.gauge("g")
        h = reg.histogram("h")
        c.inc(100)
        g.set(5.0)
        g.inc()
        g.dec()
        h.observe(1234)
        assert c.value == 0
        assert g.value == 0.0
        assert h.count == 0 and h.sum == 0

    def test_hooks_are_dropped_not_stored(self):
        reg = NullRegistry()
        called = []

        def hook():
            called.append(True)
            yield obs.Sample("x", 1)

        reg.add_hook(hook)
        samples, hists = reg.collect()
        assert samples == [] and hists == []
        assert not called  # the hook was never registered, never invoked

    def test_collect_stays_empty_after_traffic(self):
        reg = NullRegistry()
        reg.counter("c", {"k": "v"}).inc()
        reg.histogram("h").observe(1)
        assert obs.snapshot(reg) == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        assert obs.to_prometheus(reg) == ""

    def test_disabled_hot_path_allocates_nothing(self):
        """Counter.inc / Histogram.observe / span() against the null
        registry must not allocate: assert zero net allocations attributed
        to the obs package across 2000 disabled-path calls."""
        reg = NullRegistry()
        tracer = Tracer(reg)
        c = reg.counter("c")
        h = reg.histogram("h")
        for _ in range(10):  # warm up any lazy interpreter caches
            c.inc(); h.observe(7); tracer.span("s").begin().finish()
        only_obs = tracemalloc.Filter(True, "*/repro/obs/*")
        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot().filter_traces([only_obs])
            for _ in range(2000):
                c.inc()
                h.observe(7)
                span = tracer.span("s")
                span.begin()
                span.add_cycles(3)
                span.finish()
            after = tracemalloc.take_snapshot().filter_traces([only_obs])
        finally:
            tracemalloc.stop()
        grown = [d for d in after.compare_to(before, "filename")
                 if d.size_diff > 0]
        assert not grown, f"disabled path allocated: {grown}"


class TestRegistryInstallation:
    def test_use_registry_installs_and_restores(self):
        assert obs.get_registry() is NULL_REGISTRY
        with obs.use_registry() as reg:
            assert isinstance(reg, MetricsRegistry) and reg.enabled
            assert obs.get_registry() is reg
            assert obs.get_tracer().enabled
        assert obs.get_registry() is NULL_REGISTRY
        assert not obs.get_tracer().enabled

    def test_use_registry_accepts_an_existing_registry(self):
        mine = MetricsRegistry()
        with obs.use_registry(mine) as reg:
            assert reg is mine

    def test_use_registry_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs.use_registry():
                raise RuntimeError("boom")
        assert obs.get_registry() is NULL_REGISTRY

    def test_nested_scopes_restore_in_order(self):
        outer = MetricsRegistry()
        inner = MetricsRegistry()
        with obs.use_registry(outer):
            with obs.use_registry(inner):
                assert obs.get_registry() is inner
            assert obs.get_registry() is outer
        assert obs.get_registry() is NULL_REGISTRY

    def test_set_registry_none_restores_null(self):
        previous = obs.set_registry(MetricsRegistry())
        try:
            assert obs.get_registry().enabled
        finally:
            obs.set_registry(None)
        assert obs.get_registry() is NULL_REGISTRY
        assert previous is NULL_REGISTRY


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
