"""Power-of-two histogram: bucket placement, bounds, cumulative counts."""

from __future__ import annotations

import pytest

from repro.obs import Histogram


def _expected_bucket(value: int, num_buckets: int) -> int:
    """Reference bucketing: bit_length clipped into the overflow bucket."""
    idx = max(0, int(value)).bit_length()
    return min(idx, num_buckets)  # buckets has num_buckets + 1 slots


class TestBucketing:
    def test_bucket_placement_matches_bit_length(self):
        h = Histogram("lat", num_buckets=8)
        for v in [0, 1, 2, 3, 4, 7, 8, 15, 16, 127, 128, 255, 256, 10**6]:
            before = list(h.buckets)
            h.observe(v)
            idx = _expected_bucket(v, 8)
            assert h.buckets[idx] == before[idx] + 1, f"value {v}"

    def test_bucket_semantics_half_open_ranges(self):
        # Bucket i (finite) counts v in [2**(i-1), 2**i); bucket 0 is v < 1.
        h = Histogram("lat", num_buckets=6)
        bounds = h.bucket_bounds()
        for i, upper in enumerate(bounds[:-1]):
            lo = 0 if i == 0 else 2 ** (i - 1)
            for v in {lo, int(upper) - 1}:
                if v < lo:
                    continue
                fresh = Histogram("lat", num_buckets=6)
                fresh.observe(v)
                assert fresh.buckets[i] == 1, f"{v} should land in bucket {i}"

    def test_negative_values_clamp_to_zero_bucket(self):
        h = Histogram("lat")
        h.observe(-5)
        assert h.buckets[0] == 1
        assert h.sum == 0  # clamped before summing

    def test_float_values_truncate(self):
        h = Histogram("lat")
        h.observe(3.9)
        assert h.buckets[_expected_bucket(3, Histogram.DEFAULT_BUCKETS)] == 1
        assert h.sum == 3

    def test_overflow_bucket_catches_huge_values(self):
        h = Histogram("lat", num_buckets=4)
        h.observe(2 ** 20)
        assert h.buckets[-1] == 1

    def test_count_and_sum(self):
        h = Histogram("lat")
        for v in (1, 2, 3, 100):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 106

    def test_needs_at_least_one_bucket(self):
        with pytest.raises(ValueError):
            Histogram("lat", num_buckets=0)


class TestBoundsAndCumulative:
    def test_bounds_are_powers_of_two_plus_inf(self):
        h = Histogram("lat", num_buckets=5)
        assert h.bucket_bounds() == [1.0, 2.0, 4.0, 8.0, 16.0, float("inf")]
        assert len(h.bucket_bounds()) == len(h.buckets)

    def test_cumulative_is_monotone_and_ends_at_count(self, rng):
        h = Histogram("lat", num_buckets=10)
        for _ in range(200):
            h.observe(rng.randrange(0, 5000))
        cum = h.cumulative()
        assert all(a <= b for a, b in zip(cum, cum[1:]))
        assert cum[-1] == h.count == 200

    def test_cumulative_matches_naive_le_counts(self, rng):
        h = Histogram("lat", num_buckets=12)
        values = [rng.randrange(0, 10000) for _ in range(300)]
        for v in values:
            h.observe(v)
        bounds = h.bucket_bounds()
        cum = h.cumulative()
        for upper, got in zip(bounds[:-1], cum[:-1]):
            # Prometheus le semantics on half-open pow-2 buckets: everything
            # strictly below the bound has been counted.
            assert got == sum(1 for v in values if v < upper), f"le {upper}"
        assert cum[-1] == len(values)


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
