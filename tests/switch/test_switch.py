"""Tests for the integrated Thanos switch, filter module, and replication."""

import pytest

from repro.core.pipeline import PipelineParams
from repro.core.policy import (
    Conditional,
    Policy,
    TableRef,
    intersection,
    min_of,
    predicate,
    random_pick,
)
from repro.errors import ConfigurationError
from repro.rmt.packet import Packet
from repro.rmt.probe import ETHER_HEADER, ETHERTYPE_DATA
from repro.switch.filter_module import (
    META_FILTER_OUTPUT,
    META_FILTER_REQUEST,
    META_FILTER_SELECTED,
    FilterModule,
)
from repro.switch.replication import ReplicatedSMBM, WriteContention
from repro.switch.thanos_switch import ThanosSwitch

METRICS = ("util", "delay")


def least_utilised_policy() -> Policy:
    return Policy(min_of(TableRef(), "util"), name="conga")


def make_switch(policy=None) -> ThanosSwitch:
    return ThanosSwitch(
        capacity=8,
        metric_names=METRICS,
        policy=policy or least_utilised_policy(),
        params=PipelineParams(n=2, k=2, f=2, chain_length=2),
    )


def data_packet() -> Packet:
    p = Packet()
    p.push_header("ether", {"dst": 0, "src": 0, "ethertype": ETHERTYPE_DATA})
    return p


class TestFilterModule:
    def test_update_and_select(self):
        fm = FilterModule(8, METRICS, least_utilised_policy(),
                          PipelineParams(n=2, k=1, f=1, chain_length=1))
        fm.update_resource(0, {"util": 50, "delay": 1})
        fm.update_resource(1, {"util": 20, "delay": 9})
        assert fm.select() == 1
        fm.update_resource(1, {"util": 90, "delay": 9})  # metric refresh
        assert fm.select() == 0

    def test_hook_bypasses_without_request(self):
        fm = FilterModule(8, METRICS, least_utilised_policy(),
                          PipelineParams(n=2, k=1, f=1, chain_length=1))
        fm.update_resource(0, {"util": 5, "delay": 5})
        packet = data_packet()
        fm.hook(packet)
        assert META_FILTER_OUTPUT not in packet.metadata
        assert fm.evaluations == 0

    def test_hook_writes_metadata_on_request(self):
        fm = FilterModule(8, METRICS, least_utilised_policy(),
                          PipelineParams(n=2, k=1, f=1, chain_length=1))
        fm.update_resource(3, {"util": 5, "delay": 5})
        packet = data_packet()
        packet.metadata[META_FILTER_REQUEST] = 1
        fm.hook(packet)
        assert packet.metadata[META_FILTER_SELECTED] == 3
        assert packet.metadata[META_FILTER_OUTPUT] == 1 << 3

    def test_non_singleton_selected_is_minus_one(self):
        policy = Policy(predicate(TableRef(), "util", "<", 100))
        fm = FilterModule(8, METRICS, policy,
                          PipelineParams(n=2, k=1, f=1, chain_length=1))
        fm.update_resource(0, {"util": 5, "delay": 5})
        fm.update_resource(1, {"util": 6, "delay": 6})
        packet = data_packet()
        packet.metadata[META_FILTER_REQUEST] = 1
        fm.hook(packet)
        assert packet.metadata[META_FILTER_SELECTED] == -1
        assert packet.metadata[META_FILTER_OUTPUT] == 0b11

    def test_remove_resource(self):
        fm = FilterModule(8, METRICS, least_utilised_policy(),
                          PipelineParams(n=2, k=1, f=1, chain_length=1))
        fm.update_resource(0, {"util": 5, "delay": 5})
        fm.remove_resource(0)
        assert fm.select() is None

    def test_latency_exposed(self):
        fm = FilterModule(8, METRICS, least_utilised_policy(),
                          PipelineParams(n=2, k=2, f=2, chain_length=2))
        assert fm.latency_cycles == 2 * (2 * 2 + 1)


class TestThanosSwitch:
    def test_probe_updates_resource_table(self):
        sw = make_switch()
        codec_wire = sw._codec.encode(2, {"util": 30, "delay": 4})
        sw.receive_bytes(codec_wire)
        assert sw.probes_processed == 1
        assert sw.filter_module.smbm.metrics_of(2) == {"util": 30, "delay": 4}

    def test_probe_refresh_overwrites(self):
        sw = make_switch()
        sw.receive_bytes(sw._codec.encode(2, {"util": 30, "delay": 4}))
        sw.receive_bytes(sw._codec.encode(2, {"util": 70, "delay": 9}))
        assert sw.filter_module.smbm.metrics_of(2)["util"] == 70

    def test_data_packet_filtering_end_to_end(self):
        """Probes fill the table; a data packet picks the least-utilised path."""
        sw = make_switch()
        for rid, util in [(0, 60), (1, 10), (2, 40)]:
            sw.receive_bytes(sw._codec.encode(rid, {"util": util, "delay": 0}))
        packet = sw.filter_for(data_packet())
        assert packet.metadata[META_FILTER_SELECTED] == 1

    def test_data_packet_without_request_bypasses(self):
        sw = make_switch()
        packet = sw.process(data_packet())
        assert META_FILTER_SELECTED not in packet.metadata

    def test_conditional_policy_through_switch(self):
        servers = TableRef()
        eligible = intersection(
            predicate(servers, "util", "<", 50),
            predicate(servers, "delay", "<", 5),
        )
        policy = Policy(Conditional(random_pick(eligible), random_pick(TableRef())))
        sw = ThanosSwitch(
            capacity=8, metric_names=METRICS, policy=policy,
            params=PipelineParams(n=4, k=3, f=2, chain_length=2),
        )
        sw.receive_bytes(sw._codec.encode(0, {"util": 90, "delay": 9}))
        sw.receive_bytes(sw._codec.encode(1, {"util": 10, "delay": 1}))
        packet = sw.filter_for(data_packet())
        assert packet.metadata[META_FILTER_SELECTED] == 1

    def test_local_metric_event_hooks(self):
        """Queue-length maintenance via enqueue/dequeue events (section 3)."""
        sw = make_switch()

        def on_enqueue(switch, args):
            port = args["port"]
            table = switch.filter_module.smbm
            current = table.metrics_of(port) if port in table else {"util": 0, "delay": 0}
            current["util"] += 1
            switch.filter_module.update_resource(port, current)

        def on_dequeue(switch, args):
            port = args["port"]
            current = switch.filter_module.smbm.metrics_of(port)
            current["util"] -= 1
            switch.filter_module.update_resource(port, current)

        sw.register_event("enqueue", on_enqueue)
        sw.register_event("dequeue", on_dequeue)
        sw.on_event("enqueue", port=3)
        sw.on_event("enqueue", port=3)
        sw.on_event("dequeue", port=3)
        assert sw.filter_module.smbm.metrics_of(3)["util"] == 1

    def test_duplicate_event_rejected(self):
        sw = make_switch()
        sw.register_event("e", lambda s, a: None)
        with pytest.raises(ConfigurationError):
            sw.register_event("e", lambda s, a: None)

    def test_unknown_event_rejected(self):
        with pytest.raises(ConfigurationError):
            make_switch().on_event("ghost")


class TestReplicatedSMBM:
    def test_writes_apply_to_all_replicas(self):
        rep = ReplicatedSMBM(4, 8, ["x"])
        rep.issue_update(0, 3, {"x": 7})
        rep.commit_cycle()
        for p in range(4):
            assert rep.replica(p).metrics_of(3) == {"x": 7}
        rep.check_synchronised()

    def test_different_resources_same_cycle_ok(self):
        """Parallel updates from multiple pipelines land together."""
        rep = ReplicatedSMBM(2, 8, ["x"])
        rep.issue_update(0, 1, {"x": 1})
        rep.issue_update(1, 2, {"x": 2})
        rep.commit_cycle()
        rep.check_synchronised()
        assert len(rep.replica(0)) == 2

    def test_same_resource_same_cycle_contends(self):
        """The hazard the paper's one-path-per-resource rule precludes."""
        rep = ReplicatedSMBM(2, 8, ["x"])
        rep.issue_update(0, 1, {"x": 1})
        rep.issue_update(1, 1, {"x": 2})
        with pytest.raises(WriteContention):
            rep.commit_cycle()

    def test_same_pipeline_rewrites_are_fine(self):
        rep = ReplicatedSMBM(2, 8, ["x"])
        rep.issue_update(0, 1, {"x": 1})
        rep.issue_update(0, 1, {"x": 2})
        rep.commit_cycle()
        assert rep.replica(1).metrics_of(1) == {"x": 2}

    def test_delete_replicated(self):
        rep = ReplicatedSMBM(3, 8, ["x"])
        rep.issue_update(0, 1, {"x": 1})
        rep.commit_cycle()
        rep.issue_delete(2, 1)
        rep.commit_cycle()
        for p in range(3):
            assert 1 not in rep.replica(p)
