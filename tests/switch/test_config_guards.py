"""FilterModule flag-conflict guards: one typed error, every conflict.

The module's constructor takes several mode flags whose pairwise
combinations are not all meaningful.  The contract under test:

* every *conflicting* pair raises a single :class:`ConfigError` (a
  :class:`ConfigurationError` subclass, so existing callers keep
  working) that names **all** violated pairs, not just the first;
* every *compatible* pair constructs a working module;
* the error's ``conflicts`` attribute is machine-readable, so callers
  can branch on which flags collided.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.operators import RelOp
from repro.core.pipeline import PipelineParams
from repro.core.policy import Policy, TableRef, predicate
from repro.errors import ConfigError, ConfigurationError
from repro.switch.filter_module import FilterModule

PARAMS = PipelineParams()
METRICS = ("q", "load")

#: Every mode flag the guard matrix covers, mapped to the constructor
#: kwargs that turn it on.  "tenant" is a mode, not a boolean: it is
#: enabled by any of the slicing parameters.
FLAG_KWARGS = {
    "codegen": {"codegen": True},
    "self_healing": {"self_healing": True},
    "naive": {"naive": True},
    "sanitize": {"sanitize": True},
    "memoize_off": {"memoize": False},
    "tenant": {
        "tenant": "alice",
        "reserved_cells": ((1, 1), (2, 1), (3, 1), (4, 1)),
        "input_lines": (0, 1),
    },
}

#: The pairs that must conflict; every other pair must construct.
CONFLICTS = {
    frozenset({"codegen", "self_healing"}),
    frozenset({"codegen", "naive"}),
    frozenset({"naive", "tenant"}),
}


def _build(**kwargs) -> FilterModule:
    return FilterModule(
        8, METRICS,
        Policy(predicate(TableRef(), "q", RelOp.LT, 5), name="p"),
        PARAMS,
        **kwargs,
    )


@pytest.mark.parametrize(
    "a,b",
    list(itertools.combinations(sorted(FLAG_KWARGS), 2)),
    ids=lambda v: v,
)
def test_pairwise_flag_matrix(a: str, b: str):
    """Every pairwise flag combination either conflicts loudly (typed
    ConfigError naming the pair) or builds a working module."""
    kwargs = {**FLAG_KWARGS[a], **FLAG_KWARGS[b]}
    if frozenset({a, b}) in CONFLICTS:
        with pytest.raises(ConfigError) as exc_info:
            _build(**kwargs)
        err = exc_info.value
        assert err.involves(a) and err.involves(b)
        # Typed subclass: legacy except-clauses still catch it.
        assert isinstance(err, ConfigurationError)
    else:
        module = _build(**kwargs)
        assert module.evaluate() is not None


@pytest.mark.parametrize("flag", sorted(FLAG_KWARGS), ids=lambda v: v)
def test_each_flag_alone_constructs(flag: str):
    module = _build(**FLAG_KWARGS[flag])
    assert module.evaluate() is not None


def test_all_conflicts_reported_at_once():
    """codegen + self_healing + naive violates two pairs; the single
    raised error lists both, machine-readably."""
    with pytest.raises(ConfigError) as exc_info:
        _build(codegen=True, self_healing=True, naive=True)
    err = exc_info.value
    assert set(map(frozenset, err.conflicts)) == {
        frozenset({"codegen", "self_healing"}),
        frozenset({"codegen", "naive"}),
    }
    assert "codegen" in str(err) and "self_healing" in str(err)


def test_tenant_mode_triggers_on_any_slicing_parameter():
    """naive+tenant conflicts however the tenant mode is switched on."""
    for kwargs in (
        {"tenant": "alice"},
        {"reserved_cells": ((1, 1),)},
        {"input_lines": (0, 1)},
    ):
        with pytest.raises(ConfigError) as exc_info:
            _build(naive=True, **kwargs)
        assert exc_info.value.involves("tenant")


def test_tenant_mode_composes_with_self_healing():
    """Per-tenant fault domains: a sliced module may self-heal inside its
    own strip."""
    # Two columns: fail-around needs a surviving path through the strip
    # (a one-column strip whose only stage-1 Cell dies is severed — the
    # compiler rightly refuses, which is its own guarantee).
    params = PipelineParams(n=8)
    module = FilterModule(
        8, METRICS,
        Policy(predicate(TableRef(), "q", RelOp.LT, 5), name="p"),
        params,
        self_healing=True,
        tenant="alice",
        reserved_cells=tuple(
            (stage, col)
            for stage in range(1, params.k + 1) for col in (2, 3)
        ),
        input_lines=(0, 1, 2, 3),
    )
    assert module.tenant == "alice"
    assert module.self_healing
    module.update_resource(0, {"q": 3, "load": 1})
    module.update_resource(1, {"q": 7, "load": 2})
    out = module.evaluate()
    # A fault in the tenant's own column heals by recompiling within the
    # slice: the reserved Cells stay excluded afterwards.  (A table write
    # invalidates the memo so the next evaluation really routes through
    # the pipeline and trips the dead Cell.)
    module.inject_cell_kill(1, 0)
    module.update_resource(2, {"q": 9, "load": 3})
    healed = module.evaluate()
    assert healed.value == out.value
    assert (1, 0) in module.routed_around
    assert module.reserved_cells <= module.compiled.dead_cells
