"""Two-tenant chaos acceptance: faults in one slice never touch the other.

The acceptance contract of the virtualization layer: with tenants A and
B sharing one pipeline, a seeded chaos schedule of Cell faults injected
into A's strip (healed by A's per-tenant fail-around) leaves B's entire
output trace **bit-identical** to a golden solo run of B's policy — and
leaves B's fault/degradation observability series untouched.
"""

from __future__ import annotations

from repro import obs
from repro.core.operators import RelOp
from repro.core.pipeline import PipelineParams
from repro.core.policy import Policy, TableRef, min_of, predicate
from repro.rmt.packet import META_TENANT, Packet
from repro.switch.filter_module import (
    META_FILTER_OUTPUT,
    META_FILTER_REQUEST,
    FilterModule,
)
from repro.switch.thanos_switch import ThanosSwitch
from repro.tenancy import TenantManager, TenantSpec

PARAMS = PipelineParams(n=8)
METRICS = ("q", "load")
QUOTA = 8


def _policy_a() -> Policy:
    return Policy(min_of(TableRef(), "q"), name="pa")


def _policy_b() -> Policy:
    return Policy(predicate(TableRef(), "load", RelOp.LT, 500), name="pb")


def _schedule(rng, rounds: int):
    """A seeded interleaving of table writes and filter packets for both
    tenants.  Returned as a list of ("write", tenant, rid, metrics) and
    ("packet", tenant) steps, deterministic in the rng."""
    steps = []
    for _ in range(rounds):
        tenant = rng.choice(("a", "b"))
        if rng.random() < 0.4:
            steps.append((
                "write", tenant, rng.randrange(QUOTA),
                {"q": rng.randrange(1000), "load": rng.randrange(1000)},
            ))
        else:
            steps.append(("packet", tenant))
    return steps


def _chaos_points(rng, steps):
    """Seeded chaos: pick step indices at which to fault tenant A's strip."""
    packet_steps = [i for i, s in enumerate(steps) if s[0] == "packet"]
    return set(rng.sample(packet_steps, min(3, len(packet_steps))))


def _golden_trace(steps, policy, tenant: str) -> list[int]:
    """Run one tenant's projection of the schedule on a dedicated solo
    module: the trace B would produce if it had the switch to itself."""
    solo = FilterModule(QUOTA, METRICS, policy, PARAMS)
    trace = []
    for step in steps:
        if step[1] != tenant:
            continue
        if step[0] == "write":
            _, _, rid, metrics = step
            solo.update_resource(rid, metrics)
        else:
            trace.append(solo.evaluate().value)
    return trace


def _fault_a(tenant_a, rng) -> None:
    """Kill one Cell tenant A's plan currently occupies (so the fault is
    guaranteed to be *detected* and healed on A's next evaluation) —
    skipping stage-1 Cells when only one stage-1 Cell survives, which
    would sever the strip."""
    module = tenant_a.module
    candidates = sorted(
        pos for pos in _occupied(module.compiled)
        if pos not in module.routed_around
    )
    stage1_alive = [
        c for c in sorted(tenant_a.columns)
        if (1, c) not in module.routed_around
        and (1, c) not in module.compiled.dead_cells
    ]
    if len(stage1_alive) <= 1:
        candidates = [pos for pos in candidates if pos[0] != 1]
    if candidates:
        stage, index = rng.choice(candidates)
        module.inject_cell_kill(stage, index)


def _occupied(compiled):
    from repro.core.operators import BinaryOp, UnaryOp

    cells = set()
    for s, stage in enumerate(compiled.config.stages, start=1):
        for c, cfg in enumerate(stage.cells):
            if (cfg.kufpu1.opcode is not UnaryOp.NO_OP
                    or cfg.kufpu2.opcode is not UnaryOp.NO_OP
                    or cfg.bfpu1.opcode is not BinaryOp.NO_OP
                    or cfg.bfpu2.opcode is not BinaryOp.NO_OP):
                cells.add((s, c))
    return cells


def test_two_tenant_chaos_isolation(rng):
    """Chaos-fault tenant A; tenant B's trace stays bit-identical to its
    solo golden run and B's fault series never move."""
    steps = _schedule(rng, rounds=120)
    chaos_at = _chaos_points(rng, steps)
    golden_b = _golden_trace(steps, _policy_b(), "b")
    golden_a_writes = [s for s in steps if s[0] == "write" and s[1] == "a"]
    assert golden_b, "seeded schedule produced no B packets"
    assert golden_a_writes, "seeded schedule produced no A writes"

    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        mgr = TenantManager(METRICS, PARAMS, smbm_capacity=4 * QUOTA)
        tenant_a = mgr.admit(TenantSpec(
            "a", _policy_a(), smbm_quota=QUOTA, columns=2,
            self_healing=True,
        ))
        tenant_b = mgr.admit(TenantSpec(
            "b", _policy_b(), smbm_quota=QUOTA, columns=1,
        ))
        switch = ThanosSwitch.multi_tenant(mgr)

        trace_b = []
        for i, step in enumerate(steps):
            if i in chaos_at:
                _fault_a(tenant_a, rng)
            if step[0] == "write":
                _, tenant, rid, metrics = step
                mgr.update_resource(tenant, rid, metrics)
            else:
                packet = Packet(metadata={
                    META_FILTER_REQUEST: 1, META_TENANT: step[1],
                })
                switch.process(packet)
                if step[1] == "b":
                    trace_b.append(packet.metadata[META_FILTER_OUTPUT])
        snap = obs.snapshot(registry)

    # Bit-identical: B never noticed A's faults or heals.
    assert trace_b == golden_b
    # A really did take (and heal) faults — the chaos was not a no-op.
    assert tenant_a.module.routed_around
    assert tenant_a.module.degraded
    counters = snap["counters"]
    a_faults = sum(
        v for k, v in counters.items()
        if k.startswith("faults_detected_total") and 'tenant="a"' in k
    )
    b_faults = sum(
        v for k, v in counters.items()
        if k.startswith("faults_detected_total") and 'tenant="b"' in k
    )
    assert a_faults == len(tenant_a.module.routed_around) > 0
    assert b_faults == 0
    gauges = snap["gauges"]
    b_degraded = [
        v for k, v in gauges.items()
        if k.startswith("degraded_mode") and 'tenant="b"' in k
    ]
    assert all(v == 0 for v in b_degraded)
    # B served exactly its golden number of evaluations, under its own
    # tenant-labelled series.
    b_evals = [
        v for k, v in counters.items()
        if k.startswith("filter_evaluations_total") and 'tenant="b"' in k
    ]
    assert sum(b_evals) == tenant_b.module.evaluations == len(golden_b)


def test_batched_two_tenant_isolation(rng):
    """The same isolation contract on the batched path: a mixed packet
    stream through process_batch demuxes into per-tenant sub-batches
    whose outputs match each tenant's solo trace."""
    steps = _schedule(rng, rounds=80)
    golden_a = _golden_trace(steps, _policy_a(), "a")
    golden_b = _golden_trace(steps, _policy_b(), "b")

    mgr = TenantManager(METRICS, PARAMS, smbm_capacity=4 * QUOTA)
    mgr.admit(TenantSpec("a", _policy_a(), smbm_quota=QUOTA, columns=2))
    mgr.admit(TenantSpec("b", _policy_b(), smbm_quota=QUOTA, columns=1))
    switch = ThanosSwitch.multi_tenant(mgr)

    # Writes act as batch boundaries; build maximal packet runs between
    # them, exactly like the probe-path batching contract.
    trace = {"a": [], "b": []}
    run: list[Packet] = []

    def flush():
        if run:
            switch.process_batch(run)
            for p in run:
                trace[p.metadata[META_TENANT]].append(
                    p.metadata[META_FILTER_OUTPUT]
                )
            run.clear()

    for step in steps:
        if step[0] == "write":
            flush()
            _, tenant, rid, metrics = step
            mgr.update_resource(tenant, rid, metrics)
        else:
            run.append(Packet(metadata={
                META_FILTER_REQUEST: 1, META_TENANT: step[1],
            }))
    flush()

    assert trace["a"] == golden_a
    assert trace["b"] == golden_b
