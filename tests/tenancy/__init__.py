"""Tests for the multi-tenant virtualization layer."""
