"""Quota properties: admission is exactly the resource arithmetic.

Two Hypothesis-backed universals over the admission control plane:

* every tenant-spec set that respects the column, SMBM-row, and
  Cell-quota budgets is admitted, with the free pools tracking the
  arithmetic and every plan confined to its strip;
* every spec that oversubscribes any budget is rejected with rule
  TH013 — and a slice that does not contain a plan's Cells always
  verifies with TH014 — with nothing provisioned either way.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.verifier import PlanVerifier, TenantSlice
from repro.core.compiler import PolicyCompiler
from repro.core.operators import BinaryOp, RelOp, UnaryOp
from repro.core.pipeline import PipelineParams
from repro.core.policy import (
    Policy,
    TableRef,
    intersection,
    max_of,
    min_of,
    predicate,
)
from repro.errors import CompilationError
from repro.tenancy import TenantManager, TenantSpec

PARAMS = PipelineParams(n=8)  # 4 Cell columns, k=4 stages
TOTAL_COLUMNS = PARAMS.cells_per_stage
CAPACITY = 64
METRICS = ("q", "load")


def _narrow_policy(index: int, name: str) -> Policy:
    """Policies that provably fit a single Cell column."""
    table = TableRef()
    shapes = [
        min_of(table, "q"),
        max_of(table, "load"),
        predicate(table, "q", RelOp.LT, 500),
    ]
    return Policy(shapes[index % len(shapes)], name=name)


def _wide_policy(name: str = "wide") -> Policy:
    """Three parallel predicates: needs two columns on these params."""
    table = TableRef()
    return Policy(
        intersection(intersection(
            predicate(table, "q", RelOp.LT, 5),
            predicate(table, "load", RelOp.GT, 2),
        ), predicate(table, "q", RelOp.GT, 1)),
        name=name,
    )


@st.composite
def admissible_specs(draw) -> list[TenantSpec]:
    n = draw(st.integers(1, 3))
    specs = []
    free = TOTAL_COLUMNS
    for i in range(n):
        # Reserve one column for each tenant still to come, so the set as
        # a whole always respects the pool.
        columns = draw(st.integers(1, min(2, free - (n - i - 1))))
        free -= columns
        quota = draw(st.integers(1, CAPACITY // n))
        specs.append(TenantSpec(
            f"t{i}", _narrow_policy(draw(st.integers(0, 2)), f"p{i}"),
            smbm_quota=quota, columns=columns,
        ))
    return specs


def _occupied_columns(compiled) -> set[int]:
    cols = set()
    for stage in compiled.config.stages:
        for c, cfg in enumerate(stage.cells):
            if (cfg.kufpu1.opcode is not UnaryOp.NO_OP
                    or cfg.kufpu2.opcode is not UnaryOp.NO_OP
                    or cfg.bfpu1.opcode is not BinaryOp.NO_OP
                    or cfg.bfpu2.opcode is not BinaryOp.NO_OP
                    or (2 * c) in stage.wiring
                    or (2 * c + 1) in stage.wiring):
                cols.add(c)
    return cols


@settings(max_examples=40)
@given(admissible_specs())
def test_quota_respecting_sets_always_admit(specs):
    mgr = TenantManager(METRICS, PARAMS, smbm_capacity=CAPACITY)
    for spec in specs:
        tenant = mgr.admit(spec)
        assert len(tenant.columns) == spec.columns
        assert _occupied_columns(tenant.module.compiled) <= tenant.columns
    assert len(mgr) == len(specs)
    assert len(mgr.free_columns) == (
        TOTAL_COLUMNS - sum(s.columns for s in specs)
    )
    assert mgr.free_smbm_rows == CAPACITY - sum(s.smbm_quota for s in specs)
    # Allocations are pairwise disjoint.
    allocated = [mgr.get(s.name).columns for s in specs]
    assert sum(map(len, allocated)) == len(frozenset().union(*allocated))


@settings(max_examples=40)
@given(
    admissible_specs(),
    st.sampled_from(("columns", "rows", "cell_quota", "duplicate")),
    st.data(),
)
def test_oversubscription_always_rejected_with_th013(specs, kind, data):
    mgr = TenantManager(METRICS, PARAMS, smbm_capacity=CAPACITY)
    for spec in specs:
        mgr.admit(spec)
    free_cols = len(mgr.free_columns)
    free_rows = mgr.free_smbm_rows

    policy = _narrow_policy(0, "v")
    if kind == "columns":
        bad = TenantSpec("viol", policy, smbm_quota=1,
                         columns=free_cols + 1)
    elif kind == "rows":
        bad = TenantSpec("viol", policy, smbm_quota=free_rows + 1,
                         columns=max(1, free_cols))
    elif kind == "cell_quota":
        bad = TenantSpec("viol", policy, smbm_quota=1, columns=1,
                         cell_quota=PARAMS.k + 1)
    else:  # duplicate of an admitted name
        bad = TenantSpec(data.draw(st.sampled_from(specs)).name, policy,
                         smbm_quota=1, columns=1)

    with pytest.raises(CompilationError) as exc_info:
        mgr.admit(bad)
    assert exc_info.value.rule == "TH013"
    # The failed admission provisioned nothing.
    assert len(mgr) == len(specs)
    assert len(mgr.free_columns) == free_cols
    assert mgr.free_smbm_rows == free_rows


@settings(max_examples=30)
@given(
    st.integers(0, 2),
    st.sets(st.sampled_from(range(TOTAL_COLUMNS)), min_size=2, max_size=2),
)
def test_confined_plan_verifies_clean_and_foreign_slice_yields_th014(
    policy_index, columns,
):
    """Compiling into a strip always verifies TH013/TH014-clean against
    that strip — and always trips TH014 against the complementary one."""
    own = TenantSlice(columns=frozenset(columns), smbm_quota=8)
    compiled = PolicyCompiler(PARAMS).compile(
        _narrow_policy(policy_index, "p"),
        dead_cells=own.reserved_cells(PARAMS),
        input_lines=own.lines,
    )
    verifier = PlanVerifier(PARAMS)
    assert verifier.verify_slice(compiled, own).ok

    foreign = TenantSlice(
        columns=frozenset(range(TOTAL_COLUMNS)) - frozenset(columns),
        smbm_quota=8,
    )
    report = verifier.verify_slice(compiled, foreign)
    assert not report.ok
    assert "TH014" in {f.rule for f in report.findings}
