"""TenantManager lifecycle: admission, allocation, eviction, hot-swap.

The manager is the admission-control half of the virtualization story:
everything here is about the *static* decisions — who gets which
columns, which specs are rejected with which rule id, and what the
free pools look like afterwards.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.operators import RelOp
from repro.core.pipeline import PipelineParams
from repro.core.policy import Policy, TableRef, max_of, min_of, predicate
from repro.errors import CompilationError, ConfigurationError
from repro.tenancy import TenantManager, TenantSpec

PARAMS = PipelineParams(n=8)  # 4 Cell columns
METRICS = ("q", "load")


def _policy(name: str = "p") -> Policy:
    return Policy(min_of(TableRef(), "q"), name=name)


def _manager(**kwargs) -> TenantManager:
    kwargs.setdefault("smbm_capacity", 32)
    return TenantManager(METRICS, PARAMS, **kwargs)


def test_admit_allocates_disjoint_columns():
    mgr = _manager()
    a = mgr.admit(TenantSpec("a", _policy("pa"), smbm_quota=8, columns=2))
    b = mgr.admit(TenantSpec("b", _policy("pb"), smbm_quota=8, columns=1))
    assert a.columns == frozenset({0, 1})
    assert b.columns == frozenset({2})
    assert mgr.free_columns == frozenset({3})
    assert mgr.free_smbm_rows == 16
    assert len(mgr) == 2 and "a" in mgr and "c" not in mgr


def test_admit_rejects_duplicate_name():
    mgr = _manager()
    mgr.admit(TenantSpec("a", _policy(), smbm_quota=8))
    with pytest.raises(CompilationError) as exc_info:
        mgr.admit(TenantSpec("a", _policy(), smbm_quota=8))
    assert exc_info.value.rule == "TH013"
    assert "already admitted" in str(exc_info.value)


def test_admit_rejects_column_oversubscription():
    mgr = _manager()
    mgr.admit(TenantSpec("a", _policy(), smbm_quota=8, columns=3))
    with pytest.raises(CompilationError) as exc_info:
        mgr.admit(TenantSpec("b", _policy(), smbm_quota=8, columns=2))
    assert exc_info.value.rule == "TH013"
    # Nothing was provisioned by the failed admission.
    assert len(mgr) == 1
    assert mgr.free_columns == frozenset({3})


def test_admit_rejects_smbm_oversubscription():
    mgr = _manager(smbm_capacity=16)
    mgr.admit(TenantSpec("a", _policy(), smbm_quota=12))
    with pytest.raises(CompilationError) as exc_info:
        mgr.admit(TenantSpec("b", _policy(), smbm_quota=8))
    assert exc_info.value.rule == "TH013"
    assert mgr.free_smbm_rows == 4


def test_admit_rejects_cell_quota_above_strip():
    mgr = _manager()
    with pytest.raises(CompilationError) as exc_info:
        mgr.admit(TenantSpec(
            "a", _policy(), smbm_quota=8, columns=1,
            cell_quota=PARAMS.k + 1,
        ))
    assert exc_info.value.rule == "TH013"


def test_check_admission_is_a_dry_run():
    mgr = _manager()
    report = mgr.check_admission(
        TenantSpec("a", _policy(), smbm_quota=999)
    )
    assert not report.ok
    assert {f.rule for f in report.findings} == {"TH013"}
    assert len(mgr) == 0 and mgr.free_smbm_rows == 32


def test_evict_returns_resources():
    mgr = _manager()
    mgr.admit(TenantSpec("a", _policy("pa"), smbm_quota=8, columns=2))
    mgr.evict("a")
    assert len(mgr) == 0
    assert mgr.free_columns == frozenset({0, 1, 2, 3})
    assert mgr.free_smbm_rows == 32
    # The columns are reusable immediately.
    b = mgr.admit(TenantSpec("b", _policy("pb"), smbm_quota=32, columns=4))
    assert b.columns == frozenset({0, 1, 2, 3})
    with pytest.raises(ConfigurationError):
        mgr.evict("a")


def test_admitted_module_is_slice_confined():
    """The tenant's module carries the slice: foreign Cells dead, inputs
    restricted, the SMBM sized to the row quota."""
    mgr = _manager()
    tenant = mgr.admit(
        TenantSpec("a", _policy(), smbm_quota=8, columns=1)
    )
    module = tenant.module
    assert module.tenant == "a"
    assert module.smbm.capacity == 8
    assert module.input_lines == frozenset({0, 1})
    assert tenant.slice.reserved_cells(PARAMS) <= module.compiled.dead_cells
    occupied_columns = {
        c for _stage, c in _occupied(module.compiled)
    }
    assert occupied_columns <= tenant.columns


def _occupied(compiled):
    from repro.core.operators import BinaryOp, UnaryOp

    cells = set()
    for s, stage in enumerate(compiled.config.stages, start=1):
        for c, cfg in enumerate(stage.cells):
            if (cfg.kufpu1.opcode is not UnaryOp.NO_OP
                    or cfg.kufpu2.opcode is not UnaryOp.NO_OP
                    or cfg.bfpu1.opcode is not BinaryOp.NO_OP
                    or cfg.bfpu2.opcode is not BinaryOp.NO_OP):
                cells.add((s, c))
    return cells


def test_admit_rejects_policy_too_big_for_slice():
    """A plan that cannot fit the requested strip fails at admission,
    loudly, with nothing provisioned."""
    from repro.core.policy import intersection
    table = TableRef()
    wide = Policy(
        intersection(intersection(
            predicate(table, "q", RelOp.LT, 5),
            predicate(table, "load", RelOp.GT, 2),
        ), predicate(table, "q", RelOp.GT, 1)),
        name="wide",
    )
    mgr = _manager()
    with pytest.raises(CompilationError):
        mgr.admit(TenantSpec("a", wide, smbm_quota=8, columns=1))
    assert len(mgr) == 0
    assert mgr.free_columns == frozenset({0, 1, 2, 3})


def test_hot_swap_replaces_policy_and_bumps_epoch():
    mgr = _manager()
    tenant = mgr.admit(TenantSpec("a", _policy("old"), smbm_quota=8))
    mgr.update_resource("a", 0, {"q": 3, "load": 9})
    mgr.update_resource("a", 1, {"q": 5, "load": 1})
    assert tenant.plan_epoch == 0
    old_out = tenant.module.evaluate().value
    epoch = mgr.hot_swap(
        "a", Policy(predicate(TableRef(), "load", RelOp.LT, 5), name="new"),
    )
    assert epoch == 1 and tenant.plan_epoch == 1
    new_out = tenant.module.evaluate().value
    assert old_out == 0b01 and new_out == 0b10


def test_hot_swap_gate_rejects_oversized_plan():
    """A replacement that cannot fit the slice aborts the swap; the live
    plan keeps serving and the epoch does not move."""
    mgr = _manager()
    tenant = mgr.admit(TenantSpec("a", _policy("old"), smbm_quota=8))
    mgr.update_resource("a", 0, {"q": 3, "load": 9})
    before = tenant.module.evaluate().value
    from repro.core.policy import intersection
    table = TableRef()
    too_big = Policy(
        intersection(intersection(
            predicate(table, "q", RelOp.LT, 5),
            predicate(table, "load", RelOp.GT, 2),
        ), predicate(table, "q", RelOp.GT, 1)),
        name="wide",
    )
    with pytest.raises(CompilationError):
        mgr.hot_swap("a", too_big)
    assert tenant.plan_epoch == 0
    assert tenant.module.evaluate().value == before


def test_admission_metrics():
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        mgr = _manager()
        mgr.admit(TenantSpec("a", _policy(), smbm_quota=8))
        with pytest.raises(CompilationError):
            mgr.admit(TenantSpec("b", _policy(), smbm_quota=99))
        snap = obs.snapshot(registry)
    counters = snap["counters"]
    admitted = [v for k, v in counters.items()
                if k.startswith("tenant_admissions_total")
                and "admitted" in k]
    rejected = [v for k, v in counters.items()
                if k.startswith("tenant_admissions_total")
                and "rejected" in k]
    assert admitted == [1] and rejected == [1]
    gauges = snap["gauges"]
    assert [v for k, v in gauges.items()
            if k.startswith("tenants_admitted")] == [1]
