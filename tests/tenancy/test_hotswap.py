"""Hitless hot-swap properties: no lost packets, no mixed plan.

A hot-swap concurrent with a packet stream must be invisible except for
the policy change itself:

* **zero loss** — every requesting packet in the stream gets a
  ``META_FILTER_OUTPUT``, whether it hit the old plan or the new one;
* **no mixed plan** — the ``META_FILTER_EPOCH`` watermark stamped on
  each packet is monotone across the stream, and every packet's output
  matches the oracle of *exactly* the plan its epoch names: old-epoch
  packets match the old policy's solo trace, new-epoch packets the new
  policy's.  A batch additionally never straddles epochs.

Both the scalar (``process``) and batched (``process_batch``) paths are
covered.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.operators import RelOp
from repro.core.pipeline import PipelineParams
from repro.core.policy import Policy, TableRef, max_of, min_of, predicate
from repro.rmt.packet import META_TENANT, Packet
from repro.switch.filter_module import (
    META_FILTER_EPOCH,
    META_FILTER_OUTPUT,
    META_FILTER_REQUEST,
    FilterModule,
)
from repro.switch.thanos_switch import ThanosSwitch
from repro.tenancy import TenantManager, TenantSpec

PARAMS = PipelineParams(n=8)
METRICS = ("q", "load")
QUOTA = 8


def _policies() -> list[Policy]:
    table = TableRef()
    return [
        Policy(min_of(table, "q"), name="min-q"),
        Policy(max_of(table, "load"), name="max-load"),
        Policy(predicate(table, "q", RelOp.LT, 500), name="q-small"),
    ]


@st.composite
def scenarios(draw):
    rows = draw(st.lists(
        st.tuples(st.integers(0, 999), st.integers(0, 999)),
        min_size=1, max_size=QUOTA,
    ))
    n_packets = draw(st.integers(2, 20))
    swap_at = draw(st.integers(0, n_packets))
    old = draw(st.integers(0, 2))
    new = draw(st.integers(0, 2).filter(lambda i: i != old))
    return rows, n_packets, swap_at, old, new


def _expected(rows, policy_index: int) -> int:
    """The solo-module oracle for one plan over a fixed table."""
    solo = FilterModule(
        QUOTA, METRICS, _policies()[policy_index], PARAMS, lfsr_seed=1,
    )
    for rid, (q, load) in enumerate(rows):
        solo.update_resource(rid, {"q": q, "load": load})
    return solo.evaluate().value


def _env(rows, policy_index: int):
    mgr = TenantManager(METRICS, PARAMS, smbm_capacity=2 * QUOTA)
    mgr.admit(TenantSpec(
        "a", _policies()[policy_index], smbm_quota=QUOTA, columns=2,
    ))
    for rid, (q, load) in enumerate(rows):
        mgr.update_resource("a", rid, {"q": q, "load": load})
    return mgr, ThanosSwitch.multi_tenant(mgr)


def _packet() -> Packet:
    return Packet(metadata={META_FILTER_REQUEST: 1, META_TENANT: "a"})


def _check_stream(packets, swap_epoch: int, want_old: int, want_new: int):
    """Zero loss + monotone watermark + per-epoch oracle match."""
    epochs = [p.metadata[META_FILTER_EPOCH] for p in packets]  # KeyError = loss
    assert epochs == sorted(epochs), "epoch watermark went backwards"
    assert set(epochs) <= {0, swap_epoch}
    for packet in packets:
        out = packet.metadata[META_FILTER_OUTPUT]  # KeyError = lost packet
        want = want_old if packet.metadata[META_FILTER_EPOCH] == 0 else want_new
        assert out == want, "output from a plan other than the epoch's"


@settings(max_examples=40)
@given(scenarios())
def test_hot_swap_scalar_stream_is_hitless(scenario):
    rows, n_packets, swap_at, old, new = scenario
    want_old, want_new = _expected(rows, old), _expected(rows, new)
    mgr, switch = _env(rows, old)

    packets = []
    swap_epoch = 0
    for i in range(n_packets):
        if i == swap_at:
            swap_epoch = mgr.hot_swap("a", _policies()[new])
        packet = _packet()
        switch.process(packet)
        packets.append(packet)
    if swap_at == n_packets:
        swap_epoch = mgr.hot_swap("a", _policies()[new])

    assert swap_epoch == 1
    _check_stream(packets, swap_epoch, want_old, want_new)
    # The split lands exactly where the swap did.
    old_count = sum(1 for p in packets
                    if p.metadata[META_FILTER_EPOCH] == 0)
    assert old_count == min(swap_at, n_packets)


@settings(max_examples=40)
@given(scenarios(), st.integers(1, 6))
def test_hot_swap_batched_stream_is_hitless(scenario, batch_size):
    """Same contract on process_batch; a single batch never mixes plans."""
    rows, n_packets, swap_at, old, new = scenario
    want_old, want_new = _expected(rows, old), _expected(rows, new)
    mgr, switch = _env(rows, old)

    batches = []
    stream = [_packet() for _ in range(n_packets)]
    for start in range(0, n_packets, batch_size):
        batches.append(stream[start:start + batch_size])

    swap_epoch = 0
    sent = 0
    swapped = False
    for batch in batches:
        # The swap fires at the first batch boundary at/after ``swap_at``
        # — batches are atomic units, so that is the soonest a concurrent
        # swap can take effect on this path.
        if not swapped and sent >= swap_at:
            swap_epoch = mgr.hot_swap("a", _policies()[new])
            swapped = True
        switch.process_batch(batch)
        sent += len(batch)
        batch_epochs = {p.metadata[META_FILTER_EPOCH] for p in batch}
        assert len(batch_epochs) == 1, "one batch served by two plans"
    if not swapped:
        swap_epoch = mgr.hot_swap("a", _policies()[new])

    assert swap_epoch == 1
    _check_stream(stream, swap_epoch, want_old, want_new)
