"""Tests for the firewall, diagnosis, and Table 5 policy builders."""

import pytest

from repro.core.pipeline import PipelineParams
from repro.core.compiler import PolicyCompiler
from repro.core.smbm import SMBM
from repro.errors import ConfigurationError
from repro.policies.diagnosis import PortRateMonitor
from repro.policies.firewall import RateFirewall
from repro.policies.table5 import TABLE5_POLICIES, build_table5_policy


class TestRateFirewall:
    def test_low_rate_traffic_passes(self):
        fw = RateFirewall(8, rate_threshold_pps=10_000, tau_s=1e-3)
        t = 0.0
        for i in range(20):
            assert fw.on_packet(src=1, dst=2, now=t)
            t += 1e-3  # 1000 pps, well under threshold
        assert not fw.blacklisted_sources

    def test_flood_blacklists_all_senders_to_destination(self):
        """Figure 6: rate to D over T -> every source sending to D filtered."""
        fw = RateFirewall(8, rate_threshold_pps=5_000, tau_s=1e-3)
        t = 0.0
        # Two sources flood destination 3 at a combined 200k pps.
        verdicts = []
        for i in range(200):
            src = 1 if i % 2 else 2
            verdicts.append(fw.on_packet(src=src, dst=3, now=t))
            t += 5e-6
        assert {1, 2} <= fw.blacklisted_sources
        assert verdicts[-1] is False
        assert fw.packets_dropped > 0

    def test_innocent_sources_unaffected(self):
        fw = RateFirewall(8, rate_threshold_pps=5_000, tau_s=1e-3)
        t = 0.0
        for i in range(200):
            fw.on_packet(src=1, dst=3, now=t)
            t += 5e-6
        # Source 9 talks to a quiet destination: always forwarded.
        assert fw.on_packet(src=9, dst=4, now=t)
        assert 9 not in fw.blacklisted_sources

    def test_rate_decays(self):
        fw = RateFirewall(4, rate_threshold_pps=1_000, tau_s=1e-3)
        for i in range(50):
            fw.on_packet(src=1, dst=0, now=i * 1e-5)
        hot = fw.rate_of(0, 50e-5)
        assert fw.rate_of(0, 50e-5 + 0.1) < hot / 100

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigurationError):
            RateFirewall(0, 100)
        with pytest.raises(ConfigurationError):
            RateFirewall(4, 0)

    def test_out_of_range_destination_rejected(self):
        fw = RateFirewall(4, 100)
        with pytest.raises(ConfigurationError):
            fw.on_packet(src=0, dst=7, now=0.0)


class TestPortRateMonitor:
    def test_hot_ports_query(self):
        """Figure 5: filter all switch ports with packet rate > t."""
        mon = PortRateMonitor(8, rate_threshold_pps=50_000, tau_s=1e-3)
        t = 0.0
        for i in range(300):
            mon.on_packet(port=2, now=t)      # ~200k pps
            if i % 4 == 0:
                mon.on_packet(port=5, now=t)  # ~50k pps
            t += 5e-6
        assert mon.hot_ports() == {2}

    def test_no_hot_ports_initially(self):
        mon = PortRateMonitor(4, rate_threshold_pps=100)
        assert mon.hot_ports() == set()

    def test_multiple_hot_ports(self):
        mon = PortRateMonitor(4, rate_threshold_pps=10_000, tau_s=1e-3)
        t = 0.0
        for _ in range(200):
            mon.on_packet(0, t)
            mon.on_packet(3, t)
            t += 5e-6
        assert mon.hot_ports() == {0, 3}

    def test_rates_decay(self):
        mon = PortRateMonitor(2, rate_threshold_pps=100, tau_s=1e-3)
        for i in range(100):
            mon.on_packet(0, i * 1e-5)
        assert mon.rate_of(0, 1e-3) > mon.rate_of(0, 0.5)

    def test_port_bounds(self):
        mon = PortRateMonitor(2, 100)
        with pytest.raises(ConfigurationError):
            mon.on_packet(2, 0.0)


class TestTable5:
    """Every Table 5 policy compiles onto the paper's default pipeline
    (n=4, k=4, f=2, K=4) — the claim the defaults were chosen to support."""

    DEFAULTS = PipelineParams(n=4, k=4, f=2, chain_length=4)

    @pytest.mark.parametrize("key", TABLE5_POLICIES)
    def test_compiles_on_default_pipeline(self, key):
        policy, taps = build_table5_policy(key)
        compiled = PolicyCompiler(self.DEFAULTS).compile(policy, taps=taps)
        assert compiled.latency_cycles == self.DEFAULTS.latency_cycles

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError):
            build_table5_policy("nope")

    def test_semantics_smoke(self):
        """conga-min-util on a path table picks the least utilised path."""
        policy, _ = build_table5_policy("conga-min-util")
        compiled = PolicyCompiler(self.DEFAULTS).compile(policy)
        smbm = SMBM(8, ["util", "queue", "loss"])
        for rid, util in [(0, 500), (1, 100), (2, 300)]:
            smbm.add(rid, {"util": util, "queue": 0, "loss": 0})
        assert compiled.select(smbm) == 1
