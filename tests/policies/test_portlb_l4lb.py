"""Tests for port load balancing (DRILL) and L4 load balancing."""

import random

import pytest

from repro.core.bitvector import BitVector
from repro.core.pipeline import PipelineParams
from repro.core.smbm import SMBM
from repro.errors import CapacityError, ConfigurationError
from repro.netsim.packet import NetPacket
from repro.netsim.sim import Simulator
from repro.netsim.switch import NetSwitch
from repro.netsim.link import Link
from repro.policies.l4lb import ConnectionTable, L4LoadBalancer, l4lb_policy_ast
from repro.policies.portlb import (
    QUEUE_UNIT_BYTES,
    DrillPolicy,
    LeastQueuedPortPolicy,
    RandomPortPolicy,
    drill_policy_ast,
)


class _Sink:
    def __init__(self, sim):
        self.sim = sim
        self.name = "sink"

    def receive(self, packet, in_port):
        pass


def make_switch(n_ports=8, queue_fill=None):
    """A standalone switch whose port queues we can preload."""
    sim = Simulator()
    switch = NetSwitch(sim, "sw", flowlet_gap_s=None)
    sink = _Sink(sim)
    for p in range(n_ports):
        link = Link(sim, f"p{p}", sink, 0, bandwidth_bps=1e9,
                    queue_capacity_bytes=1_000_000)
        switch.add_port(link)
        for _ in range(queue_fill[p] if queue_fill else 0):
            link.send(NetPacket(1, 0, 1, 0, 1460))
    switch.set_up_ports(list(range(n_ports)))
    return sim, switch


def pkt():
    return NetPacket(5, 0, 99, 0, 1460)


class TestLeastQueuedPortPolicy:
    def test_picks_emptiest_port(self):
        sim, switch = make_switch(4, queue_fill=[5, 0, 9, 3])
        # Port 1 has nothing queued... but transmission started on all; the
        # emptiest by queued bytes should win.
        policy = LeastQueuedPortPolicy()
        chosen = policy.choose(switch, pkt(), switch.up_ports)
        depths = [switch.queue_bytes(p) for p in range(4)]
        assert depths[chosen] == min(depths)

    def test_tracks_changing_queues(self):
        sim, switch = make_switch(2, queue_fill=[6, 0])
        policy = LeastQueuedPortPolicy()
        assert policy.choose(switch, pkt(), switch.up_ports) == 1
        for _ in range(12):
            switch.ports[1].send(NetPacket(1, 0, 1, 0, 1460))
        assert policy.choose(switch, pkt(), switch.up_ports) == 0


class TestDrillAst:
    def test_ast_shape(self):
        policy, taps = drill_policy_ast(d=2, m=1)
        assert "examined" in taps
        assert policy.name == "drill-d2-m1"

    def test_m_zero_has_no_feedback(self):
        policy, taps = drill_policy_ast(d=3, m=0)
        assert taps == {}

    def test_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            drill_policy_ast(d=0, m=1)


class TestDrillPolicy:
    @pytest.mark.parametrize("mode", ["thanos", "fast"])
    def test_choice_is_min_queue_of_examined(self, mode):
        """The DRILL invariant: the chosen port's queue is the minimum among
        some (d+m)-subset containing it — with d = N it is the global min."""
        n = 4
        sim, switch = make_switch(n, queue_fill=[7, 2, 9, 4])
        policy = DrillPolicy(d=n, m=0, mode=mode, rng=random.Random(1))
        chosen = policy.choose(switch, pkt(), switch.up_ports)
        depths = [switch.queue_bytes(p) for p in range(n)]
        assert depths[chosen] == min(depths)

    @pytest.mark.parametrize("mode", ["thanos", "fast"])
    def test_memory_feeds_back(self, mode):
        """With d=1, m=1, the remembered good port keeps winning against a
        random sample of one."""
        n = 4
        sim, switch = make_switch(n, queue_fill=[9, 9, 0, 9])
        policy = DrillPolicy(d=1, m=1, mode=mode, rng=random.Random(3))
        picks = [policy.choose(switch, pkt(), switch.up_ports) for _ in range(30)]
        # Once port 2 enters the sample set it is remembered and re-picked.
        assert picks.count(2) > len(picks) / 2

    @pytest.mark.parametrize("mode", ["thanos", "fast"])
    def test_prev_samples_stored_per_switch(self, mode):
        sim, switch = make_switch(4, queue_fill=[1, 2, 3, 4])
        policy = DrillPolicy(d=2, m=1, mode=mode, rng=random.Random(5))
        policy.choose(switch, pkt(), switch.up_ports)
        prev = switch.attachments["drill_prev"]
        assert isinstance(prev, BitVector)
        assert 1 <= prev.popcount() <= 3  # d samples (+ m remembered)

    def test_modes_agree_under_full_sampling(self):
        """d=N makes both modes deterministic: always the global minimum."""
        n = 6
        fills = [5, 1, 8, 3, 9, 2]
        _s1, sw1 = make_switch(n, queue_fill=fills)
        _s2, sw2 = make_switch(n, queue_fill=fills)
        fast = DrillPolicy(d=n, m=0, mode="fast", rng=random.Random(1))
        thanos = DrillPolicy(d=n, m=0, mode="thanos", rng=random.Random(1))
        assert fast.choose(sw1, pkt(), sw1.up_ports) == thanos.choose(
            sw2, pkt(), sw2.up_ports
        )

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            DrillPolicy(mode="warp")

    def test_random_port_policy(self):
        sim, switch = make_switch(4)
        policy = RandomPortPolicy(random.Random(2))
        seen = {policy.choose(switch, pkt(), switch.up_ports) for _ in range(100)}
        assert seen == {0, 1, 2, 3}


class TestConnectionTable:
    def test_insert_lookup(self):
        table = ConnectionTable()
        table.insert(42, 3)
        assert table.lookup(42) == 3
        assert table.hits == 1

    def test_miss_returns_none(self):
        assert ConnectionTable().lookup(1) is None

    def test_duplicate_rejected(self):
        table = ConnectionTable()
        table.insert(1, 0)
        with pytest.raises(ConfigurationError):
            table.insert(1, 1)

    def test_capacity(self):
        table = ConnectionTable(capacity=1)
        table.insert(1, 0)
        with pytest.raises(CapacityError):
            table.insert(2, 0)

    def test_remove(self):
        table = ConnectionTable()
        table.insert(1, 0)
        table.remove(1)
        assert table.lookup(1) is None


class TestL4LoadBalancer:
    def probe_all(self, lb, rows):
        for server, metrics in rows.items():
            lb.on_probe(server, metrics)

    def test_policy2_prefers_eligible_servers(self):
        lb = L4LoadBalancer(4, which_policy=2)
        self.probe_all(lb, {
            0: {"cpu": 90, "mem": 100, "bw": 100},    # ineligible
            1: {"cpu": 30, "mem": 3000, "bw": 5000},  # eligible
            2: {"cpu": 95, "mem": 50, "bw": 50},      # ineligible
            3: {"cpu": 40, "mem": 2000, "bw": 4000},  # eligible
        })
        for fid in range(20):
            assert lb.assign(fid) in {1, 3}

    def test_policy2_falls_back_when_none_eligible(self):
        lb = L4LoadBalancer(3, which_policy=2)
        self.probe_all(lb, {
            s: {"cpu": 99, "mem": 10, "bw": 10} for s in range(3)
        })
        servers = {lb.assign(fid) for fid in range(30)}
        assert servers <= {0, 1, 2}
        assert len(servers) > 1  # still spreading, not stuck

    def test_policy1_spreads_uniformly(self):
        lb = L4LoadBalancer(4, which_policy=1)
        self.probe_all(lb, {s: {"cpu": 50, "mem": 50, "bw": 50} for s in range(4)})
        counts = [0] * 4
        for fid in range(400):
            counts[lb.assign(fid)] += 1
        assert min(counts) > 40

    def test_connection_affinity(self):
        lb = L4LoadBalancer(4, which_policy=2)
        self.probe_all(lb, {s: {"cpu": 10, "mem": 9000, "bw": 9000} for s in range(4)})
        first = lb.assign(7)
        # Subsequent packets of the same flow must land on the same server
        # regardless of how the resource table changes.
        self.probe_all(lb, {s: {"cpu": 99, "mem": 1, "bw": 1} for s in range(4)})
        assert lb.assign(7) == first

    def test_release_allows_remap(self):
        lb = L4LoadBalancer(2, which_policy=1)
        self.probe_all(lb, {s: {"cpu": 50, "mem": 50, "bw": 50} for s in range(2)})
        lb.assign(1)
        lb.release(1)
        lb.assign(1)  # no duplicate-key error

    def test_probe_bounds_checked(self):
        lb = L4LoadBalancer(2, which_policy=1)
        with pytest.raises(ConfigurationError):
            lb.on_probe(5, {"cpu": 1, "mem": 1, "bw": 1})

    def test_policy_ast_validation(self):
        with pytest.raises(ConfigurationError):
            l4lb_policy_ast(3)
