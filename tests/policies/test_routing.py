"""Tests for the performance-aware routing policies (section 7.2.3)."""

import random

import pytest

from repro.core.pipeline import PipelineParams
from repro.core.policy import PolicyInterpreter
from repro.core.smbm import SMBM
from repro.errors import ConfigurationError
from repro.netsim.probes import PathMetricsDirectory, ProbeService
from repro.netsim.sim import Simulator
from repro.netsim.topology import build_leaf_spine
from repro.netsim.transport import TcpFlow
from repro.policies.routing import (
    RandomUplinkPolicy,
    ThanosRoutingPolicy,
    routing_policy_ast,
)

PARAMS = PipelineParams(n=8, k=4, f=2, chain_length=8)


def make_smbm(rows):
    smbm = SMBM(8, ["util", "queue", "loss"])
    for rid, (u, q, l) in rows.items():
        smbm.add(rid, {"util": u, "queue": q, "loss": l})
    return smbm


class TestPolicyASTs:
    def test_policy2_selects_least_utilised(self):
        smbm = make_smbm({0: (500, 0, 0), 1: (100, 9, 9), 2: (300, 0, 0)})
        interp = PolicyInterpreter(routing_policy_ast("policy2"))
        assert interp.select(smbm) == 1

    def test_policy3_triple_intersection(self):
        # Path 1 is top-2 on every metric; path 0 only on util; path 3 on none.
        smbm = make_smbm({
            0: (100, 900, 900),
            1: (200, 100, 100),
            2: (300, 200, 200),
            3: (900, 800, 800),
        })
        interp = PolicyInterpreter(routing_policy_ast("policy3", top_x=2))
        # top-2 queue: {1,2}; top-2 loss: {1,2}; top-2 util: {0,1};
        # intersection: {1}; least util of that: 1.
        assert interp.select(smbm) == 1

    def test_policy3_falls_back_to_policy2(self):
        # Make the intersection empty with top_x=1 and disjoint winners.
        smbm = make_smbm({
            0: (100, 900, 500),
            1: (900, 100, 600),
            2: (500, 500, 100),
        })
        interp = PolicyInterpreter(routing_policy_ast("policy3", top_x=1))
        # top-1 queue: {1}; top-1 loss: {2}; top-1 util: {0} -> empty.
        # Fallback: least utilised overall = 0.
        assert interp.select(smbm) == 0

    def test_policy1_random_member(self):
        smbm = make_smbm({0: (1, 1, 1), 5: (2, 2, 2)})
        interp = PolicyInterpreter(routing_policy_ast("policy1"))
        for _ in range(20):
            assert interp.select(smbm) in {0, 5}

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            routing_policy_ast("policy9")

    def test_bad_top_x_rejected(self):
        with pytest.raises(ConfigurationError):
            routing_policy_ast("policy3", top_x=0)


class _NullPolicy:
    def choose(self, switch, packet, candidates):
        return candidates[0]


def build_net(n_spine=4):
    sim = Simulator()
    net = build_leaf_spine(
        sim, n_leaf=4, n_spine=n_spine, hosts_per_leaf=2,
        policy_factory=lambda n: _NullPolicy(),
    )
    return sim, net


class TestPathMetricsDirectory:
    def test_one_entry_per_uplink(self):
        sim, net = build_net(n_spine=4)
        directory = PathMetricsDirectory(net)
        metrics = directory.port_metrics("leaf0", "leaf2", sim.now)
        assert len(metrics) == 4
        assert {m.port for m in metrics} == set(net.switches["leaf0"].up_ports)

    def test_metrics_reflect_queues(self):
        sim, net = build_net(n_spine=2)
        directory = PathMetricsDirectory(net)
        # Stuff the leaf0->spine1 queue.
        from repro.netsim.packet import NetPacket

        link = net.links[("leaf0", "spine1")]
        for i in range(10):
            link.send(NetPacket(1, 0, 4, i, 1460))
        metrics = {m.port: m for m in directory.port_metrics("leaf0", "leaf2", sim.now)}
        busy_port = net.port_between("leaf0", "spine1")
        idle_port = net.port_between("leaf0", "spine0")
        assert metrics[busy_port].queue_bytes > metrics[idle_port].queue_bytes

    def test_unknown_pair_rejected(self):
        sim, net = build_net()
        directory = PathMetricsDirectory(net)
        with pytest.raises(Exception):
            directory.port_metrics("leaf0", "nonexistent", 0.0)

    def test_smbm_encoding(self):
        from repro.netsim.probes import PathMetrics

        pm = PathMetrics(port=3, util=0.25, queue_bytes=3000, loss=0.01)
        enc = pm.as_smbm_metrics()
        assert enc == {"util": 250, "queue": 3000, "loss": 100}


class TestProbeService:
    def test_registration_fires_immediately(self):
        sim = Simulator()
        service = ProbeService(sim, period_s=1e-3)
        calls = []
        service.register(lambda now: calls.append(now))
        assert calls == [0.0]

    def test_periodic_ticks(self):
        sim = Simulator()
        service = ProbeService(sim, period_s=1e-3)
        calls = []
        service.register(lambda now: calls.append(now))
        service.start()
        sim.run(until=5.5e-3)
        assert len(calls) == 1 + 5  # registration + five periods

    def test_bad_period_rejected(self):
        with pytest.raises(ConfigurationError):
            ProbeService(Simulator(), period_s=0)


class TestThanosRoutingPolicy:
    def test_least_util_policy_avoids_hot_path(self):
        sim, net = build_net(n_spine=2)
        directory = PathMetricsDirectory(net)
        service = ProbeService(sim, period_s=1e-3)
        policy = ThanosRoutingPolicy(
            net, directory, service, "policy2", params=PARAMS
        )
        # Load the spine1 path, then refresh and route.
        from repro.netsim.packet import NetPacket

        link = net.links[("leaf0", "spine1")]
        for i in range(60):
            link.send(NetPacket(99, 0, 4, i, 1460))
        policy.refresh(sim.now)
        leaf0 = net.switches["leaf0"]
        probe_packet = NetPacket(1, 0, 4, 0, 1460)
        chosen = policy.choose(leaf0, probe_packet, leaf0.up_ports)
        assert chosen == net.port_between("leaf0", "spine0")

    def test_random_uplink_policy_uniformish(self):
        rng = random.Random(0)
        policy = RandomUplinkPolicy(rng)
        counts = {0: 0, 1: 0}
        for _ in range(200):
            counts[policy.choose(None, None, [0, 1])] += 1
        assert min(counts.values()) > 50

    def test_end_to_end_with_thanos_policy(self):
        """Traffic flows and completes with the compiled policy routing."""
        sim = Simulator()
        holder = {}

        def factory(net):
            return holder.setdefault("policy", _Deferred())

        net = build_leaf_spine(
            sim, n_leaf=4, n_spine=2, hosts_per_leaf=2, policy_factory=factory
        )
        directory = PathMetricsDirectory(net)
        service = ProbeService(sim, period_s=500e-6)
        holder["policy"].inner = ThanosRoutingPolicy(
            net, directory, service, "policy2", params=PARAMS
        )
        service.start()
        for fid in range(6):
            net.start_flow(
                TcpFlow(fid, fid % 8, (fid + 3) % 8, size_bytes=60_000,
                        start_time=fid * 1e-4)
            )
        sim.run(until=1.0)
        assert len(net.recorder.completed) == 6


class _Deferred:
    """Lets the topology builder take a policy created after the network."""

    def __init__(self):
        self.inner = None

    def choose(self, switch, packet, candidates):
        assert self.inner is not None
        return self.inner.choose(switch, packet, candidates)
