"""The introduction's example policies (Figures 1-7) expressed in Thanos.

Each figure's informal policy is built with the DSL, compiled, and checked
against its plain-English semantics.  Figures 2 (DRILL), 3 (CONGA), 5
(diagnosis), and 6 (firewall) are covered by their dedicated modules; this
file adds Figure 1 (compiled), Figure 4 (L4 LB), and Figure 7 (multi-tenant
policy compliance).
"""

import pytest

from repro.core.compiler import PolicyCompiler
from repro.core.pipeline import PipelineParams
from repro.core.policy import (
    Conditional,
    Policy,
    TableRef,
    difference,
    intersection,
    predicate,
    random_pick,
    union,
)
from repro.core.smbm import SMBM

PARAMS = PipelineParams(n=8, k=4, f=2, chain_length=4)


class TestFigure1:
    """From the set of all paths, select the path with delay < d and
    utilization < u."""

    def test_compiled_semantics(self):
        smbm = SMBM(8, ["delay", "util"])
        rows = {0: (5, 80), 1: (2, 40), 2: (1, 90), 3: (3, 30)}
        for rid, (d, u) in rows.items():
            smbm.add(rid, {"delay": d, "util": u})
        t = TableRef()
        policy = Policy(intersection(
            predicate(t, "delay", "<", 4), predicate(t, "util", "<", 60)
        ))
        compiled = PolicyCompiler(PARAMS).compile(policy)
        assert set(compiled.evaluate(smbm).indices()) == {1, 3}


class TestFigure4:
    """Select the server with cpu < u and mem > m and bw > b."""

    def test_compiled_semantics(self):
        smbm = SMBM(8, ["cpu", "mem", "bw"])
        rows = {
            0: (50, 2000, 3000),   # eligible
            1: (90, 4000, 9000),   # cpu too high
            2: (30, 500, 9000),    # mem too low
            3: (30, 4000, 1000),   # bw too low
        }
        for rid, (c, m, b) in rows.items():
            smbm.add(rid, {"cpu": c, "mem": m, "bw": b})
        t = TableRef()
        policy = Policy(intersection(
            intersection(predicate(t, "cpu", "<", 70),
                         predicate(t, "mem", ">", 1024)),
            predicate(t, "bw", ">", 2000),
        ))
        compiled = PolicyCompiler(PARAMS).compile(policy)
        assert set(compiled.evaluate(smbm).indices()) == {0}


class TestFigure7:
    """From all available paths, filter the paths not carrying tenant A's
    or B's traffic; choose one at random for tenant C's new flow."""

    def build(self):
        # Tenant presence encoded as 0/1 metrics per path — the kind of
        # per-resource state an RMT counter maintains.
        smbm = SMBM(8, ["tenant_a", "tenant_b"])
        rows = {
            0: (1, 0),  # carries A
            1: (0, 0),  # free
            2: (0, 1),  # carries B
            3: (0, 0),  # free
            4: (1, 1),  # carries both
        }
        for rid, (a, b) in rows.items():
            smbm.add(rid, {"tenant_a": a, "tenant_b": b})
        return smbm

    def policy(self) -> Policy:
        t = TableRef()
        carrying = union(
            predicate(t, "tenant_a", "==", 1),
            predicate(t, "tenant_b", "==", 1),
        )
        eligible = difference(TableRef(), carrying)
        return Policy(
            Conditional(random_pick(eligible), random_pick(TableRef())),
            name="figure7-policy-compliance",
        )

    def test_only_free_paths_chosen(self):
        smbm = self.build()
        compiled = PolicyCompiler(PARAMS).compile(self.policy())
        for _ in range(30):
            assert compiled.select(smbm) in {1, 3}

    def test_falls_back_when_all_paths_carry_tenants(self):
        smbm = self.build()
        for rid in (1, 3):
            smbm.update(rid, {"tenant_a": 1, "tenant_b": 0})
        compiled = PolicyCompiler(PARAMS).compile(self.policy())
        for _ in range(10):
            assert compiled.select(smbm) in {0, 1, 2, 3, 4}

    def test_adapts_as_tenants_move(self):
        smbm = self.build()
        compiled = PolicyCompiler(PARAMS).compile(self.policy())
        smbm.update(0, {"tenant_a": 0, "tenant_b": 0})  # A leaves path 0
        smbm.update(1, {"tenant_a": 0, "tenant_b": 1})  # B moves onto 1
        picks = {compiled.select(smbm) for _ in range(40)}
        assert picks <= {0, 3}
        assert picks == {0, 3}  # both free paths actually get used
