"""Tests for packets, header serialisation, and the programmable parser."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.rmt.packet import FieldDef, HeaderDef, Packet
from repro.rmt.parser import ACCEPT, Parser, ParseState
from repro.rmt.probe import ETHER_HEADER, ETHERTYPE_DATA, ETHERTYPE_PROBE, ProbeCodec

IPV4ISH = HeaderDef(
    "ip",
    (
        FieldDef("src", 32),
        FieldDef("dst", 32),
        FieldDef("proto", 8),
    ),
)
L4 = HeaderDef("l4", (FieldDef("sport", 16), FieldDef("dport", 16)))


def data_parser() -> Parser:
    return Parser(
        [
            ParseState(
                "start", ETHER_HEADER, "ethertype",
                transitions={ETHERTYPE_DATA: "ip"}, default=ACCEPT,
            ),
            ParseState("ip", IPV4ISH, "proto", transitions={6: "l4"}, default=ACCEPT),
            ParseState("l4", L4),
        ],
        start="start",
    )


class TestHeaderDef:
    def test_width(self):
        assert ETHER_HEADER.width_bytes == 10
        assert IPV4ISH.width_bytes == 9

    def test_pack_unpack_roundtrip(self):
        values = {"src": 0xC0A80001, "dst": 0xC0A80002, "proto": 6}
        assert IPV4ISH.unpack(IPV4ISH.pack(values)) == values

    def test_pack_rejects_wrong_fields(self):
        with pytest.raises(ConfigurationError):
            IPV4ISH.pack({"src": 1})

    def test_pack_rejects_oversized_value(self):
        with pytest.raises(ConfigurationError):
            IPV4ISH.pack({"src": 1 << 32, "dst": 0, "proto": 0})

    def test_unpack_truncated(self):
        with pytest.raises(ConfigurationError):
            IPV4ISH.unpack(b"\x00\x01")

    def test_subbyte_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            FieldDef("flag", 4)

    def test_duplicate_field_names_rejected(self):
        with pytest.raises(ConfigurationError):
            HeaderDef("h", (FieldDef("a", 8), FieldDef("a", 8)))

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=255),
    )
    def test_property_roundtrip(self, src, dst, proto):
        values = {"src": src, "dst": dst, "proto": proto}
        assert IPV4ISH.unpack(IPV4ISH.pack(values)) == values


class TestPacket:
    def test_header_lookup(self):
        p = Packet()
        p.push_header("ip", {"src": 1, "dst": 2, "proto": 6})
        assert p.header("ip")["src"] == 1
        assert p.has_header("ip")
        assert not p.has_header("l4")

    def test_missing_header_raises(self):
        with pytest.raises(ConfigurationError):
            Packet().header("ip")

    def test_serialize_roundtrip_through_parser(self):
        p = Packet()
        p.push_header("ether", {"dst": 5, "src": 9, "ethertype": ETHERTYPE_DATA})
        p.push_header("ip", {"src": 1, "dst": 2, "proto": 6})
        p.push_header("l4", {"sport": 80, "dport": 443})
        wire = p.serialize({"ether": ETHER_HEADER, "ip": IPV4ISH, "l4": L4})
        parsed = data_parser().parse(wire + b"payload")
        assert parsed.header("l4") == {"sport": 80, "dport": 443}
        assert parsed.payload_bytes == 7


class TestParser:
    def test_follows_transitions(self):
        wire = ETHER_HEADER.pack({"dst": 0, "src": 0, "ethertype": ETHERTYPE_DATA})
        wire += IPV4ISH.pack({"src": 1, "dst": 2, "proto": 6})
        wire += L4.pack({"sport": 1, "dport": 2})
        parsed = data_parser().parse(wire)
        assert [h for h, _v in parsed.headers] == ["ether", "ip", "l4"]

    def test_default_transition(self):
        wire = ETHER_HEADER.pack({"dst": 0, "src": 0, "ethertype": 0x9999})
        parsed = data_parser().parse(wire + b"xx")
        assert [h for h, _v in parsed.headers] == ["ether"]
        assert parsed.payload_bytes == 2

    def test_non_tcp_stops_at_ip(self):
        wire = ETHER_HEADER.pack({"dst": 0, "src": 0, "ethertype": ETHERTYPE_DATA})
        wire += IPV4ISH.pack({"src": 1, "dst": 2, "proto": 17})
        parsed = data_parser().parse(wire)
        assert [h for h, _v in parsed.headers] == ["ether", "ip"]

    def test_missing_transition_raises(self):
        strict = Parser(
            [
                ParseState(
                    "start", ETHER_HEADER, "ethertype",
                    transitions={ETHERTYPE_DATA: ACCEPT},
                )
            ],
            start="start",
        )
        wire = ETHER_HEADER.pack({"dst": 0, "src": 0, "ethertype": 1})
        with pytest.raises(ConfigurationError):
            strict.parse(wire)

    def test_unknown_start_state_rejected(self):
        with pytest.raises(ConfigurationError):
            Parser([ParseState("a", ETHER_HEADER)], start="b")

    def test_unknown_transition_target_rejected(self):
        with pytest.raises(ConfigurationError):
            Parser(
                [
                    ParseState(
                        "a", ETHER_HEADER, "ethertype", transitions={1: "ghost"}
                    )
                ],
                start="a",
            )


class TestProbeCodec:
    def test_roundtrip(self):
        codec = ProbeCodec(["util", "delay"])
        wire = codec.encode(7, {"util": 55, "delay": -3})
        packet = codec.build_parser().parse(wire)
        update = codec.decode(packet)
        assert update is not None
        assert update.resource_id == 7
        assert update.metrics == {"util": 55, "delay": -3}

    def test_data_packet_decodes_to_none(self):
        codec = ProbeCodec(["util"])
        wire = ETHER_HEADER.pack({"dst": 0, "src": 0, "ethertype": ETHERTYPE_DATA})
        packet = codec.build_parser().parse(wire + b"data")
        assert codec.decode(packet) is None

    def test_schema_mismatch_rejected(self):
        codec = ProbeCodec(["util"])
        with pytest.raises(ConfigurationError):
            codec.encode(1, {"delay": 5})

    @given(
        st.integers(min_value=0, max_value=65535),
        st.integers(min_value=-(2**30), max_value=2**30),
        st.integers(min_value=-(2**30), max_value=2**30),
    )
    def test_property_roundtrip(self, rid, util, delay):
        codec = ProbeCodec(["util", "delay"])
        wire = codec.encode(rid, {"util": util, "delay": delay})
        update = codec.decode(codec.build_parser().parse(wire))
        assert update == type(update)(rid, {"util": util, "delay": delay})
