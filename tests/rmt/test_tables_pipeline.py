"""Tests for match tables, register arrays, and the RMT pipeline."""

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.rmt.match_table import MatchKind, MatchTable, TableEntry
from repro.rmt.packet import Packet
from repro.rmt.pipeline import MatchActionStage, RMTPipeline
from repro.rmt.registers import RegisterArray


def ip_packet(src=1, dst=2):
    p = Packet()
    p.push_header("ip", {"src": src, "dst": dst, "proto": 6})
    return p


def set_meta(packet, data):
    packet.metadata.update(data)


class TestExactTable:
    def make(self):
        t = MatchTable("fwd", [("ip", "dst")], MatchKind.EXACT)
        t.register_action("set_port", lambda p, d: set_meta(p, {"port": d["port"]}))
        return t

    def test_hit_runs_action(self):
        t = self.make()
        t.insert(TableEntry(key=(2,), action_name="set_port", action_data={"port": 7}))
        p = ip_packet(dst=2)
        assert t.apply(p)
        assert p.metadata["port"] == 7

    def test_miss(self):
        t = self.make()
        p = ip_packet(dst=9)
        assert not t.apply(p)
        assert "port" not in p.metadata

    def test_duplicate_key_rejected(self):
        t = self.make()
        t.insert(TableEntry(key=(2,), action_name="set_port"))
        with pytest.raises(ConfigurationError):
            t.insert(TableEntry(key=(2,), action_name="set_port"))

    def test_unknown_action_rejected(self):
        t = self.make()
        with pytest.raises(ConfigurationError):
            t.insert(TableEntry(key=(2,), action_name="nope"))

    def test_capacity(self):
        t = MatchTable("small", [("ip", "dst")], capacity=1)
        t.register_action("a", lambda p, d: None)
        t.insert(TableEntry(key=(1,), action_name="a"))
        with pytest.raises(CapacityError):
            t.insert(TableEntry(key=(2,), action_name="a"))

    def test_remove(self):
        t = self.make()
        t.insert(TableEntry(key=(2,), action_name="set_port"))
        t.remove_exact((2,))
        assert not t.apply(ip_packet(dst=2))

    def test_mask_rejected_on_exact(self):
        t = self.make()
        with pytest.raises(ConfigurationError):
            t.insert(TableEntry(key=(2,), action_name="set_port", mask=(0xFF,)))

    def test_metadata_key(self):
        t = MatchTable("m", [("meta", "flow")], MatchKind.EXACT)
        t.register_action("mark", lambda p, d: set_meta(p, {"hit": 1}))
        t.insert(TableEntry(key=(5,), action_name="mark"))
        p = ip_packet()
        p.metadata["flow"] = 5
        assert t.apply(p)

    def test_missing_metadata_raises(self):
        t = MatchTable("m", [("meta", "flow")], MatchKind.EXACT)
        t.register_action("mark", lambda p, d: None)
        with pytest.raises(ConfigurationError):
            t.lookup(ip_packet())


class TestTernaryTable:
    def make(self):
        t = MatchTable("acl", [("ip", "src")], MatchKind.TERNARY)
        t.register_action("verdict", lambda p, d: set_meta(p, {"drop": d["drop"]}))
        return t

    def test_masked_match(self):
        t = self.make()
        # Match any src in 0x10xx (mask the low byte away).
        t.insert(
            TableEntry(key=(0x1000,), mask=(0xFF00,), action_name="verdict",
                       action_data={"drop": 1})
        )
        p = ip_packet(src=0x10AB)
        assert t.apply(p)
        assert p.metadata["drop"] == 1
        assert not t.apply(ip_packet(src=0x20AB))

    def test_priority_order(self):
        t = self.make()
        t.insert(
            TableEntry(key=(0,), mask=(0,), priority=1, action_name="verdict",
                       action_data={"drop": 0})
        )
        t.insert(
            TableEntry(key=(5,), mask=(0xFFFF,), priority=10, action_name="verdict",
                       action_data={"drop": 1})
        )
        p = ip_packet(src=5)
        t.apply(p)
        assert p.metadata["drop"] == 1  # specific high-priority entry wins
        p2 = ip_packet(src=6)
        t.apply(p2)
        assert p2.metadata["drop"] == 0  # wildcard entry catches the rest

    def test_missing_mask_rejected(self):
        t = self.make()
        with pytest.raises(ConfigurationError):
            t.insert(TableEntry(key=(5,), action_name="verdict"))


class TestRegisterArray:
    def test_single_access_per_packet_enforced(self):
        """Section 2.2: one entry per register array per packet per stage."""
        reg = RegisterArray("counters", 8)
        reg.begin_packet("pkt1")
        reg.read(3)
        with pytest.raises(ConfigurationError, match="one entry"):
            reg.read(4)

    def test_same_index_repeat_access_ok(self):
        reg = RegisterArray("counters", 8)
        reg.begin_packet("pkt1")
        value = reg.read(3)
        reg.write(3, value + 1)
        assert reg.read(3) == 1

    def test_next_packet_resets_budget(self):
        reg = RegisterArray("counters", 8)
        reg.begin_packet("pkt1")
        reg.read(3)
        reg.begin_packet("pkt2")
        reg.read(4)

    def test_read_modify_write(self):
        reg = RegisterArray("counters", 4)
        reg.begin_packet("p")
        assert reg.read_modify_write(2, 5) == 5
        reg.begin_packet("q")
        assert reg.read_modify_write(2, 1) == 6

    def test_bounds(self):
        reg = RegisterArray("counters", 4)
        reg.begin_packet("p")
        with pytest.raises(CapacityError):
            reg.read(4)

    def test_control_plane_peek_is_unconstrained(self):
        reg = RegisterArray("counters", 4, initial=9)
        assert reg.peek_all() == [9, 9, 9, 9]


class TestRMTPipeline:
    def build(self):
        fwd = MatchTable("fwd", [("ip", "dst")])
        fwd.register_action(
            "set_port", lambda p, d: set_meta(p, {"port": d["port"]})
        )
        fwd.insert(TableEntry(key=(2,), action_name="set_port", action_data={"port": 3}))
        counters = RegisterArray("pkt_count", 16)

        def count_hook(packet):
            counters.read_modify_write(packet.header("ip")["dst"] % 16, 1)

        stage1 = MatchActionStage("ingress", tables=[fwd])
        stage1.add_register(counters)
        stage2 = MatchActionStage("count", hook=count_hook)
        return RMTPipeline([stage1, stage2]), counters

    def test_stages_run_in_order(self):
        pipe, counters = self.build()
        p = pipe.process(ip_packet(dst=2))
        assert p.metadata["port"] == 3
        assert counters.peek_all()[2] == 1
        assert pipe.packets_processed == 1

    def test_duplicate_stage_names_rejected(self):
        s = MatchActionStage("x")
        with pytest.raises(ConfigurationError):
            RMTPipeline([s, MatchActionStage("x")])

    def test_stage_lookup(self):
        pipe, _ = self.build()
        assert pipe.stage("ingress").name == "ingress"
        with pytest.raises(ConfigurationError):
            pipe.stage("ghost")

    def test_duplicate_register_rejected(self):
        stage = MatchActionStage("s")
        stage.add_register(RegisterArray("r", 4))
        with pytest.raises(ConfigurationError):
            stage.add_register(RegisterArray("r", 4))
