"""Shared test fixtures: one seed knob for every randomized suite.

Every randomized test draws from the ``rng`` fixture, which derives a
per-test stream from a single base seed so

* runs are reproducible by default (fixed base seed),
* the whole suite can be re-randomized with ``pytest --seed N``,
* two tests never share a stream (the test's node id is mixed in), and
* a failing test prints the exact seed needed to replay it.
"""

from __future__ import annotations

import random

import pytest

try:  # hypothesis ships in the dev environment / CI, but stay importable
    from hypothesis import settings
except ImportError:  # pragma: no cover - exercised only without hypothesis
    settings = None

#: Default base seed: fixed so plain ``pytest`` runs are reproducible.
DEFAULT_SEED = 0xC0FFEE

if settings is not None:
    # One shared profile: no deadline (shared CI runners jitter enough to
    # trip per-example deadlines on code that is not actually slow).
    settings.register_profile("repro", deadline=None)
    settings.load_profile("repro")


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--seed",
        type=int,
        default=DEFAULT_SEED,
        help="base seed for the rng fixture (default: %(default)s); "
             "each test derives its own stream from seed + test id",
    )


@pytest.fixture
def rng(request: pytest.FixtureRequest) -> random.Random:
    """A per-test deterministic RNG derived from the ``--seed`` option."""
    base = request.config.getoption("--seed")
    request.node._rng_base_seed = base
    return random.Random(f"{base}:{request.node.nodeid}")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item: pytest.Item, call: pytest.CallInfo):
    """On failure, attach the base seed so the run can be replayed."""
    outcome = yield
    report = outcome.get_result()
    base = getattr(item, "_rng_base_seed", None)
    if base is not None and report.when == "call" and report.failed:
        report.sections.append(
            ("rng seed", f"replay this test with: pytest --seed {base} "
                         f"{item.nodeid!r}")
        )
