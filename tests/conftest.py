"""Shared test fixtures: one seed knob for every randomized suite.

Every randomized test draws from the ``rng`` fixture, which derives a
per-test stream from a single base seed so

* runs are reproducible by default (fixed base seed),
* the whole suite can be re-randomized with ``pytest --seed N``,
* two tests never share a stream (the test's node id is mixed in), and
* a failing test prints the exact seed needed to replay it.

Hypothesis tests honor the same knob: every ``@given`` test is wrapped in
``hypothesis.seed()`` with a seed derived from ``--seed`` and the test's
node id, so the replay command printed on failure reproduces property
failures too — not just ``rng``-fixture ones.  Passing ``--seed``
explicitly also switches to the ``repro-seeded`` settings profile
(example database off, blob printing on), making such a run a pure
function of the seed rather than of leftover database state.
"""

from __future__ import annotations

import hashlib
import random

import pytest

try:  # hypothesis ships in the dev environment / CI, but stay importable
    import hypothesis
    from hypothesis import settings
except ImportError:  # pragma: no cover - exercised only without hypothesis
    hypothesis = None
    settings = None

#: Default base seed: fixed so plain ``pytest`` runs are reproducible.
DEFAULT_SEED = 0xC0FFEE

if settings is not None:
    # One shared profile: no deadline (shared CI runners jitter enough to
    # trip per-example deadlines on code that is not actually slow).
    settings.register_profile("repro", deadline=None)
    # The replay profile an explicit --seed selects: identical except the
    # example database is disabled (a --seed run must depend on nothing
    # but the seed) and the reproduction blob is printed on failure.
    settings.register_profile(
        "repro-seeded", deadline=None, database=None, print_blob=True
    )
    settings.load_profile("repro")


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--seed",
        type=int,
        default=None,
        help=f"base seed for the rng fixture and hypothesis tests "
             f"(default: {DEFAULT_SEED}); each test derives its own "
             "stream from seed + test id",
    )


def _base_seed(config: pytest.Config) -> int:
    opt = config.getoption("--seed")
    return DEFAULT_SEED if opt is None else opt


def pytest_configure(config: pytest.Config) -> None:
    if settings is not None and config.getoption("--seed") is not None:
        settings.load_profile("repro-seeded")


def _derived_seed(base: int, nodeid: str) -> int:
    digest = hashlib.sha256(f"{base}:{nodeid}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def pytest_collection_modifyitems(
    config: pytest.Config, items: list[pytest.Item]
) -> None:
    """Pin every hypothesis test's randomness to the ``--seed`` knob."""
    if hypothesis is None:
        return
    base = _base_seed(config)
    for item in items:
        fn = getattr(item, "obj", None)
        if fn is None or not getattr(fn, "is_hypothesis_test", False):
            continue
        # ``seed()`` works by setting attributes on the test function, so
        # unwrap bound methods (class-based tests) to the raw function.
        hypothesis.seed(_derived_seed(base, item.nodeid))(
            getattr(fn, "__func__", fn)
        )
        item._rng_base_seed = base  # type: ignore[attr-defined]


@pytest.fixture
def rng(request: pytest.FixtureRequest) -> random.Random:
    """A per-test deterministic RNG derived from the ``--seed`` option."""
    base = _base_seed(request.config)
    request.node._rng_base_seed = base
    return random.Random(f"{base}:{request.node.nodeid}")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item: pytest.Item, call: pytest.CallInfo):
    """On failure, attach the base seed so the run can be replayed."""
    outcome = yield
    report = outcome.get_result()
    base = getattr(item, "_rng_base_seed", None)
    if base is not None and report.when == "call" and report.failed:
        report.sections.append(
            ("rng seed", f"replay this test with: pytest --seed {base} "
                         f"{item.nodeid!r}")
        )
