"""Differential tests: specialized codegen kernels vs the interpreted plan.

The verified-then-specialized bargain only holds if the flat closure the
codegen tier emits is *observationally identical* to the interpreted Cell
pipeline it replaces.  These suites drive well over 1000 randomized
(policy x table-state) cases through both paths — scalar kernels, batch
kernels on both lanes, cache invalidation across SMBM writes — plus the
configuration guards (codegen requires verify, excludes self-healing,
rejects ineligible plans) and the sanitizer's kernel-vs-oracle check.
"""

from __future__ import annotations

import random

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiler import PolicyCompiler
from repro.core.operators import RelOp
from repro.core.pipeline import PipelineParams
from repro.core.policy import (
    Conditional,
    Policy,
    TableRef,
    max_of,
    min_of,
    predicate,
    random_pick,
)
from repro.core.smbm import SMBM
from repro.engine import MIN_NUMPY_ROWS, PlanCodegen, plan_hash_of
from repro.engine import _np as np_guard
from repro.engine.codegen import generate_plan_source
from repro.errors import (
    CompilationError,
    ConfigurationError,
    IntegrityError,
)
from repro.switch.filter_module import FilterModule, PacketBatch

from tests.engine.test_batch_differential import (
    CAP,
    METRICS,
    VALUE_RANGE,
    _build_module,
    _random_masked_batch,
    _random_stateless_root,
    _random_write,
)

PARAMS = PipelineParams()


def _compile_random(rng: random.Random, name: str):
    """A random codegen-eligible compiled policy (with the tier attached)."""
    compiler = PolicyCompiler(PARAMS)
    from repro.analysis import TableSchema

    schema = TableSchema(CAP, METRICS)
    for attempt in range(50):
        policy = Policy(_random_stateless_root(rng), name=f"{name}{attempt}")
        try:
            return compiler.compile(policy, schema=schema, codegen=True)
        except CompilationError:
            continue
    raise AssertionError("no random policy compiled in 50 tries")


class TestCodegenVsInterpreted:
    """>= 1000 randomized differential cases, scalar and batch kernels."""

    def test_randomized_cases(self, rng):
        cases = 0
        for round_no in range(60):
            compiled = _compile_random(rng, f"cg{round_no}")
            codegen = compiled.codegen
            assert codegen is not None
            smbm = SMBM(CAP, METRICS)
            for _ in range(rng.randrange(2, 25)):
                _random_write(rng, smbm)
            for _ in range(4):
                # Scalar kernel vs the interpreted Cell pipeline.
                assert codegen.evaluate(smbm) == compiled.evaluate(smbm).value
                cases += 1
                # Batch kernel vs the restricted interpreted pipeline.
                masks = [rng.getrandbits(CAP) for _ in
                         range(rng.randrange(1, 12))]
                outs = codegen.evaluate_masks(smbm, masks)
                for mask, out in zip(masks, outs):
                    assert out == compiled.evaluate_restricted(
                        smbm, mask
                    ).value, (
                        f"batch kernel disagrees on mask {mask:#x} for "
                        f"{compiled.policy.name}"
                    )
                    cases += 1
                # Writes in between force respecialization on new versions.
                _random_write(rng, smbm)
        assert cases >= 1000, f"only {cases} differential cases ran"

    def test_fallback_lane_randomized(self, rng, monkeypatch):
        """The same differential holds with numpy unavailable."""
        monkeypatch.setattr(np_guard, "HAVE_NUMPY", False)
        cases = 0
        for round_no in range(15):
            compiled = _compile_random(rng, f"py{round_no}")
            smbm = SMBM(CAP, METRICS)
            for _ in range(rng.randrange(2, 25)):
                _random_write(rng, smbm)
            masks = [rng.getrandbits(CAP)
                     for _ in range(MIN_NUMPY_ROWS * 2)]
            outs = compiled.codegen.evaluate_masks(smbm, masks)
            for mask, out in zip(masks, outs):
                assert out == compiled.evaluate_restricted(smbm, mask).value
                cases += 1
        assert cases >= 200

    @settings(max_examples=60)
    @given(
        seed=st.integers(0, 2**32 - 1),
        writes=st.lists(
            st.tuples(st.integers(0, CAP - 1),
                      st.integers(0, VALUE_RANGE - 1),
                      st.integers(0, VALUE_RANGE - 1)),
            max_size=30,
        ),
        mask=st.integers(0, (1 << CAP) - 1),
    )
    def test_hypothesis_kernel_equals_interpreted(self, seed, writes, mask):
        rng = random.Random(seed)
        compiled = _compile_random(rng, "hyp")
        smbm = SMBM(CAP, METRICS)
        for rid, a, b in writes:
            if rid in smbm:
                smbm.update(rid, {"a": a, "b": b})
            else:
                smbm.add(rid, {"a": a, "b": b})
        assert compiled.codegen.evaluate(smbm) == \
            compiled.evaluate(smbm).value
        [out] = compiled.codegen.evaluate_masks(smbm, [mask])
        assert out == compiled.evaluate_restricted(smbm, mask).value

    @settings(max_examples=40)
    @given(
        seed=st.integers(0, 2**32 - 1),
        size=st.integers(1, 20),
    )
    def test_hypothesis_batch_equals_scalar_loop(self, seed, size):
        """evaluate_batch == N scalar evaluations, module level."""
        rng = random.Random(seed)
        module = _build_module(rng, "hb", codegen=True)
        for _ in range(rng.randrange(1, 20)):
            _random_write(rng, module.smbm)
        batch = _random_masked_batch(rng, size)
        module.evaluate_batch(batch)
        masks = batch.input_masks or [None] * size
        full = module.evaluate().value
        for row in range(size):
            if not batch.request[row]:
                assert batch.outputs[row] is None
            elif masks[row] is None:
                assert batch.outputs[row] == full
            else:
                assert batch.outputs[row] == \
                    module.compiled.evaluate_restricted(
                        module.smbm, masks[row]
                    ).value


class TestSpecializationCache:
    def test_version_keyed_invalidation(self, rng):
        compiled = _compile_random(rng, "cache")
        codegen = compiled.codegen
        smbm = SMBM(CAP, METRICS)
        _random_write(rng, smbm)
        codegen.evaluate(smbm)
        misses = codegen.cache_misses
        codegen.evaluate(smbm)          # unchanged version: a hit
        assert codegen.cache_misses == misses
        assert codegen.cache_hits >= 1
        _random_write(rng, smbm)        # version moved: respecialize
        codegen.evaluate(smbm)
        assert codegen.cache_misses == misses + 1

    def test_source_cache_shared_across_equal_plans(self):
        node = lambda: min_of(  # noqa: E731 - tiny local factory
            predicate(TableRef(), "a", RelOp.LT, 9), "b"
        )
        first = PolicyCompiler(PARAMS).compile(
            Policy(node(), name="one"), codegen=True,
        )
        second = PolicyCompiler(PARAMS).compile(
            Policy(node(), name="two"), codegen=True,
        )
        assert first.codegen.plan_hash == second.codegen.plan_hash
        assert first.codegen.source == second.codegen.source

    def test_plan_hash_sensitivity(self):
        base = Policy(
            predicate(TableRef(), "a", RelOp.LT, 9), name="p"
        )
        same = Policy(
            predicate(TableRef(), "a", RelOp.LT, 9), name="renamed"
        )
        different_val = Policy(
            predicate(TableRef(), "a", RelOp.LT, 10), name="p"
        )
        different_op = Policy(
            predicate(TableRef(), "a", RelOp.GE, 9), name="p"
        )
        assert plan_hash_of(base) == plan_hash_of(same)
        assert plan_hash_of(base) != plan_hash_of(different_val)
        assert plan_hash_of(base) != plan_hash_of(different_op)

    def test_generated_source_is_flat(self):
        policy = Policy(
            Conditional(
                primary=min_of(predicate(TableRef(), "a", RelOp.LT, 5), "b",
                               k=2),
                fallback=max_of(TableRef(), "a"),
            ),
            name="flat",
        )
        source, plan_hash, relops = generate_plan_source(policy)
        assert plan_hash == plan_hash_of(policy)
        assert "def specialize(smbm)" in source
        assert "def specialize_batch(smbm, np)" in source
        assert relops == (RelOp.LT,)
        # The kernel body is straight-line mask arithmetic: no branches on
        # policy structure, no attribute lookups into the AST.
        assert "node" not in source and "Unary" not in source


class TestConfigurationGuards:
    def test_codegen_requires_verify(self):
        with pytest.raises(ConfigurationError):
            PolicyCompiler(PARAMS).compile(
                Policy(min_of(TableRef(), "a"), name="t"),
                verify=False, codegen=True,
            )

    def test_codegen_excludes_self_healing(self):
        with pytest.raises(ConfigurationError):
            FilterModule(
                CAP, METRICS, Policy(min_of(TableRef(), "a"), name="t"),
                PARAMS, codegen=True, self_healing=True,
            )

    def test_module_rejects_ineligible_policy(self):
        with pytest.raises(ConfigurationError) as exc_info:
            FilterModule(
                CAP, METRICS,
                Policy(random_pick(TableRef()), name="t"),
                PARAMS, codegen=True,
            )
        assert "TH012" in str(exc_info.value)

    def test_plancodegen_rejects_blocked_plans(self):
        compiled = PolicyCompiler(PARAMS).compile(
            Policy(random_pick(TableRef()), name="t"),
        )
        with pytest.raises(ConfigurationError):
            PlanCodegen(compiled)


class TestSanitizerDifferential:
    def test_sanitize_checks_kernel_against_interpreter(self, rng):
        module = _build_module(rng, "san", codegen=True, sanitize=True,
                               memoize=False)
        for _ in range(10):
            _random_write(rng, module.smbm)
        module.evaluate()  # agreeing paths: no complaint

    def test_sanitize_catches_a_tampered_kernel(self, rng, monkeypatch):
        module = _build_module(rng, "evil", codegen=True, sanitize=True,
                               memoize=False)
        for _ in range(10):
            _random_write(rng, module.smbm)
        good = module.evaluate().value
        monkeypatch.setattr(
            module.codegen, "evaluate",
            lambda smbm: good ^ module.smbm.id_mask() ^ (1 << (CAP - 1)),
        )
        with pytest.raises(IntegrityError):
            module.evaluate()
