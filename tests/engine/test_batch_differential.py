"""Differential tests: batched columnar evaluation vs N scalar evaluations.

``FilterModule.evaluate_batch`` must be observationally identical to
looping :meth:`FilterModule.evaluate` (uniform rows) /
:meth:`CompiledPolicy.evaluate_restricted` (masked rows) — across
randomized policies, random per-row candidate masks, table mutations
between batches, the pure-Python fallback and (when installed) the numpy
lane, and stateful policies served by the per-row fallback path.
"""

from __future__ import annotations

import random

import pytest

from repro.core.operators import RelOp
from repro.core.pipeline import PipelineParams
from repro.core.policy import (
    Conditional,
    Node,
    Policy,
    TableRef,
    difference,
    intersection,
    max_of,
    min_of,
    predicate,
    round_robin,
    union,
)
from repro.core.smbm import SMBM
from repro.engine import HAVE_NUMPY, MIN_NUMPY_ROWS, BatchedEvaluator
from repro.engine import _np as np_guard
from repro.errors import CompilationError, ConfigurationError
from repro.switch.filter_module import FilterModule, PacketBatch

CAP = 32
METRICS = ("a", "b")
VALUE_RANGE = 16

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="numpy not installed (the [batch] extra)"
)


def _random_write(rng: random.Random, smbm: SMBM) -> None:
    rid = rng.randrange(CAP)
    metrics = {m: rng.randrange(VALUE_RANGE) for m in METRICS}
    if rid in smbm:
        if rng.random() < 0.5:
            smbm.delete(rid)
        else:
            smbm.update(rid, metrics)
    elif not smbm.is_full():
        smbm.add(rid, metrics)
    else:
        smbm.delete(rid)


def _random_stateless_node(rng: random.Random, depth: int) -> Node:
    """A random stateless policy node (batch-engine eligible shapes)."""
    if depth <= 0 or rng.random() < 0.3:
        attr = rng.choice(METRICS)
        kind = rng.randrange(3)
        if kind == 0:
            return predicate(
                TableRef(), attr, rng.choice(list(RelOp)),
                rng.randrange(-2, VALUE_RANGE + 2),
            )
        k = rng.choice((1, 1, 2))
        return (min_of if kind == 1 else max_of)(TableRef(), attr, k=k)
    if rng.random() < 0.55:
        combine = rng.choice([union, intersection, difference])
        return combine(
            _random_stateless_node(rng, depth - 1),
            _random_stateless_node(rng, depth - 1),
        )
    attr = rng.choice(METRICS)
    child = _random_stateless_node(rng, depth - 1)
    if rng.random() < 0.5:
        return predicate(child, attr, rng.choice(list(RelOp)),
                         rng.randrange(-2, VALUE_RANGE + 2))
    return (min_of if rng.random() < 0.5 else max_of)(child, attr)


def _random_stateless_root(rng: random.Random) -> Node:
    """A random policy root; Conditionals are only legal at the root
    (the selecting MUX lives in the RMT stage after the filter)."""
    if rng.random() < 0.25:
        return Conditional(
            primary=_random_stateless_node(rng, rng.randrange(2)),
            fallback=_random_stateless_node(rng, rng.randrange(2)),
        )
    return _random_stateless_node(rng, rng.randrange(3))


def _build_module(rng: random.Random, name: str, **kwargs) -> FilterModule:
    """A FilterModule over a random policy that fits the pipeline."""
    for attempt in range(50):
        node = _random_stateless_root(rng)
        try:
            return FilterModule(
                CAP, METRICS, Policy(node, name=f"{name}{attempt}"),
                PipelineParams(), **kwargs,
            )
        except CompilationError:
            continue
    raise AssertionError("no random policy compiled in 50 tries")


def _random_masked_batch(rng: random.Random, size: int) -> PacketBatch:
    masks = [
        None if rng.random() < 0.2 else rng.getrandbits(CAP)
        for _ in range(size)
    ]
    request = [rng.random() < 0.9 for _ in range(size)]
    return PacketBatch(size, request=request, input_masks=masks)


def _check_batch_matches_scalar(module: FilterModule,
                                batch: PacketBatch) -> None:
    """Every evaluated row equals the scalar path on the same mask."""
    out_batch = module.evaluate_batch(batch)
    full_out = module.evaluate().value
    masks = batch.input_masks or [None] * batch.size
    for row in range(batch.size):
        if not batch.request[row]:
            assert out_batch.outputs[row] is None
            continue
        if masks[row] is None:
            expected = full_out
        else:
            expected = module.compiled.evaluate_restricted(
                module.smbm, masks[row]
            ).value
        assert out_batch.outputs[row] == expected, (
            f"row {row} (mask {masks[row]!r}) disagrees with scalar path"
        )
        if expected.bit_count() == 1:
            assert out_batch.selected[row] == expected.bit_length() - 1
        else:
            assert out_batch.selected[row] == -1


class TestBatchVsScalarDifferential:
    """Randomized policies x masks x table mutations, both lanes."""

    def _run(self, rng: random.Random, *, rounds: int) -> int:
        cases = 0
        for round_no in range(rounds):
            module = _build_module(rng, f"p{round_no}")
            for _ in range(rng.randrange(3, 30)):
                _random_write(rng, module.smbm)
            for _ in range(3):
                batch = _random_masked_batch(rng, rng.randrange(1, 24))
                _check_batch_matches_scalar(module, batch)
                cases += batch.size
                # Mutations between batches must invalidate the memo and
                # the engine's per-version constants.
                _random_write(rng, module.smbm)
            uniform = PacketBatch.uniform(rng.randrange(1, 16))
            _check_batch_matches_scalar(module, uniform)
            cases += uniform.size
        return cases

    def test_randomized_cases_fallback_lane(self, rng, monkeypatch):
        monkeypatch.setattr(np_guard, "HAVE_NUMPY", False)
        assert self._run(rng, rounds=20) >= 200

    @needs_numpy
    def test_randomized_cases_numpy_lane(self, rng):
        assert self._run(rng, rounds=20) >= 200

    @needs_numpy
    def test_lanes_agree_bit_for_bit(self, rng, monkeypatch):
        """The numpy kernels and the pure-Python fallback are the same
        function: identical outputs on identical batches."""
        module = _build_module(rng, "lane")
        for _ in range(20):
            _random_write(rng, module.smbm)
        batch_np = _random_masked_batch(rng, MIN_NUMPY_ROWS * 3)
        batch_py = PacketBatch(
            batch_np.size,
            request=list(batch_np.request),
            input_masks=list(batch_np.input_masks),
        )
        module.evaluate_batch(batch_np)
        monkeypatch.setattr(np_guard, "HAVE_NUMPY", False)
        module.evaluate_batch(batch_py)
        assert batch_np.outputs == batch_py.outputs
        assert batch_np.selected == batch_py.selected


class TestServingPaths:
    def test_uniform_stateless_broadcasts(self, rng):
        module = _build_module(rng, "bc")
        for _ in range(10):
            _random_write(rng, module.smbm)
        module.evaluate_batch(PacketBatch.uniform(16))
        counters = module.batch_counters()
        assert counters["batches"] == 1
        assert counters["broadcast_rows"] == 16
        assert counters["engine_rows"] == counters["fallback_rows"] == 0

    def test_masked_stateless_uses_engine(self, rng):
        module = _build_module(rng, "eng")
        for _ in range(10):
            _random_write(rng, module.smbm)
        module.evaluate_batch(PacketBatch(8, input_masks=[1] * 8))
        assert module.batch_counters()["engine_rows"] == 8
        assert module.batch_counters()["fallback_rows"] == 0

    def test_stateful_policy_falls_back_per_row(self, rng):
        """Stateful units advance per packet: the batch must replay them
        row by row, matching a scalar loop exactly."""
        policy = Policy(round_robin(TableRef(), "a"), name="rr")
        batched = FilterModule(CAP, METRICS, policy, PipelineParams())
        scalar = FilterModule(CAP, METRICS, policy, PipelineParams())
        for rid in range(6):
            metrics = {m: rng.randrange(VALUE_RANGE) for m in METRICS}
            batched.smbm.add(rid, metrics)
            scalar.smbm.add(rid, metrics)
        batch = PacketBatch.uniform(9)
        batched.evaluate_batch(batch)
        expected = [scalar.evaluate().value for _ in range(9)]
        assert batch.outputs == expected
        assert len(set(expected)) > 1  # the round-robin actually advanced
        assert batched.batch_counters()["fallback_rows"] == 9

    def test_memoized_broadcast_reuses_version_cache(self, rng):
        module = _build_module(rng, "memo")
        for _ in range(10):
            _random_write(rng, module.smbm)
        module.evaluate_batch(PacketBatch.uniform(8))
        hits_before = module.counters()["cache_hits"]
        module.evaluate_batch(PacketBatch.uniform(8))
        assert module.counters()["cache_hits"] > hits_before

    def test_empty_and_non_requesting_batches(self, rng):
        module = _build_module(rng, "empty")
        out = module.evaluate_batch(PacketBatch(0))
        assert out.size == 0
        quiet = PacketBatch(4, request=[False] * 4)
        module.evaluate_batch(quiet)
        assert quiet.outputs == [None] * 4


class TestBatchedEvaluatorGuards:
    def test_rejects_stateful_policies(self):
        with pytest.raises(ConfigurationError):
            BatchedEvaluator(
                Policy(round_robin(TableRef(), "a"), name="rr"), CAP
            )

    def test_rejects_caller_supplied_inputs(self):
        with pytest.raises(ConfigurationError):
            BatchedEvaluator(
                Policy(min_of(TableRef(input_index=1), "a"), name="idx"), CAP
            )

    def test_rejects_capacity_mismatch(self, rng):
        module = _build_module(rng, "cap")
        evaluator = BatchedEvaluator(module.compiled.policy, CAP * 2)
        with pytest.raises(ConfigurationError):
            evaluator.evaluate_masks(module.smbm, [1])
