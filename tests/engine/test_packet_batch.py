"""PacketBatch columnar buffer: construction, columns, scatter."""

from __future__ import annotations

import pytest

from repro.engine.batch import (
    META_FILTER_INPUT,
    META_FILTER_OUTPUT,
    META_FILTER_REQUEST,
    META_FILTER_SELECTED,
    PacketBatch,
)
from repro.errors import ConfigurationError
from repro.rmt.packet import Packet


def test_uniform_batch_requests_everything():
    batch = PacketBatch.uniform(5)
    assert batch.size == len(batch) == 5
    assert batch.request == [True] * 5
    assert batch.input_masks is None
    assert batch.is_uniform()
    assert batch.requesting_indices() == list(range(5))
    assert batch.outputs == [None] * 5


def test_column_length_validation():
    with pytest.raises(ConfigurationError):
        PacketBatch(3, request=[True, False])
    with pytest.raises(ConfigurationError):
        PacketBatch(3, input_masks=[1, 2, 3, 4])
    with pytest.raises(ConfigurationError):
        PacketBatch(2, fields={"port": [1, 2, 3]})
    with pytest.raises(ConfigurationError):
        PacketBatch(-1)


def test_masked_batch_is_not_uniform():
    batch = PacketBatch(3, input_masks=[0b101, None, 0b011])
    assert not batch.is_uniform()
    # A mask column of all-None collapses back to uniform semantics.
    assert PacketBatch(3, input_masks=[None, None, None]).is_uniform()


def test_signature_keys_on_version_and_shape():
    uniform = PacketBatch.uniform(4)
    masked = PacketBatch(4, input_masks=[1, 2, 3, 4])
    assert uniform.signature(7) == (7, True)
    assert masked.signature(7) == (7, False)
    assert uniform.signature(8) != uniform.signature(7)


def test_from_packets_and_scatter_round_trip():
    packets = []
    for i in range(4):
        p = Packet()
        if i != 2:
            p.metadata[META_FILTER_REQUEST] = 1
        if i == 3:
            p.metadata[META_FILTER_INPUT] = 0b1010
        p.metadata["port"] = i * 10
        packets.append(p)
    batch = PacketBatch.from_packets(packets, field_names=("port",))
    assert batch.size == 4
    assert batch.request == [True, True, False, True]
    assert batch.input_masks == [None, None, None, 0b1010]
    assert batch.field("port") == [0, 10, 20, 30]
    with pytest.raises(ConfigurationError):
        batch.field("missing")

    batch.outputs[0] = 0b01
    batch.selected[0] = 0
    batch.outputs[3] = 0b1000
    batch.selected[3] = 3
    batch.scatter()
    assert packets[0].metadata[META_FILTER_OUTPUT] == 0b01
    assert packets[0].metadata[META_FILTER_SELECTED] == 0
    assert packets[3].metadata[META_FILTER_OUTPUT] == 0b1000
    assert packets[3].metadata[META_FILTER_SELECTED] == 3
    # Rows that were never evaluated stay untouched.
    assert META_FILTER_OUTPUT not in packets[1].metadata
    assert META_FILTER_OUTPUT not in packets[2].metadata


def test_scatter_without_packets_is_an_error():
    with pytest.raises(ConfigurationError):
        PacketBatch.uniform(2).scatter()
