"""Tests for the traffic and trace generators."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.workloads.poisson import PoissonFlowGenerator
from repro.workloads.traces import ResourceConsumptionTrace, ZipfQueryTrace
from repro.workloads.websearch import WebSearchFlowSizes


class TestWebSearch:
    def test_samples_positive(self):
        sizes = WebSearchFlowSizes(random.Random(1))
        for _ in range(1000):
            assert sizes.sample() >= 1

    def test_empirical_mean_near_analytic(self):
        sizes = WebSearchFlowSizes(random.Random(2))
        samples = [sizes.sample() for _ in range(20000)]
        empirical = sum(samples) / len(samples)
        assert empirical == pytest.approx(sizes.mean(), rel=0.15)

    def test_heavy_tail(self):
        """Most flows are small; most bytes are in big flows."""
        sizes = WebSearchFlowSizes(random.Random(3))
        samples = sorted(sizes.sample() for _ in range(20000))
        small = sum(1 for s in samples if s < 100_000) / len(samples)
        assert small > 0.5
        top_decile_bytes = sum(samples[-len(samples) // 10:])
        assert top_decile_bytes / sum(samples) > 0.5

    def test_scale(self):
        base = WebSearchFlowSizes(random.Random(4))
        scaled = WebSearchFlowSizes(random.Random(4), scale=0.1)
        assert scaled.mean() == pytest.approx(base.mean() * 0.1)

    def test_bad_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            WebSearchFlowSizes(random.Random(1), scale=0)


class TestPoisson:
    def make(self, load=0.5):
        sizes = WebSearchFlowSizes(random.Random(1), scale=0.1)
        return PoissonFlowGenerator(
            random.Random(2), list(range(8)), sizes, load, access_bw_bps=10e9
        )

    def test_no_self_flows(self):
        gen = self.make()
        for flow in gen.flows(duration_s=0.01):
            assert flow.src != flow.dst

    def test_flow_ids_unique_and_increasing(self):
        gen = self.make()
        ids = [f.flow_id for f in gen.flows(duration_s=0.01)]
        assert ids == sorted(set(ids))

    def test_arrival_rate_matches_load(self):
        gen = self.make(load=0.5)
        flows = list(gen.flows(duration_s=0.2))
        expected = gen.arrival_rate_hz * 0.2
        assert len(flows) == pytest.approx(expected, rel=0.2)

    def test_offered_load_near_target(self):
        gen = self.make(load=0.5)
        flows = list(gen.flows(duration_s=0.5))
        offered_bps = sum(f.size_bytes for f in flows) * 8 / 0.5
        capacity = 8 * 10e9
        assert offered_bps / capacity == pytest.approx(0.5, rel=0.25)

    def test_bad_load_rejected(self):
        sizes = WebSearchFlowSizes(random.Random(1))
        with pytest.raises(ConfigurationError):
            PoissonFlowGenerator(random.Random(1), [0, 1], sizes, 0.0, 10e9)

    def test_start_times_monotone(self):
        gen = self.make()
        times = [f.start_time for f in gen.flows(duration_s=0.05)]
        assert times == sorted(times)


class TestResourceTrace:
    def test_loads_within_bounds(self):
        trace = ResourceConsumptionTrace(4, random.Random(1))
        for t in (0.0, 1.0, 30.0, 61.0):
            for s in range(4):
                load = trace.load_at(s, t)
                assert 0.0 < load.cpu_util < 1.0
                assert 0 <= load.memory_used_mb <= trace.total_memory_mb
                assert 0 <= load.bandwidth_used_mbps <= trace.total_bandwidth_mbps

    def test_available_resources_consistent(self):
        trace = ResourceConsumptionTrace(2, random.Random(2))
        avail = trace.available(0, 5.0)
        assert set(avail) == {"cpu", "mem", "bw"}
        assert 0 <= avail["cpu"] <= 100
        assert avail["mem"] >= 0

    def test_servers_have_different_phases(self):
        """Servers peak at different times — the load-balancing opportunity."""
        trace = ResourceConsumptionTrace(8, random.Random(3))
        cpus = [trace.load_at(s, 10.0).cpu_util for s in range(8)]
        assert max(cpus) - min(cpus) > 0.1

    def test_load_varies_over_time(self):
        trace = ResourceConsumptionTrace(1, random.Random(4))
        samples = [trace.load_at(0, t).cpu_util for t in range(0, 60, 5)]
        assert max(samples) - min(samples) > 0.2

    def test_bad_server_rejected(self):
        trace = ResourceConsumptionTrace(2, random.Random(5))
        with pytest.raises(ConfigurationError):
            trace.load_at(2, 0.0)


class TestZipfTrace:
    def test_popularity_skew(self):
        trace = ZipfQueryTrace(200, random.Random(1), alpha=1.1)
        queries = trace.generate(5000, clients=[0], rate_hz=1000.0)
        popular = set(trace.popular_nodes(20))
        hits = sum(1 for q in queries if q.node_id in popular)
        assert hits / len(queries) > 0.4  # top-10% of nodes draw >40% of queries

    def test_arrivals_monotone(self):
        trace = ZipfQueryTrace(50, random.Random(2))
        queries = trace.generate(100, clients=[0, 1], rate_hz=100.0)
        times = [q.arrival_time for q in queries]
        assert times == sorted(times)

    def test_clients_assigned(self):
        trace = ZipfQueryTrace(50, random.Random(3))
        queries = trace.generate(200, clients=[5, 9], rate_hz=100.0)
        assert {q.client for q in queries} == {5, 9}

    def test_kinds_cover_all(self):
        trace = ZipfQueryTrace(50, random.Random(4))
        queries = trace.generate(300, clients=[0], rate_hz=100.0)
        assert {q.kind for q in queries} == set(ZipfQueryTrace.KINDS)

    def test_node_ids_valid(self):
        trace = ZipfQueryTrace(30, random.Random(5))
        for q in trace.generate(500, clients=[0], rate_hz=100.0):
            assert 0 <= q.node_id < 30
