"""Tests for Cells and the serial chain pipeline (section 5.3.2)."""

import pytest

from repro.core.bfpu import BinaryConfig
from repro.core.bitvector import BitVector
from repro.core.cell import Cell, CellConfig, cell_latency_cycles
from repro.core.kufpu import KUnaryConfig
from repro.core.operators import BinaryOp, RelOp, UnaryOp
from repro.core.pipeline import (
    FilterPipeline,
    PipelineConfig,
    PipelineParams,
    StageConfig,
)
from repro.core.smbm import SMBM
from repro.errors import ConfigurationError

CAP = 16


def build(rows: dict[int, tuple[int, int]]) -> SMBM:
    smbm = SMBM(CAP, ["x", "y"])
    for rid, (x, y) in rows.items():
        smbm.add(rid, {"x": x, "y": y})
    return smbm


def pred(attr, rel, val, k=1):
    return KUnaryConfig(UnaryOp.PREDICATE, k=k, attr=attr, rel_op=RelOp(rel), val=val)


class TestCell:
    def test_bypass_cell_is_identity(self):
        smbm = build({0: (1, 1), 5: (2, 2)})
        cell = Cell(4, CellConfig.bypass())
        i1 = BitVector.from_indices(CAP, [0])
        i2 = BitVector.from_indices(CAP, [5])
        o1, o2 = cell.evaluate(i1, i2, smbm)
        assert (o1, o2) == (i1, i2)

    def test_two_independent_unary_ops(self):
        """Figure 13 example: two K-UFPU ops, BFPUs as muxes."""
        smbm = build({i: (i, 10 - i) for i in range(6)})
        cell = Cell(
            4,
            CellConfig(
                kufpu1=pred("x", "<", 3),
                kufpu2=pred("y", "<", 7),
                bfpu1=BinaryConfig.passthrough(0),
                bfpu2=BinaryConfig.passthrough(1),
            ),
        )
        full = smbm.id_vector()
        o1, o2 = cell.evaluate(full, full, smbm)
        assert set(o1.indices()) == {0, 1, 2}
        assert set(o2.indices()) == {4, 5}

    def test_binary_over_raw_inputs(self):
        """K-UFPUs no-op, BFPU1 does the set op (Figure 13 example 2)."""
        smbm = build({i: (0, 0) for i in range(6)})
        cell = Cell(
            4, CellConfig(bfpu1=BinaryConfig(BinaryOp.INTERSECTION))
        )
        i1 = BitVector.from_indices(CAP, [1, 2, 3])
        i2 = BitVector.from_indices(CAP, [2, 3, 4])
        o1, _o2 = cell.evaluate(i1, i2, smbm)
        assert set(o1.indices()) == {2, 3}

    def test_fused_unary_and_binary(self):
        """The Figure 14 stage-1 pattern: two predicates intersected."""
        smbm = build({i: (i, 10 - i) for i in range(8)})
        cell = Cell(
            4,
            CellConfig(
                kufpu1=pred("x", "<", 5),
                kufpu2=pred("y", "<", 8),
                bfpu1=BinaryConfig(BinaryOp.INTERSECTION),
            ),
        )
        full = smbm.id_vector()
        o1, _ = cell.evaluate(full, full, smbm)
        # x < 5: {0..4}; y < 8: {3..7}; intersection: {3, 4}
        assert set(o1.indices()) == {3, 4}

    def test_input_swap(self):
        smbm = build({0: (1, 1), 5: (2, 2)})
        cell = Cell(4, CellConfig(input_swap=True))
        i1 = BitVector.from_indices(CAP, [0])
        i2 = BitVector.from_indices(CAP, [5])
        o1, o2 = cell.evaluate(i1, i2, smbm)
        assert (o1, o2) == (i2, i1)

    def test_latency(self):
        assert cell_latency_cycles(4) == 9  # 4 UFPUs * 2 cycles + 1 BFPU cycle
        cell = Cell(4, CellConfig.bypass())
        assert cell.latency_cycles == 9


class TestPipelineParams:
    def test_defaults_match_paper(self):
        p = PipelineParams()
        assert (p.n, p.k, p.f, p.chain_length) == (4, 4, 2, 4)

    def test_odd_n_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelineParams(n=3)

    def test_bad_k_f_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelineParams(k=0)
        with pytest.raises(ConfigurationError):
            PipelineParams(f=0)

    def test_latency(self):
        assert PipelineParams(n=4, k=3, chain_length=4).latency_cycles == 27


def single_stage_config(wiring, cells):
    return PipelineConfig(stages=[StageConfig(wiring=wiring, cells=cells)])


class TestFilterPipeline:
    def test_stage_count_validated(self):
        params = PipelineParams(n=2, k=2, chain_length=2)
        with pytest.raises(ConfigurationError):
            FilterPipeline(params, single_stage_config({}, [CellConfig.bypass()]))

    def test_cell_count_validated(self):
        params = PipelineParams(n=4, k=1, chain_length=2)
        with pytest.raises(ConfigurationError):
            FilterPipeline(params, single_stage_config({}, [CellConfig.bypass()]))

    def test_default_inputs_are_full_table(self):
        params = PipelineParams(n=2, k=1, chain_length=2)
        config = single_stage_config({0: 0, 1: 1}, [CellConfig.bypass()])
        pipe = FilterPipeline(params, config)
        smbm = build({1: (0, 0), 4: (0, 0)})
        out = pipe.evaluate(smbm)
        assert set(out[0].indices()) == {1, 4}
        assert set(out[1].indices()) == {1, 4}

    def test_unwired_port_is_empty_table(self):
        params = PipelineParams(n=2, k=1, chain_length=2)
        config = single_stage_config({0: 0}, [CellConfig.bypass()])
        pipe = FilterPipeline(params, config)
        smbm = build({1: (0, 0)})
        out = pipe.evaluate(smbm)
        assert not out[0].is_empty()
        assert out[1].is_empty()

    def test_explicit_inputs(self):
        params = PipelineParams(n=2, k=1, chain_length=2)
        config = single_stage_config({0: 1, 1: 0}, [CellConfig.bypass()])
        pipe = FilterPipeline(params, config)
        smbm = build({i: (0, 0) for i in range(4)})
        i0 = BitVector.from_indices(CAP, [0])
        i1 = BitVector.from_indices(CAP, [1])
        out = pipe.evaluate(smbm, [i0, i1])
        assert set(out[0].indices()) == {1}
        assert set(out[1].indices()) == {0}

    def test_input_width_validated(self):
        params = PipelineParams(n=2, k=1, chain_length=2)
        config = single_stage_config({}, [CellConfig.bypass()])
        pipe = FilterPipeline(params, config)
        smbm = build({0: (0, 0)})
        with pytest.raises(ConfigurationError):
            pipe.evaluate(smbm, [BitVector.zeros(4), BitVector.zeros(4)])
        with pytest.raises(ConfigurationError):
            pipe.evaluate(smbm, [BitVector.zeros(CAP)])

    def test_two_stage_serial_chain(self):
        """Stage 1 filters x < 8; stage 2 takes min y of the survivors."""
        params = PipelineParams(n=2, k=2, f=2, chain_length=2)
        stage1 = StageConfig(
            wiring={0: 0},
            cells=[CellConfig(kufpu1=pred("x", "<", 8))],
        )
        stage2 = StageConfig(
            wiring={0: 0},
            cells=[CellConfig(kufpu1=KUnaryConfig(UnaryOp.MIN, attr="y"))],
        )
        pipe = FilterPipeline(params, PipelineConfig(stages=[stage1, stage2]))
        smbm = build({0: (9, 1), 1: (5, 7), 2: (3, 4), 3: (6, 2)})
        out = pipe.evaluate(smbm)
        # x < 8 keeps {1, 2, 3}; min y among them is id 3 (y=2).
        assert set(out[0].indices()) == {3}

    def test_fanout_violation_rejected_at_construction(self):
        params = PipelineParams(n=4, k=1, f=1, chain_length=2)
        config = single_stage_config(
            {0: 0, 1: 0},
            [CellConfig.bypass(), CellConfig.bypass()],
        )
        with pytest.raises(Exception):
            FilterPipeline(params, config)
