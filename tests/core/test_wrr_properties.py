"""Property tests for the weighted round-robin operator (section 4.1.1).

"It outputs a list comprising a single entry chosen cyclically from table1
in proportion to the entry's weight."
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.operators import UnaryOp
from repro.core.smbm import SMBM
from repro.core.ufpu import UFPU, UnaryConfig

CAP = 16


def build(weights: dict[int, int]) -> SMBM:
    smbm = SMBM(CAP, ["w"])
    for rid, w in weights.items():
        smbm.add(rid, {"w": w})
    return smbm


weights_strategy = st.dictionaries(
    st.integers(min_value=0, max_value=CAP - 1),
    st.integers(min_value=1, max_value=5),
    min_size=1,
    max_size=6,
)


class TestProportionality:
    @given(weights_strategy)
    @settings(max_examples=50, deadline=None)
    def test_selections_proportional_to_weight(self, weights):
        """Over whole rounds, entry i is selected exactly weight_i times."""
        smbm = build(weights)
        unit = UFPU(UnaryConfig(UnaryOp.ROUND_ROBIN, attr="w"))
        inp = smbm.id_vector()
        round_len = sum(weights.values())
        counts = Counter()
        for _ in range(3 * round_len):
            picked = next(iter(unit.evaluate(inp, smbm).indices()))
            counts[picked] += 1
        for rid, weight in weights.items():
            assert counts[rid] == 3 * weight

    @given(weights_strategy)
    @settings(max_examples=50, deadline=None)
    def test_cyclic_order_by_resource_id(self, weights):
        """Entries are served in increasing id order, wrapping around."""
        smbm = build(weights)
        unit = UFPU(UnaryConfig(UnaryOp.ROUND_ROBIN, attr="w"))
        inp = smbm.id_vector()
        round_len = sum(weights.values())
        picks = [
            next(iter(unit.evaluate(inp, smbm).indices()))
            for _ in range(round_len)
        ]
        # Collapse consecutive repeats: the visit order of distinct ids.
        visit_order = [picks[0]]
        for p in picks[1:]:
            if p != visit_order[-1]:
                visit_order.append(p)
        assert visit_order == sorted(weights)

    @given(weights_strategy, st.integers(min_value=0, max_value=CAP - 1))
    @settings(max_examples=50, deadline=None)
    def test_deleted_entry_skipped_without_stall(self, weights, removed):
        smbm = build(weights)
        unit = UFPU(UnaryConfig(UnaryOp.ROUND_ROBIN, attr="w"))
        inp = smbm.id_vector()
        unit.evaluate(inp, smbm)  # establish some position
        if removed in smbm and len(weights) > 1:
            smbm.delete(removed)
            inp = smbm.id_vector()
        for _ in range(8):
            out = unit.evaluate(inp, smbm)
            assert out.popcount() == 1
            assert set(out.indices()) <= set(smbm.ids())
