"""Tests for the K-UFPU parallel chain (section 5.3.1, Equation 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitvector import BitVector
from repro.core.kufpu import KUFPU, KUnaryConfig
from repro.core.operators import RelOp, UnaryOp
from repro.core.smbm import SMBM
from repro.core.ufpu import UFPU, UFPU_LATENCY_CYCLES, UnaryConfig
from repro.errors import ConfigurationError

CAP = 16


def build(rows: dict[int, int]) -> SMBM:
    smbm = SMBM(CAP, ["x"])
    for rid, x in rows.items():
        smbm.add(rid, {"x": x})
    return smbm


rows_strategy = st.dictionaries(
    st.integers(min_value=0, max_value=CAP - 1),
    st.integers(min_value=-50, max_value=50),
    max_size=CAP,
)


class TestConfig:
    def test_k_must_fit_chain(self):
        with pytest.raises(ConfigurationError):
            KUFPU(2, KUnaryConfig(UnaryOp.MIN, k=3, attr="x"))

    def test_negative_k_rejected(self):
        with pytest.raises(ConfigurationError):
            KUnaryConfig(UnaryOp.MIN, k=-1, attr="x")

    def test_noop_chain_beyond_one_rejected(self):
        with pytest.raises(ConfigurationError):
            KUnaryConfig(UnaryOp.NO_OP, k=2)

    def test_operand_validation_delegates(self):
        with pytest.raises(ConfigurationError):
            KUnaryConfig(UnaryOp.PREDICATE, k=2, attr="x")  # missing rel_op/val

    def test_describe(self):
        assert KUnaryConfig(UnaryOp.MIN, k=4, attr="x").describe() == "K=4, min(x)"


class TestKEqualsOne:
    """With K=1 a K-UFPU is functionally equivalent to a UFPU (section 5.3.1)."""

    @given(rows_strategy)
    @settings(max_examples=40)
    def test_min_equivalent_to_plain_ufpu(self, rows):
        smbm = build(rows)
        inp = smbm.id_vector()
        chain = KUFPU(4, KUnaryConfig(UnaryOp.MIN, k=1, attr="x"))
        unit = UFPU(UnaryConfig(UnaryOp.MIN, attr="x"))
        assert chain.evaluate(inp, smbm) == unit.evaluate(inp, smbm)

    @given(rows_strategy, st.integers(min_value=-50, max_value=50))
    @settings(max_examples=40)
    def test_predicate_equivalent_to_plain_ufpu(self, rows, val):
        smbm = build(rows)
        inp = smbm.id_vector()
        chain = KUFPU(
            4, KUnaryConfig(UnaryOp.PREDICATE, k=1, attr="x", rel_op=RelOp.LT, val=val)
        )
        unit = UFPU(
            UnaryConfig(UnaryOp.PREDICATE, attr="x", rel_op=RelOp.LT, val=val)
        )
        assert chain.evaluate(inp, smbm) == unit.evaluate(inp, smbm)


class TestTopK:
    def test_k_min_returns_k_smallest(self):
        smbm = build({0: 50, 1: 10, 2: 30, 3: 20, 4: 40})
        chain = KUFPU(4, KUnaryConfig(UnaryOp.MIN, k=3, attr="x"))
        out = chain.evaluate(smbm.id_vector(), smbm)
        assert set(out.indices()) == {1, 3, 2}

    def test_k_max_returns_k_largest(self):
        smbm = build({0: 50, 1: 10, 2: 30, 3: 20, 4: 40})
        chain = KUFPU(4, KUnaryConfig(UnaryOp.MAX, k=2, attr="x"))
        out = chain.evaluate(smbm.id_vector(), smbm)
        assert set(out.indices()) == {0, 4}

    def test_k_larger_than_population_returns_all(self):
        smbm = build({0: 5, 1: 6})
        chain = KUFPU(8, KUnaryConfig(UnaryOp.MIN, k=8, attr="x"))
        out = chain.evaluate(smbm.id_vector(), smbm)
        assert set(out.indices()) == {0, 1}

    @given(rows_strategy, st.integers(min_value=1, max_value=8))
    @settings(max_examples=60)
    def test_property_k_min_is_k_smallest(self, rows, k):
        smbm = build(rows)
        chain = KUFPU(8, KUnaryConfig(UnaryOp.MIN, k=k, attr="x"))
        out = chain.evaluate(smbm.id_vector(), smbm)
        expected_order = [rid for _v, rid in smbm.attr_list("x")]
        assert set(out.indices()) == set(expected_order[:k])


class TestKRandom:
    def test_k_distinct_random_picks(self):
        """A chain of random operators filters K *unique* entries (4.2.1)."""
        smbm = build({i: i for i in range(10)})
        chain = KUFPU(4, KUnaryConfig(UnaryOp.RANDOM, k=4), lfsr_seed=3)
        for _ in range(30):
            out = chain.evaluate(smbm.id_vector(), smbm)
            assert out.popcount() == 4
            assert set(out.indices()) <= set(range(10))

    def test_k_random_exhausts_small_population(self):
        smbm = build({1: 0, 5: 0})
        chain = KUFPU(4, KUnaryConfig(UnaryOp.RANDOM, k=4))
        out = chain.evaluate(smbm.id_vector(), smbm)
        assert set(out.indices()) == {1, 5}


class TestPredicateChain:
    def test_k2_predicate_same_as_k1(self):
        """Second predicate unit sees only non-matching entries: no effect."""
        smbm = build({i: i for i in range(8)})
        k1 = KUFPU(4, KUnaryConfig(UnaryOp.PREDICATE, k=1, attr="x",
                                   rel_op=RelOp.LT, val=4))
        k2 = KUFPU(4, KUnaryConfig(UnaryOp.PREDICATE, k=2, attr="x",
                                   rel_op=RelOp.LT, val=4))
        inp = smbm.id_vector()
        assert k1.evaluate(inp, smbm) == k2.evaluate(inp, smbm)


class TestChainMechanics:
    def test_noop_chain_copies_input(self):
        smbm = build({0: 1, 3: 2})
        chain = KUFPU(4, KUnaryConfig.no_op())
        inp = BitVector.from_indices(CAP, [3])
        assert chain.evaluate(inp, smbm) == inp

    def test_latency_deterministic_in_chain_length(self):
        chain = KUFPU(6, KUnaryConfig(UnaryOp.MIN, k=2, attr="x"))
        assert chain.latency_cycles == 6 * UFPU_LATENCY_CYCLES

    def test_empty_input(self):
        smbm = build({0: 1})
        chain = KUFPU(4, KUnaryConfig(UnaryOp.MIN, k=4, attr="x"))
        assert chain.evaluate(BitVector.zeros(CAP), smbm).is_empty()

    def test_equation_one_invariant(self):
        """O = union of per-unit outputs; outputs disjoint because each unit
        sees the previous input minus the previous output."""
        smbm = build({i: 10 - i for i in range(10)})
        chain = KUFPU(8, KUnaryConfig(UnaryOp.MIN, k=5, attr="x"))
        out = chain.evaluate(smbm.id_vector(), smbm)
        assert out.popcount() == 5  # disjoint singletons
