"""Tests for the policy AST and reference interpreter (section 4)."""

import pytest

from repro.core.bitvector import BitVector
from repro.core.operators import RelOp
from repro.core.policy import (
    Binary,
    Conditional,
    Policy,
    PolicyInterpreter,
    TableRef,
    Unary,
    difference,
    intersection,
    max_of,
    min_of,
    predicate,
    random_pick,
    round_robin,
    union,
)
from repro.core.smbm import SMBM
from repro.errors import ConfigurationError

CAP = 16


def build(rows: dict[int, tuple[int, int]]) -> SMBM:
    smbm = SMBM(CAP, ["x", "y"])
    for rid, (x, y) in rows.items():
        smbm.add(rid, {"x": x, "y": y})
    return smbm


class TestConstruction:
    def test_nodes_have_identity_semantics(self):
        a, b = TableRef(), TableRef()
        assert a.node_id != b.node_id

    def test_conditional_only_at_root(self):
        inner = Conditional(TableRef(), TableRef())
        with pytest.raises(ConfigurationError):
            Policy(min_of(inner, "x"))

    def test_conditional_at_root_allowed(self):
        Policy(Conditional(min_of(TableRef(), "x"), random_pick(TableRef())))

    def test_helpers_accept_string_relop(self):
        node = predicate(TableRef(), "x", "<", 5)
        assert node.config.rel_op is RelOp.LT


class TestInterpreter:
    def test_table_ref_returns_everything(self):
        smbm = build({1: (0, 0), 3: (0, 0)})
        interp = PolicyInterpreter(Policy(TableRef()))
        assert set(interp.evaluate(smbm).indices()) == {1, 3}

    def test_figure1_routing_policy(self):
        """Fig. 1: paths with delay < d and utilization < u."""
        smbm = build({0: (5, 80), 1: (2, 40), 2: (1, 90), 3: (3, 30)})
        paths = TableRef()
        policy = Policy(
            intersection(
                predicate(paths, "x", "<", 4),  # delay < 4
                predicate(paths, "y", "<", 60),  # utilization < 60
            )
        )
        interp = PolicyInterpreter(policy)
        assert set(interp.evaluate(smbm).indices()) == {1, 3}

    def test_figure3_conga_policy(self):
        """Fig. 3: the least congested path."""
        smbm = build({0: (5, 0), 1: (2, 0), 2: (8, 0)})
        interp = PolicyInterpreter(Policy(min_of(TableRef(), "x")))
        assert set(interp.evaluate(smbm).indices()) == {1}

    def test_union_difference(self):
        smbm = build({i: (i, 0) for i in range(6)})
        t = TableRef()
        low = predicate(t, "x", "<", 2)   # {0, 1}
        high = predicate(t, "x", ">", 3)  # {4, 5}
        interp = PolicyInterpreter(Policy(union(low, high)))
        assert set(interp.evaluate(smbm).indices()) == {0, 1, 4, 5}
        interp2 = PolicyInterpreter(
            Policy(difference(TableRef(), predicate(TableRef(), "x", "<", 3)))
        )
        assert set(interp2.evaluate(smbm).indices()) == {3, 4, 5}

    def test_conditional_prefers_primary(self):
        smbm = build({0: (1, 0), 1: (9, 0)})
        policy = Policy(
            Conditional(predicate(TableRef(), "x", "<", 5), max_of(TableRef(), "x"))
        )
        interp = PolicyInterpreter(policy)
        assert set(interp.evaluate(smbm).indices()) == {0}

    def test_conditional_falls_back_when_empty(self):
        smbm = build({0: (6, 0), 1: (9, 0)})
        policy = Policy(
            Conditional(predicate(TableRef(), "x", "<", 5), max_of(TableRef(), "x"))
        )
        interp = PolicyInterpreter(policy)
        assert set(interp.evaluate(smbm).indices()) == {1}

    def test_shared_subpolicy_evaluated_once(self):
        """A shared random node yields the same pick on both sides."""
        smbm = build({i: (0, 0) for i in range(8)})
        shared = random_pick(TableRef())
        interp = PolicyInterpreter(Policy(intersection(shared, shared)))
        out = interp.evaluate(smbm)
        assert out.popcount() == 1

    def test_parallel_chain_top_k(self):
        smbm = build({i: (10 - i, 0) for i in range(8)})
        interp = PolicyInterpreter(Policy(min_of(TableRef(), "x", k=3)))
        assert set(interp.evaluate(smbm).indices()) == {7, 6, 5}

    def test_round_robin_state_persists_across_packets(self):
        smbm = build({i: (1, 0) for i in range(3)})
        interp = PolicyInterpreter(Policy(round_robin(TableRef(), "x")))
        picks = [interp.select(smbm) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_reset_state(self):
        smbm = build({i: (1, 0) for i in range(3)})
        interp = PolicyInterpreter(Policy(round_robin(TableRef(), "x")))
        interp.select(smbm)
        interp.reset_state()
        assert interp.select(smbm) == 0

    def test_select_none_when_multiple(self):
        smbm = build({0: (0, 0), 1: (0, 0)})
        interp = PolicyInterpreter(Policy(TableRef()))
        assert interp.select(smbm) is None

    def test_select_none_when_empty(self):
        smbm = build({})
        interp = PolicyInterpreter(Policy(TableRef()))
        assert interp.select(smbm) is None

    def test_serial_chain_of_unaries(self):
        """min over the output of a predicate — section 4.2.2 serial chain."""
        smbm = build({0: (9, 1), 1: (5, 7), 2: (3, 4), 3: (6, 2)})
        policy = Policy(min_of(predicate(TableRef(), "x", "<", 8), "y"))
        interp = PolicyInterpreter(policy)
        assert set(interp.evaluate(smbm).indices()) == {3}
