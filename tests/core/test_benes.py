"""Tests for crossbars and Benes networks (section 5.3.2)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.benes import BenesNetwork, Crossbar
from repro.errors import ConfigurationError, RoutingError


class TestCrossbar:
    def test_apply_routes_signals(self):
        xbar = Crossbar(4, 4, 2, {0: 2, 1: 2, 3: 0})
        out = xbar.apply(["a", "b", "c", "d"], idle=None)
        assert out == ["c", "c", None, "a"]

    def test_fanout_enforced(self):
        with pytest.raises(RoutingError):
            Crossbar(4, 4, 2, {0: 1, 1: 1, 2: 1})

    def test_fanout_boundary_allowed(self):
        Crossbar(4, 4, 2, {0: 1, 1: 1})

    def test_bad_ports_rejected(self):
        with pytest.raises(ConfigurationError):
            Crossbar(4, 4, 2, {4: 0})
        with pytest.raises(ConfigurationError):
            Crossbar(4, 4, 2, {0: 4})

    def test_input_count_validated(self):
        xbar = Crossbar(4, 4, 2, {})
        with pytest.raises(ConfigurationError):
            xbar.apply(["a"], idle=None)


class TestBenesStructure:
    def test_size_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            BenesNetwork(6)
        with pytest.raises(ConfigurationError):
            BenesNetwork(1)

    @pytest.mark.parametrize("size,depth", [(2, 1), (4, 3), (8, 5), (16, 7)])
    def test_depth(self, size, depth):
        assert BenesNetwork(size).depth == depth

    @pytest.mark.parametrize("size,count", [(2, 1), (4, 6), (8, 20), (16, 56)])
    def test_switch_count(self, size, count):
        assert BenesNetwork(size).switch_count() == count

    def test_config_switch_count_matches_network(self):
        net = BenesNetwork(8)
        config = net.route(list(range(8)))
        assert config.switch_count() == net.switch_count()


class TestBenesRouting:
    @pytest.mark.parametrize("size", [2, 4, 8, 16])
    def test_identity_permutation(self, size):
        net = BenesNetwork(size)
        config = net.route(list(range(size)))
        assert net.apply(list(range(size)), config) == list(range(size))

    @pytest.mark.parametrize("size", [2, 4, 8])
    def test_reversal_permutation(self, size):
        net = BenesNetwork(size)
        perm = list(reversed(range(size)))
        config = net.route(perm)
        out = net.apply(list(range(size)), config)
        assert [out[perm[i]] for i in range(size)] == list(range(size))

    def test_non_permutation_rejected(self):
        with pytest.raises(RoutingError):
            BenesNetwork(4).route([0, 0, 1, 2])

    @pytest.mark.parametrize("size", [4, 8, 16, 32])
    def test_all_or_many_permutations_route(self, size):
        """The non-blocking property: every permutation is realisable."""
        net = BenesNetwork(size)
        rng = random.Random(42)
        if size == 4:
            import itertools

            perms = [list(p) for p in itertools.permutations(range(4))]
        else:
            perms = []
            for _ in range(60):
                p = list(range(size))
                rng.shuffle(p)
                perms.append(p)
        for perm in perms:
            config = net.route(perm)
            out = net.apply(list(range(size)), config)
            # Signal i must arrive at output perm[i].
            assert all(out[perm[i]] == i for i in range(size)), perm

    @given(st.permutations(list(range(16))))
    @settings(max_examples=40)
    def test_property_routes_any_permutation(self, perm):
        net = BenesNetwork(16)
        out = net.apply(list(range(16)), net.route(list(perm)))
        assert all(out[perm[i]] == i for i in range(16))


class TestCrossbarOnBenes:
    """A functional crossbar wiring (with fan-out) is realisable on a Benes
    network with replicated inputs — the hardware claim of section 5.3.2."""

    def test_for_crossbar_sizing(self):
        assert BenesNetwork.for_crossbar(4, 2).size == 8
        assert BenesNetwork.for_crossbar(8, 2).size == 16
        assert BenesNetwork.for_crossbar(3, 2).size == 8  # padded up

    def test_fanout_wiring_realised(self):
        xbar = Crossbar(4, 4, 2, {0: 2, 1: 2, 2: 0, 3: 1})
        net = BenesNetwork.for_crossbar(4, 2)
        config, plan = net.route_crossbar(xbar)
        signals = [f"line{line}" if line is not None else None for line in plan]
        out = net.apply(signals, config)
        expected = xbar.apply([f"line{i}" for i in range(4)], idle=None)
        for port in xbar.wiring:
            assert out[port] == expected[port]

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=7),
            st.integers(min_value=0, max_value=7),
            max_size=8,
        )
    )
    @settings(max_examples=60)
    def test_property_any_legal_wiring_realised(self, wiring):
        # Keep only wirings that respect fan-out 2.
        uses: dict[int, int] = {}
        legal = {}
        for port, line in wiring.items():
            if uses.get(line, 0) < 2:
                legal[port] = line
                uses[line] = uses.get(line, 0) + 1
        xbar = Crossbar(8, 8, 2, legal)
        net = BenesNetwork.for_crossbar(8, 2)
        config, plan = net.route_crossbar(xbar)
        signals = [line if line is not None else None for line in plan]
        out = net.apply(signals, config)
        expected = xbar.apply(list(range(8)), idle=None)
        # Unwired outputs carry don't-care signals in hardware; only the
        # wired ports are part of the contract.
        for port in legal:
            assert out[port] == expected[port]
