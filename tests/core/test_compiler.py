"""Tests for the policy compiler (section 5.3.2, Figure 14).

The central property: for any compilable policy built from deterministic
operators, the configured hardware pipeline computes exactly what the
reference interpreter computes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiler import CompiledPolicy, MuxPlan, PolicyCompiler
from repro.core.operators import BinaryOp, RelOp, UnaryOp
from repro.core.pipeline import PipelineParams
from repro.core.policy import (
    Binary,
    Conditional,
    Policy,
    PolicyInterpreter,
    TableRef,
    Unary,
    intersection,
    max_of,
    min_of,
    predicate,
    random_pick,
    union,
)
from repro.core.smbm import SMBM
from repro.errors import CompilationError

CAP = 16
METRICS = ("cpu", "mem", "bw")


def build_smbm(rows: dict[int, tuple[int, int, int]]) -> SMBM:
    smbm = SMBM(CAP, METRICS)
    for rid, (c, m, b) in rows.items():
        smbm.add(rid, {"cpu": c, "mem": m, "bw": b})
    return smbm


DEFAULT_ROWS = {
    0: (50, 4, 5), 1: (80, 1, 9), 2: (30, 6, 1),
    3: (90, 8, 7), 4: (10, 2, 3), 5: (60, 5, 8),
}


def fig14_policy() -> Policy:
    """Policy 2 of section 7.2.2 — the Figure 14 worked example."""
    servers = TableRef()
    eligible = intersection(
        intersection(
            predicate(servers, "cpu", "<", 70),
            predicate(servers, "mem", ">", 1),
        ),
        predicate(servers, "bw", ">", 2),
    )
    return Policy(
        Conditional(random_pick(eligible), random_pick(TableRef())),
        name="l4lb-policy2",
    )


class TestFigure14:
    def test_compiles_on_figure14_dimensions(self):
        """The paper maps this policy onto 3 stages x 4 lines (Figure 14)."""
        compiler = PolicyCompiler(PipelineParams(n=4, k=3, f=2, chain_length=4))
        compiled = compiler.compile(fig14_policy())
        assert isinstance(compiled, CompiledPolicy)
        assert isinstance(compiled.mux, MuxPlan)

    def test_selects_only_eligible_servers(self):
        smbm = build_smbm(DEFAULT_ROWS)
        compiler = PolicyCompiler(PipelineParams(n=4, k=3, f=2, chain_length=4))
        compiled = compiler.compile(fig14_policy())
        # Eligible (cpu<70, mem>1, bw>2): ids 0 (50,4,5), 4 (10,2,3), 5 (60,5,8).
        for _ in range(40):
            assert compiled.select(smbm) in {0, 4, 5}

    def test_falls_back_when_no_server_eligible(self):
        smbm = build_smbm({0: (99, 0, 0), 1: (99, 0, 0)})
        compiler = PolicyCompiler(PipelineParams(n=4, k=3, f=2, chain_length=4))
        compiled = compiler.compile(fig14_policy())
        for _ in range(20):
            assert compiled.select(smbm) in {0, 1}

    def test_describe_mentions_mux(self):
        compiled = PolicyCompiler(
            PipelineParams(n=4, k=3, f=2, chain_length=4)
        ).compile(fig14_policy())
        assert "RMT mux" in compiled.describe()


class TestResourceLimits:
    def test_too_few_stages_rejected(self):
        policy = Policy(min_of(min_of(min_of(TableRef(), "cpu"), "mem"), "bw"))
        with pytest.raises(CompilationError):
            PolicyCompiler(PipelineParams(n=2, k=2, f=2, chain_length=2)).compile(
                policy
            )

    def test_k_exceeding_chain_rejected(self):
        policy = Policy(min_of(TableRef(), "cpu", k=8))
        with pytest.raises(CompilationError):
            PolicyCompiler(PipelineParams(n=2, k=2, f=2, chain_length=4)).compile(
                policy
            )

    def test_too_many_parallel_ops_rejected(self):
        """More simultaneous stage-1 operators than cell sides."""
        t = TableRef()
        wide = union(
            union(predicate(t, "cpu", "<", 1), predicate(t, "mem", "<", 1)),
            union(predicate(t, "bw", "<", 1), predicate(t, "cpu", ">", 1)),
        )
        with pytest.raises(CompilationError):
            PolicyCompiler(PipelineParams(n=2, k=2, f=1, chain_length=2)).compile(
                Policy(wide)
            )

    def test_error_messages_name_the_resource(self):
        policy = Policy(min_of(TableRef(), "cpu", k=8))
        with pytest.raises(CompilationError, match="chain length"):
            PolicyCompiler(PipelineParams(n=2, k=2, f=2, chain_length=4)).compile(
                policy
            )


class TestEquivalenceWithInterpreter:
    """Compiled pipeline output == reference interpreter output for
    deterministic policies."""

    def check(self, policy: Policy, rows=None, params=None):
        smbm = build_smbm(rows if rows is not None else DEFAULT_ROWS)
        params = params or PipelineParams(n=8, k=5, f=2, chain_length=8)
        compiled = PolicyCompiler(params).compile(policy)
        interp = PolicyInterpreter(policy)
        assert compiled.evaluate(smbm) == interp.evaluate(smbm), (
            compiled.describe()
        )

    def test_single_predicate(self):
        self.check(Policy(predicate(TableRef(), "cpu", "<", 60)))

    def test_min_max(self):
        self.check(Policy(min_of(TableRef(), "mem")))
        self.check(Policy(max_of(TableRef(), "bw")))

    def test_top_k(self):
        self.check(Policy(min_of(TableRef(), "cpu", k=3)))

    def test_serial_unary_chain(self):
        self.check(Policy(min_of(predicate(TableRef(), "cpu", "<", 70), "bw")))

    def test_binary_of_two_predicates(self):
        t = TableRef()
        self.check(
            Policy(union(predicate(t, "cpu", "<", 40), predicate(t, "mem", ">", 5)))
        )

    def test_nested_binaries(self):
        t = TableRef()
        self.check(
            Policy(
                intersection(
                    union(predicate(t, "cpu", "<", 70), predicate(t, "mem", ">", 7)),
                    predicate(t, "bw", ">", 2),
                )
            )
        )

    def test_difference_with_table(self):
        from repro.core.policy import difference

        self.check(Policy(difference(TableRef(), predicate(TableRef(), "cpu", "<", 50))))

    def test_conditional_primary_non_empty(self):
        self.check(
            Policy(
                Conditional(
                    predicate(TableRef(), "cpu", "<", 60), min_of(TableRef(), "cpu")
                )
            )
        )

    def test_conditional_fallback_used(self):
        self.check(
            Policy(
                Conditional(
                    predicate(TableRef(), "cpu", "<", 0), min_of(TableRef(), "cpu")
                )
            )
        )

    def test_shared_node_fanout(self):
        shared = predicate(TableRef(), "cpu", "<", 70)
        self.check(Policy(union(min_of(shared, "mem"), max_of(shared, "bw"))))

    def test_empty_table(self):
        self.check(Policy(min_of(TableRef(), "cpu")), rows={})

    def test_drill_shape_policy(self):
        """Policy 3 of 7.2.4 (DRILL): min queue over (d random ∪ m prev least)."""
        # Deterministic stand-in: min over (top-2 min cpu ∪ top-2 min mem).
        t = TableRef()
        pol = Policy(
            min_of(union(min_of(t, "cpu", k=2), min_of(t, "mem", k=2)), "bw")
        )
        self.check(pol)


# -- randomised differential testing -------------------------------------------------


@st.composite
def deterministic_policies(draw, max_depth=3):
    """Random deterministic policy trees (no random/round-robin ops)."""

    def node(depth):
        if depth == 0:
            return TableRef()
        kind = draw(st.sampled_from(["pred", "min", "max", "bin", "table"]))
        if kind == "table":
            return TableRef()
        if kind == "pred":
            return predicate(
                node(depth - 1),
                draw(st.sampled_from(METRICS)),
                draw(st.sampled_from(list(RelOp))),
                draw(st.integers(min_value=-5, max_value=15)),
            )
        if kind in ("min", "max"):
            fn = min_of if kind == "min" else max_of
            return fn(
                node(depth - 1),
                draw(st.sampled_from(METRICS)),
                k=draw(st.integers(min_value=1, max_value=3)),
            )
        op = draw(st.sampled_from([union, intersection]))
        return op(node(depth - 1), node(depth - 1))

    return Policy(node(max_depth))


rows_strategy = st.dictionaries(
    st.integers(min_value=0, max_value=CAP - 1),
    st.tuples(*[st.integers(min_value=0, max_value=10)] * 3),
    max_size=CAP,
)


class TestRandomisedEquivalence:
    @given(deterministic_policies(), rows_strategy)
    @settings(max_examples=60, deadline=None)
    def test_compiled_equals_interpreted(self, policy, rows):
        smbm = build_smbm(rows)
        params = PipelineParams(n=8, k=6, f=2, chain_length=4)
        try:
            compiled = PolicyCompiler(params).compile(policy)
        except CompilationError:
            return  # legitimately too large for this pipeline
        interp = PolicyInterpreter(policy)
        assert compiled.evaluate(smbm) == interp.evaluate(smbm)

    @given(rows_strategy)
    @settings(max_examples=30, deadline=None)
    def test_random_policy_outputs_member_singletons(self, rows):
        smbm = build_smbm(rows)
        policy = Policy(random_pick(TableRef()))
        compiled = PolicyCompiler(PipelineParams(n=2, k=1, f=1, chain_length=1)).compile(
            policy
        )
        out = compiled.evaluate(smbm)
        if rows:
            assert out.popcount() == 1
            assert set(out.indices()) <= set(rows)
        else:
            assert out.is_empty()


class TestFigure14Structure:
    """The compiled Figure 14 policy uses the same hardware budget as the
    paper's hand-drawn mapping: the conditional L4-LB policy fits 3 stages
    of a 4-line pipeline, with the two intersections fused into whole cells."""

    def test_resource_usage_matches_figure(self):
        compiled = PolicyCompiler(
            PipelineParams(n=4, k=3, f=2, chain_length=4)
        ).compile(fig14_policy())
        config = compiled.config

        # Sides actually wired = crossbar ports carrying a signal.
        wired = [len(stage.wiring) for stage in config.stages]
        # Stage 1 is fully used (intersection cell + passthroughs);
        # later stages progressively drain; nothing exceeds n=4 ports.
        assert all(w <= 4 for w in wired)
        assert wired[0] >= 3
        # Exactly one intersection cell in each of stages 1 and 2.
        from repro.core.operators import BinaryOp

        inter_per_stage = [
            sum(1 for cell in stage.cells
                if cell.bfpu1.opcode is BinaryOp.INTERSECTION)
            for stage in config.stages
        ]
        assert inter_per_stage[:2] == [1, 1]
        # The MUX plan picks between two distinct last-stage lines.
        assert compiled.mux is not None
        assert compiled.mux.primary_line != compiled.mux.fallback_line
