"""Unit, property, and cycle-accuracy tests for the SMBM (section 5.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.smbm import SMBM, WRITE_LATENCY_CYCLES, ClockedSMBM
from repro.errors import CapacityError, ConfigurationError


def make_smbm(capacity=8, metrics=("x", "y")):
    return SMBM(capacity, metrics)


class TestConstruction:
    def test_requires_positive_capacity(self):
        with pytest.raises(ConfigurationError):
            SMBM(0, ["x"])

    def test_requires_metrics(self):
        with pytest.raises(ConfigurationError):
            SMBM(4, [])

    def test_rejects_duplicate_metrics(self):
        with pytest.raises(ConfigurationError):
            SMBM(4, ["x", "x"])

    def test_schema_exposed(self):
        s = make_smbm()
        assert s.metric_names == ("x", "y")
        assert s.capacity == 8


class TestAddDelete:
    def test_add_then_lookup(self):
        s = make_smbm()
        s.add(3, {"x": 10, "y": 20})
        assert 3 in s
        assert s.metric_of(3, "x") == 10
        assert s.metrics_of(3) == {"x": 10, "y": 20}

    def test_add_duplicate_id_rejected(self):
        s = make_smbm()
        s.add(1, {"x": 1, "y": 1})
        with pytest.raises(ConfigurationError):
            s.add(1, {"x": 2, "y": 2})

    def test_add_out_of_range_id_rejected(self):
        s = make_smbm()
        with pytest.raises(CapacityError):
            s.add(8, {"x": 1, "y": 1})
        with pytest.raises(CapacityError):
            s.add(-1, {"x": 1, "y": 1})

    def test_add_wrong_schema_rejected(self):
        s = make_smbm()
        with pytest.raises(ConfigurationError):
            s.add(0, {"x": 1})
        with pytest.raises(ConfigurationError):
            s.add(0, {"x": 1, "y": 1, "z": 1})

    def test_capacity_enforced(self):
        s = SMBM(2, ["x"])
        s.add(0, {"x": 1})
        s.add(1, {"x": 2})
        with pytest.raises(CapacityError):
            s.add(2, {"x": 3})  # id out of range doubles as the limit here

    def test_delete_absent_is_noop(self):
        s = make_smbm()
        s.delete(5)  # paper: "deletes ... if present"
        assert len(s) == 0

    def test_delete_removes_everywhere(self):
        s = make_smbm()
        s.add(2, {"x": 5, "y": 6})
        s.add(4, {"x": 1, "y": 9})
        s.delete(2)
        assert 2 not in s
        assert s.ids() == [4]
        assert s.attr_list("x") == [(1, 4)]
        s.check_invariants()

    def test_update_is_delete_add(self):
        s = make_smbm()
        s.add(1, {"x": 5, "y": 5})
        s.update(1, {"x": 7, "y": 2})
        assert s.metrics_of(1) == {"x": 7, "y": 2}
        s.check_invariants()


class TestSortedLists:
    def test_lists_sorted_increasing(self):
        s = make_smbm()
        s.add(0, {"x": 30, "y": 1})
        s.add(1, {"x": 10, "y": 3})
        s.add(2, {"x": 20, "y": 2})
        assert s.attr_list("x") == [(10, 1), (20, 2), (30, 0)]
        assert s.attr_list("y") == [(1, 0), (2, 2), (3, 1)]

    def test_fifo_tie_break(self):
        """Equal values keep enqueue order (section 5.1)."""
        s = make_smbm()
        s.add(5, {"x": 7, "y": 0})
        s.add(2, {"x": 7, "y": 0})
        s.add(6, {"x": 7, "y": 0})
        assert [rid for _v, rid in s.attr_list("x")] == [5, 2, 6]

    def test_reinsert_moves_to_back_of_ties(self):
        s = make_smbm()
        s.add(1, {"x": 7, "y": 0})
        s.add(2, {"x": 7, "y": 0})
        s.update(1, {"x": 7, "y": 0})  # delete+add re-enqueues id 1
        assert [rid for _v, rid in s.attr_list("x")] == [2, 1]

    def test_id_dimension_sorted(self):
        s = make_smbm()
        for rid in (6, 1, 3):
            s.add(rid, {"x": 0, "y": 0})
        assert s.ids() == [1, 3, 6]

    def test_id_vector(self):
        s = make_smbm()
        s.add(1, {"x": 0, "y": 0})
        s.add(6, {"x": 0, "y": 0})
        assert sorted(s.id_vector().indices()) == [1, 6]
        assert s.id_vector().width == 8

    def test_rank_of(self):
        s = make_smbm()
        s.add(0, {"x": 30, "y": 0})
        s.add(1, {"x": 10, "y": 0})
        assert s.rank_of(1, "x") == 0
        assert s.rank_of(0, "x") == 1

    def test_unknown_metric_rejected(self):
        s = make_smbm()
        with pytest.raises(ConfigurationError):
            s.attr_list("nope")
        s.add(0, {"x": 1, "y": 1})
        with pytest.raises(ConfigurationError):
            s.metric_of(0, "nope")

    def test_lookup_absent_id_rejected(self):
        s = make_smbm()
        with pytest.raises(ConfigurationError):
            s.metric_of(3, "x")


class SMBMMachine(RuleBasedStateMachine):
    """Random add/delete/update interleavings preserve all invariants and
    agree with a plain dict model."""

    def __init__(self):
        super().__init__()
        self.smbm = SMBM(16, ["a", "b", "c"])
        self.model: dict[int, dict[str, int]] = {}

    @rule(
        rid=st.integers(min_value=0, max_value=15),
        a=st.integers(min_value=-100, max_value=100),
        b=st.integers(min_value=-100, max_value=100),
        c=st.integers(min_value=-100, max_value=100),
    )
    def add(self, rid, a, b, c):
        metrics = {"a": a, "b": b, "c": c}
        if rid in self.model:
            with pytest.raises(ConfigurationError):
                self.smbm.add(rid, metrics)
        else:
            self.smbm.add(rid, metrics)
            self.model[rid] = metrics

    @rule(rid=st.integers(min_value=0, max_value=15))
    def delete(self, rid):
        self.smbm.delete(rid)
        self.model.pop(rid, None)

    @rule(
        rid=st.integers(min_value=0, max_value=15),
        a=st.integers(min_value=-100, max_value=100),
    )
    def update(self, rid, a):
        metrics = {"a": a, "b": a * 2, "c": -a}
        self.smbm.update(rid, metrics)
        self.model[rid] = metrics

    @invariant()
    def matches_model(self):
        assert self.smbm.snapshot() == self.model

    @invariant()
    def structure_consistent(self):
        self.smbm.check_invariants()

    @invariant()
    def lists_are_sorted_views_of_model(self):
        for metric in ("a", "b", "c"):
            values = [v for v, _rid in self.smbm.attr_list(metric)]
            assert values == sorted(values)
            assert sorted(rid for _v, rid in self.smbm.attr_list(metric)) == sorted(
                self.model
            )


TestSMBMStateful = SMBMMachine.TestCase
TestSMBMStateful.settings = settings(max_examples=30, stateful_step_count=40)


class TestClockedSMBM:
    def test_write_latency_exactly_two_cycles(self):
        c = ClockedSMBM(8, ["x"])
        c.issue_add(3, {"x": 9})
        c.tick()  # cycle 0: search
        assert 3 not in c.read()
        c.tick()  # cycle 1: commit
        assert 3 in c.read()
        assert c.commit_log == [(1, "add", 3)]

    def test_one_write_retired_per_cycle(self):
        """Fully pipelined: issue every cycle, one commit per cycle after fill."""
        c = ClockedSMBM(8, ["x"])
        for i in range(6):
            c.issue_add(i, {"x": i})
            c.tick()
        # A write issued in cycle t occupies cycles t and t+1; after 6 full
        # cycles the writes issued in cycles 0..4 have committed.
        assert len(c.read()) == 5
        c.tick()
        assert len(c.read()) == 6
        commit_cycles = [cyc for cyc, _k, _r in c.commit_log]
        assert commit_cycles == list(range(1, 7))  # one commit per cycle

    def test_delete_latency(self):
        c = ClockedSMBM(8, ["x"])
        c.issue_add(1, {"x": 5})
        c.tick()
        c.tick()
        c.issue_delete(1)
        c.tick()
        assert 1 in c.read()
        c.tick()
        assert 1 not in c.read()

    def test_reads_concurrent_with_writes_never_torn(self):
        """A read in any cycle sees a whole pre- or post-write state."""
        c = ClockedSMBM(8, ["x", "y"])
        valid_states = [{}, {1: {"x": 10, "y": 20}}]
        c.issue_add(1, {"x": 10, "y": 20})
        for _ in range(4):
            snap = c.read().snapshot()
            assert snap in valid_states
            c.read().check_invariants()
            c.tick()
        assert c.read().snapshot() == valid_states[1]

    def test_write_latency_constant(self):
        assert WRITE_LATENCY_CYCLES == 2
