"""Tests for the analytical area/clock model against Tables 1-4 (section 6)."""

import pytest

from repro.core import area
from repro.errors import ConfigurationError


class TestTable1SMBM:
    @pytest.mark.parametrize("m,n", list(area.PAPER_TABLE1))
    def test_area_within_tolerance(self, m, n):
        paper_area, _ = area.PAPER_TABLE1[(m, n)]
        assert area.smbm_area_mm2(n, m) == pytest.approx(paper_area, rel=0.20)

    @pytest.mark.parametrize("m,n", list(area.PAPER_TABLE1))
    def test_clock_within_tolerance(self, m, n):
        _, paper_clock = area.PAPER_TABLE1[(m, n)]
        assert area.smbm_clock_ghz(n, m) == pytest.approx(paper_clock, rel=0.20)

    def test_area_monotone_in_n_and_m(self):
        assert area.smbm_area_mm2(256, 4) > area.smbm_area_mm2(128, 4)
        assert area.smbm_area_mm2(128, 8) > area.smbm_area_mm2(128, 4)

    def test_clock_falls_with_n(self):
        assert area.smbm_clock_ghz(512, 4) < area.smbm_clock_ghz(64, 4)

    def test_meets_1ghz_at_all_published_sizes(self):
        """Section 6: the SMBM runs above the 1 GHz switch clock target."""
        for (m, n) in area.PAPER_TABLE1:
            assert area.smbm_clock_ghz(n, m) > area.TARGET_CLOCK_GHZ


class TestTable2FPUs:
    @pytest.mark.parametrize("n", list(area.PAPER_TABLE2_BFPU))
    def test_bfpu_area(self, n):
        paper_area, _ = area.PAPER_TABLE2_BFPU[n]
        assert area.bfpu_area_mm2(n) == pytest.approx(paper_area, rel=0.15)

    def test_bfpu_area_exactly_linear(self):
        assert area.bfpu_area_mm2(256) == pytest.approx(2 * area.bfpu_area_mm2(128))

    def test_bfpu_clock_flat(self):
        assert area.bfpu_clock_ghz(64) == area.bfpu_clock_ghz(512) == 40.0

    @pytest.mark.parametrize("n", list(area.PAPER_TABLE2_UFPU))
    def test_ufpu_area(self, n):
        paper_area, _ = area.PAPER_TABLE2_UFPU[n]
        assert area.ufpu_area_mm2(n) == pytest.approx(paper_area, rel=0.15)

    @pytest.mark.parametrize("n", list(area.PAPER_TABLE2_UFPU))
    def test_ufpu_clock_exact_at_published_points(self, n):
        _, paper_clock = area.PAPER_TABLE2_UFPU[n]
        assert area.ufpu_clock_ghz(n) == pytest.approx(paper_clock, rel=0.01)

    def test_ufpu_slower_than_bfpu(self):
        """The UFPU (priority encoder) limits the system, never the BFPU."""
        for n in (64, 128, 256, 512):
            assert area.ufpu_clock_ghz(n) < area.bfpu_clock_ghz(n)


class TestTable3Cell:
    @pytest.mark.parametrize("k", list(area.PAPER_TABLE3))
    def test_cell_area(self, k):
        paper_area, _ = area.PAPER_TABLE3[k]
        assert area.cell_area_mm2(k) == pytest.approx(paper_area, rel=0.05)

    @pytest.mark.parametrize("k", list(area.PAPER_TABLE3))
    def test_cell_clock(self, k):
        _, paper_clock = area.PAPER_TABLE3[k]
        assert area.cell_clock_ghz(k) == pytest.approx(paper_clock, rel=0.10)

    def test_cell_area_linear_in_k(self):
        assert area.cell_area_mm2(16) == pytest.approx(8 * area.cell_area_mm2(2))

    def test_cell_clock_independent_of_k(self):
        assert area.cell_clock_ghz(2) == area.cell_clock_ghz(16)


class TestTable4Pipeline:
    @pytest.mark.parametrize("n,k", list(area.PAPER_TABLE4))
    def test_pipeline_area(self, n, k):
        paper_area, _ = area.PAPER_TABLE4[(n, k)]
        assert area.pipeline_area_mm2(n, k) == pytest.approx(paper_area, rel=0.10)

    @pytest.mark.parametrize("n,k", list(area.PAPER_TABLE4))
    def test_pipeline_clock_matches_cell(self, n, k):
        _, paper_clock = area.PAPER_TABLE4[(n, k)]
        assert area.pipeline_clock_ghz(n, k) == pytest.approx(paper_clock, rel=0.10)

    def test_area_linear_in_n_and_k(self):
        """Section 6: pipeline area increases linearly with both n and k."""
        a44 = area.pipeline_area_mm2(4, 4)
        assert area.pipeline_area_mm2(4, 8) == pytest.approx(2 * a44, rel=0.05)
        assert area.pipeline_area_mm2(8, 4) == pytest.approx(2 * a44, rel=0.06)

    def test_cells_dominate_area(self):
        """Section 6: Cells account for over 90% of the pipeline area."""
        for (n, k) in area.PAPER_TABLE4:
            breakdown = area.pipeline_area_breakdown(n, k)
            assert breakdown["cells"] / breakdown["total"] > 0.90

    def test_clock_independent_of_n_and_k(self):
        clocks = {area.pipeline_clock_ghz(n, k) for (n, k) in area.PAPER_TABLE4}
        assert len(clocks) == 1

    def test_clock_twice_state_of_the_art(self):
        """Section 6: the pipeline runs at twice the 1 GHz switch clock."""
        assert area.pipeline_clock_ghz(8, 8) >= 2 * area.TARGET_CLOCK_GHZ

    def test_8x8_overhead_fraction(self):
        """Section 6: even an 8x8 pipeline costs only ~0.15-0.3% chip area."""
        worst, best = area.chip_overhead_percent(area.pipeline_area_mm2(8, 8))
        assert worst < 0.45
        assert best < 0.20

    def test_odd_n_rejected(self):
        with pytest.raises(ConfigurationError):
            area.pipeline_area_mm2(3, 2)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            area.smbm_area_mm2(-1, 2)
        with pytest.raises(ConfigurationError):
            area.chip_overhead_percent(-1.0)


class TestScalabilityTradeoff:
    def test_clock_degrades_beyond_thousands(self):
        """Section 6: flip-flop SMBM cannot hold 1 GHz beyond a few 1000s."""
        assert area.smbm_clock_ghz(64, 4) > 4.0
        assert area.smbm_clock_ghz(8192, 4) < area.smbm_clock_ghz(512, 4)
