"""Cycle-accurate integration tests: the section 5 design goals.

"The goal of our hardware design is to have a fully pipelined design that
can process a new data packet every clock cycle, while incurring only a
small, and more importantly, deterministic processing latency."
"""

import random

from repro.core.compiler import PolicyCompiler
from repro.core.pipeline import ClockedFilterPipeline, PipelineParams
from repro.core.policy import Policy, TableRef, min_of, predicate
from repro.core.smbm import SMBM, ClockedSMBM


def build_smbm(n=16, seed=1):
    rng = random.Random(seed)
    smbm = SMBM(n, ["x"])
    for rid in range(n):
        smbm.add(rid, {"x": rng.randrange(1000)})
    return smbm


def compiled_min(params):
    compiler = PolicyCompiler(params)
    return compiler.compile(Policy(min_of(TableRef(), "x")))


class TestDeterministicLatency:
    def test_output_emerges_after_exact_latency(self):
        params = PipelineParams(n=2, k=2, f=2, chain_length=2)
        compiled = compiled_min(params)
        clocked = ClockedFilterPipeline(params, compiled.config)
        smbm = build_smbm()
        clocked.issue(smbm)
        outputs = []
        for _ in range(params.latency_cycles):
            outputs.append(clocked.tick())
        assert all(out is None for out in outputs[:-1])
        assert outputs[-1] is not None

    def test_latency_matches_formula(self):
        for n, k, chain in [(2, 1, 1), (4, 3, 4), (8, 2, 2)]:
            params = PipelineParams(n=n, k=k, f=2, chain_length=chain)
            assert params.latency_cycles == k * (2 * chain + 1)


class TestLineRate:
    def test_one_packet_per_cycle_sustained(self):
        """Issue a packet every cycle; outputs retire once per cycle, in
        order, after the fill latency."""
        params = PipelineParams(n=2, k=1, f=2, chain_length=1)
        compiled = compiled_min(params)
        clocked = ClockedFilterPipeline(params, compiled.config)
        smbm = build_smbm()
        packets = 20
        retired = 0
        for cycle in range(packets + params.latency_cycles):
            if cycle < packets:
                clocked.issue(smbm)
            out = clocked.tick()
            if out is not None:
                retired += 1
        assert retired == packets

    def test_occupancy_tracks_in_flight_packets(self):
        params = PipelineParams(n=2, k=2, f=2, chain_length=2)
        compiled = compiled_min(params)
        clocked = ClockedFilterPipeline(params, compiled.config)
        smbm = build_smbm()
        for _ in range(3):
            clocked.issue(smbm)
            clocked.tick()
        assert clocked.occupancy() == 3


class TestConcurrentWrites:
    def test_packets_see_issue_time_snapshot(self):
        """A packet's result reflects the table at issue time, even when
        the table is rewritten while the packet is in flight."""
        params = PipelineParams(n=2, k=2, f=2, chain_length=2)
        compiled = compiled_min(params)
        clocked = ClockedFilterPipeline(params, compiled.config)
        smbm = SMBM(8, ["x"])
        smbm.add(0, {"x": 100})
        smbm.add(1, {"x": 50})

        clocked.issue(smbm)  # min is id 1
        clocked.tick()
        smbm.update(1, {"x": 900})  # in-flight table change
        results = []
        for _ in range(params.latency_cycles):
            out = clocked.tick()
            if out is not None:
                results.append(out)
        line = compiled.output_line
        assert set(results[0][line].indices()) == {1}

        # A packet issued after the write sees the new minimum.
        clocked.issue(smbm)
        for _ in range(params.latency_cycles):
            out = clocked.tick()
        assert set(out[line].indices()) == {0}

    def test_full_switch_cadence(self):
        """SMBM write pipeline and filter pipeline driven off one clock:
        probes and data packets interleave, every component ticks."""
        params = PipelineParams(n=2, k=1, f=2, chain_length=1)
        compiled = compiled_min(params)
        clocked = ClockedFilterPipeline(params, compiled.config)
        table = ClockedSMBM(8, ["x"])
        rng = random.Random(4)

        outputs = []
        for cycle in range(60):
            if cycle % 3 == 0:  # a probe arrives: update some resource
                rid = rng.randrange(8)
                if rid in table.read():
                    table.issue_delete(rid)
                else:
                    table.issue_add(rid, {"x": rng.randrange(100)})
            if len(table.read()) > 0:
                clocked.issue(table.read())
            out = clocked.tick()
            table.tick()
            if out is not None:
                outputs.append(out)
            table.read().check_invariants()
        assert outputs  # data kept flowing throughout
