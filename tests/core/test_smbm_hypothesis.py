"""Property-based SMBM tests (hypothesis): random write sequences preserve
sortedness and bidirectional-map consistency, and the fast-path MetricIndex
always agrees with a naive scan of the sorted lists."""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.operators import RelOp  # noqa: E402
from repro.core.smbm import SMBM  # noqa: E402

CAP = 16
METRICS = ("a", "b")
VALUE_RANGE = 8  # tiny range: lots of FIFO ties in the sorted lists

# One SMBM write: (resource id, op selector, metric values).
_write = st.tuples(
    st.integers(0, CAP - 1),
    st.sampled_from(["add", "update", "delete"]),
    st.tuples(st.integers(0, VALUE_RANGE - 1), st.integers(0, VALUE_RANGE - 1)),
)
_writes = st.lists(_write, max_size=80)


def _apply(smbm: SMBM, model: dict[int, dict[str, int]],
           rid: int, op: str, values: tuple[int, int]) -> None:
    """Apply one write to both the SMBM and the plain-dict model."""
    metrics = dict(zip(METRICS, values))
    if op == "delete":
        smbm.delete(rid)  # the paper's delete: no-op when absent
        model.pop(rid, None)
    elif op == "add" and rid not in model and len(model) < CAP:
        smbm.add(rid, metrics)
        model[rid] = metrics
    elif rid in model:  # add on present / update on present -> update
        smbm.update(rid, metrics)
        model[rid] = metrics
    # add on a full table / update on absent: skipped, not part of the API


class TestWriteSequences:
    @given(_writes)
    def test_invariants_and_model_agreement(self, writes):
        smbm = SMBM(CAP, METRICS)
        model: dict[int, dict[str, int]] = {}
        for rid, op, values in writes:
            _apply(smbm, model, rid, op, values)
            smbm.check_invariants()
        assert smbm.snapshot() == model
        assert len(smbm) == len(model)
        assert smbm.ids() == sorted(model)
        assert smbm.id_mask() == sum(1 << rid for rid in model)

    @given(_writes)
    def test_dimension_lists_stay_sorted_with_fifo_ties(self, writes):
        smbm = SMBM(CAP, METRICS)
        model: dict[int, dict[str, int]] = {}
        for rid, op, values in writes:
            _apply(smbm, model, rid, op, values)
            for metric in METRICS:
                entries = smbm.attr_list(metric)
                assert [v for v, _ in entries] == sorted(
                    v for v, _ in entries
                ), f"{metric} list lost sortedness"
                assert {rid_ for _, rid_ in entries} == set(model)

    @given(_writes)
    def test_bidirectional_pointers_round_trip(self, writes):
        smbm = SMBM(CAP, METRICS)
        model: dict[int, dict[str, int]] = {}
        for rid, op, values in writes:
            _apply(smbm, model, rid, op, values)
        for metric in METRICS:
            entries = smbm.attr_list(metric)
            for rid in model:
                # forward map: id -> value matches the model
                assert smbm.metric_of(rid, metric) == model[rid][metric]
                # reverse map: id -> rank lands on this id's entry
                rank = smbm.rank_of(rid, metric)
                assert entries[rank] == (model[rid][metric], rid)

    @given(_writes)
    def test_version_moves_exactly_with_committed_writes(self, writes):
        smbm = SMBM(CAP, METRICS)
        model: dict[int, dict[str, int]] = {}
        for rid, op, values in writes:
            before = smbm.version
            size_before = len(model)
            present = rid in model
            _apply(smbm, model, rid, op, values)
            delta = smbm.version - before
            if op == "delete":
                assert delta == (1 if present else 0)
            elif present:
                assert delta == 2  # update = delete + add
            elif len(model) > size_before:
                assert delta == 1  # committed add
            else:
                assert delta == 0  # rejected (full table)


class TestMetricIndexAgainstNaiveScan:
    @given(
        _writes,
        st.sampled_from(METRICS),
        st.sampled_from(list(RelOp)),
        st.integers(-2, VALUE_RANGE + 2),
        st.integers(0, 2 ** CAP - 1),
    )
    @settings(max_examples=200)
    def test_masks_match_naive_scan(self, writes, metric, rel, val, inp):
        smbm = SMBM(CAP, METRICS)
        model: dict[int, dict[str, int]] = {}
        for rid, op, values in writes:
            _apply(smbm, model, rid, op, values)
        index = smbm.metric_index(metric)
        entries = smbm.attr_list(metric)

        expect = 0
        for value, rid in entries:
            if rel.apply(value, val) and (inp >> rid) & 1:
                expect |= 1 << rid
        assert index.predicate_mask(rel, val, inp) == expect

        live_ranks = [r for r, (_v, rid) in enumerate(entries)
                      if (inp >> rid) & 1]
        assert index.min_mask(inp) == (
            1 << entries[live_ranks[0]][1] if live_ranks else 0
        )
        assert index.max_mask(inp) == (
            1 << entries[live_ranks[-1]][1] if live_ranks else 0
        )

    @given(_writes, st.sampled_from(METRICS))
    def test_index_is_reused_until_the_next_write(self, writes, metric):
        smbm = SMBM(CAP, METRICS)
        model: dict[int, dict[str, int]] = {}
        for rid, op, values in writes:
            _apply(smbm, model, rid, op, values)
        first = smbm.metric_index(metric)
        assert smbm.metric_index(metric) is first  # version unchanged
        if len(model) < CAP:
            free = next(r for r in range(CAP) if r not in model)
            smbm.add(free, {m: 0 for m in METRICS})
            assert smbm.metric_index(metric) is not first


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
