"""Tests for LFSR, priority encoders, and the clocked-pipeline harness."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bitvector import BitVector
from repro.core.clocked import Clock, PipelineLatch
from repro.core.lfsr import LFSR, MAXIMAL_TAPS
from repro.core.priority_encoder import (
    encode_cyclic,
    encode_first,
    encode_last,
    encoder_depth,
)
from repro.errors import ConfigurationError, SimulationError


class TestLFSR:
    def test_zero_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            LFSR(8, seed=0)

    def test_unknown_width_rejected(self):
        with pytest.raises(ConfigurationError):
            LFSR(3)

    def test_state_never_zero(self):
        lfsr = LFSR(4, seed=5)
        for _ in range(64):
            assert lfsr.step() != 0

    @pytest.mark.parametrize("width", [4, 5, 6, 7, 8])
    def test_maximal_period(self, width):
        """A maximal-length LFSR visits every non-zero state exactly once."""
        lfsr = LFSR(width, seed=1)
        seen = set()
        for _ in range(lfsr.period()):
            seen.add(lfsr.step())
        assert len(seen) == (1 << width) - 1

    def test_sample_in_range(self):
        lfsr = LFSR(8, seed=7)
        for _ in range(100):
            assert 0 <= lfsr.sample(13) < 13

    def test_sample_bad_range(self):
        with pytest.raises(ConfigurationError):
            LFSR(8).sample(0)

    def test_deterministic_given_seed(self):
        a, b = LFSR(16, seed=42), LFSR(16, seed=42)
        assert [a.step() for _ in range(20)] == [b.step() for _ in range(20)]

    def test_all_documented_widths_construct(self):
        for width in MAXIMAL_TAPS:
            LFSR(width).step()

    def test_sample_roughly_uniform(self):
        lfsr = LFSR(16, seed=3)
        counts = [0] * 8
        draws = 8000
        for _ in range(draws):
            counts[lfsr.sample(8)] += 1
        for c in counts:
            assert abs(c - draws / 8) < draws / 8 * 0.25


class TestPriorityEncoder:
    def test_first_last(self):
        v = BitVector.from_indices(16, [4, 9])
        assert encode_first(v) == 4
        assert encode_last(v) == 9

    def test_cyclic(self):
        v = BitVector.from_indices(16, [4, 9])
        assert encode_cyclic(v, 5) == 9
        assert encode_cyclic(v, 10) == 4

    def test_empty_returns_none(self):
        v = BitVector.zeros(8)
        assert encode_first(v) is None
        assert encode_last(v) is None
        assert encode_cyclic(v, 3) is None

    @pytest.mark.parametrize(
        "width,depth", [(1, 1), (2, 1), (4, 2), (64, 6), (128, 7), (100, 7)]
    )
    def test_encoder_depth(self, width, depth):
        assert encoder_depth(width) == depth


class TestPipelineLatch:
    def test_latency_is_exact(self):
        latch = PipelineLatch(3)
        latch.issue("x")
        assert latch.tick() is None
        assert latch.tick() is None
        assert latch.tick() == "x"

    def test_fully_pipelined_one_per_cycle(self):
        """A new item can be issued every cycle; each retires `latency` later."""
        latch = PipelineLatch(2)
        outputs = []
        for i in range(10):
            latch.issue(i)
            outputs.append(latch.tick())
        # Item issued at cycle i retires on the tick completing cycle i+1
        # (two cycles of processing: issue cycle + one more).
        assert outputs == [None, 0, 1, 2, 3, 4, 5, 6, 7, 8]

    def test_double_issue_same_cycle_rejected(self):
        latch = PipelineLatch(2)
        latch.issue(1)
        with pytest.raises(SimulationError):
            latch.issue(2)

    def test_occupancy(self):
        latch = PipelineLatch(3)
        latch.issue("a")
        latch.tick()
        latch.issue("b")
        latch.tick()
        assert latch.occupancy() == 2

    def test_zero_latency_rejected(self):
        with pytest.raises(SimulationError):
            PipelineLatch(0)

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=40))
    def test_retirement_order_preserved(self, latency, count):
        latch = PipelineLatch(latency)
        got = []
        for i in range(count + latency):
            if i < count:
                latch.issue(i)
            out = latch.tick()
            if out is not None:
                got.append(out)
        assert got == list(range(count))


class TestClock:
    def test_drives_components_in_order(self):
        order = []

        class Comp:
            def __init__(self, name):
                self.name = name

            def tick(self):
                order.append(self.name)

        clk = Clock()
        clk.register(Comp("a"))
        clk.register(Comp("b"))
        clk.step(2)
        assert order == ["a", "b", "a", "b"]
        assert clk.cycle == 2

    def test_negative_step_rejected(self):
        with pytest.raises(SimulationError):
            Clock().step(-1)
