"""Advanced compiler features: explicit inputs, taps, feedback chains."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitvector import BitVector
from repro.core.compiler import PolicyCompiler
from repro.core.operators import RelOp
from repro.core.pipeline import PipelineParams
from repro.core.policy import (
    Policy,
    PolicyInterpreter,
    TableRef,
    intersection,
    min_of,
    predicate,
    union,
)
from repro.core.smbm import SMBM
from repro.errors import CompilationError, ConfigurationError

PARAMS = PipelineParams(n=4, k=3, f=2, chain_length=4)


def build_smbm(values: dict[int, int], cap=16) -> SMBM:
    smbm = SMBM(cap, ["x"])
    for rid, x in values.items():
        smbm.add(rid, {"x": x})
    return smbm


class TestExplicitInputs:
    def test_explicit_input_flows_through(self):
        policy = Policy(min_of(TableRef(input_index=1), "x"))
        compiled = PolicyCompiler(PARAMS).compile(policy)
        smbm = build_smbm({0: 5, 1: 3, 2: 9, 3: 1})
        subset = BitVector.from_indices(16, [0, 2])
        out = compiled.evaluate(smbm, {1: subset})
        assert set(out.indices()) == {0}  # min of the supplied subset only

    def test_without_extra_input_line_carries_full_table(self):
        policy = Policy(min_of(TableRef(input_index=1), "x"))
        compiled = PolicyCompiler(PARAMS).compile(policy)
        smbm = build_smbm({0: 5, 3: 1})
        out = compiled.evaluate(smbm)  # default: full table on every line
        assert set(out.indices()) == {3}

    def test_interpreter_requires_declared_inputs(self):
        policy = Policy(min_of(TableRef(input_index=1), "x"))
        interp = PolicyInterpreter(policy)
        smbm = build_smbm({0: 5})
        with pytest.raises(ConfigurationError):
            interp.evaluate(smbm)
        out = interp.evaluate(smbm, {1: BitVector.from_indices(16, [0])})
        assert set(out.indices()) == {0}

    def test_out_of_range_input_index_rejected(self):
        policy = Policy(min_of(TableRef(input_index=7), "x"))
        with pytest.raises(CompilationError):
            PolicyCompiler(PARAMS).compile(policy)

    def test_reserved_line_not_used_for_full_table(self):
        """'Any table' taps must avoid lines the caller will overwrite."""
        explicit = TableRef(input_index=0)
        policy = Policy(
            union(min_of(explicit, "x"), min_of(TableRef(), "x"))
        )
        compiled = PolicyCompiler(PARAMS).compile(policy)
        smbm = build_smbm({0: 5, 1: 3, 2: 9})
        empty = BitVector.zeros(16)
        out = compiled.evaluate(smbm, {0: empty})
        # The explicit branch sees nothing; the implicit branch must still
        # see the full table (id 1 is its min).
        assert set(out.indices()) == {1}

    def test_extra_input_bad_index_at_runtime(self):
        policy = Policy(min_of(TableRef(), "x"))
        compiled = PolicyCompiler(PARAMS).compile(policy)
        smbm = build_smbm({0: 5})
        with pytest.raises(ConfigurationError):
            compiled.evaluate(smbm, {9: BitVector.zeros(16)})

    @given(
        st.dictionaries(st.integers(min_value=0, max_value=15),
                        st.integers(min_value=0, max_value=99), min_size=1,
                        max_size=16),
        st.sets(st.integers(min_value=0, max_value=15)),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_compiled_equals_interpreted_with_inputs(self, rows, subset):
        policy = Policy(
            intersection(
                predicate(TableRef(), "x", "<", 50),
                min_of(TableRef(input_index=1), "x", k=2),
            )
        )
        compiled = PolicyCompiler(PARAMS).compile(policy)
        interp = PolicyInterpreter(policy)
        smbm = build_smbm(rows)
        extra = {1: BitVector.from_indices(16, subset & set(rows))}
        assert compiled.evaluate(smbm, extra) == interp.evaluate(smbm, extra)


class TestTaps:
    def test_tap_exposes_interior_value(self):
        t = TableRef()
        inner = predicate(t, "x", "<", 50)
        policy = Policy(min_of(inner, "x"))
        compiled = PolicyCompiler(PARAMS).compile(policy, taps={"inner": inner})
        smbm = build_smbm({0: 10, 1: 60, 2: 30})
        out, taps = compiled.evaluate_with_taps(smbm)
        assert set(out.indices()) == {0}
        assert set(taps["inner"].indices()) == {0, 2}

    def test_tap_lines_recorded(self):
        t = TableRef()
        inner = predicate(t, "x", "<", 50)
        compiled = PolicyCompiler(PARAMS).compile(
            Policy(min_of(inner, "x")), taps={"inner": inner}
        )
        assert "inner" in compiled.tap_lines

    def test_feedback_loop_drill_style(self):
        """Previous output fed back as next decision's input: the chain
        converges on the global minimum."""
        from repro.core.policy import random_pick, union as u

        prev_ref = TableRef(input_index=1)
        examined = u(random_pick(TableRef(), k=2), min_of(prev_ref, "x", k=1))
        policy = Policy(min_of(examined, "x"))
        compiled = PolicyCompiler(PARAMS).compile(
            policy, taps={"examined": examined}
        )
        smbm = build_smbm({i: 100 - i for i in range(10)})
        prev = BitVector.zeros(16)
        picked_values = []
        for _ in range(40):
            out, taps = compiled.evaluate_with_taps(smbm, {1: prev})
            prev = taps["examined"]
            picked_values.append(smbm.metric_of(out.first_set(), "x"))
        # The m=1 memory keeps the best port seen so far, so the picked
        # metric never gets worse — the defining property of DRILL's memory.
        assert all(b <= a for a, b in zip(picked_values, picked_values[1:]))
        assert picked_values[-1] < picked_values[0] or picked_values[0] == 91


class TestExternalMuxSelect:
    """Section 4.2.3's general conditional: the RMT stage can drive the MUX
    select from any predicate, not just the primary-non-empty check."""

    def test_mux_select_override(self):
        from repro.core.policy import Conditional, max_of

        policy = Policy(
            Conditional(min_of(TableRef(), "x"), max_of(TableRef(), "x"))
        )
        compiled = PolicyCompiler(PARAMS).compile(policy)
        smbm = build_smbm({0: 1, 1: 9})
        # Default: primary (min) is non-empty, so it wins.
        assert compiled.select(smbm) == 0
        # Externally computed predicate says "take the else branch".
        assert compiled.select(smbm, mux_select=False) == 1
        # And force-primary behaves like the default here.
        assert compiled.select(smbm, mux_select=True) == 0

    def test_mux_select_ignored_without_conditional(self):
        policy = Policy(min_of(TableRef(), "x"))
        compiled = PolicyCompiler(PARAMS).compile(policy)
        smbm = build_smbm({0: 1, 1: 9})
        assert compiled.select(smbm, mux_select=False) == 0


class TestBinaryNoOpMux:
    """The binary no-op (a 2:1 MUX, section 4.1.2) inside a compiled chain."""

    def test_mux_selects_configured_input(self):
        from repro.core.operators import BinaryOp
        from repro.core.policy import Binary, max_of

        left = min_of(TableRef(), "x")
        right = max_of(TableRef(), "x")
        smbm = build_smbm({0: 1, 1: 9})
        for choice, expected in ((0, {0}), (1, {1})):
            policy = Policy(Binary(opcode=BinaryOp.NO_OP, left=left_copy(),
                                   right=right_copy(), choice=choice))
            compiled = PolicyCompiler(PARAMS).compile(policy)
            assert set(compiled.evaluate(smbm).indices()) == expected


def left_copy():
    return min_of(TableRef(), "x")


def right_copy():
    from repro.core.policy import max_of

    return max_of(TableRef(), "x")
