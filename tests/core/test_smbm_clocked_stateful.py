"""Stateful property test for the clocked SMBM write pipeline.

Random interleavings of issued writes and per-cycle reads must preserve:
* exactly-2-cycle latency per write,
* one commit per cycle in issue order,
* reads always observing a consistent (never torn) committed prefix.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core.smbm import SMBM, ClockedSMBM


class ClockedSMBMMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.clocked = ClockedSMBM(8, ["x"])
        # The model: a queue of issued-but-uncommitted ops plus a shadow
        # functional SMBM tracking what must be committed so far.
        self.pending: list[tuple[str, int, int | None, int]] = []  # op,rid,x,issue_cycle
        self.shadow = SMBM(8, ["x"])
        self.issued_this_cycle = False

    def _apply_to_shadow(self, kind, rid, x):
        if kind == "add":
            if rid not in self.shadow and not self.shadow.is_full():
                self.shadow.add(rid, {"x": x})
        else:
            self.shadow.delete(rid)

    @precondition(lambda self: not self.issued_this_cycle)
    @rule(rid=st.integers(min_value=0, max_value=7),
          x=st.integers(min_value=0, max_value=99))
    def issue_add(self, rid, x):
        # Only issue adds that will be legal at commit time given the
        # already-pending ops (hardware control logic guarantees this).
        future = {r for r in self.shadow.ids()}
        for kind, prid, _px, _c in self.pending:
            if kind == "add":
                future.add(prid)
            else:
                future.discard(prid)
        if rid in future or len(future) >= 8:
            return
        self.clocked.issue_add(rid, {"x": x})
        self.pending.append(("add", rid, x, self.clocked.cycle))
        self.issued_this_cycle = True

    @precondition(lambda self: not self.issued_this_cycle)
    @rule(rid=st.integers(min_value=0, max_value=7))
    def issue_delete(self, rid):
        self.clocked.issue_delete(rid)
        self.pending.append(("delete", rid, None, self.clocked.cycle))
        self.issued_this_cycle = True

    @rule()
    def tick(self):
        cycle_before = self.clocked.cycle
        self.clocked.tick()
        self.issued_this_cycle = False
        # Any op issued exactly 2 cycles ago commits on this tick.
        if self.pending and cycle_before - self.pending[0][3] >= 1:
            kind, rid, x, _c = self.pending.pop(0)
            self._apply_to_shadow(kind, rid, x)

    @invariant()
    def read_matches_committed_prefix(self):
        assert self.clocked.read().snapshot() == self.shadow.snapshot()

    @invariant()
    def structure_always_consistent(self):
        self.clocked.read().check_invariants()


TestClockedSMBMStateful = ClockedSMBMMachine.TestCase
TestClockedSMBMStateful.settings = settings(
    max_examples=25, stateful_step_count=50, deadline=None
)
