"""Unit and property tests for the bit-vector table encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bitvector import BitVector
from repro.errors import ConfigurationError


class TestConstruction:
    def test_zeros_has_no_bits_set(self):
        assert BitVector.zeros(16).popcount() == 0

    def test_ones_has_all_bits_set(self):
        assert BitVector.ones(16).popcount() == 16

    def test_from_indices(self):
        v = BitVector.from_indices(8, [0, 3, 7])
        assert sorted(v.indices()) == [0, 3, 7]

    def test_single_is_one_hot(self):
        v = BitVector.single(8, 5)
        assert v.popcount() == 1
        assert v[5]

    def test_zero_width_rejected(self):
        with pytest.raises(ConfigurationError):
            BitVector(0)

    def test_negative_width_rejected(self):
        with pytest.raises(ConfigurationError):
            BitVector(-4)

    def test_oversized_value_rejected(self):
        with pytest.raises(ConfigurationError):
            BitVector(4, 0x10)

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ConfigurationError):
            BitVector.from_indices(4, [4])


class TestAccess:
    def test_get_set_roundtrip(self):
        v = BitVector.zeros(8)
        v[3] = True
        assert v[3]
        v[3] = False
        assert not v[3]

    def test_getitem_bounds(self):
        v = BitVector.zeros(8)
        with pytest.raises(IndexError):
            _ = v[8]
        with pytest.raises(IndexError):
            _ = v[-1]

    def test_iter_yields_width_bits(self):
        v = BitVector.from_indices(5, [1, 4])
        assert list(v) == [False, True, False, False, True]

    def test_is_empty(self):
        assert BitVector.zeros(4).is_empty()
        assert not BitVector.single(4, 0).is_empty()

    def test_copy_is_independent(self):
        v = BitVector.single(8, 2)
        w = v.copy()
        w[2] = False
        assert v[2] and not w[2]


class TestPriorityEncoding:
    def test_first_set(self):
        assert BitVector.from_indices(8, [3, 6]).first_set() == 3

    def test_last_set(self):
        assert BitVector.from_indices(8, [3, 6]).last_set() == 6

    def test_first_set_empty_is_none(self):
        assert BitVector.zeros(8).first_set() is None
        assert BitVector.zeros(8).last_set() is None

    def test_first_set_from_no_wrap(self):
        v = BitVector.from_indices(8, [2, 5])
        assert v.first_set_from(3) == 5

    def test_first_set_from_wraps(self):
        v = BitVector.from_indices(8, [2, 5])
        assert v.first_set_from(6) == 2

    def test_first_set_from_hits_start(self):
        v = BitVector.from_indices(8, [4])
        assert v.first_set_from(4) == 4

    def test_first_set_from_empty(self):
        assert BitVector.zeros(8).first_set_from(0) is None

    def test_first_set_from_bounds(self):
        with pytest.raises(IndexError):
            BitVector.zeros(8).first_set_from(8)


class TestSetOperations:
    def test_union(self):
        a = BitVector.from_indices(8, [1, 2])
        b = BitVector.from_indices(8, [2, 3])
        assert sorted((a | b).indices()) == [1, 2, 3]

    def test_intersection(self):
        a = BitVector.from_indices(8, [1, 2])
        b = BitVector.from_indices(8, [2, 3])
        assert sorted((a & b).indices()) == [2]

    def test_difference(self):
        a = BitVector.from_indices(8, [1, 2])
        b = BitVector.from_indices(8, [2, 3])
        assert sorted((a - b).indices()) == [1]

    def test_invert(self):
        v = BitVector.from_indices(4, [0, 2])
        assert sorted((~v).indices()) == [1, 3]

    def test_width_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            BitVector.zeros(4) | BitVector.zeros(8)

    def test_equality(self):
        assert BitVector.from_indices(8, [1]) == BitVector.single(8, 1)
        assert BitVector.zeros(8) != BitVector.zeros(4)


idx_sets = st.sets(st.integers(min_value=0, max_value=63), max_size=64)


class TestProperties:
    @given(idx_sets, idx_sets)
    def test_ops_agree_with_python_sets(self, a, b):
        va, vb = BitVector.from_indices(64, a), BitVector.from_indices(64, b)
        assert set((va | vb).indices()) == a | b
        assert set((va & vb).indices()) == a & b
        assert set((va - vb).indices()) == a - b

    @given(idx_sets)
    def test_first_last_match_min_max(self, a):
        v = BitVector.from_indices(64, a)
        assert v.first_set() == (min(a) if a else None)
        assert v.last_set() == (max(a) if a else None)

    @given(idx_sets, st.integers(min_value=0, max_value=63))
    def test_cyclic_encoder_reference(self, a, start):
        v = BitVector.from_indices(64, a)
        got = v.first_set_from(start)
        expect = None
        for off in range(64):
            i = (start + off) % 64
            if i in a:
                expect = i
                break
        assert got == expect

    @given(idx_sets)
    def test_double_invert_is_identity(self, a):
        v = BitVector.from_indices(64, a)
        assert ~~v == v

    @given(idx_sets)
    def test_popcount(self, a):
        assert BitVector.from_indices(64, a).popcount() == len(a)
