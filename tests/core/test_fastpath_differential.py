"""Differential tests: mask-engine fast path vs the O(N) reference path.

Seeded-random sequences of SMBM writes interleaved with random predicates,
selectors and whole policies, asserting after every step that

* the fast path and the reference path produce bit-identical outputs,
* :meth:`SMBM.check_invariants` holds after every write (including the
  fast-path index/bitmask consistency checks),
* the version counter moves exactly with committed writes, and
* :class:`FilterModule` memoization serves unchanged tables from cache and
  invalidates on writes.

Together the suites below cover well over 1000 randomized (write x policy)
cases per run.
"""

from __future__ import annotations

import random

import pytest

from repro.core.bitvector import BitVector
from repro.core.compiler import PolicyCompiler
from repro.core.operators import RelOp, UnaryOp
from repro.core.pipeline import PipelineParams
from repro.core.policy import (
    Node,
    Policy,
    TableRef,
    difference,
    intersection,
    max_of,
    min_of,
    predicate,
    random_pick,
    round_robin,
    union,
)
from repro.core.smbm import SMBM
from repro.core.ufpu import UFPU, UnaryConfig
from repro.errors import CompilationError
from repro.switch.filter_module import FilterModule

CAP = 32
METRICS = ("a", "b")
# Small value range so sorted lists contain plenty of FIFO ties.
VALUE_RANGE = 16


def _random_write(rng: random.Random, smbm: SMBM) -> None:
    """One random add/delete/update keeping the table partially full."""
    rid = rng.randrange(CAP)
    metrics = {m: rng.randrange(VALUE_RANGE) for m in METRICS}
    if rid in smbm:
        if rng.random() < 0.5:
            smbm.delete(rid)
        else:
            smbm.update(rid, metrics)
    elif not smbm.is_full():
        smbm.add(rid, metrics)
    else:
        smbm.delete(rid)


def _random_input(rng: random.Random) -> BitVector:
    return BitVector.from_int(CAP, rng.getrandbits(CAP))


def _random_selector_config(rng: random.Random) -> UnaryConfig:
    attr = rng.choice(METRICS)
    kind = rng.randrange(3)
    if kind == 0:
        return UnaryConfig(
            UnaryOp.PREDICATE,
            attr=attr,
            rel_op=rng.choice(list(RelOp)),
            val=rng.randrange(-2, VALUE_RANGE + 2),
        )
    return UnaryConfig(UnaryOp.MIN if kind == 1 else UnaryOp.MAX, attr=attr)


class TestMaskEngineVsBruteForce:
    """MetricIndex masks against a direct Python scan of the sorted list."""

    def test_predicate_min_max_masks(self):
        rng = random.Random(0xA5A5)
        smbm = SMBM(CAP, METRICS)
        for step in range(300):
            _random_write(rng, smbm)
            smbm.check_invariants()
            metric = rng.choice(METRICS)
            index = smbm.metric_index(metric)
            entries = smbm.attr_list(metric)
            inp = rng.getrandbits(CAP)

            rel = rng.choice(list(RelOp))
            val = rng.randrange(-2, VALUE_RANGE + 2)
            expect = 0
            for value, rid in entries:
                if rel.apply(value, val) and (inp >> rid) & 1:
                    expect |= 1 << rid
            assert index.predicate_mask(rel, val, inp) == expect, (
                f"step {step}: predicate({metric} {rel} {val}) mismatch"
            )

            valid_ranks = [r for r, (_v, rid) in enumerate(entries)
                           if (inp >> rid) & 1]
            expect_min = 1 << entries[valid_ranks[0]][1] if valid_ranks else 0
            expect_max = 1 << entries[valid_ranks[-1]][1] if valid_ranks else 0
            assert index.min_mask(inp) == expect_min, f"step {step}: min mismatch"
            assert index.max_mask(inp) == expect_max, f"step {step}: max mismatch"


class TestUFPUFastVsReference:
    """Unit-level differential: >= 1000 randomized (write x operator) cases."""

    def test_randomized_cases(self):
        rng = random.Random(0xF117)
        smbm = SMBM(CAP, METRICS)
        cases = 0
        for _ in range(400):
            _random_write(rng, smbm)
            smbm.check_invariants()
            for _ in range(3):
                config = _random_selector_config(rng)
                inp = _random_input(rng)
                fast = UFPU(config).evaluate(inp, smbm)
                ref = UFPU(config, naive=True).evaluate(inp, smbm)
                assert fast == ref, (
                    f"fast/reference disagree for {config.describe()} on "
                    f"input {inp!r}"
                )
                cases += 1
        assert cases >= 1000


def _random_policy_node(rng: random.Random, depth: int) -> Node:
    if depth <= 0 or rng.random() < 0.35:
        cfg = _random_selector_config(rng)
        child = TableRef()
        if cfg.opcode is UnaryOp.PREDICATE:
            return predicate(child, cfg.attr, cfg.rel_op, cfg.val)
        if cfg.opcode is UnaryOp.MIN:
            return min_of(child, cfg.attr)
        return max_of(child, cfg.attr)
    if rng.random() < 0.6:
        combine = rng.choice([union, intersection, difference])
        return combine(
            _random_policy_node(rng, depth - 1),
            _random_policy_node(rng, depth - 1),
        )
    child = _random_policy_node(rng, depth - 1)
    cfg = _random_selector_config(rng)
    if cfg.opcode is UnaryOp.PREDICATE:
        return predicate(child, cfg.attr, cfg.rel_op, cfg.val)
    if cfg.opcode is UnaryOp.MIN:
        return min_of(child, cfg.attr)
    return max_of(child, cfg.attr)


class TestCompiledPolicyDifferential:
    """Whole-pipeline differential: random policies over an evolving table."""

    def test_random_policies(self):
        rng = random.Random(0xD1FF)
        smbm = SMBM(CAP, METRICS)
        compiler = PolicyCompiler(PipelineParams())
        compiled_cases = 0
        attempts = 0
        while compiled_cases < 60 and attempts < 400:
            attempts += 1
            _random_write(rng, smbm)
            smbm.check_invariants()
            policy = Policy(_random_policy_node(rng, rng.randrange(3)),
                            name=f"rand{attempts}")
            try:
                fast = compiler.compile(policy)
                ref = compiler.compile(policy, naive=True)
            except CompilationError:
                continue  # policy exceeded the physical pipeline; try another
            assert fast.stateless and ref.stateless
            # Several packets per policy, with writes in between.
            for _ in range(3):
                assert fast.evaluate(smbm) == ref.evaluate(smbm), (
                    f"fast/reference pipelines disagree for {policy.name}"
                )
                _random_write(rng, smbm)
                smbm.check_invariants()
            compiled_cases += 1
        assert compiled_cases >= 60, (
            f"only {compiled_cases} random policies compiled in {attempts} tries"
        )


class TestVersionCounter:
    def test_writes_bump_version(self):
        smbm = SMBM(CAP, METRICS)
        v0 = smbm.version
        smbm.add(3, {"a": 1, "b": 2})
        assert smbm.version == v0 + 1
        smbm.delete(3)
        assert smbm.version == v0 + 2

    def test_noop_delete_does_not_bump(self):
        smbm = SMBM(CAP, METRICS)
        v0 = smbm.version
        smbm.delete(7)  # absent: the paper's delete is a no-op
        assert smbm.version == v0

    def test_update_bumps(self):
        smbm = SMBM(CAP, METRICS)
        smbm.add(3, {"a": 1, "b": 2})
        v = smbm.version
        smbm.update(3, {"a": 5, "b": 2})
        assert smbm.version > v

    def test_reads_do_not_bump(self):
        smbm = SMBM(CAP, METRICS)
        smbm.add(3, {"a": 1, "b": 2})
        v = smbm.version
        smbm.id_vector()
        smbm.id_mask()
        smbm.metric_index("a")
        smbm.attr_list("b")
        smbm.check_invariants()
        assert smbm.version == v

    def test_id_mask_matches_id_vector(self):
        rng = random.Random(0x1D)
        smbm = SMBM(CAP, METRICS)
        for _ in range(50):
            _random_write(rng, smbm)
            assert smbm.id_vector().value == smbm.id_mask()


class TestFilterModuleMemoization:
    def _stateless_module(self) -> FilterModule:
        policy = Policy(predicate(TableRef(), "a", RelOp.LT, VALUE_RANGE // 2))
        module = FilterModule(CAP, METRICS, policy)
        for rid in range(8):
            module.update_resource(rid, {"a": rid * 2, "b": rid})
        return module

    def test_unchanged_table_hits_cache(self):
        module = self._stateless_module()
        assert module.memoized
        first = module.evaluate()
        second = module.evaluate()
        assert first == second
        assert module.cache_misses == 1
        assert module.cache_hits == 1
        assert module.evaluations == 2

    def test_write_invalidates(self):
        module = self._stateless_module()
        out = module.evaluate()
        assert module.cache_misses == 1
        # Move resource 0 across the predicate threshold.
        module.update_resource(0, {"a": VALUE_RANGE, "b": 0})
        out2 = module.evaluate()
        assert module.cache_misses == 2
        assert out2 != out
        assert not out2[0]

    def test_returned_vector_is_a_private_copy(self):
        module = self._stateless_module()
        out = module.evaluate()
        out[0] = not out[0]  # caller-side mutation must not corrupt the memo
        fresh = module.evaluate()
        assert fresh != out
        assert module.cache_hits == 1

    def test_stateful_policy_is_never_memoized(self):
        policy = Policy(round_robin(TableRef(), "a"))
        module = FilterModule(CAP, METRICS, policy)
        for rid in range(4):
            module.update_resource(rid, {"a": 1, "b": 0})
        assert not module.memoized
        assert not module.compiled.stateless
        picks = [module.select() for _ in range(4)]
        assert sorted(picks) == [0, 1, 2, 3]  # round-robin advances per packet
        assert module.cache_hits == 0 and module.cache_misses == 0

    def test_memoization_agrees_with_reference_across_writes(self):
        rng = random.Random(0xCAFE)
        policy_fast = Policy(min_of(intersection(
            predicate(TableRef(), "a", RelOp.GE, 2),
            predicate(TableRef(), "b", RelOp.LE, VALUE_RANGE - 2),
        ), "b"))
        module = FilterModule(CAP, METRICS, policy_fast)
        reference = PolicyCompiler().compile(
            Policy(min_of(intersection(
                predicate(TableRef(), "a", RelOp.GE, 2),
                predicate(TableRef(), "b", RelOp.LE, VALUE_RANGE - 2),
            ), "b")),
            naive=True,
        )
        for _ in range(100):
            _random_write(rng, module.smbm)
            module.smbm.check_invariants()
            for _ in range(rng.randrange(1, 4)):  # repeats exercise the memo
                assert module.evaluate() == reference.evaluate(module.smbm)
        assert module.cache_hits > 0
        assert module.cache_misses > 0


def _stateful_builders() -> dict[str, callable]:
    """Policies whose selectors carry per-packet state (round-robin
    pointers, the LFSR); fresh ASTs per call (node ids are identity-based)."""

    def build_rr() -> Policy:
        return Policy(round_robin(TableRef(), "a"), name="rr")

    def build_rr_filtered() -> Policy:
        return Policy(
            round_robin(
                predicate(TableRef(), "a", RelOp.LT, VALUE_RANGE // 2), "a"
            ),
            name="rr-filtered",
        )

    def build_random() -> Policy:
        return Policy(random_pick(TableRef(), 1), name="random-1")

    def build_random_k2() -> Policy:
        return Policy(
            random_pick(predicate(TableRef(), "b", RelOp.GE, 2), 2),
            name="random-k2",
        )

    return {
        "rr": build_rr,
        "rr-filtered": build_rr_filtered,
        "random-1": build_random,
        "random-k2": build_random_k2,
    }


class TestStatefulPolicyDifferential:
    """Stateful selectors against the reference path, packet by packet.

    The naive flag routes the stateless subtrees (predicates, min/max)
    through the O(N) temp-list walk while the stateful selector logic is
    identical, so two pipelines compiled from the same policy with the same
    ``lfsr_seed`` must agree on *every* packet — including how their
    internal state (round-robin pointers, LFSR) advances across interleaved
    table writes.
    """

    def test_stateful_fast_vs_reference_per_packet(self):
        compiler = PolicyCompiler(PipelineParams())
        for seed in (1, 7, 0xACE):
            for name, build in _stateful_builders().items():
                rng = random.Random(seed * 0x9E37 + len(name))
                smbm = SMBM(CAP, METRICS)
                for rid in range(CAP // 2):
                    smbm.add(
                        rid,
                        {m: rng.randrange(VALUE_RANGE) for m in METRICS},
                    )
                fast = compiler.compile(build(), lfsr_seed=seed)
                ref = compiler.compile(build(), lfsr_seed=seed, naive=True)
                assert not fast.stateless and not ref.stateless
                for packet in range(40):
                    out_fast = fast.evaluate(smbm)
                    out_ref = ref.evaluate(smbm)
                    assert out_fast == out_ref, (
                        f"stateful fast/reference diverged: policy {name}, "
                        f"lfsr_seed {seed}, packet {packet}"
                    )
                    if packet % 4 == 3:  # writes between packets
                        _random_write(rng, smbm)
                        smbm.check_invariants()

    def test_round_robin_cycles_all_eligible_resources(self):
        compiler = PolicyCompiler(PipelineParams())
        for naive in (False, True):
            smbm = SMBM(CAP, METRICS)
            for rid in range(6):
                smbm.add(rid, {"a": 1, "b": 0})
            compiled = compiler.compile(
                Policy(round_robin(TableRef(), "a"), name="rr-cycle"),
                naive=naive,
            )
            picks = []
            for _ in range(6):
                out = compiled.evaluate(smbm)
                chosen = [rid for rid in range(CAP) if out[rid]]
                assert len(chosen) == 1
                picks.append(chosen[0])
            assert sorted(picks) == list(range(6)), (
                f"round-robin (naive={naive}) must visit every resource once"
            )

    def test_different_seeds_diverge_identical_seeds_agree(self):
        compiler = PolicyCompiler(PipelineParams())
        smbm = SMBM(CAP, METRICS)
        rng = random.Random(0x5EED)
        for rid in range(CAP):
            smbm.add(rid, {m: rng.randrange(VALUE_RANGE) for m in METRICS})

        def trace(seed: int, naive: bool) -> list:
            compiled = compiler.compile(
                Policy(random_pick(TableRef(), 1), name="rnd"),
                lfsr_seed=seed, naive=naive,
            )
            return [compiled.evaluate(smbm) for _ in range(24)]

        assert trace(3, naive=False) == trace(3, naive=True)
        assert trace(3, naive=False) != trace(11, naive=False), (
            "different LFSR seeds should produce different pick sequences"
        )


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
