"""Tests for the two filter processing units (section 5.2).

The key property: UFPU/BFPU outputs over the bit-vector encoding equal the
reference relational-table operators for every opcode and random inputs.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bfpu import BFPU, BFPU_LATENCY_CYCLES, BinaryConfig, ClockedBFPU
from repro.core.bitvector import BitVector
from repro.core.operators import BinaryOp, RelOp, UnaryOp
from repro.core.smbm import SMBM
from repro.core.table import ResourceTable
from repro.core.ufpu import UFPU, UFPU_LATENCY_CYCLES, ClockedUFPU, UnaryConfig
from repro.errors import ConfigurationError

CAP = 16
METRICS = ("x", "y")


def build_tables(rows: dict[int, tuple[int, int]]):
    smbm = SMBM(CAP, METRICS)
    ref = ResourceTable(CAP, METRICS)
    for rid, (x, y) in rows.items():
        metrics = {"x": x, "y": y}
        smbm.add(rid, metrics)
        ref.add(rid, metrics)
    return smbm, ref


rows_strategy = st.dictionaries(
    st.integers(min_value=0, max_value=CAP - 1),
    st.tuples(
        st.integers(min_value=-50, max_value=50),
        st.integers(min_value=-50, max_value=50),
    ),
    max_size=CAP,
)
subset_strategy = st.sets(st.integers(min_value=0, max_value=CAP - 1))


class TestUnaryConfig:
    def test_predicate_requires_operands(self):
        with pytest.raises(ConfigurationError):
            UnaryConfig(UnaryOp.PREDICATE, attr="x")

    def test_min_requires_attr(self):
        with pytest.raises(ConfigurationError):
            UnaryConfig(UnaryOp.MIN)

    def test_random_takes_no_attr(self):
        with pytest.raises(ConfigurationError):
            UnaryConfig(UnaryOp.RANDOM, attr="x")

    def test_noop_takes_no_operands(self):
        with pytest.raises(ConfigurationError):
            UnaryConfig(UnaryOp.NO_OP, rel_op=RelOp.LT, val=3)

    def test_describe(self):
        cfg = UnaryConfig(UnaryOp.PREDICATE, attr="x", rel_op=RelOp.LT, val=3)
        assert cfg.describe() == "predicate(x < 3)"


class TestNoOp:
    def test_copies_input(self):
        smbm, _ = build_tables({1: (5, 5), 3: (2, 2)})
        inp = BitVector.from_indices(CAP, [1, 3])
        out = UFPU(UnaryConfig.no_op()).evaluate(inp, smbm)
        assert out == inp
        assert out is not inp


class TestPredicate:
    @pytest.mark.parametrize("rel_op", list(RelOp))
    def test_matches_reference_all_relops(self, rel_op):
        smbm, ref = build_tables({i: (i * 3 % 7, i) for i in range(10)})
        inp = BitVector.from_indices(CAP, range(10))
        cfg = UnaryConfig(UnaryOp.PREDICATE, attr="x", rel_op=rel_op, val=3)
        out = UFPU(cfg).evaluate(inp, smbm)
        assert set(out.indices()) == ref.ref_predicate(range(10), "x", rel_op, 3)

    def test_respects_input_mask(self):
        smbm, _ = build_tables({0: (1, 0), 1: (1, 0), 2: (1, 0)})
        inp = BitVector.from_indices(CAP, [1])
        cfg = UnaryConfig(UnaryOp.PREDICATE, attr="x", rel_op=RelOp.EQ, val=1)
        out = UFPU(cfg).evaluate(inp, smbm)
        assert set(out.indices()) == {1}

    def test_empty_input_gives_empty_output(self):
        smbm, _ = build_tables({0: (1, 0)})
        cfg = UnaryConfig(UnaryOp.PREDICATE, attr="x", rel_op=RelOp.GE, val=0)
        assert UFPU(cfg).evaluate(BitVector.zeros(CAP), smbm).is_empty()

    @given(rows_strategy, subset_strategy, st.integers(min_value=-50, max_value=50))
    @settings(max_examples=60)
    def test_property_matches_reference(self, rows, subset, val):
        smbm, ref = build_tables(rows)
        inp = BitVector.from_indices(CAP, subset & set(rows))
        for rel_op in RelOp:
            cfg = UnaryConfig(UnaryOp.PREDICATE, attr="y", rel_op=rel_op, val=val)
            out = UFPU(cfg).evaluate(inp, smbm)
            assert set(out.indices()) == ref.ref_predicate(
                subset & set(rows), "y", rel_op, val
            )


class TestMinMax:
    def test_min_finds_smallest(self):
        smbm, _ = build_tables({0: (30, 0), 1: (10, 0), 2: (20, 0)})
        inp = BitVector.from_indices(CAP, [0, 1, 2])
        out = UFPU(UnaryConfig(UnaryOp.MIN, attr="x")).evaluate(inp, smbm)
        assert set(out.indices()) == {1}

    def test_max_finds_largest(self):
        smbm, _ = build_tables({0: (30, 0), 1: (10, 0), 2: (20, 0)})
        inp = BitVector.from_indices(CAP, [0, 1, 2])
        out = UFPU(UnaryConfig(UnaryOp.MAX, attr="x")).evaluate(inp, smbm)
        assert set(out.indices()) == {0}

    def test_min_respects_mask(self):
        """The min of the *masked* list, not the global min."""
        smbm, _ = build_tables({0: (1, 0), 1: (5, 0), 2: (9, 0)})
        inp = BitVector.from_indices(CAP, [1, 2])
        out = UFPU(UnaryConfig(UnaryOp.MIN, attr="x")).evaluate(inp, smbm)
        assert set(out.indices()) == {1}

    def test_min_tie_prefers_first_enqueued(self):
        smbm, _ = build_tables({})
        smbm.add(7, {"x": 4, "y": 0})
        smbm.add(2, {"x": 4, "y": 0})
        inp = BitVector.from_indices(CAP, [7, 2])
        out = UFPU(UnaryConfig(UnaryOp.MIN, attr="x")).evaluate(inp, smbm)
        assert set(out.indices()) == {7}

    def test_empty_input(self):
        smbm, _ = build_tables({0: (1, 1)})
        out = UFPU(UnaryConfig(UnaryOp.MIN, attr="x")).evaluate(
            BitVector.zeros(CAP), smbm
        )
        assert out.is_empty()

    @given(rows_strategy, subset_strategy)
    @settings(max_examples=60)
    def test_property_matches_reference(self, rows, subset, ):
        smbm, ref = build_tables(rows)
        live = subset & set(rows)
        inp = BitVector.from_indices(CAP, live)
        out_min = UFPU(UnaryConfig(UnaryOp.MIN, attr="x")).evaluate(inp, smbm)
        out_max = UFPU(UnaryConfig(UnaryOp.MAX, attr="x")).evaluate(inp, smbm)
        assert set(out_min.indices()) == ref.ref_min(live, "x")
        assert set(out_max.indices()) == ref.ref_max(live, "x")


class TestRandom:
    def test_output_is_singleton_member(self):
        smbm, _ = build_tables({i: (i, i) for i in range(8)})
        unit = UFPU(UnaryConfig(UnaryOp.RANDOM), lfsr_seed=5)
        inp = BitVector.from_indices(CAP, range(8))
        for _ in range(50):
            out = unit.evaluate(inp, smbm)
            assert out.popcount() == 1
            assert set(out.indices()) <= set(range(8))

    def test_covers_all_members_eventually(self):
        smbm, _ = build_tables({i: (i, i) for i in range(6)})
        unit = UFPU(UnaryConfig(UnaryOp.RANDOM), lfsr_seed=9)
        inp = BitVector.from_indices(CAP, range(6))
        seen = set()
        for _ in range(300):
            seen |= set(unit.evaluate(inp, smbm).indices())
        assert seen == set(range(6))

    def test_empty_input(self):
        smbm, _ = build_tables({0: (1, 1)})
        out = UFPU(UnaryConfig(UnaryOp.RANDOM)).evaluate(BitVector.zeros(CAP), smbm)
        assert out.is_empty()


class TestRoundRobin:
    def test_unit_weights_cycle_fairly(self):
        """All weights 1: selections cycle through members in order."""
        smbm, _ = build_tables({i: (1, 0) for i in (2, 5, 9)})
        unit = UFPU(UnaryConfig(UnaryOp.ROUND_ROBIN, attr="x"))
        inp = BitVector.from_indices(CAP, [2, 5, 9])
        picks = [next(iter(unit.evaluate(inp, smbm).indices())) for _ in range(6)]
        assert picks == [2, 5, 9, 2, 5, 9]

    def test_weighted_selection_proportional(self):
        """Weight w entries get selected w times per round (section 4.1.1)."""
        smbm, _ = build_tables({1: (3, 0), 4: (1, 0)})
        unit = UFPU(UnaryConfig(UnaryOp.ROUND_ROBIN, attr="x"))
        inp = BitVector.from_indices(CAP, [1, 4])
        picks = [next(iter(unit.evaluate(inp, smbm).indices())) for _ in range(8)]
        assert picks == [1, 1, 1, 4, 1, 1, 1, 4]

    def test_skips_masked_entries(self):
        smbm, _ = build_tables({i: (1, 0) for i in range(4)})
        unit = UFPU(UnaryConfig(UnaryOp.ROUND_ROBIN, attr="x"))
        inp = BitVector.from_indices(CAP, [0, 2])
        picks = [next(iter(unit.evaluate(inp, smbm).indices())) for _ in range(4)]
        assert picks == [0, 2, 0, 2]

    def test_adapts_when_membership_changes(self):
        smbm, _ = build_tables({i: (1, 0) for i in range(3)})
        unit = UFPU(UnaryConfig(UnaryOp.ROUND_ROBIN, attr="x"))
        full = BitVector.from_indices(CAP, [0, 1, 2])
        assert set(unit.evaluate(full, smbm).indices()) == {0}
        reduced = BitVector.from_indices(CAP, [1, 2])
        assert set(unit.evaluate(reduced, smbm).indices()) == {1}

    def test_reset_state(self):
        smbm, _ = build_tables({i: (1, 0) for i in range(3)})
        unit = UFPU(UnaryConfig(UnaryOp.ROUND_ROBIN, attr="x"))
        inp = BitVector.from_indices(CAP, [0, 1, 2])
        unit.evaluate(inp, smbm)
        unit.evaluate(inp, smbm)
        unit.reset_state()
        assert set(unit.evaluate(inp, smbm).indices()) == {0}

    def test_empty_input(self):
        smbm, _ = build_tables({0: (1, 1)})
        unit = UFPU(UnaryConfig(UnaryOp.ROUND_ROBIN, attr="x"))
        assert unit.evaluate(BitVector.zeros(CAP), smbm).is_empty()


class TestWidthValidation:
    def test_input_width_must_match_capacity(self):
        smbm, _ = build_tables({0: (1, 1)})
        with pytest.raises(ConfigurationError):
            UFPU(UnaryConfig.no_op()).evaluate(BitVector.zeros(4), smbm)


class TestBFPU:
    def test_union_intersection_difference(self):
        a = BitVector.from_indices(8, [1, 2, 3])
        b = BitVector.from_indices(8, [3, 4])
        assert set(BFPU(BinaryConfig(BinaryOp.UNION)).evaluate(a, b).indices()) == {
            1, 2, 3, 4,
        }
        assert set(
            BFPU(BinaryConfig(BinaryOp.INTERSECTION)).evaluate(a, b).indices()
        ) == {3}
        assert set(
            BFPU(BinaryConfig(BinaryOp.DIFFERENCE)).evaluate(a, b).indices()
        ) == {1, 2}

    def test_mux(self):
        a, b = BitVector.single(8, 1), BitVector.single(8, 2)
        assert BFPU(BinaryConfig.passthrough(0)).evaluate(a, b) == a
        assert BFPU(BinaryConfig.passthrough(1)).evaluate(a, b) == b

    def test_noop_requires_choice(self):
        with pytest.raises(ConfigurationError):
            BinaryConfig(BinaryOp.NO_OP)

    def test_union_takes_no_choice(self):
        with pytest.raises(ConfigurationError):
            BinaryConfig(BinaryOp.UNION, choice=0)

    @given(
        st.sets(st.integers(min_value=0, max_value=31)),
        st.sets(st.integers(min_value=0, max_value=31)),
    )
    def test_property_matches_reference(self, a, b):
        va, vb = BitVector.from_indices(32, a), BitVector.from_indices(32, b)
        ref = ResourceTable
        assert set(
            BFPU(BinaryConfig(BinaryOp.UNION)).evaluate(va, vb).indices()
        ) == ref.ref_union(a, b)
        assert set(
            BFPU(BinaryConfig(BinaryOp.INTERSECTION)).evaluate(va, vb).indices()
        ) == ref.ref_intersection(a, b)
        assert set(
            BFPU(BinaryConfig(BinaryOp.DIFFERENCE)).evaluate(va, vb).indices()
        ) == ref.ref_difference(a, b)


class TestClockedUnits:
    def test_ufpu_latency_two_cycles(self):
        smbm, _ = build_tables({0: (1, 1), 1: (2, 2)})
        unit = ClockedUFPU(UnaryConfig(UnaryOp.MIN, attr="x"))
        unit.issue(BitVector.from_indices(CAP, [0, 1]), smbm)
        assert unit.tick() is None
        out = unit.tick()
        assert out is not None and set(out.indices()) == {0}
        assert UFPU_LATENCY_CYCLES == 2

    def test_ufpu_fully_pipelined(self):
        smbm, _ = build_tables({i: (i, i) for i in range(4)})
        unit = ClockedUFPU(UnaryConfig(UnaryOp.MIN, attr="x"))
        results = []
        for i in range(4):
            unit.issue(BitVector.from_indices(CAP, [i]), smbm)
            results.append(unit.tick())
        results.append(unit.tick())
        results.append(unit.tick())
        picked = [set(r.indices()) for r in results if r is not None]
        assert picked == [{0}, {1}, {2}, {3}]

    def test_bfpu_latency_one_cycle(self):
        unit = ClockedBFPU(BinaryConfig(BinaryOp.UNION))
        unit.issue(BitVector.single(8, 0), BitVector.single(8, 1))
        out = unit.tick()
        assert out is not None and set(out.indices()) == {0, 1}
        assert BFPU_LATENCY_CYCLES == 1
