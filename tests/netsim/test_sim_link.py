"""Tests for the event loop and links."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.netsim.link import Link
from repro.netsim.packet import HEADER_BYTES, NetPacket
from repro.netsim.sim import Simulator


class Sink:
    """A link endpoint that records deliveries."""

    def __init__(self, sim):
        self.sim = sim
        self.name = "sink"
        self.deliveries: list[tuple[float, NetPacket, int]] = []

    def receive(self, packet, in_port):
        self.deliveries.append((self.sim.now, packet, in_port))


def data_packet(size=1460, seq=0):
    return NetPacket(flow_id=1, src=0, dst=1, seq=seq, size_bytes=size)


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2e-3, lambda: order.append("b"))
        sim.schedule(1e-3, lambda: order.append("a"))
        sim.schedule(3e-3, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == pytest.approx(3e-3)

    def test_fifo_for_equal_timestamps(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.schedule(1e-3, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_run_until_stops_the_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(1))
        sim.run(until=1.0)
        assert not fired
        assert sim.now == 1.0
        sim.run(until=10.0)
        assert fired

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            seen.append(sim.now)
            sim.schedule(1.0, lambda: seen.append(sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert seen == [1.0, 2.0]

    def test_at_absolute_time(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        times = []
        sim.at(5.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [5.0]

    def test_max_events(self):
        sim = Simulator()
        count = []

        def tick():
            count.append(1)
            sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run(max_events=10)
        assert len(count) == 10


class TestLink:
    def make(self, bw=1e9, delay=10e-6, qcap=10_000):
        sim = Simulator()
        sink = Sink(sim)
        link = Link(sim, "l", sink, dst_port=3, bandwidth_bps=bw,
                    prop_delay_s=delay, queue_capacity_bytes=qcap)
        return sim, sink, link

    def test_delivery_time_is_serialisation_plus_propagation(self):
        sim, sink, link = self.make()
        pkt = data_packet(size=1460)
        link.send(pkt)
        sim.run()
        assert len(sink.deliveries) == 1
        t, delivered, port = sink.deliveries[0]
        wire = (1460 + HEADER_BYTES) * 8 / 1e9
        assert t == pytest.approx(wire + 10e-6)
        assert delivered is pkt
        assert port == 3

    def test_fifo_order_preserved(self):
        sim, sink, link = self.make()
        pkts = [data_packet(seq=i) for i in range(5)]
        for p in pkts:
            link.send(p)
        sim.run()
        assert [p.seq for _t, p, _pt in sink.deliveries] == [0, 1, 2, 3, 4]

    def test_back_to_back_serialisation(self):
        """Second packet departs one serialisation time after the first."""
        sim, sink, link = self.make()
        link.send(data_packet(seq=0))
        link.send(data_packet(seq=1))
        sim.run()
        t0, t1 = sink.deliveries[0][0], sink.deliveries[1][0]
        wire = (1460 + HEADER_BYTES) * 8 / 1e9
        assert t1 - t0 == pytest.approx(wire)

    def test_drop_tail(self):
        sim, sink, link = self.make(qcap=(1460 + HEADER_BYTES) * 2)
        results = [link.send(data_packet(seq=i)) for i in range(4)]
        # Queue holds 2 wire-sized packets; rest dropped.
        assert results == [True, True, False, False]
        sim.run()
        assert len(sink.deliveries) == 2
        assert link.packets_dropped == 2

    def test_conservation(self):
        """Packets offered = delivered + dropped after the queue drains."""
        sim, sink, link = self.make(qcap=5000)
        offered = 20
        for i in range(offered):
            link.send(data_packet(seq=i))
        sim.run()
        assert len(sink.deliveries) + link.packets_dropped == offered

    def test_queue_depth_visible(self):
        sim, sink, link = self.make()
        link.send(data_packet())
        link.send(data_packet())
        assert link.queued_bytes > 0

    def test_utilization_rises_under_load_and_decays(self):
        """A busy period much longer than the DRE time constant reads ~1."""
        sim, sink, link = self.make(bw=1e9, qcap=500_000)
        for i in range(200):
            link.send(data_packet(seq=i))
        sim.run()
        busy_util = link.metrics.utilization(sim.now - 10e-6)
        assert busy_util > 0.7
        assert link.metrics.utilization(sim.now + 0.1) < 0.01

    def test_loss_rate_reflects_drops(self):
        sim, sink, link = self.make(qcap=3000)
        for i in range(20):
            link.send(data_packet(seq=i))
        assert link.metrics.loss_rate(sim.now) > 0.5

    def test_bad_parameters_rejected(self):
        sim = Simulator()
        sink = Sink(sim)
        with pytest.raises(ConfigurationError):
            Link(sim, "l", sink, 0, bandwidth_bps=0)
        with pytest.raises(ConfigurationError):
            Link(sim, "l", sink, 0, prop_delay_s=-1)
        with pytest.raises(ConfigurationError):
            Link(sim, "l", sink, 0, queue_capacity_bytes=0)
