"""Tests for TCP, hosts, switches, topologies, and end-to-end delivery."""

import random

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.netsim.packet import MSS_BYTES, NetPacket
from repro.netsim.sim import Simulator
from repro.netsim.topology import build_fat_tree, build_leaf_spine
from repro.netsim.transport import TcpFlow


class RandomPolicy:
    def __init__(self, seed=0):
        self.rng = random.Random(seed)

    def choose(self, switch, packet, candidates):
        return self.rng.choice(candidates)


def leaf_spine(**kw):
    sim = Simulator()
    net = build_leaf_spine(sim, policy_factory=lambda n: RandomPolicy(), **kw)
    return sim, net


class TestTcpFlow:
    def test_segmentation(self):
        flow = TcpFlow(1, 0, 1, size_bytes=3000, start_time=0.0)
        assert flow.num_segments == 3
        assert flow.segment_bytes(0) == MSS_BYTES
        assert flow.segment_bytes(2) == 3000 - 2 * MSS_BYTES

    def test_exact_multiple(self):
        flow = TcpFlow(1, 0, 1, size_bytes=2 * MSS_BYTES, start_time=0.0)
        assert flow.num_segments == 2
        assert flow.segment_bytes(1) == MSS_BYTES

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigurationError):
            TcpFlow(1, 0, 1, size_bytes=0, start_time=0.0)


class TestLeafSpineTopology:
    def test_figure15_shape(self):
        """Defaults reproduce the testbed: 6 switches, 8 hosts, 10G links."""
        sim, net = leaf_spine()
        assert len(net.switches) == 6
        assert len(net.hosts) == 8
        leaf0 = net.switches["leaf0"]
        assert len(leaf0.up_ports) == 2  # two spines
        # Only local hosts get deterministic routes; remote hosts are
        # reachable over both spines, hence policy-routed.
        assert len(leaf0.down_routes) == 2

    def test_leaf_down_routes_cover_local_hosts(self):
        sim, net = leaf_spine()
        leaf0 = net.switches["leaf0"]
        # Hosts 0 and 1 are local to leaf0: deterministic host ports.
        assert 0 in leaf0.down_routes and 1 in leaf0.down_routes

    def test_spine_routes_are_deterministic(self):
        sim, net = leaf_spine()
        spine = net.switches["spine0"]
        assert len(spine.down_routes) == 8
        assert spine.up_ports == []

    def test_edge_of(self):
        sim, net = leaf_spine()
        assert net.edge_of(0) == "leaf0"
        assert net.edge_of(7) == "leaf3"

    def test_paths_between_leaves(self):
        sim, net = leaf_spine()
        paths = net.paths_between("leaf0", "leaf3")
        assert len(paths) == 2  # one per spine
        assert all(len(p) == 3 for p in paths)


class TestFatTreeTopology:
    def test_k4_shape(self):
        sim = Simulator()
        net = build_fat_tree(sim, k=4, policy_factory=lambda n: RandomPolicy())
        assert len(net.hosts) == 16
        assert len(net.switches) == 4 + 8 + 8  # cores + aggs + edges

    def test_odd_k_rejected(self):
        with pytest.raises(ConfigurationError):
            build_fat_tree(Simulator(), k=3)

    def test_edge_uplinks(self):
        sim = Simulator()
        net = build_fat_tree(sim, k=4, policy_factory=lambda n: RandomPolicy())
        edge = net.switches["edge0_0"]
        assert len(edge.up_ports) == 2
        agg = net.switches["agg0_0"]
        assert len(agg.up_ports) == 2

    def test_remote_pod_paths(self):
        sim = Simulator()
        net = build_fat_tree(sim, k=4, policy_factory=lambda n: RandomPolicy())
        paths = net.paths_between("edge0_0", "edge1_0")
        assert len(paths) == 4  # 2 aggs x 2 cores
        assert all(len(p) == 5 for p in paths)


class TestEndToEnd:
    def test_single_flow_completes_near_ideal(self):
        sim, net = leaf_spine()
        net.start_flow(TcpFlow(1, 0, 7, size_bytes=500_000, start_time=0.0))
        sim.run(until=1.0)
        assert len(net.recorder.completed) == 1
        fct = net.recorder.completed[0].fct
        ideal = 500_000 * 8 / 10e9
        assert ideal < fct < 3 * ideal

    def test_same_leaf_flow(self):
        sim, net = leaf_spine()
        net.start_flow(TcpFlow(1, 0, 1, size_bytes=100_000, start_time=0.0))
        sim.run(until=1.0)
        assert len(net.recorder.completed) == 1
        # Same-leaf traffic never crosses a spine.
        assert all(
            net.links[("leaf0", f"spine{s}")].packets_sent == 0 for s in range(2)
        )

    def test_many_flows_all_complete(self):
        sim, net = leaf_spine()
        rng = random.Random(7)
        for fid in range(40):
            src = rng.randrange(8)
            dst = (src + rng.randrange(1, 8)) % 8
            net.start_flow(
                TcpFlow(fid, src, dst, size_bytes=rng.randint(2_000, 200_000),
                        start_time=rng.random() * 5e-3)
            )
        sim.run(until=2.0)
        assert len(net.recorder.completed) == 40
        assert net.recorder.in_flight == 0

    def test_flows_complete_despite_tiny_buffers(self):
        """Loss recovery: drops happen, TCP still finishes every flow."""
        sim = Simulator()
        net = build_leaf_spine(
            sim, policy_factory=lambda n: RandomPolicy(),
            queue_capacity_bytes=6_000,
        )
        net.finalize_routes()
        for fid in range(8):
            net.start_flow(
                TcpFlow(fid, fid, (fid + 4) % 8, size_bytes=150_000, start_time=0.0)
            )
        sim.run(until=5.0)
        assert net.total_drops() > 0
        assert len(net.recorder.completed) == 8

    def test_fct_grows_under_contention(self):
        """Two flows into one receiver take longer than one alone."""
        sim, net = leaf_spine()
        net.start_flow(TcpFlow(1, 0, 7, size_bytes=400_000, start_time=0.0))
        sim.run(until=1.0)
        solo = net.recorder.completed[0].fct

        sim2, net2 = leaf_spine()
        net2.start_flow(TcpFlow(1, 0, 7, size_bytes=400_000, start_time=0.0))
        net2.start_flow(TcpFlow(2, 2, 7, size_bytes=400_000, start_time=0.0))
        sim2.run(until=2.0)
        shared = max(r.fct for r in net2.recorder.completed)
        assert shared > 1.5 * solo

    def test_traffic_before_finalize_rejected(self):
        from repro.netsim.topology import Network

        net = Network(Simulator())
        net.add_host(0)
        net.add_host(1)
        net.add_switch("s")
        net.connect("host0", "s")
        net.connect("host1", "s")
        with pytest.raises(SimulationError):
            net.start_flow(TcpFlow(1, 0, 1, size_bytes=1000, start_time=0.0))

    def test_flowlets_pin_bursts_to_one_path(self):
        """With a long flowlet gap, one flow's packets use a single spine."""
        sim = Simulator()
        net = build_leaf_spine(
            sim, policy_factory=lambda n: RandomPolicy(), flowlet_gap_s=1.0
        )
        net.start_flow(TcpFlow(1, 0, 7, size_bytes=300_000, start_time=0.0))
        sim.run(until=1.0)
        used = [
            s for s in range(2)
            if net.links[("leaf0", f"spine{s}")].packets_sent > 0
        ]
        assert len(used) == 1

    def test_per_packet_mode_spreads_packets(self):
        sim = Simulator()
        net = build_leaf_spine(
            sim, policy_factory=lambda n: RandomPolicy(), flowlet_gap_s=None
        )
        net.start_flow(TcpFlow(1, 0, 7, size_bytes=300_000, start_time=0.0))
        sim.run(until=1.0)
        used = [
            s for s in range(2)
            if net.links[("leaf0", f"spine{s}")].packets_sent > 0
        ]
        assert len(used) == 2
