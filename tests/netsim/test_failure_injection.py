"""Failure injection: flaky links, degraded links, and recovery."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.netsim.link import Link
from repro.netsim.packet import NetPacket
from repro.netsim.sim import Simulator
from repro.netsim.topology import build_leaf_spine
from repro.netsim.transport import TcpFlow


class Sink:
    def __init__(self, sim):
        self.sim = sim
        self.name = "sink"
        self.received = 0

    def receive(self, packet, in_port):
        self.received += 1


class RandomPolicy:
    def __init__(self, seed=0):
        self.rng = random.Random(seed)

    def choose(self, switch, packet, candidates):
        return self.rng.choice(candidates)


class TestFlakyLink:
    def make(self, error_rate):
        sim = Simulator()
        sink = Sink(sim)
        # Big enough to absorb a whole test burst: no tail drops, so every
        # loss is a corruption.
        link = Link(sim, "l", sink, 0, bandwidth_bps=1e9,
                    queue_capacity_bytes=4_000_000)
        link.set_error_rate(error_rate, random.Random(1))
        return sim, sink, link

    def test_error_rate_validated(self):
        sim = Simulator()
        link = Link(sim, "l", Sink(sim), 0)
        with pytest.raises(ConfigurationError):
            link.set_error_rate(1.5, random.Random(1))
        with pytest.raises(ConfigurationError):
            link.set_error_rate(-0.1, random.Random(1))

    def test_corruption_rate_matches(self):
        sim, sink, link = self.make(0.2)
        total = 2000
        for i in range(total):
            link.send(NetPacket(1, 0, 1, i, 1460))
        sim.run()
        assert sink.received + link.packets_corrupted == total
        assert link.packets_corrupted == pytest.approx(total * 0.2, rel=0.25)

    def test_corrupted_packets_count_as_loss(self):
        sim, sink, link = self.make(0.3)
        for i in range(500):
            link.send(NetPacket(1, 0, 1, i, 1460))
        sim.run()
        assert link.metrics.loss_rate(sim.now) > 0.1

    def test_flaky_link_reads_lightly_utilised(self):
        """The Figure 17 mechanism: drops suppress the DRE estimate."""
        sim_a, sink_a, clean = self.make(0.0)
        sim_b, sink_b, flaky = self.make(0.5)
        for i in range(500):
            clean.send(NetPacket(1, 0, 1, i, 1460))
            flaky.send(NetPacket(1, 0, 1, i, 1460))
        sim_a.run()
        sim_b.run()
        t = min(sim_a.now, sim_b.now) - 10e-6
        assert flaky.metrics.utilization(t) < clean.metrics.utilization(t)

    def test_tcp_completes_over_flaky_path(self):
        """Retransmission recovers every lost segment end to end."""
        sim = Simulator()
        net = build_leaf_spine(sim, policy_factory=lambda n: RandomPolicy())
        for s in range(2):
            net.link_between("leaf0", f"spine{s}").set_error_rate(
                0.05, random.Random(2)
            )
        net.start_flow(TcpFlow(1, 0, 7, size_bytes=100_000, start_time=0.0))
        sim.run(until=5.0)
        assert len(net.recorder.completed) == 1
        assert net.recorder.completed[0].fct > 100_000 * 8 / 10e9


class TestRenegotiation:
    def test_renegotiated_link_slows_delivery(self):
        sim = Simulator()
        sink = Sink(sim)
        link = Link(sim, "l", sink, 0, bandwidth_bps=1e9)
        link.renegotiate(1e8)
        assert link.bandwidth_bps == 1e8
        link.send(NetPacket(1, 0, 1, 0, 1460))
        sim.run()
        # 1500 wire bytes at 100 Mbps = 120 us + 1 us propagation.
        assert sim.now == pytest.approx(120e-6 + 1e-6, rel=0.01)

    def test_renegotiate_rejects_nonpositive(self):
        link = Link(Simulator(), "l", Sink(Simulator()), 0)
        with pytest.raises(ConfigurationError):
            link.renegotiate(0)

    def test_degraded_fabric_still_delivers(self):
        sim = Simulator()
        net = build_leaf_spine(sim, policy_factory=lambda n: RandomPolicy())
        for l in range(4):
            net.link_between(f"leaf{l}", "spine0").renegotiate(1e8)
            net.link_between("spine0", f"leaf{l}").renegotiate(1e8)
        for fid in range(6):
            net.start_flow(
                TcpFlow(fid, fid % 8, (fid + 5) % 8, size_bytes=50_000,
                        start_time=0.0)
            )
        sim.run(until=5.0)
        assert len(net.recorder.completed) == 6
