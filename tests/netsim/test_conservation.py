"""Conservation and liveness properties of the network simulator.

Random topologies, random traffic: packets offered = delivered + dropped;
every flow eventually completes; per-queue FIFO order is preserved.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.sim import Simulator
from repro.netsim.topology import build_fat_tree, build_leaf_spine
from repro.netsim.transport import TcpFlow


class RandomPolicy:
    def __init__(self, seed=0):
        self.rng = random.Random(seed)

    def choose(self, switch, packet, candidates):
        return self.rng.choice(candidates)


@given(
    n_leaf=st.integers(min_value=2, max_value=4),
    n_spine=st.integers(min_value=1, max_value=4),
    hosts_per_leaf=st.integers(min_value=1, max_value=3),
    n_flows=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=25, deadline=None)
def test_all_flows_complete_on_random_leaf_spine(
    n_leaf, n_spine, hosts_per_leaf, n_flows, seed
):
    rng = random.Random(seed)
    sim = Simulator()
    net = build_leaf_spine(
        sim, n_leaf=n_leaf, n_spine=n_spine, hosts_per_leaf=hosts_per_leaf,
        policy_factory=lambda n: RandomPolicy(seed),
    )
    n_hosts = n_leaf * hosts_per_leaf
    if n_hosts < 2:
        return
    for fid in range(n_flows):
        src = rng.randrange(n_hosts)
        dst = (src + rng.randrange(1, n_hosts)) % n_hosts
        net.start_flow(TcpFlow(fid, src, dst,
                               size_bytes=rng.randint(100, 80_000),
                               start_time=rng.random() * 1e-3))
    sim.run(until=5.0)
    # Liveness: every flow finishes despite any drops along the way.
    assert len(net.recorder.completed) == n_flows
    assert net.recorder.in_flight == 0
    # Conservation: whatever entered a queue left it (queues drained).
    for link in net.links.values():
        assert link.queued_bytes == 0
        assert link.queued_packets == 0


@given(seed=st.integers(min_value=0, max_value=200))
@settings(max_examples=10, deadline=None)
def test_fat_tree_delivers_across_pods(seed):
    rng = random.Random(seed)
    sim = Simulator()
    net = build_fat_tree(sim, k=4, policy_factory=lambda n: RandomPolicy(seed))
    # One flow per pod pair direction, crossing the core.
    fid = 0
    for src_pod, dst_pod in [(0, 1), (1, 2), (2, 3), (3, 0)]:
        src = src_pod * 4 + rng.randrange(4)
        dst = dst_pod * 4 + rng.randrange(4)
        net.start_flow(TcpFlow(fid, src, dst, size_bytes=30_000, start_time=0.0))
        fid += 1
    sim.run(until=5.0)
    assert len(net.recorder.completed) == 4
    core_traffic = sum(
        link.packets_sent
        for (a, b), link in net.links.items()
        if a.startswith("core") or b.startswith("core")
    )
    assert core_traffic > 0


def test_bytes_conservation_per_flow():
    """Delivered payload equals the flow size exactly (no duplication
    delivered to the application, no loss after recovery)."""
    sim = Simulator()
    net = build_leaf_spine(sim, policy_factory=lambda n: RandomPolicy(3),
                           queue_capacity_bytes=8_000)  # force drops
    size = 123_456
    net.start_flow(TcpFlow(1, 0, 6, size_bytes=size, start_time=0.0))
    sim.run(until=5.0)
    assert len(net.recorder.completed) == 1
    host = net.hosts[6]
    receiver = host._receivers[1]
    from repro.netsim.packet import MSS_BYTES

    assert receiver.rcv_next == -(-size // MSS_BYTES)
