"""Tests for in-band probe packets (the full section 3 probe mechanism)."""

import random

import pytest

from repro.core.pipeline import PipelineParams
from repro.errors import ConfigurationError
from repro.netsim.inband_probes import PROBE_BYTES, InbandProbeService, ProbePacket
from repro.netsim.packet import NetPacket
from repro.netsim.probes import PathMetricsDirectory
from repro.netsim.sim import Simulator
from repro.netsim.topology import build_leaf_spine
from repro.netsim.transport import TcpFlow
from repro.policies.routing import ThanosRoutingPolicy


class NullPolicy:
    def choose(self, switch, packet, candidates):
        return candidates[0]


def build(n_leaf=4, n_spine=2, hosts_per_leaf=2):
    sim = Simulator()
    net = build_leaf_spine(
        sim, n_leaf=n_leaf, n_spine=n_spine, hosts_per_leaf=hosts_per_leaf,
        policy_factory=lambda n: NullPolicy(),
    )
    return sim, net


class TestProbeRoundTrips:
    def test_probes_complete_round_trips(self):
        sim, net = build()
        deliveries = []
        service = InbandProbeService(
            sim, net,
            lambda *args: deliveries.append(args),
            period_s=1e-3,
        )
        service.start()
        sim.run(until=0.5e-3)
        # 4 edges x 3 destinations x 2 paths = 24 probes per round.
        assert service.probes_sent == 24
        assert service.probes_completed == 24
        assert service.probes_lost == 0
        assert len(deliveries) == 24

    def test_delivery_identifies_origin_and_port(self):
        sim, net = build()
        deliveries = []
        service = InbandProbeService(
            sim, net, lambda *args: deliveries.append(args), period_s=1e-3
        )
        service.start()
        sim.run(until=0.5e-3)
        origins = {d[0] for d in deliveries}
        assert origins == {"leaf0", "leaf1", "leaf2", "leaf3"}
        for origin, dst_edge, port, metrics, now in deliveries:
            assert origin != dst_edge
            assert port in net.switches[origin].up_ports
            assert set(metrics) == {"util", "queue", "loss"}

    def test_periodic_rounds(self):
        sim, net = build()
        service = InbandProbeService(sim, net, lambda *args: None, period_s=1e-3)
        service.start()
        sim.run(until=3.5e-3)
        assert service.probes_sent == 24 * 4  # rounds at t=0, 1, 2, 3 ms

    def test_bad_period_rejected(self):
        sim, net = build()
        with pytest.raises(ConfigurationError):
            InbandProbeService(sim, net, lambda *args: None, period_s=0)


class TestProbesAreRealTraffic:
    def test_probes_occupy_links(self):
        sim, net = build()
        service = InbandProbeService(sim, net, lambda *args: None, period_s=1e-3)
        service.start()
        sim.run(until=0.5e-3)
        fabric_bytes = sum(
            link.bytes_sent for (a, b), link in net.links.items()
            if not (a.startswith("host") or b.startswith("host"))
        )
        # Each probe crosses 2 hops out + 2 hops back at wire size.
        assert fabric_bytes >= 24 * 4 * PROBE_BYTES

    def test_probes_accumulate_worst_link_metrics(self):
        sim, net = build()
        # Pre-load one leaf->spine queue so probes through it see queueing.
        hot = net.link_between("leaf0", "spine1")
        for i in range(20):
            hot.send(NetPacket(1, 0, 4, i, 1460))
        deliveries = {}
        service = InbandProbeService(
            sim, net,
            lambda o, d, p, m, t: deliveries.setdefault((o, d, p), m),
            period_s=1e-3,
        )
        service.start()
        sim.run(until=0.2e-3)
        hot_port = net.port_between("leaf0", "spine1")
        cold_port = net.port_between("leaf0", "spine0")
        hot_report = deliveries[("leaf0", "leaf2", hot_port)]
        cold_report = deliveries[("leaf0", "leaf2", cold_port)]
        assert hot_report["queue"] > cold_report["queue"]

    def test_probes_coexist_with_data_traffic(self):
        sim, net = build()
        service = InbandProbeService(sim, net, lambda *args: None, period_s=0.5e-3)
        service.start()
        net.start_flow(TcpFlow(1, 0, 6, size_bytes=60_000, start_time=0.0))
        sim.run(until=1.0)
        assert len(net.recorder.completed) == 1
        assert service.probes_completed > 0


class TestPolicyIntegration:
    def test_inband_deliveries_update_policy_smbm(self):
        sim, net = build()
        directory = PathMetricsDirectory(net)
        policy = ThanosRoutingPolicy(
            net, directory, None, "policy2",
            params=PipelineParams(n=4, k=2, f=2, chain_length=2),
            rng=random.Random(1),
        )
        service = InbandProbeService(
            sim, net, policy.deliver_path_metrics, period_s=1e-3
        )
        service.start()
        # Congest leaf0 -> spine1 before the first probe round completes.
        for i in range(60):
            net.link_between("leaf0", "spine1").send(NetPacket(1, 0, 4, i, 1460))
        sim.run(until=0.5e-3)
        leaf0 = net.switches["leaf0"]
        probe_packet = NetPacket(2, 0, 4, 0, 1460)
        chosen = policy.choose(leaf0, probe_packet, leaf0.up_ports)
        assert chosen == net.port_between("leaf0", "spine0")
