"""Smoke tests: the fast runnable examples execute cleanly end to end.

The simulation-heavy examples (routing, DRILL fabric, L4 LB, caching) are
exercised through their shared harnesses in tests/experiments; here we run
the quick ones exactly as a user would.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = ["quickstart.py", "olap_offload.py", "firewall_diagnosis.py"]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_all_examples_present():
    expected = {
        "quickstart.py",
        "performance_aware_routing.py",
        "l4_load_balancing.py",
        "drill_port_lb.py",
        "graphdb_caching.py",
        "firewall_diagnosis.py",
        "olap_offload.py",
    }
    assert expected <= {p.name for p in EXAMPLES.glob("*.py")}
