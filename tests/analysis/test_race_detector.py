"""Race detector: unit behaviour + the seeded-injector differential test.

The differential contract: seed :class:`~repro.faults.injector.FaultInjector`
write-contention faults into a sanitized :class:`ReplicatedSMBM` and the
detector must report *exactly* the injected conflicting pairs — no false
negatives, and zero false positives across the benign single-writer cycles
around them.
"""

from __future__ import annotations

import pytest

from repro.analysis.races import RaceDetector, RaceFinding
from repro.faults.injector import FaultInjector
from repro.switch.replication import ReplicatedSMBM, WriteContention

METRICS = ("cpu", "mem")


class TestRaceDetectorUnit:
    def test_same_cycle_cross_pipeline_write_is_a_race(self):
        det = RaceDetector()
        new = det.observe_cycle(1, [(0, 5), (1, 5)])
        assert [f.kind for f in new] == ["race"]
        assert new[0].pipelines == (0, 1)
        assert det.conflicting_pairs() == {(5, 0, 1)}

    def test_same_pipeline_double_write_is_not_a_race(self):
        det = RaceDetector()
        assert det.observe_cycle(1, [(0, 5), (0, 5)]) == []
        assert det.races() == []

    def test_distinct_resources_never_conflict(self):
        det = RaceDetector()
        assert det.observe_cycle(1, [(0, 1), (1, 2), (2, 3)]) == []

    def test_three_writers_report_all_pairs(self):
        det = RaceDetector()
        det.observe_cycle(1, [(0, 9), (1, 9), (2, 9)])
        assert det.conflicting_pairs() == {(9, 0, 1), (9, 0, 2), (9, 1, 2)}

    def test_contention_window_is_warning_grade(self):
        det = RaceDetector(window=2)
        assert det.observe_cycle(1, [(0, 4)]) == []
        new = det.observe_cycle(3, [(1, 4)])  # 2 cycles later: in window
        assert [f.kind for f in new] == ["window"]
        assert det.races() == []  # windows are not races
        # Outside the window nothing is reported.
        assert det.observe_cycle(9, [(2, 4)]) == []

    def test_window_disabled_by_default(self):
        det = RaceDetector()
        det.observe_cycle(1, [(0, 4)])
        assert det.observe_cycle(2, [(1, 4)]) == []

    def test_report_and_clear(self):
        det = RaceDetector()
        det.observe_cycle(1, [(0, 5), (1, 5)])
        text = det.report()
        assert "1 race(s)" in text and "resource 5" in text
        det.clear()
        assert det.findings == [] and det.cycles_observed == 0

    def test_finding_format_is_readable(self):
        f = RaceFinding(kind="race", resource_id=3, cycle=7,
                        writers=((0, 7), (2, 7)))
        assert f.format() == (
            "same-cycle write race on resource 3 (cycle 7): "
            "pipeline 0 @ cycle 7, pipeline 2 @ cycle 7"
        )

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            RaceDetector(window=-1)


class TestInjectorDifferential:
    """Seeded injector faults vs detector findings, pair for pair."""

    def _populated(self, *, on_contention: str) -> ReplicatedSMBM:
        rep = ReplicatedSMBM(4, 16, METRICS, on_contention=on_contention,
                             sanitize=True)
        for rid in range(8):
            rep.issue_update(rid % 4, rid, {"cpu": rid, "mem": rid * 2})
            rep.commit_cycle()
        return rep

    def test_detector_reports_exactly_the_injected_pairs(self):
        rep = self._populated(on_contention="arbitrate")
        det = rep.race_detector
        assert det is not None
        assert det.races() == []  # benign populate cycles: no false positives

        inj = FaultInjector(seed=42)
        injected = {(3, 0, 2), (5, 1, 3)}
        inj.contend_writes(rep, 3, {0: {"cpu": 1, "mem": 1},
                                    2: {"cpu": 2, "mem": 2}})
        rep.commit_cycle()
        inj.contend_writes(rep, 5, {1: {"cpu": 3, "mem": 3},
                                    3: {"cpu": 4, "mem": 4}})
        rep.commit_cycle()
        assert det.conflicting_pairs() == injected

        # More benign traffic adds nothing.
        for rid in (9, 10, 11):
            rep.issue_update(0, rid, {"cpu": 0, "mem": 0})
            rep.commit_cycle()
        assert det.conflicting_pairs() == injected
        rep.check_synchronised()

    def test_detector_sees_races_the_raise_mode_aborts(self):
        """Even when the commit raises (and applies nothing), the detector
        observed the raw staged set and still reports the pair."""
        rep = self._populated(on_contention="raise")
        det = rep.race_detector
        assert det is not None
        inj = FaultInjector(seed=7)
        inj.contend_writes(rep, 2, {1: {"cpu": 9, "mem": 9},
                                    2: {"cpu": 8, "mem": 8}})
        with pytest.raises(WriteContention):
            rep.commit_cycle()
        assert det.conflicting_pairs() == {(2, 1, 2)}
        rep.check_synchronised()  # the aborted cycle applied nothing

    def test_detector_absent_without_sanitize(self):
        rep = ReplicatedSMBM(2, 8, METRICS)
        assert rep.race_detector is None
        assert not rep.sanitize
