"""The symbolic policy-semantics analyzer: rules TH017-TH021.

Per-rule trigger and non-trigger cases, the hot-swap/migration serving
gates, emit de-duplication, and the differential soundness contract: a
region the analyzer calls unreachable must receive zero packets on the
interpreted, batched and codegen serving paths, over randomized policies
and tables.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro import obs
from repro.analysis import RULES, TableSchema
from repro.analysis.domains import IntervalSet, Region
from repro.analysis.symbolic import (
    SemanticChange,
    analyze_policy,
    cross_tenant_overlap,
    semantic_diff,
    tenant_overlap_report,
)
from repro.core.operators import RelOp
from repro.core.policy import (
    Conditional,
    Policy,
    PolicyInterpreter,
    TableRef,
    difference,
    intersection,
    max_of,
    min_of,
    predicate,
    random_pick,
    round_robin,
    union,
)
from repro.core.smbm import SMBM, STORED_WORD_BITS
from repro.engine.batch import META_FILTER_INPUT, META_FILTER_REQUEST
from repro.errors import CompilationError, IntegrityError
from repro.rmt.packet import Packet
from repro.serving.backend import ScalarBackend
from repro.serving.controller import Controller
from repro.serving.migration import LiveMigration
from repro.switch.filter_module import FilterModule
from repro.tenancy.manager import TenantManager, TenantSpec

CAPACITY = 16
METRICS = ("cpu", "mem")
SCHEMA = TableSchema(CAPACITY, METRICS)
WORD_MAX = (1 << STORED_WORD_BITS) - 1


def rules_of(report):
    return [f.rule for f in report.findings]


def _dead_predicate(attr="cpu"):
    """A chained predicate pair with provably-disjoint admitted regions."""
    return predicate(
        predicate(TableRef(), attr, RelOp.LT, 10), attr, RelOp.GT, 20
    )


# -- TH017 UnreachablePredicate --------------------------------------------------------


def test_th017_fires_on_contradictory_chained_predicates():
    analysis = analyze_policy(Policy(_dead_predicate(), name="dead"),
                              schema=SCHEMA)
    assert rules_of(analysis.report) == ["TH017"]
    finding = analysis.report.findings[0]
    assert finding.node_path == ()  # the outer predicate is the root
    assert "[0..9]" in finding.message and "[21..max]" in finding.message
    assert analysis.root_region.empty
    assert () in analysis.unreachable_nodes()


def test_th017_node_path_points_at_the_dead_arm():
    live = predicate(TableRef(), "mem", RelOp.LT, 50)
    analysis = analyze_policy(
        Policy(union(live, _dead_predicate()), name="half-dead"),
        schema=SCHEMA,
    )
    assert rules_of(analysis.report) == ["TH017"]
    assert analysis.report.findings[0].node_path == (1,)
    # The union's own region survives through the live arm.
    assert not analysis.root_region.empty
    assert (1,) in analysis.unreachable_nodes()


def test_th017_does_not_fire_on_satisfiable_chains():
    chain = predicate(
        predicate(TableRef(), "cpu", RelOp.LT, 70), "cpu", RelOp.GT, 20
    )
    analysis = analyze_policy(Policy(chain, name="band"), schema=SCHEMA)
    assert analysis.report.clean
    assert analysis.root_region.get("cpu") == IntervalSet.of([(21, 69)])


# -- TH018 ShadowedBranch --------------------------------------------------------------


def test_th018_fires_when_primary_is_guaranteed():
    table = TableRef()
    policy = Policy(
        Conditional(min_of(table, "cpu"),
                    predicate(table, "cpu", RelOp.LT, 50)),
        name="shadowed",
    )
    analysis = analyze_policy(policy, schema=SCHEMA)
    assert rules_of(analysis.report) == ["TH018"]
    finding = analysis.report.findings[0]
    assert finding.node_path == (1,)  # the fallback arm
    assert "shadowed" in finding.message


def test_th018_fires_when_primary_is_provably_empty():
    table = TableRef()
    policy = Policy(
        Conditional(_dead_predicate(), predicate(table, "mem", RelOp.GT, 1)),
        name="dead-primary",
    )
    analysis = analyze_policy(policy, schema=SCHEMA)
    assert set(rules_of(analysis.report)) == {"TH017", "TH018"}
    th018 = [f for f in analysis.report.findings if f.rule == "TH018"]
    assert th018[0].node_path == (0,)  # the primary arm
    assert "fallback" in th018[0].message
    # The root's region is the fallback's: the primary never contributes.
    assert analysis.root_region.get("mem") == IntervalSet.of([(2, WORD_MAX)])


def test_th018_does_not_fire_on_a_live_conditional():
    # The l4lb shape: both arms reachable, neither provably selected.
    table = TableRef()
    eligible = intersection(
        predicate(table, "cpu", RelOp.LT, 70),
        predicate(table, "mem", RelOp.GT, 16),
    )
    policy = Policy(
        Conditional(random_pick(eligible), random_pick(table)), name="l4lb"
    )
    assert analyze_policy(policy, schema=SCHEMA).report.clean


# -- TH019 VacuousSetOp ----------------------------------------------------------------


def test_th019_fires_on_provably_empty_intersection():
    # The right arm hides its predicate under a selector, so the
    # syntactic TH011 check cannot see the contradiction.
    table = TableRef()
    policy = Policy(
        intersection(
            predicate(table, "cpu", RelOp.LT, 10),
            min_of(predicate(table, "cpu", RelOp.GT, 20), "mem"),
        ),
        name="vacuous",
    )
    analysis = analyze_policy(policy, schema=SCHEMA)
    assert rules_of(analysis.report) == ["TH019"]
    assert analysis.report.findings[0].node_path == ()
    assert analysis.root_region.empty


def test_th019_fires_on_identity_difference():
    table = TableRef()
    policy = Policy(
        difference(predicate(table, "cpu", RelOp.LT, 50), _dead_predicate()),
        name="identity-diff",
    )
    analysis = analyze_policy(policy, schema=SCHEMA)
    assert set(rules_of(analysis.report)) == {"TH017", "TH019"}
    th019 = [f for f in analysis.report.findings if f.rule == "TH019"]
    assert "empty set" in th019[0].message
    # The difference is an identity: the left region passes through.
    assert analysis.root_region.get("cpu") == IntervalSet.of([(0, 49)])


def test_th019_fires_on_subtract_everything():
    table = TableRef()
    policy = Policy(
        difference(predicate(table, "cpu", RelOp.LT, 50), table),
        name="minus-all",
    )
    analysis = analyze_policy(policy, schema=SCHEMA)
    assert "TH019" in rules_of(analysis.report)
    assert analysis.root_region.empty


def test_th019_does_not_fire_on_overlapping_operands():
    table = TableRef()
    policy = Policy(
        intersection(
            predicate(table, "cpu", RelOp.LT, 50),
            predicate(table, "cpu", RelOp.GT, 20),
        ),
        name="band",
    )
    assert analyze_policy(policy, schema=SCHEMA).report.clean


# -- TH020 SemanticHotSwapChange -------------------------------------------------------


def _pred(attr, rel_op, val, name):
    return Policy(predicate(TableRef(), attr, rel_op, val), name=name)


def test_semantic_diff_classifies_known_pairs():
    old = _pred("cpu", RelOp.LT, 70, "old")
    assert semantic_diff(
        old, _pred("cpu", RelOp.LE, 69, "same"), schema=SCHEMA
    ).change is SemanticChange.EQUIVALENT
    assert semantic_diff(
        old, _pred("cpu", RelOp.LT, 50, "tighter"), schema=SCHEMA
    ).change is SemanticChange.NARROWING
    diff = semantic_diff(old, _pred("cpu", RelOp.LT, 90, "looser"),
                         schema=SCHEMA)
    assert diff.change is SemanticChange.WIDENING
    assert "cpu: [0..69] -> [0..89]" in diff.describe()


def test_semantic_diff_is_a_region_diff_not_a_structural_one():
    # min vs max over the same filter admit the same region: EQUIVALENT,
    # even though the selected rows differ packet to packet.
    base = predicate(TableRef(), "cpu", RelOp.LT, 70)
    other = predicate(TableRef(), "cpu", RelOp.LT, 70)
    diff = semantic_diff(
        Policy(min_of(base, "cpu"), name="least"),
        Policy(max_of(other, "cpu"), name="most"),
        schema=SCHEMA,
    )
    assert diff.change is SemanticChange.EQUIVALENT


def _manager_with_tenant(policy=None):
    manager = TenantManager(METRICS, smbm_capacity=CAPACITY)
    policy = policy or _pred("cpu", RelOp.LT, 70, "base")
    manager.admit(TenantSpec("t", policy, smbm_quota=8))
    return manager


def test_hot_swap_rejects_widening_when_semantic_change_disallowed():
    manager = _manager_with_tenant()
    wide = _pred("cpu", RelOp.LT, 90, "wide")
    with pytest.raises(CompilationError, match="TH020") as exc_info:
        manager.hot_swap("t", wide, allow_semantic_change=False)
    assert exc_info.value.rule == "TH020"
    # The live policy is untouched by the rejected swap.
    assert manager.get("t").module.policy.name == "base"
    assert manager.get("t").module.plan_epoch == 0


def test_hot_swap_allows_narrowing_and_equivalent_swaps_under_gate():
    manager = _manager_with_tenant()
    assert manager.hot_swap(
        "t", _pred("cpu", RelOp.LT, 50, "tight"),
        allow_semantic_change=False,
    ) == 1
    assert manager.hot_swap(
        "t", _pred("cpu", RelOp.LE, 49, "same"),
        allow_semantic_change=False,
    ) == 2


def test_hot_swap_allows_widening_by_default():
    manager = _manager_with_tenant()
    assert manager.hot_swap("t", _pred("cpu", RelOp.LT, 90, "wide")) == 1


def test_backend_hot_swap_escalates_reachability_lints_to_errors():
    backend = ScalarBackend(TenantManager(METRICS, smbm_capacity=CAPACITY))
    backend.program_tenant(
        TenantSpec("t", _pred("cpu", RelOp.LT, 70, "base"), smbm_quota=8)
    )
    dead = Policy(_dead_predicate(), name="dead")
    with pytest.raises(CompilationError, match="TH017"):
        backend.hot_swap("t", dead)
    with pytest.raises(CompilationError, match="TH020"):
        backend.hot_swap("t", _pred("cpu", RelOp.LT, 90, "wide"),
                         allow_semantic_change=False)
    assert backend.hot_swap("t", _pred("cpu", RelOp.LT, 90, "wide")) == 1


def test_controller_hot_swap_passes_the_semantic_gate_through():
    backend = ScalarBackend(TenantManager(METRICS, smbm_capacity=CAPACITY))

    async def scenario():
        async with Controller(backend) as ctl:
            await ctl.add_tenant(
                TenantSpec("t", _pred("cpu", RelOp.LT, 70, "base"),
                           smbm_quota=8)
            )
            with pytest.raises(CompilationError, match="TH020"):
                await ctl.hot_swap("t", _pred("cpu", RelOp.LT, 90, "wide"),
                                   allow_semantic_change=False)
            return await ctl.hot_swap(
                "t", _pred("cpu", RelOp.LT, 50, "tight"),
                allow_semantic_change=False,
            )

    assert asyncio.run(scenario()) == 1


def test_migration_cutover_gate_rejects_semantic_divergence():
    src = ScalarBackend(TenantManager(METRICS, smbm_capacity=CAPACITY))
    dst = ScalarBackend(TenantManager(METRICS, smbm_capacity=CAPACITY))
    src.program_tenant(
        TenantSpec("t", _pred("cpu", RelOp.LT, 70, "base"), smbm_quota=8)
    )
    migration = LiveMigration(src, dst, "t")
    migration.begin()
    # The same number of swaps lands on each side — epochs agree — but
    # to regionally different policies: only the semantic gate sees it.
    src.hot_swap("t", _pred("cpu", RelOp.LT, 50, "narrow-50"))
    dst.hot_swap("t", _pred("cpu", RelOp.LT, 60, "narrow-60"))
    with pytest.raises(IntegrityError, match="semantically equivalent"):
        migration.cutover()


def test_migration_cutover_accepts_structurally_different_equivalents():
    src = ScalarBackend(TenantManager(METRICS, smbm_capacity=CAPACITY))
    dst = ScalarBackend(TenantManager(METRICS, smbm_capacity=CAPACITY))
    src.program_tenant(
        TenantSpec("t", _pred("cpu", RelOp.LT, 70, "base"), smbm_quota=8)
    )
    migration = LiveMigration(src, dst, "t")
    migration.begin()
    src.hot_swap("t", _pred("cpu", RelOp.LT, 50, "lt"))
    dst.hot_swap("t", _pred("cpu", RelOp.LE, 49, "le"))  # same region
    assert migration.cutover()["tenant"] == "t"


# -- TH021 CrossTenantOverlap ----------------------------------------------------------


def test_cross_tenant_overlap_on_shared_metric():
    a = _pred("cpu", RelOp.LT, 50, "a")
    b = Policy(
        intersection(
            predicate(TableRef(), "cpu", RelOp.GT, 30),
            predicate(TableRef(), "cpu", RelOp.LT, 60),
        ),
        name="b",
    )
    overlap = cross_tenant_overlap(a, b, schema=SCHEMA)
    assert overlap is not None
    assert overlap.get("cpu") == IntervalSet.of([(31, 49)])


def test_no_overlap_for_disjoint_or_uncomparable_policies():
    a = _pred("cpu", RelOp.LT, 20, "a")
    assert cross_tenant_overlap(
        a, _pred("cpu", RelOp.GT, 40, "b"), schema=SCHEMA
    ) is None  # disjoint on the shared metric
    assert cross_tenant_overlap(
        a, _pred("mem", RelOp.GT, 40, "c"), schema=SCHEMA
    ) is None  # no shared constrained metric: no comparable claim
    assert cross_tenant_overlap(
        a, Policy(_dead_predicate(), name="dead"), schema=SCHEMA
    ) is None  # an empty region claims nothing


def test_tenant_overlap_report_is_pairwise():
    report = tenant_overlap_report(
        [
            ("a", _pred("cpu", RelOp.LT, 50, "a")),
            ("b", _pred("cpu", RelOp.GT, 30, "b")),
            ("c", _pred("mem", RelOp.GT, 10, "c")),
        ],
        schema=SCHEMA,
    )
    assert rules_of(report) == ["TH021"]  # only the (a, b) pair competes
    assert "'a'" in report.findings[0].message
    assert "'b'" in report.findings[0].message


def test_manager_overlap_report_and_admission_warning():
    manager = TenantManager(METRICS, smbm_capacity=32)
    manager.admit(TenantSpec("a", _pred("cpu", RelOp.LT, 50, "pa"),
                             smbm_quota=8))
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        manager.admit(TenantSpec("b", _pred("cpu", RelOp.GT, 30, "pb"),
                                 smbm_quota=8))
        # Admission is not rejected — TH021 is advisory — but counted.
        snapshot = obs.snapshot(registry)
    assert "b" in manager
    overlaps = [
        (series, value)
        for series, value in snapshot.get("counters", {}).items()
        if series.startswith("lint_findings_total") and "TH021" in series
    ]
    assert overlaps and overlaps[0][1] == 1
    report = manager.overlap_report()
    assert rules_of(report) == ["TH021"]


# -- emit de-duplication ---------------------------------------------------------------


def test_repeat_compiles_do_not_double_count_findings():
    policy = Policy(_dead_predicate(), name="dead")
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        for _ in range(3):  # identical (rule, policy, node_path) each time
            analysis = analyze_policy(policy, schema=SCHEMA)
            analysis.report.emit()
        snapshot = obs.snapshot(registry)
    counts = {
        series: value
        for series, value in snapshot.get("counters", {}).items()
        if series.startswith("lint_findings_total") and "TH017" in series
    }
    assert list(counts.values()) == [1]


def test_distinct_findings_still_count_separately():
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        # Two dead predicates at different node paths: two real findings.
        table = TableRef()
        policy = Policy(
            union(_dead_predicate("cpu"), _dead_predicate("mem")),
            name="double-dead",
        )
        analyze_policy(policy, schema=SCHEMA).report.emit()
        snapshot = obs.snapshot(registry)
    counts = [
        value
        for series, value in snapshot.get("counters", {}).items()
        if series.startswith("lint_findings_total") and "TH017" in series
    ]
    assert counts == [2]


def test_null_registry_does_not_poison_the_dedup_cache():
    policy = Policy(_dead_predicate(), name="dead")
    analyze_policy(policy, schema=SCHEMA).report.emit()  # null: discarded
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        analyze_policy(policy, schema=SCHEMA).report.emit()
        snapshot = obs.snapshot(registry)
    counts = [
        value
        for series, value in snapshot.get("counters", {}).items()
        if series.startswith("lint_findings_total") and "TH017" in series
    ]
    assert counts == [1]


# -- live-range seeding ----------------------------------------------------------------


def test_live_table_ranges_tighten_the_verdict():
    smbm = SMBM(CAPACITY, METRICS)
    smbm.add(1, {"cpu": 30, "mem": 5})
    smbm.add(2, {"cpu": 40, "mem": 9})
    # Statically satisfiable, dead against the live value range.
    policy = Policy(
        predicate(TableRef(), "cpu", RelOp.GT, 80), name="hot-only"
    )
    static = analyze_policy(policy, schema=SCHEMA)
    assert static.report.clean
    live = analyze_policy(policy, schema=SCHEMA, smbm=smbm)
    assert rules_of(live.report) == ["TH017"]
    assert live.table_version == smbm.version
    assert live.root_region.empty


# -- differential soundness ------------------------------------------------------------


hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

ATTRS = METRICS
VALUES = (0, 1, 7, 25, 100, 150, 199, WORD_MAX)


def _leaf():
    return st.just(None).map(lambda _: TableRef())


def _unary(child):
    return st.one_of(
        st.tuples(child, st.sampled_from(ATTRS),
                  st.sampled_from(tuple(RelOp)), st.sampled_from(VALUES))
        .map(lambda t: predicate(t[0], t[1], t[2], t[3])),
        st.tuples(child, st.sampled_from(ATTRS),
                  st.integers(min_value=1, max_value=4))
        .map(lambda t: min_of(t[0], t[1], k=t[2])),
        st.tuples(child, st.sampled_from(ATTRS),
                  st.integers(min_value=1, max_value=4))
        .map(lambda t: max_of(t[0], t[1], k=t[2])),
        st.tuples(child, st.integers(min_value=1, max_value=4))
        .map(lambda t: random_pick(t[0], k=t[1])),
        st.tuples(child, st.sampled_from(ATTRS))
        .map(lambda t: round_robin(t[0], t[1])),
    )


def _binary(child):
    op = st.sampled_from((union, intersection, difference))
    return st.tuples(op, child, child).map(lambda t: t[0](t[1], t[2]))


def sem_policies():
    node = st.recursive(
        _leaf(),
        lambda child: st.one_of(_unary(child), _binary(child)),
        max_leaves=6,
    )
    conditional = st.tuples(node, node).map(
        lambda t: Conditional(t[0], t[1])
    )
    return st.one_of(node, conditional).map(
        lambda root: Policy(root, name="random")
    )


def _random_table(rng: random.Random, rows: int) -> SMBM:
    smbm = SMBM(CAPACITY, METRICS)
    for rid in rng.sample(range(CAPACITY), rows):
        smbm.add(rid, {m: rng.randrange(256) for m in METRICS})
    return smbm


def _assert_rows_in_region(vec, region, smbm):
    bits = vec.value
    while bits:
        low = bits & -bits
        bits ^= low
        rid = low.bit_length() - 1
        assert rid in smbm
        assert region.contains(smbm.metrics_of(rid)), (
            f"row {rid} {smbm.metrics_of(rid)} escaped region "
            f"{region.describe()}"
        )


@given(policy=sem_policies(),
       seed=st.integers(min_value=0, max_value=2**32),
       rows=st.integers(min_value=0, max_value=CAPACITY))
@settings(max_examples=1000, deadline=None)
def test_abstract_regions_are_sound_over_random_policies(policy, seed, rows):
    """The tentpole property, >=1000 randomized policies: every concrete
    per-node output is contained in its abstract region; every node with
    an empty region receives zero rows; a guaranteed root over a
    non-empty table produces a non-empty output."""
    rng = random.Random(seed)
    smbm = _random_table(rng, rows)
    analysis = analyze_policy(policy, schema=SCHEMA)
    interpreter = PolicyInterpreter(policy)
    for _ in range(3):  # stateful units advance; soundness holds per call
        record = {}
        out = interpreter.evaluate(smbm, record=record)
        for node_id, vec in record.items():
            fact = analysis.facts[node_id]
            _assert_rows_in_region(vec, fact.region, smbm)
            if fact.region.empty:
                assert vec.value == 0
        if analysis.root.region.empty:
            assert out.value == 0
        if analysis.root.guaranteed and len(smbm) > 0:
            assert out.value != 0


@given(policy=sem_policies(),
       seed=st.integers(min_value=0, max_value=2**32))
@settings(max_examples=200, deadline=None)
def test_live_seeded_regions_are_sound(policy, seed):
    """Soundness with the seed tightened to the live value ranges."""
    rng = random.Random(seed)
    smbm = _random_table(rng, rng.randrange(CAPACITY + 1))
    analysis = analyze_policy(policy, schema=SCHEMA, smbm=smbm)
    record = {}
    out = interpreter_out = PolicyInterpreter(policy).evaluate(
        smbm, record=record
    )
    for node_id, vec in record.items():
        fact = analysis.facts[node_id]
        _assert_rows_in_region(vec, fact.region, smbm)
        if fact.region.empty:
            assert vec.value == 0
    if analysis.root.region.empty:
        assert out.value == 0
    assert interpreter_out is out


def test_unreachable_regions_receive_zero_packets_on_all_three_paths():
    """The half-dead union across interpreted, batched and codegen
    serving, sanitizer armed: the dead arm never contributes a row and
    the containment assert stays silent."""
    def build():
        return Policy(
            union(_dead_predicate("cpu"),
                  predicate(TableRef(), "mem", RelOp.LT, 128)),
            name="half-dead",
        )

    dead_path = (0,)
    outputs = []
    for codegen in (False, True):
        rng = random.Random(7)  # identical tables on both paths
        policy = build()
        module = FilterModule(CAPACITY, METRICS, policy,
                              sanitize=True, codegen=codegen)
        for rid in range(10):
            module.update_resource(
                rid, {m: rng.randrange(256) for m in METRICS}
            )
        scalar = module.evaluate()  # interpreted (or codegen+oracle) path
        module.sanitize_check()
        # The batched path, masked rows included.
        packets = [
            Packet(metadata={META_FILTER_REQUEST: 1}),
            Packet(metadata={META_FILTER_REQUEST: 1,
                             META_FILTER_INPUT: 0b1010101010}),
        ]
        module.evaluate_batch(packets)
        outputs.append(scalar.value)
        # Zero-hit witness for the dead arm on a parallel interpreter.
        analysis = analyze_policy(policy, schema=SCHEMA)
        dead_node = policy.root.children()[dead_path[0]]
        assert analysis.fact_at(dead_node).region.empty
        record = {}
        PolicyInterpreter(policy).evaluate(module.smbm, record=record)
        assert record[dead_node.node_id].value == 0
    assert outputs[0] == outputs[1]  # interpreted == codegen


def test_sanitizer_catches_region_escapes():
    """Wiring check: force a bogus (empty) cached region and confirm the
    containment assert actually trips on the serving path."""
    policy = _pred("cpu", RelOp.LT, 200, "loose")
    # memoize off: the second evaluate must re-run the sanitized path
    # rather than serve the memoized (pre-corruption) result.
    module = FilterModule(CAPACITY, METRICS, policy, sanitize=True,
                          memoize=False)
    module.update_resource(1, {"cpu": 10, "mem": 10})
    assert module.evaluate().value != 0  # sound region: serves fine
    module._semantic_cache = (module.compiled, Region.bottom())
    with pytest.raises(IntegrityError, match="feasible region"):
        module.evaluate()


def test_sanitized_serving_stays_green_on_bundled_policies():
    """The soundness assert is not over-strict: a clean bundled-style
    policy serves under sanitize+codegen across table churn."""
    table = TableRef()
    policy = Policy(
        min_of(intersection(predicate(table, "cpu", RelOp.LT, 70),
                            predicate(table, "mem", RelOp.GT, 16)), "cpu"),
        name="sliced-lb",
    )
    module = FilterModule(CAPACITY, METRICS, policy, sanitize=True)
    rng = random.Random(3)
    for i in range(40):
        module.update_resource(i % 8, {"cpu": rng.randrange(100),
                                       "mem": rng.randrange(64)})
        module.evaluate()
        if i % 5 == 0:
            module.sanitize_check()
