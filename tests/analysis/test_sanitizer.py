"""Runtime sanitizer: commit-time invariant checks across the model.

Each test violates exactly one invariant the sanitizer guards — SMBM
structural consistency, memo-version coherence, atomic replicated commit,
fast-path/oracle agreement — and asserts the next commit (or check)
reports it as an :class:`~repro.errors.IntegrityError` with context.
"""

from __future__ import annotations

import pytest

from repro.core.policy import Policy, TableRef, min_of
from repro.core.smbm import SMBM
from repro.core.ufpu_reference import GoldenOracle
from repro.errors import ConfigurationError, IntegrityError
from repro.faults.injector import FaultInjector
from repro.switch.filter_module import FilterModule
from repro.switch.replication import ReplicatedSMBM


def _policy() -> Policy:
    return Policy(min_of(TableRef(), "q"), name="san")


class TestSmbmSanitize:
    def test_clean_writes_pass(self):
        smbm = SMBM(8, ("q",), sanitize=True)
        smbm.add(1, {"q": 5})
        smbm.add(2, {"q": 3})
        smbm.delete(1)
        smbm.update(2, {"q": 9})
        assert smbm.sanitize
        assert len(smbm) == 1

    def test_mangled_list_caught_on_next_commit(self):
        smbm = SMBM(8, ("q",), sanitize=True)
        smbm.add(1, {"q": 5})
        # Corrupt the reverse map out from under the forward map: the
        # sorted-list entry no longer matches the stored row.
        value, seq, rid = smbm._metric_lists["q"][0]
        smbm._metric_lists["q"][0] = (value + 1, seq, rid)
        with pytest.raises(IntegrityError) as exc_info:
            smbm.add(2, {"q": 7})
        assert exc_info.value.component == "smbm"
        assert "invariant violated" in str(exc_info.value)

    def test_seu_does_not_false_positive(self):
        """corrupt_stored_bit flips value *consistently* in both maps — an
        SEU corrupts data, not structure, so the sanitizer stays quiet (the
        ECC layer, not the sanitizer, owns data-integrity detection)."""
        smbm = SMBM(8, ("q",), sanitize=True)
        smbm.add(1, {"q": 5})
        smbm.corrupt_stored_bit(1, "q", 3)
        smbm.add(2, {"q": 7})  # commit-time check passes

    def test_unsanitized_table_skips_the_check(self):
        smbm = SMBM(8, ("q",))
        smbm.add(1, {"q": 5})
        value, seq, rid = smbm._metric_lists["q"][0]
        smbm._metric_lists["q"][0] = (value + 1, seq, rid)
        smbm.add(2, {"q": 7})  # no sanitizer, nothing raises
        assert not smbm.sanitize


class TestMemoCoherence:
    def test_memo_invalidated_by_every_commit(self):
        module = FilterModule(8, ("q",), _policy(), sanitize=True)
        module.smbm.add(1, {"q": 5})
        module.evaluate()
        module.evaluate()
        assert module.cache_hits == 1
        module.smbm.add(2, {"q": 3})  # coherence listener passes
        assert module.evaluate().first_set() == 2

    def test_incoherent_memo_caught_at_commit(self):
        module = FilterModule(8, ("q",), _policy(), sanitize=True)
        module.smbm.add(1, {"q": 5})
        module.evaluate()
        # Simulate a version-bookkeeping bug: the memo claims to already
        # hold the result of the *next* table version.
        module._memo_version = module.smbm.version + 1
        with pytest.raises(IntegrityError, match="stale results"):
            module.smbm.add(2, {"q": 3})


class TestOracleCheck:
    def test_agreement_passes_and_is_shared_with_self_test(self):
        module = FilterModule(8, ("q",), _policy(), sanitize=True)
        module.smbm.add(3, {"q": 9})
        module.smbm.add(5, {"q": 1})
        out = module.sanitize_check()
        assert out.first_set() == 5
        assert module.self_test() == []
        # One shared oracle compilation behind both checks.
        assert module._oracle.compiled.naive

    def test_observable_stuck_fault_caught(self):
        module = FilterModule(8, ("q",), _policy())
        for rid in range(6):
            module.smbm.add(rid, {"q": 10 - rid})
        inj = FaultInjector(seed=3)
        event = inj.stick_cell(module)
        assert event is not None, "injector found no observable stuck fault"
        with pytest.raises(IntegrityError, match="disagrees with golden"):
            module.sanitize_check()

    def test_stateful_policy_rejected(self):
        from repro.core.policy import random_pick

        module = FilterModule(8, ("q",),
                              Policy(random_pick(TableRef()), name="rng"))
        with pytest.raises(ConfigurationError):
            module.sanitize_check()

    def test_golden_oracle_standalone(self):
        oracle = GoldenOracle(_policy())
        smbm = SMBM(8, ("q",))
        smbm.add(2, {"q": 4})
        assert oracle.expected(smbm).first_set() == 2
        assert oracle.compiled is oracle.compiled  # compiled once, cached


class TestReplicatedSanitize:
    def test_commit_checks_replica_sync(self):
        rep = ReplicatedSMBM(3, 8, ("q",), sanitize=True)
        rep.issue_update(0, 1, {"q": 5})
        rep.commit_cycle()
        for p in range(3):
            assert rep.replica(p).metrics_of(1) == {"q": 5}

    def test_per_replica_tables_are_sanitized(self):
        rep = ReplicatedSMBM(2, 8, ("q",), sanitize=True)
        assert all(rep.replica(p).sanitize for p in range(2))
