"""One test per registered rule: each trigger produces exactly that rule.

The acceptance contract for the rule registry is that every ``THnnn`` id
is independently reachable — a plan crafted to violate one invariant
yields that finding and no other, so CI grep filters and suppression
lists can key on ids without cross-talk.
"""

from __future__ import annotations

import pytest

from repro.analysis import RULES, PlanVerifier, Severity, TableSchema
from repro.analysis.verifier import verify_policy_compiles
from repro.core.cell import CellConfig
from repro.core.compiler import PolicyCompiler
from repro.core.operators import BinaryOp, RelOp
from repro.core.pipeline import PipelineConfig, PipelineParams, StageConfig
from repro.core.policy import (
    Binary,
    Policy,
    TableRef,
    intersection,
    max_of,
    min_of,
    predicate,
)
from repro.core.smbm import STORED_WORD_BITS
from repro.errors import CompilationError

SCHEMA = TableSchema(16, ("q", "load"))


def rules_of(report):
    return [f.rule for f in report.findings]


def test_registry_is_complete_and_stable():
    assert sorted(RULES) == [f"TH{i:03d}" for i in range(1, 22)]
    assert RULES["TH001"].name == "DeadOperator"
    assert RULES["TH001"].severity is Severity.WARNING
    assert RULES["TH008"].severity is Severity.ERROR
    assert RULES["TH012"].name == "CodegenIneligible"
    assert RULES["TH012"].severity is Severity.WARNING
    assert RULES["TH013"].name == "QuotaExceeded"
    assert RULES["TH013"].severity is Severity.ERROR
    assert RULES["TH014"].name == "CrossTenantWiring"
    assert RULES["TH014"].severity is Severity.ERROR
    assert RULES["TH015"].name == "CheckpointUnfaithful"
    assert RULES["TH015"].severity is Severity.ERROR
    assert RULES["TH016"].name == "ReplayHandlerMissing"
    assert RULES["TH016"].severity is Severity.ERROR
    assert RULES["TH017"].name == "UnreachablePredicate"
    assert RULES["TH017"].severity is Severity.WARNING
    assert RULES["TH018"].name == "ShadowedBranch"
    assert RULES["TH018"].severity is Severity.WARNING
    assert RULES["TH019"].name == "VacuousSetOp"
    assert RULES["TH019"].severity is Severity.WARNING
    assert RULES["TH020"].name == "SemanticHotSwapChange"
    assert RULES["TH020"].severity is Severity.ERROR
    assert RULES["TH021"].name == "CrossTenantOverlap"
    assert RULES["TH021"].severity is Severity.WARNING


def test_th001_dead_operator():
    """A programmed Cell unreachable from any live output is flagged."""
    compiled = PolicyCompiler().compile(
        Policy(min_of(TableRef(), "q"), name="t"), schema=SCHEMA,
    )
    verifier = PlanVerifier(schema=SCHEMA)
    report = verifier.verify_config(compiled.config, live_outputs=set())
    assert rules_of(report) == ["TH001"]
    assert report.ok and not report.clean  # warning-level
    assert report.findings[0].format().startswith("TH001 DeadOperator")


def test_th002_unknown_metric():
    verifier = PlanVerifier(schema=SCHEMA)
    report = verifier.verify_policy(
        Policy(min_of(TableRef(), "latency"), name="t")
    )
    assert rules_of(report) == ["TH002"]
    assert not report.ok


def test_th003_value_width_exceeded():
    verifier = PlanVerifier(schema=SCHEMA)
    too_wide = 1 << STORED_WORD_BITS
    report = verifier.verify_policy(
        Policy(predicate(TableRef(), "q", RelOp.LT, too_wide), name="t")
    )
    assert rules_of(report) == ["TH003"]


def test_th004_chain_overflow():
    params = PipelineParams(n=4, k=2, f=2, chain_length=2)
    verifier = PlanVerifier(params)
    report = verifier.verify_policy(
        Policy(min_of(TableRef(), "q", k=3), name="t")
    )
    assert rules_of(report) == ["TH004"]


def test_th005_fanout_exceeded():
    params = PipelineParams(n=4, k=1, f=2, chain_length=1)
    config = PipelineConfig(stages=[StageConfig(
        wiring={0: 0, 1: 0, 2: 0, 3: 1},  # line 0 feeds 3 ports, f=2
        cells=[CellConfig(), CellConfig()],
    )])
    report = PlanVerifier(params).verify_config(config)
    assert rules_of(report) == ["TH005"]
    assert report.findings[0].stage == 1


def test_th006_wiring_range():
    params = PipelineParams(n=4, k=1, f=2, chain_length=1)
    config = PipelineConfig(stages=[StageConfig(
        wiring={0: 7},  # source line 7 out of range for n=4
        cells=[CellConfig(), CellConfig()],
    )])
    report = PlanVerifier(params).verify_config(config)
    assert rules_of(report) == ["TH006"]


def test_th007_benes_unroutable():
    """A constrained (smaller-than-default) Benes network rejects a wiring
    the full-size network routes fine."""
    params = PipelineParams(n=4, k=1, f=2, chain_length=1)
    config = PipelineConfig(stages=[StageConfig(
        wiring={0: 0, 1: 0, 2: 1, 3: 2},  # legal fan-out 2
        cells=[CellConfig(), CellConfig()],
    )])
    assert PlanVerifier(params).verify_config(config).clean
    report = PlanVerifier(params, benes_size=4).verify_config(config)
    assert rules_of(report) == ["TH007"]


def test_th008_timing_closure():
    """The SMBM search path extrapolation misses 1 GHz at N=32768."""
    big = TableSchema(32768, ("q",))
    report = PlanVerifier(schema=big).verify_timing()
    assert rules_of(report) == ["TH008"]
    # ... while the paper's evaluated sizes close timing comfortably.
    assert PlanVerifier(schema=TableSchema(512, ("q",))).verify_timing().clean


def test_th009_capacity_overflow():
    """A policy needing more stages than the pipeline has is rejected with
    the capacity rule attached by the compiler's raise site."""
    params = PipelineParams(n=2, k=1, f=1, chain_length=1)
    deep = Policy(min_of(min_of(TableRef(), "q"), "q"), name="deep")
    report = verify_policy_compiles(deep, params, schema=TableSchema(16, ("q",)))
    assert rules_of(report) == ["TH009"]
    with pytest.raises(CompilationError) as exc_info:
        PolicyCompiler(params).compile(deep)
    assert exc_info.value.rule == "TH009"


def test_th010_unread_unit():
    """A NO_OP binary fuses both operands into one Cell but its mux only
    reads one of them — the other is programmed yet dropped."""
    root = Binary(
        opcode=BinaryOp.NO_OP, choice=0,
        left=min_of(TableRef(), "q"), right=max_of(TableRef(), "q"),
    )
    compiled = PolicyCompiler().compile(
        Policy(root, name="t"), schema=SCHEMA,
    )
    report = PlanVerifier(schema=SCHEMA).verify_compiled(compiled)
    assert rules_of(report) == ["TH010"]
    # warning-level: the compile succeeded and attached the lint finding.
    assert [f.rule for f in compiled.lint_findings] == ["TH010"]


def test_th011_contradictory_predicates():
    t = TableRef()
    root = intersection(
        predicate(t, "q", RelOp.LT, 10),
        predicate(t, "q", RelOp.GT, 20),
    )
    report = PlanVerifier().verify_policy(Policy(root, name="t"))
    assert rules_of(report) == ["TH011"]
    # Overlapping intervals are not flagged.
    ok = intersection(
        predicate(t, "q", RelOp.LT, 30),
        predicate(t, "q", RelOp.GT, 20),
    )
    assert PlanVerifier().verify_policy(Policy(ok, name="t")).clean


def test_th012_codegen_ineligible():
    """Every specialization blocker yields a TH012 warning; eligible plans
    verify clean and clean means the compiler attaches a codegen tier."""
    from repro.core.policy import random_pick

    verifier = PlanVerifier(schema=SCHEMA)
    compiler = PolicyCompiler()
    # Stateful unit: blocked.
    stateful = compiler.compile(
        Policy(random_pick(TableRef()), name="t"), schema=SCHEMA,
    )
    report = verifier.verify_codegen(stateful)
    assert rules_of(report) == ["TH012"]
    assert report.ok and not report.clean  # warning-level lint
    # Caller-supplied input table: blocked.
    indexed = compiler.compile(
        Policy(min_of(TableRef(input_index=1), "q"), name="t"), schema=SCHEMA,
    )
    assert rules_of(verifier.verify_codegen(indexed)) == ["TH012"]
    # Interior tap: blocked.
    t = TableRef()
    eligible_node = predicate(t, "q", RelOp.LT, 10)
    tapped = compiler.compile(
        Policy(min_of(eligible_node, "q"), name="t"),
        taps={"examined": eligible_node}, schema=SCHEMA,
    )
    assert rules_of(verifier.verify_codegen(tapped)) == ["TH012"]
    # Reference build: blocked (the oracle must stay interpreted).
    naive = compiler.compile(
        Policy(min_of(TableRef(), "q"), name="t"), schema=SCHEMA, naive=True,
    )
    assert rules_of(verifier.verify_codegen(naive)) == ["TH012"]
    # Eligible plan: clean, and codegen=True attaches the tier.
    plain = compiler.compile(
        Policy(min_of(TableRef(), "q"), name="t"), schema=SCHEMA, codegen=True,
    )
    assert verifier.verify_codegen(plain).clean
    assert plain.codegen is not None
    # Ineligible + codegen=True: compiles, carries TH012, no tier attached.
    flagged = compiler.compile(
        Policy(random_pick(TableRef()), name="t"), schema=SCHEMA, codegen=True,
    )
    assert flagged.codegen is None
    assert "TH012" in {f.rule for f in flagged.lint_findings}


def test_error_findings_raise_with_shared_context():
    """Error-level findings surface as CompilationError carrying the same
    rule/stage context as the compiler's own raise sites."""
    verifier = PlanVerifier(schema=SCHEMA)
    report = verifier.verify_policy(
        Policy(min_of(TableRef(), "latency"), name="t")
    )
    with pytest.raises(CompilationError) as exc_info:
        report.raise_if_errors()
    assert exc_info.value.rule == "TH002"
    assert "TH002 UnknownMetric" in str(exc_info.value)


def test_compile_rejects_unknown_metric_by_default():
    """compile(verify=True, schema=...) rejects bad plans up front."""
    with pytest.raises(CompilationError) as exc_info:
        PolicyCompiler().compile(
            Policy(min_of(TableRef(), "latency"), name="t"), schema=SCHEMA,
        )
    assert exc_info.value.rule == "TH002"
    # The escape hatch still compiles it (evaluation would fail later).
    compiled = PolicyCompiler().compile(
        Policy(min_of(TableRef(), "latency"), name="t"), verify=False,
    )
    assert compiled.lint_findings == ()


def _chain_policy() -> Policy:
    table = TableRef()
    return Policy(
        min_of(intersection(
            predicate(table, "q", RelOp.LT, 5),
            predicate(table, "load", RelOp.GT, 2),
        ), "q"),
        name="chain",
    )


def _wide_policy() -> Policy:
    """Three predicates: more unary sides than one Cell column's stage-1
    Cell offers, so an unconfined compile spills into column 1."""
    table = TableRef()
    return Policy(
        intersection(intersection(
            predicate(table, "q", RelOp.LT, 5),
            predicate(table, "load", RelOp.GT, 2),
        ), predicate(table, "q", RelOp.GT, 1)),
        name="wide",
    )


def test_th013_cell_quota_exceeded():
    """A plan occupying more physical Cells than the tenant's quota."""
    from repro.analysis import TenantSlice

    compiled = PolicyCompiler().compile(_chain_policy(), schema=SCHEMA)
    verifier = PlanVerifier(schema=SCHEMA)
    tenant_slice = TenantSlice(
        columns=frozenset({0, 1}), smbm_quota=SCHEMA.capacity, cell_quota=2
    )
    report = verifier.verify_slice(compiled, tenant_slice)
    assert rules_of(report) == ["TH013"]
    assert not report.ok
    assert "quota of 2" in report.findings[0].message


def test_th013_smbm_quota_exceeded():
    """A table bigger than the tenant's row quota."""
    from repro.analysis import TenantSlice

    compiled = PolicyCompiler().compile(_chain_policy(), schema=SCHEMA)
    verifier = PlanVerifier(schema=SCHEMA)
    tenant_slice = TenantSlice(columns=frozenset({0, 1}), smbm_quota=8)
    report = verifier.verify_slice(compiled, tenant_slice)
    assert rules_of(report) == ["TH013"]
    assert "row quota 8" in report.findings[0].message


def test_th014_cross_tenant_wiring():
    """An unconfined plan spilling outside a one-column slice: both TH014
    shapes fire (foreign occupation and foreign line taps), and nothing
    else once the Cell quota is generous."""
    from repro.analysis import TenantSlice

    compiled = PolicyCompiler().compile(_wide_policy(), schema=SCHEMA)
    verifier = PlanVerifier(schema=SCHEMA)
    tenant_slice = TenantSlice(
        columns=frozenset({0}), smbm_quota=SCHEMA.capacity, cell_quota=8
    )
    report = verifier.verify_slice(compiled, tenant_slice)
    assert set(rules_of(report)) == {"TH014"}
    assert not report.ok
    messages = [f.message for f in report.findings]
    assert any("occupies Cell column 1" in m for m in messages)
    assert any("taps line" in m for m in messages)


def test_confined_compile_is_slice_clean():
    """The same spilling plan, compiled with the slice's reserved Cells
    dead and its inputs restricted, stays inside the strip — and then
    verifies clean: confinement plus verification is the static isolation
    guarantee.  A slice too small for the plan fails *at compile time*
    (the confinement is physical), never silently escapes."""
    from repro.analysis import TenantSlice

    params = PipelineParams(n=8)
    tenant_slice = TenantSlice(
        columns=frozenset({0, 1}), smbm_quota=SCHEMA.capacity
    )
    compiled = PolicyCompiler(params).compile(
        _wide_policy(), schema=SCHEMA,
        dead_cells=tenant_slice.reserved_cells(params),
        input_lines=tenant_slice.lines,
    )
    verifier = PlanVerifier(params, schema=SCHEMA)
    report = verifier.verify_slice(compiled, tenant_slice)
    assert report.clean
    # The same plan cannot be squeezed into a single column: the compiler
    # itself rejects the placement rather than spilling out of the slice.
    narrow = TenantSlice(columns=frozenset({0}), smbm_quota=SCHEMA.capacity)
    with pytest.raises(CompilationError):
        PolicyCompiler(params).compile(
            _wide_policy(), schema=SCHEMA,
            dead_cells=narrow.reserved_cells(params),
            input_lines=narrow.lines,
        )


def test_th016_replay_handler_missing():
    """A logged op kind with no replay handler (or a handler registered
    for a kind the WAL never logs) is unrecoverable — both directions of
    the registry drift produce TH016 and nothing else."""
    from repro.analysis.replay import audit_replay_registry

    missing = audit_replay_registry(("new_op",), {})
    assert rules_of(missing) == ["TH016"]
    assert missing.findings[0].operator == "new_op"
    dead = audit_replay_registry((), {"renamed_op": object()})
    assert rules_of(dead) == ["TH016"]
