"""Property suite for the static verifier.

The verifier's soundness contract, stated as properties over random
policy ASTs:

* **totality** — ``verify_policy_compiles`` never raises: every random
  policy either verifies clean (possibly with warnings) or is rejected
  with findings carrying registered rule ids;
* **agreement** — when the trial verification reports no error, compiling
  with verification *on* succeeds; when it reports errors, the guarded
  compile raises a :class:`~repro.errors.CompilationError` whose rule id
  is registered;
* **no runtime surprises** — a plan that passed verification never raises
  at evaluation time, over random tables and random write interleavings
  (including the 10k-packet acceptance run).
"""

from __future__ import annotations

import random

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.analysis import RULES, TableSchema  # noqa: E402
from repro.analysis.verifier import verify_policy_compiles  # noqa: E402
from repro.core.compiler import PolicyCompiler  # noqa: E402
from repro.core.operators import RelOp  # noqa: E402
from repro.core.pipeline import PipelineParams  # noqa: E402
from repro.core.policy import (  # noqa: E402
    Node,
    Policy,
    TableRef,
    difference,
    intersection,
    max_of,
    min_of,
    predicate,
    union,
)
from repro.core.smbm import SMBM, STORED_WORD_BITS  # noqa: E402
from repro.errors import CompilationError  # noqa: E402
from repro.switch.filter_module import FilterModule  # noqa: E402

CAPACITY = 16
METRICS = ("a", "b")
SCHEMA = TableSchema(CAPACITY, METRICS)
PARAMS = PipelineParams()  # the paper's default n=4, k=4, f=2, chain=4

# Attribute pool deliberately includes a name absent from the schema
# (TH002 territory) and value pool includes out-of-word values (TH003).
ATTRS = ("a", "b", "ghost")
VALUES = (0, 1, 7, 500, (1 << STORED_WORD_BITS) - 1, 1 << STORED_WORD_BITS)


def _leaf() -> st.SearchStrategy[Node]:
    return st.just(None).map(lambda _: TableRef())


def _unary(child: st.SearchStrategy[Node]) -> st.SearchStrategy[Node]:
    return st.one_of(
        st.tuples(child, st.sampled_from(ATTRS),
                  st.sampled_from(tuple(RelOp)), st.sampled_from(VALUES),
                  st.integers(min_value=1, max_value=6))
        .map(lambda t: predicate(t[0], t[1], t[2], t[3], k=t[4])),
        st.tuples(child, st.sampled_from(ATTRS),
                  st.integers(min_value=1, max_value=6))
        .map(lambda t: min_of(t[0], t[1], k=t[2])),
        st.tuples(child, st.sampled_from(ATTRS),
                  st.integers(min_value=1, max_value=6))
        .map(lambda t: max_of(t[0], t[1], k=t[2])),
    )


def _binary(child: st.SearchStrategy[Node]) -> st.SearchStrategy[Node]:
    op = st.sampled_from((union, intersection, difference))
    return st.tuples(op, child, child).map(lambda t: t[0](t[1], t[2]))


def policies() -> st.SearchStrategy[Policy]:
    node = st.recursive(
        _leaf(),
        lambda child: st.one_of(_unary(child), _binary(child)),
        max_leaves=6,
    )
    return node.map(lambda root: Policy(root, name="random"))


def _fill(smbm: SMBM, rng: random.Random, rows: int) -> None:
    for rid in rng.sample(range(smbm.capacity), rows):
        smbm.add(rid, {m: rng.randrange(1000) for m in METRICS})


@given(policy=policies())
@settings(max_examples=60)
def test_verify_is_total_and_rules_are_registered(policy: Policy):
    report = verify_policy_compiles(policy, PARAMS, schema=SCHEMA)
    for finding in report.findings:
        assert finding.rule in RULES


@given(policy=policies())
@settings(max_examples=60)
def test_verify_agrees_with_guarded_compile(policy: Policy):
    report = verify_policy_compiles(policy, PARAMS, schema=SCHEMA)
    if report.ok:
        compiled = PolicyCompiler(PARAMS).compile(policy, schema=SCHEMA)
        assert {f.rule for f in compiled.lint_findings} == {
            f.rule for f in report.warnings
        }
    else:
        with pytest.raises(CompilationError) as exc_info:
            PolicyCompiler(PARAMS).compile(policy, schema=SCHEMA)
        assert exc_info.value.rule in RULES


@given(policy=policies(), seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=40)
def test_verified_plan_never_raises_at_evaluation(policy: Policy, seed: int):
    report = verify_policy_compiles(policy, PARAMS, schema=SCHEMA)
    if not report.ok:
        return  # rejected statically: nothing to run
    rng = random.Random(seed)
    module = FilterModule(CAPACITY, METRICS, policy, PARAMS)
    _fill(module.smbm, rng, rows=rng.randrange(CAPACITY + 1))
    for _ in range(20):
        out = module.evaluate()
        assert out.width == CAPACITY
        if rng.random() < 0.3:
            rid = rng.randrange(CAPACITY)
            if rid in module.smbm:
                module.remove_resource(rid)
            else:
                module.update_resource(
                    rid, {m: rng.randrange(1000) for m in METRICS}
                )


def test_verified_plan_survives_10k_random_packets():
    """Acceptance run: one verified plan, 10k packets, periodic writes,
    zero raises — with the sanitizer armed the whole way."""
    table = TableRef()
    eligible = intersection(
        predicate(table, "a", RelOp.LT, 700),
        predicate(table, "b", RelOp.GT, 100),
    )
    policy = Policy(min_of(eligible, "a"), name="acceptance")
    assert verify_policy_compiles(policy, PARAMS, schema=SCHEMA).clean

    rng = random.Random(0xACCE97)
    module = FilterModule(CAPACITY, METRICS, policy, PARAMS, sanitize=True)
    _fill(module.smbm, rng, rows=CAPACITY // 2)
    for i in range(10_000):
        out = module.evaluate()
        assert out.width == CAPACITY
        if i % 97 == 0:
            rid = rng.randrange(CAPACITY)
            if rid in module.smbm:
                module.remove_resource(rid)
            else:
                module.update_resource(
                    rid, {m: rng.randrange(1000) for m in METRICS}
                )
    assert module.evaluations == 10_000
    assert module.sanitize_check() is not None
