"""The ``python -m repro.analysis.lint`` CLI over the bundled policies.

Acceptance: every policy shipped in :mod:`repro.policies` verifies clean
on the geometry its module deploys it on, and the CLI's exit status
encodes the outcome for the CI lint job.
"""

from __future__ import annotations

from repro import obs
from repro.analysis.lint import POLICY_CATALOGUE, lint_all, main


def test_every_bundled_policy_lints_as_catalogued():
    reports = lint_all()
    assert len(reports) == len(POLICY_CATALOGUE) == 11
    expectations = {e.name: set(e.expect_rules) for e in POLICY_CATALOGUE}
    for name, report in reports.items():
        expected = expectations[name]
        if not expected:
            assert report.clean, f"{name}: {report.describe()}"
        else:
            # Demonstration entries: exactly the promised rules fire,
            # and nothing outside them.
            fired = {f.rule for f in report.findings}
            assert fired == expected, f"{name}: {report.describe()}"


def test_tenancy_rules_exercised_from_the_catalogue():
    reports = lint_all("tenancy")
    fired = {f.rule for r in reports.values() for f in r.findings}
    assert {"TH013", "TH014"} <= fired
    assert reports["tenancy-sliced-lb"].clean


def test_cli_exit_zero_with_expected_demo_findings(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    assert ("linted 11 bundled policies + replay coverage: 0 error(s), "
            "0 warning(s), 6 expected demo finding(s)") in out
    assert "TH013" in out and "TH014" in out
    assert "(expected: demonstration entry)" in out


def test_cli_verbose_lists_every_policy(capsys):
    assert main(["-v"]) == 0
    out = capsys.readouterr().out
    for entry in POLICY_CATALOGUE:
        if not entry.expect_rules:
            assert f"{entry.name}: clean" in out


def test_cli_name_filter(capsys):
    assert main(["drill", "-v"]) == 0
    out = capsys.readouterr().out
    assert "drill: clean" in out
    assert "linted 1 bundled policy + replay coverage:" in out


def test_cli_unmatched_filter_exits_two(capsys):
    assert main(["no-such-policy"]) == 2
    assert "no bundled policy matches" in capsys.readouterr().err


def test_findings_flow_into_metrics_registry():
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        lint_all("drill")
        # Clean run: the emit() path ran but recorded no findings.
        snapshot = obs.snapshot(registry)
    assert not any(
        series.startswith("lint_findings_total")
        for series in snapshot.get("counters", {})
    )


def test_emitted_findings_counted_by_rule():
    from repro.analysis import Report

    report = Report(subject="test")
    report.add("TH001", "dead")
    report.add("TH001", "dead again")
    report.add("TH011", "empty")
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        report.emit()
        snapshot = obs.snapshot(registry)
    counters = {
        series: value
        for series, value in snapshot.get("counters", {}).items()
        if series.startswith("lint_findings_total")
    }
    assert counters == {
        'lint_findings_total{rule="TH001"}': 2,
        'lint_findings_total{rule="TH011"}': 1,
    }


def test_semantic_mode_runs_the_symbolic_demonstrations(capsys):
    from repro.analysis.lint import SEMANTIC_CATALOGUE

    assert main(["--semantic"]) == 0
    out = capsys.readouterr().out
    for rule in ("TH017", "TH018", "TH019", "TH021"):
        assert rule in out
    assert "semantic overhead:" in out
    n = 11 + len(SEMANTIC_CATALOGUE)
    assert f"linted {n} bundled policies" in out
    assert "10 expected demo finding(s)" in out


def test_semantic_demos_fire_exactly_their_promised_rules():
    from repro.analysis.lint import SEMANTIC_CATALOGUE

    reports = lint_all("semantic", semantic=True)
    assert len(reports) == len(SEMANTIC_CATALOGUE)
    for entry in SEMANTIC_CATALOGUE:
        fired = {f.rule for f in reports[entry.name].findings}
        assert fired == set(entry.expect_rules), reports[entry.name].describe()


def test_json_format_is_machine_readable(capsys):
    import json

    assert main(["--semantic", "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["summary"]["errors"] == 0
    assert doc["summary"]["expected_demo_findings"] == 10
    assert doc["replay"]["clean"] is True
    by_name = {p["name"]: p for p in doc["policies"]}
    th17 = [f for f in by_name["semantic-unreachable-demo"]["findings"]
            if f["rule"] == "TH017"]
    assert th17 and th17[0]["severity"] == "warning"
    assert th17[0]["node_path"] == []  # root-to-node index path, JSON list
    assert th17[0]["name"] == "UnreachablePredicate"
    assert not any(p["stale_rules"] for p in doc["policies"])
    # The acceptance bar: the symbolic pass stays under 2x baseline.
    assert doc["timing"]["ratio"] < 2.0


def test_json_format_without_semantic_omits_timing(capsys):
    import json

    assert main(["--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert "timing" not in doc
    assert doc["summary"]["linted"] == 11
