"""The ``python -m repro.analysis.lint`` CLI over the bundled policies.

Acceptance: every policy shipped in :mod:`repro.policies` verifies clean
on the geometry its module deploys it on, and the CLI's exit status
encodes the outcome for the CI lint job.
"""

from __future__ import annotations

from repro import obs
from repro.analysis.lint import POLICY_CATALOGUE, lint_all, main


def test_every_bundled_policy_lints_clean():
    reports = lint_all()
    assert len(reports) == len(POLICY_CATALOGUE) == 8
    for name, report in reports.items():
        assert report.clean, f"{name}: {report.describe()}"


def test_cli_exit_zero_on_clean(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    assert "linted 8 bundled policies: 0 error(s), 0 warning(s)" in out


def test_cli_verbose_lists_every_policy(capsys):
    assert main(["-v"]) == 0
    out = capsys.readouterr().out
    for entry in POLICY_CATALOGUE:
        assert f"{entry.name}: clean" in out


def test_cli_name_filter(capsys):
    assert main(["drill", "-v"]) == 0
    out = capsys.readouterr().out
    assert "drill: clean" in out
    assert "linted 1 bundled policy:" in out


def test_cli_unmatched_filter_exits_two(capsys):
    assert main(["no-such-policy"]) == 2
    assert "no bundled policy matches" in capsys.readouterr().err


def test_findings_flow_into_metrics_registry():
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        lint_all("drill")
        # Clean run: the emit() path ran but recorded no findings.
        snapshot = obs.snapshot(registry)
    assert not any(
        series.startswith("lint_findings_total")
        for series in snapshot.get("counters", {})
    )


def test_emitted_findings_counted_by_rule():
    from repro.analysis import Report

    report = Report(subject="test")
    report.add("TH001", "dead")
    report.add("TH001", "dead again")
    report.add("TH011", "empty")
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        report.emit()
        snapshot = obs.snapshot(registry)
    counters = {
        series: value
        for series, value in snapshot.get("counters", {}).items()
        if series.startswith("lint_findings_total")
    }
    assert counters == {
        'lint_findings_total{rule="TH001"}': 2,
        'lint_findings_total{rule="TH011"}': 1,
    }
