"""The ``python -m repro.analysis.lint`` CLI over the bundled policies.

Acceptance: every policy shipped in :mod:`repro.policies` verifies clean
on the geometry its module deploys it on, and the CLI's exit status
encodes the outcome for the CI lint job.
"""

from __future__ import annotations

from repro import obs
from repro.analysis.lint import POLICY_CATALOGUE, lint_all, main


def test_every_bundled_policy_lints_as_catalogued():
    reports = lint_all()
    assert len(reports) == len(POLICY_CATALOGUE) == 11
    expectations = {e.name: set(e.expect_rules) for e in POLICY_CATALOGUE}
    for name, report in reports.items():
        expected = expectations[name]
        if not expected:
            assert report.clean, f"{name}: {report.describe()}"
        else:
            # Demonstration entries: exactly the promised rules fire,
            # and nothing outside them.
            fired = {f.rule for f in report.findings}
            assert fired == expected, f"{name}: {report.describe()}"


def test_tenancy_rules_exercised_from_the_catalogue():
    reports = lint_all("tenancy")
    fired = {f.rule for r in reports.values() for f in r.findings}
    assert {"TH013", "TH014"} <= fired
    assert reports["tenancy-sliced-lb"].clean


def test_cli_exit_zero_with_expected_demo_findings(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    assert ("linted 11 bundled policies + replay coverage: 0 error(s), "
            "0 warning(s), 6 expected demo finding(s)") in out
    assert "TH013" in out and "TH014" in out
    assert "(expected: demonstration entry)" in out


def test_cli_verbose_lists_every_policy(capsys):
    assert main(["-v"]) == 0
    out = capsys.readouterr().out
    for entry in POLICY_CATALOGUE:
        if not entry.expect_rules:
            assert f"{entry.name}: clean" in out


def test_cli_name_filter(capsys):
    assert main(["drill", "-v"]) == 0
    out = capsys.readouterr().out
    assert "drill: clean" in out
    assert "linted 1 bundled policy + replay coverage:" in out


def test_cli_unmatched_filter_exits_two(capsys):
    assert main(["no-such-policy"]) == 2
    assert "no bundled policy matches" in capsys.readouterr().err


def test_findings_flow_into_metrics_registry():
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        lint_all("drill")
        # Clean run: the emit() path ran but recorded no findings.
        snapshot = obs.snapshot(registry)
    assert not any(
        series.startswith("lint_findings_total")
        for series in snapshot.get("counters", {})
    )


def test_emitted_findings_counted_by_rule():
    from repro.analysis import Report

    report = Report(subject="test")
    report.add("TH001", "dead")
    report.add("TH001", "dead again")
    report.add("TH011", "empty")
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        report.emit()
        snapshot = obs.snapshot(registry)
    counters = {
        series: value
        for series, value in snapshot.get("counters", {}).items()
        if series.startswith("lint_findings_total")
    }
    assert counters == {
        'lint_findings_total{rule="TH001"}': 2,
        'lint_findings_total{rule="TH011"}': 1,
    }
