"""Breadth tests for smaller surfaces: errors, tracing, hosts, misc edges."""

import random

import pytest

from repro.errors import (
    CapacityError,
    CompilationError,
    ConfigurationError,
    ReproError,
    RoutingError,
    SimulationError,
)
from repro.netsim.host import Host
from repro.netsim.link import Link
from repro.netsim.packet import NetPacket
from repro.netsim.sim import Simulator
from repro.netsim.tracing import FlowRecorder
from repro.netsim.transport import TcpFlow


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc", [CapacityError, CompilationError, ConfigurationError,
                RoutingError, SimulationError]
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")


class TestFlowRecorder:
    def flow(self, fid=1):
        return TcpFlow(fid, 0, 1, size_bytes=1000, start_time=2.0)

    def test_fct_computed_from_start_time(self):
        rec = FlowRecorder()
        rec.on_start(self.flow())
        rec.on_complete(self.flow(), finished_at=5.0)
        assert rec.fcts() == [3.0]

    def test_double_start_rejected(self):
        rec = FlowRecorder()
        rec.on_start(self.flow())
        with pytest.raises(SimulationError):
            rec.on_start(self.flow())

    def test_complete_without_start_rejected(self):
        rec = FlowRecorder()
        with pytest.raises(SimulationError):
            rec.on_complete(self.flow(), 5.0)

    def test_mean_requires_completions(self):
        with pytest.raises(SimulationError):
            FlowRecorder().mean_fct()

    def test_percentiles(self):
        rec = FlowRecorder()
        for fid, fct in enumerate([1.0, 2.0, 3.0, 4.0]):
            flow = TcpFlow(fid, 0, 1, size_bytes=100, start_time=0.0)
            rec.on_start(flow)
            rec.on_complete(flow, fct)
        assert rec.percentile_fct(0) == 1.0
        assert rec.percentile_fct(100) == 4.0
        # Nearest-rank with round-half-to-even: rank round(1.5) = 2 -> 3.0.
        assert rec.percentile_fct(50) == 3.0
        with pytest.raises(SimulationError):
            rec.percentile_fct(150)

    def test_in_flight_tracking(self):
        rec = FlowRecorder()
        rec.on_start(self.flow())
        assert rec.in_flight == 1
        rec.on_complete(self.flow(), 3.0)
        assert rec.in_flight == 0


class TestHostEdges:
    def test_double_uplink_rejected(self):
        host = Host(Simulator(), 0)

        class FakeLink:
            pass

        host.attach_uplink(FakeLink())
        with pytest.raises(ConfigurationError):
            host.attach_uplink(FakeLink())

    def test_uplink_required_to_send(self):
        host = Host(Simulator(), 0)
        with pytest.raises(ConfigurationError):
            host.send_packet(NetPacket(1, 0, 1, 0, 100))

    def test_misrouted_packet_detected(self):
        host = Host(Simulator(), 0)
        with pytest.raises(SimulationError):
            host.receive(NetPacket(1, 5, 9, 0, 100), in_port=0)

    def test_wrong_source_flow_rejected(self):
        host = Host(Simulator(), 0)
        flow = TcpFlow(1, src=3, dst=0, size_bytes=100, start_time=0.0)
        with pytest.raises(ConfigurationError):
            host.start_flow(flow, lambda f, t: None)

    def test_duplicate_flow_rejected(self):
        sim = Simulator()
        host = Host(sim, 0)

        class Sink:
            name = "sink"

            def receive(self, p, port):
                pass

        host.attach_uplink(Link(sim, "up", Sink(), 0))
        flow = TcpFlow(1, src=0, dst=1, size_bytes=100, start_time=0.0)
        host.start_flow(flow, lambda f, t: None)
        with pytest.raises(ConfigurationError):
            host.start_flow(flow, lambda f, t: None)

    def test_ack_for_unknown_flow_ignored(self):
        host = Host(Simulator(), 0)
        ack = NetPacket(99, 1, 0, 0, 40, is_ack=True, ack=1)
        host.receive(ack, in_port=0)  # no sender registered: silently dropped


class TestTcpSenderEdges:
    def test_single_segment_flow(self):
        """A sub-MSS flow completes with one data packet and one ACK."""
        from repro.netsim.transport import TcpReceiver, TcpSender

        sim = Simulator()
        done = []
        wire = []
        flow = TcpFlow(1, 0, 1, size_bytes=300, start_time=0.0)
        receiver = TcpReceiver(sim, 1, sender=0, receiver=1,
                               send=lambda p: wire.append(p))
        sender = TcpSender(sim, flow, send=lambda p: receiver.on_data(p),
                           on_done=lambda f, t: done.append(f))
        sender.start()
        for ack in list(wire):
            sender.on_ack(ack.ack)
        assert done and sender.completed

    def test_out_of_order_delivery_reassembled(self):
        from repro.netsim.transport import TcpReceiver

        sim = Simulator()
        acks = []
        receiver = TcpReceiver(sim, 1, sender=0, receiver=1,
                               send=lambda p: acks.append(p.ack))
        receiver.on_data(NetPacket(1, 0, 1, seq=1, size_bytes=1460))
        receiver.on_data(NetPacket(1, 0, 1, seq=0, size_bytes=1460))
        assert acks == [0, 2]  # hole first, then cumulative jump

    def test_duplicate_data_does_not_advance(self):
        from repro.netsim.transport import TcpReceiver

        sim = Simulator()
        acks = []
        receiver = TcpReceiver(sim, 1, sender=0, receiver=1,
                               send=lambda p: acks.append(p.ack))
        receiver.on_data(NetPacket(1, 0, 1, seq=0, size_bytes=1460))
        receiver.on_data(NetPacket(1, 0, 1, seq=0, size_bytes=1460))
        assert acks == [1, 1]


class TestBenesConfigIntrospection:
    def test_switch_count_matches_formula_for_sizes(self):
        from repro.core.benes import BenesNetwork

        for size in (2, 4, 8, 16, 32, 64):
            net = BenesNetwork(size)
            config = net.route(list(range(size)))
            assert config.switch_count() == net.switch_count()
