"""The shared atomic-write discipline both persistence layers ride on."""

from __future__ import annotations

import json

from repro import obs
from repro.serving._atomic import (
    TMP_SUFFIX,
    atomic_write_text,
    canonical_bytes,
    checksum_hex,
    cleanup_stale_tmp,
    tmp_path_for,
)


def test_atomic_write_creates_file_and_leaves_no_tmp(tmp_path):
    target = tmp_path / "state.json"
    written = atomic_write_text(target, '{"a": 1}')
    assert written == target
    assert target.read_text() == '{"a": 1}'
    assert list(tmp_path.glob(f"*{TMP_SUFFIX}")) == []


def test_atomic_write_replaces_existing_content(tmp_path):
    target = tmp_path / "state.json"
    atomic_write_text(target, "old")
    atomic_write_text(target, "new", fsync=True)
    assert target.read_text() == "new"


def test_canonical_bytes_normalizes_int_and_string_keys():
    # JSON stringifies int dict keys; the canonical form must hash the
    # writer's int-keyed payload and the reader's string-keyed round trip
    # to the same bytes.
    int_keyed = {"rows": {1: "x", 10: "y", 2: "z"}}
    str_keyed = json.loads(json.dumps(int_keyed))
    assert canonical_bytes(int_keyed) == canonical_bytes(str_keyed)
    assert (checksum_hex(canonical_bytes(int_keyed))
            == checksum_hex(canonical_bytes(str_keyed)))


def test_checksum_is_sha256_hex():
    digest = checksum_hex(b"abc")
    assert len(digest) == 64
    assert digest == ("ba7816bf8f01cfea414140de5dae2223"
                      "b00361a396177a9cb410ff61f20015ad")


def test_interrupted_rename_leaves_tmp_and_cleanup_sweeps_it(tmp_path):
    """A crash between the tmp write and the rename strands ``*.tmp``;
    the recovery sweep must remove it (and count it) without touching
    committed files."""
    committed = tmp_path / "good.json"
    atomic_write_text(committed, "committed")
    # Simulate the interrupted write: the tmp file exists, the rename
    # never happened.
    stranded = tmp_path_for(tmp_path / "half.json")
    stranded.write_text("partial bytes the crash stranded")
    other = tmp_path / "other.json.tmp"
    other.write_text("second stranded write")

    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        removed = cleanup_stale_tmp(tmp_path)

    assert removed == sorted([stranded, other])
    assert not stranded.exists() and not other.exists()
    assert committed.read_text() == "committed"
    assert registry.value_of("atomic_stale_tmp_removed_total") == 2


def test_cleanup_on_missing_or_clean_directory_is_a_noop(tmp_path):
    assert cleanup_stale_tmp(tmp_path / "does-not-exist") == []
    assert cleanup_stale_tmp(tmp_path) == []
