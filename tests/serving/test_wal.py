"""The write-ahead log: framing, round trip, and torn-write totality.

The fuzz test is the heart of the crash-consistency story: a log
truncated or bit-flipped at *every possible offset* must always read
back as a valid prefix — recovery never raises, never trusts a corrupt
record, and counts each torn tail exactly once.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.operators import RelOp
from repro.core.policy import Policy, TableRef, min_of, predicate
from repro.errors import ConfigurationError, WalError
from repro.serving.wal import (
    CONTROL_OP_KINDS,
    MARKER_KINDS,
    OP_KINDS,
    WAL_MAGIC,
    WalRecord,
    WriteAheadLog,
    read_wal,
    spec_from_dict,
    spec_to_dict,
)
from repro.tenancy.manager import TenantSpec


def _policy(kind: str = "min") -> Policy:
    table = TableRef()
    if kind == "min":
        return Policy(min_of(table, "cpu"), name="least-loaded")
    return Policy(predicate(table, "cpu", RelOp.LT, 50), name="under")


def _write_log(path, n: int = 5) -> list[WalRecord]:
    with WriteAheadLog(path) as wal:
        records = [
            wal.append(
                "update_resource", f"t{i % 2}",
                {"resource_id": i, "metrics": {"cpu": i * 3, "mem": i}},
            )
            for i in range(n)
        ]
    return records


def test_kind_registry_is_closed():
    assert OP_KINDS == CONTROL_OP_KINDS + MARKER_KINDS
    assert len(set(OP_KINDS)) == len(OP_KINDS)


def test_append_read_roundtrip(tmp_path):
    path = tmp_path / "ops.wal"
    written = _write_log(path, 7)
    result = read_wal(path)
    assert result.header_ok and result.torn == 0
    assert result.records == tuple(written)
    assert [r.op_id for r in result.records] == list(range(7))
    assert result.valid_bytes == path.stat().st_size


def test_append_rejects_unknown_kind_and_closed_log(tmp_path):
    wal = WriteAheadLog(tmp_path / "ops.wal")
    with pytest.raises(WalError):
        wal.append("frobnicate", "t")
    wal.close()
    with pytest.raises(WalError):
        wal.append("add_tenant", "t")


def test_sync_mode_is_validated(tmp_path):
    with pytest.raises(ConfigurationError):
        WriteAheadLog(tmp_path / "ops.wal", sync="lazily")


def test_reopen_continues_op_ids_and_truncates_torn_tail(tmp_path):
    path = tmp_path / "ops.wal"
    _write_log(path, 3)
    # Tear the tail: append garbage half-frame bytes.
    with open(path, "ab") as fh:
        fh.write(b"\x00\x00\x00\x30half-a-frame")
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        with WriteAheadLog(path) as wal:
            assert wal.next_op_id == 3  # continues after the trusted prefix
            wal.append("remove_tenant", "t0")
        assert registry.value_of("wal_torn_records_total") == 1
    result = read_wal(path)
    assert result.torn == 0
    assert [r.op_id for r in result.records] == [0, 1, 2, 3]
    assert result.records[-1].kind == "remove_tenant"


def test_missing_file_and_foreign_header_read_as_empty(tmp_path):
    empty = read_wal(tmp_path / "never-written.wal")
    assert empty.records == () and empty.torn == 0 and not empty.header_ok
    foreign = tmp_path / "foreign.bin"
    foreign.write_bytes(b"not a wal at all, definitely longer than magic")
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        result = read_wal(foreign)
        assert registry.value_of("wal_torn_records_total") == 1
    assert result.records == () and result.torn == 1 and not result.header_ok


def test_spec_roundtrip_through_wal_args():
    spec = TenantSpec(name="alpha", policy=_policy("pred"), smbm_quota=8,
                      columns=2, cell_quota=3, lfsr_seed=11, memoize=True,
                      self_healing=True, sanitize=True, codegen=False)
    rebuilt = spec_from_dict(spec_to_dict(spec))
    # Policy node-ids are globally allocated, so compare the canonical
    # serialized forms (what the WAL and replay actually exchange).
    assert spec_to_dict(rebuilt) == spec_to_dict(spec)
    assert (rebuilt.name, rebuilt.smbm_quota, rebuilt.columns,
            rebuilt.cell_quota, rebuilt.lfsr_seed, rebuilt.memoize,
            rebuilt.self_healing, rebuilt.sanitize, rebuilt.codegen) == (
        spec.name, spec.smbm_quota, spec.columns, spec.cell_quota,
        spec.lfsr_seed, spec.memoize, spec.self_healing, spec.sanitize,
        spec.codegen)
    with pytest.raises(WalError):
        spec_from_dict({"name": "broken"})


def test_obs_series_count_appends_and_bytes(tmp_path):
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        _write_log(tmp_path / "ops.wal", 4)
        assert registry.value_of("wal_appends_total") == 4
        assert (registry.value_of("wal_bytes_written_total")
                == (tmp_path / "ops.wal").stat().st_size - len(WAL_MAGIC))


def test_fsync_mode_counts_barriers(tmp_path):
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        with WriteAheadLog(tmp_path / "ops.wal", sync="fsync") as wal:
            wal.append("remove_tenant", "t")
            wal.append("cutover", "t")
        assert registry.value_of("wal_fsync_total") >= 2


# -- group commit: one frame per drained burst -----------------------------------------


def test_group_append_roundtrip_and_frame_accounting(tmp_path):
    path = tmp_path / "ops.wal"
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        with WriteAheadLog(path) as wal:
            first = wal.append("add_tenant", "a", {"n": 1})
            group = wal.append_group([
                ("update_resource", "a",
                 {"resource_id": i, "metrics": {"cpu": i}})
                for i in range(4)
            ])
            last = wal.append("remove_tenant", "a")
        assert registry.value_of("wal_appends_total") == 6
        # 4 records shared one frame: plain, group, plain.
        assert registry.value_of("wal_frames_total") == 3
    assert [r.op_id for r in group] == [1, 2, 3, 4]
    result = read_wal(path)
    assert result.torn == 0
    assert result.records == (first, *group, last)
    assert [r.args.get("resource_id") for r in group] == [0, 1, 2, 3]


def test_single_entry_group_is_byte_identical_to_plain_append(tmp_path):
    entry = ("hot_swap", "a", {"x": 1})
    plain, grouped = tmp_path / "plain.wal", tmp_path / "group.wal"
    with WriteAheadLog(plain) as wal:
        wal.append(*entry)
    with WriteAheadLog(grouped) as wal:
        wal.append_group([entry])
    assert plain.read_bytes() == grouped.read_bytes()


def test_mixed_tenant_group_falls_back_to_per_record_frames(tmp_path):
    path = tmp_path / "ops.wal"
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        with WriteAheadLog(path) as wal:
            records = wal.append_group([
                ("update_resource", "a", {"resource_id": 1}),
                ("update_resource", "b", {"resource_id": 2}),
            ])
        assert registry.value_of("wal_frames_total") == 2
    assert [r.tenant for r in records] == ["a", "b"]
    assert read_wal(path).records == tuple(records)


def test_group_append_validates_kind_and_empty_burst(tmp_path):
    with WriteAheadLog(tmp_path / "ops.wal") as wal:
        assert wal.append_group([]) == []
        with pytest.raises(WalError):
            wal.append_group([("frobnicate", "a", None),
                              ("update_resource", "a", None)])


def test_truncated_group_frame_drops_the_whole_group(tmp_path):
    """All-or-nothing: chopping a log anywhere inside a group frame
    yields either every record of the group or none of them."""
    path = tmp_path / "ops.wal"
    with WriteAheadLog(path) as wal:
        wal.append("add_tenant", "a", {"n": 1})
        wal.append_group([
            ("update_resource", "a", {"resource_id": i}) for i in range(3)
        ])
        wal.append("shutdown", "__ctl__")
    blob = path.read_bytes()
    full = read_wal(path)
    assert len(full.records) == 5
    # Walk the frame boundaries (3 frames: plain, group, plain).
    boundaries, offset = {len(WAL_MAGIC)}, len(WAL_MAGIC)
    while offset < len(blob):
        length = int.from_bytes(blob[offset:offset + 4], "big")
        offset += 4 + length + 8
        boundaries.add(offset)
    assert len(boundaries) == 4
    target = tmp_path / "cut.wal"
    for cut in range(len(WAL_MAGIC), len(blob) + 1):
        target.write_bytes(blob[:cut])
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            result = read_wal(target)
        assert result.torn == (0 if cut in boundaries else 1), f"cut={cut}"
        assert result.records == full.records[:len(result.records)]
        # Never a partial group: 0, 1, 1+3, or all 5 records.
        assert len(result.records) in (0, 1, 4, 5), f"cut={cut}"


# -- the torn-write fuzz: every offset, truncate and flip ------------------------------


def _fuzz_log(tmp_path) -> bytes:
    path = tmp_path / "fuzz.wal"
    with WriteAheadLog(path) as wal:
        wal.append("add_tenant", "a", {"spec": spec_to_dict(
            TenantSpec(name="a", policy=_policy(), smbm_quota=8))})
        wal.append("update_resource", "a",
                   {"resource_id": 1, "metrics": {"cpu": 5, "mem": 6}})
        wal.append("hot_swap", "a", {"note": "args are opaque here"})
        wal.append("checkpoint", "__ctl__", {"path": "x", "hwm": {"a": 2}})
        wal.append("shutdown", "__ctl__")
    return path.read_bytes()


def test_truncation_at_every_offset_never_raises(tmp_path):
    """Chop the log at every byte offset: reading must always succeed,
    return a valid prefix, and count at most one torn record."""
    blob = _fuzz_log(tmp_path)
    full = read_wal(tmp_path / "fuzz.wal")
    n_records = len(full.records)
    # A truncation exactly at a record boundary is clean (torn == 0).
    boundaries = {len(WAL_MAGIC)}
    offset = len(WAL_MAGIC)
    for _ in full.records:
        length = int.from_bytes(blob[offset:offset + 4], "big")
        offset += 4 + length + 8  # u32 prefix + payload + checksum
        boundaries.add(offset)
    assert offset == len(blob)

    target = tmp_path / "cut.wal"
    for cut in range(len(blob) + 1):
        target.write_bytes(blob[:cut])
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            result = read_wal(target)
            torn_counted = registry.value_of("wal_torn_records_total")
        assert result.torn == torn_counted, f"cut={cut}"
        if cut < len(WAL_MAGIC):
            # Partial header: empty read; non-empty partial magic is torn.
            assert result.records == ()
            assert result.torn == (1 if cut else 0), f"cut={cut}"
            continue
        assert result.header_ok, f"cut={cut}"
        if cut in boundaries:
            assert result.torn == 0, f"cut={cut} is a record boundary"
        else:
            assert result.torn == 1, f"cut={cut} mid-record"
        # The trusted prefix is always a prefix of the full record list.
        assert result.records == full.records[:len(result.records)]
        assert len(result.records) <= n_records


def test_bitflip_at_every_offset_never_raises(tmp_path):
    """Flip one byte at every offset: reading must never raise, never
    trust the flipped record, and count the tear exactly once."""
    blob = _fuzz_log(tmp_path)
    full = read_wal(tmp_path / "fuzz.wal")
    target = tmp_path / "flip.wal"
    for pos in range(len(blob)):
        flipped = bytearray(blob)
        flipped[pos] ^= 0xFF
        target.write_bytes(bytes(flipped))
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            result = read_wal(target)
            torn_counted = registry.value_of("wal_torn_records_total")
        # A flip anywhere (header included) makes exactly one tear.
        assert result.torn == 1, f"pos={pos}"
        assert torn_counted == 1, f"pos={pos}"
        # Records before the flipped one still read back verbatim.
        assert result.records == full.records[:len(result.records)], (
            f"pos={pos}"
        )
        assert len(result.records) < len(full.records), f"pos={pos}"
