"""Checkpoint/restore: bit-identical round trips and hostile files.

Property acceptance: ``restore(snapshot(smbm))`` reproduces the stored
words, the FIFO enqueue order, *and* the version counter exactly — under
arbitrary write histories, under :class:`ReplicatedSMBM` (per-replica,
divergence preserved), and with an :class:`ECCStore` attached (check
words rebuild to the source's).  Corrupted, truncated, or alien files are
rejected with :class:`~repro.errors.CheckpointError`, never half-restored.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.operators import RelOp
from repro.core.policy import (
    Conditional,
    Policy,
    TableRef,
    intersection,
    min_of,
    predicate,
    random_pick,
    round_robin,
)
from repro.core.smbm import SMBM
from repro.errors import CapacityError, CheckpointError, ConfigurationError
from repro.faults.scrub import ECCStore
from repro.serving.checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_MAGIC,
    load_checkpoint,
    policy_from_dict,
    policy_to_dict,
    save_checkpoint,
)
from repro.switch.replication import ReplicatedSMBM

METRICS = ("cpu", "mem")


def _ops_strategy():
    """A write history: interleaved adds, updates and deletes."""
    return st.lists(
        st.tuples(
            st.sampled_from(("add", "update", "delete")),
            st.integers(min_value=0, max_value=7),
            st.integers(min_value=0, max_value=1000),
        ),
        max_size=40,
    )


def _apply(smbm: SMBM, ops) -> None:
    for kind, rid, val in ops:
        metrics = {"cpu": val, "mem": val % 97}
        try:
            if kind == "add":
                smbm.add(rid, metrics)
            elif kind == "update":
                smbm.update(rid, metrics)
            else:
                smbm.delete(rid)
        except Exception:
            # Invalid transitions (add of a present id, update/delete of
            # an absent one) are part of a realistic history: skipped ops
            # still leave a valid table to checkpoint.
            pass


# -- SMBM state round trip -------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(ops=_ops_strategy())
def test_restore_of_snapshot_is_bit_identical(ops):
    source = SMBM(8, METRICS)
    _apply(source, ops)
    state = source.export_state()
    target = SMBM(8, METRICS)
    target.restore_state(state)
    assert target.export_state() == state
    assert target.version == source.version
    assert list(target.snapshot()) == list(source.snapshot())


@settings(max_examples=40, deadline=None)
@given(ops=_ops_strategy(), pre=_ops_strategy())
def test_restore_overwrites_any_prior_contents(ops, pre):
    source = SMBM(8, METRICS)
    _apply(source, ops)
    target = SMBM(8, METRICS)
    _apply(target, pre)  # dirty the target first
    target.restore_state(source.export_state())
    assert target.export_state() == source.export_state()


@settings(max_examples=40, deadline=None)
@given(ops=_ops_strategy())
def test_ecc_state_rebuilds_across_restore(ops):
    source = SMBM(8, METRICS)
    source_ecc = ECCStore(source)
    _apply(source, ops)
    target = SMBM(8, METRICS)
    target_ecc = ECCStore(target)
    target.restore_state(source.export_state())
    assert target_ecc.snapshot() == source_ecc.snapshot()


def test_restore_preserves_fifo_tie_order():
    # Two rows with equal metric values: rank order is decided by the
    # FIFO enqueue sequence, which must survive the round trip.
    source = SMBM(4, METRICS)
    source.add(2, {"cpu": 5, "mem": 5})
    source.add(0, {"cpu": 5, "mem": 5})
    source.add(1, {"cpu": 5, "mem": 5})
    target = SMBM(4, METRICS)
    target.restore_state(source.export_state())
    assert (target.rank_of(2, "cpu"), target.rank_of(0, "cpu"),
            target.rank_of(1, "cpu")) == (
        source.rank_of(2, "cpu"), source.rank_of(0, "cpu"),
        source.rank_of(1, "cpu"))


def test_restore_rejects_schema_and_capacity_mismatch():
    source = SMBM(4, METRICS)
    source.add(1, {"cpu": 1, "mem": 2})
    state = source.export_state()
    with pytest.raises(ConfigurationError):
        SMBM(4, ("cpu",)).restore_state(state)
    with pytest.raises((ConfigurationError, CapacityError)):
        SMBM(2, METRICS).restore_state(
            {**state, "capacity": 2, "rows": {i: {"cpu": 1, "mem": 2}
                                              for i in range(3)},
             "seq": {i: i for i in range(3)}}
        )


# -- ReplicatedSMBM --------------------------------------------------------------------


def test_replicated_roundtrip_preserves_every_replica():
    rep = ReplicatedSMBM(3, 4, METRICS)
    rep.issue_update(0, 1, {"cpu": 10, "mem": 1})
    rep.commit_cycle()
    rep.issue_update(1, 2, {"cpu": 20, "mem": 2})
    rep.commit_cycle()
    # Manufacture divergence directly on one replica: the checkpoint must
    # reproduce the replicas as they are, not as they should be.
    rep.replica(2).update(1, {"cpu": 99, "mem": 1})
    state = rep.export_state()
    target = ReplicatedSMBM(3, 4, METRICS)
    target.restore_state(state)
    assert target.export_state() == state
    for i in range(3):
        assert (target.replica(i).export_state()
                == rep.replica(i).export_state())


def test_replicated_restore_rejects_wrong_replica_count():
    rep = ReplicatedSMBM(2, 4, METRICS)
    with pytest.raises(ConfigurationError):
        ReplicatedSMBM(3, 4, METRICS).restore_state(rep.export_state())


# -- policy document round trip --------------------------------------------------------


def _policies():
    table = TableRef()
    shared = predicate(table, "cpu", RelOp.LT, 70)
    return [
        Policy(table, name="pass-through"),
        Policy(min_of(shared, "mem", k=2), name="k-min"),
        Policy(intersection(shared, min_of(shared, "mem")), name="fanout"),
        Policy(Conditional(random_pick(shared), random_pick(table)),
               name="conditional"),
        Policy(round_robin(table, "cpu"), name="stateful"),
        Policy(predicate(TableRef(input_index=1), "cpu", RelOp.GE, 3),
               name="extra-input"),
    ]


@pytest.mark.parametrize("policy", _policies(), ids=lambda p: p.name)
def test_policy_document_roundtrip(policy):
    doc = policy_to_dict(policy)
    rebuilt = policy_from_dict(doc)
    assert policy_to_dict(rebuilt) == doc
    assert rebuilt.name == policy.name


def test_policy_roundtrip_preserves_shared_fanout():
    table = TableRef()
    shared = predicate(table, "cpu", RelOp.LT, 70)
    policy = Policy(intersection(shared, min_of(shared, "mem")))
    rebuilt = policy_from_dict(policy_to_dict(policy))
    root = rebuilt.root
    assert root.left is root.right.child  # one node object, not a clone


def test_policy_document_rejects_garbage():
    with pytest.raises(CheckpointError):
        policy_from_dict({"name": "x"})
    with pytest.raises(CheckpointError):
        policy_from_dict({"name": "x", "root": 0,
                          "nodes": [{"type": "alien"}]})
    with pytest.raises(CheckpointError):
        # Forward reference: node 0 referring to node 1.
        policy_from_dict({"name": "x", "root": 0, "nodes": [
            {"type": "binary", "op": "union", "left": 1, "right": 1,
             "choice": None},
            {"type": "table", "input": None},
        ]})


# -- on-disk format --------------------------------------------------------------------


def _switch_checkpoint():
    from repro.serving.backend import ScalarBackend, TableWrite
    from repro.tenancy.manager import TenantManager, TenantSpec

    manager = TenantManager(METRICS, smbm_capacity=16)
    backend = ScalarBackend(manager)
    backend.program_tenant(TenantSpec(
        name="t", policy=Policy(min_of(TableRef(), "cpu"), name="ll"),
        smbm_quota=8,
    ))
    backend.write_batch([
        TableWrite("t", i, {"cpu": i * 3, "mem": i}) for i in range(5)
    ])
    return backend, backend.snapshot()


def test_file_roundtrip_is_bit_identical(tmp_path):
    backend, checkpoint = _switch_checkpoint()
    path = save_checkpoint(tmp_path / "c.json", checkpoint)
    loaded = load_checkpoint(path)
    assert loaded == checkpoint
    assert (loaded.tenants[0].smbm_state
            == backend.manager.get("t").module.smbm.export_state())


def test_file_roundtrip_survives_two_digit_row_ids(tmp_path):
    """Regression: int row ids sort numerically at save time but their
    JSON string forms sort lexicographically ("10" < "2"), so the
    checksum canonicalization must hash what a reader of the file sees
    — any table with a row id >= 10 used to fail verification."""
    from repro.serving.backend import ScalarBackend, TableWrite
    from repro.tenancy.manager import TenantManager, TenantSpec

    backend = ScalarBackend(TenantManager(METRICS, smbm_capacity=16))
    backend.program_tenant(TenantSpec(
        name="t", policy=Policy(min_of(TableRef(), "cpu"), name="ll"),
        smbm_quota=16,
    ))
    backend.write_batch([
        TableWrite("t", rid, {"cpu": rid, "mem": 1})
        for rid in (12, 10, 2, 1, 15)
    ])
    path = save_checkpoint(tmp_path / "c.json", backend.snapshot())
    loaded = load_checkpoint(path)
    assert (loaded.tenants[0].smbm_state
            == backend.manager.get("t").module.smbm.export_state())


def test_truncated_file_rejected(tmp_path):
    _, checkpoint = _switch_checkpoint()
    path = save_checkpoint(tmp_path / "c.json", checkpoint)
    text = path.read_text()
    for cut in (0, 10, len(text) // 2, len(text) - 2):
        path.write_text(text[:cut])
        with pytest.raises(CheckpointError):
            load_checkpoint(path)


def test_corrupted_payload_rejected(tmp_path):
    _, checkpoint = _switch_checkpoint()
    path = save_checkpoint(tmp_path / "c.json", checkpoint)
    body = json.loads(path.read_text())
    body["payload"]["tenants"][0]["smbm_state"]["version"] += 1
    path.write_text(json.dumps(body))
    with pytest.raises(CheckpointError, match="checksum"):
        load_checkpoint(path)


def test_alien_magic_and_format_rejected(tmp_path):
    _, checkpoint = _switch_checkpoint()
    path = save_checkpoint(tmp_path / "c.json", checkpoint)
    body = json.loads(path.read_text())
    path.write_text(json.dumps({**body, "magic": "not-a-checkpoint"}))
    with pytest.raises(CheckpointError, match="magic"):
        load_checkpoint(path)
    path.write_text(json.dumps({**body, "format": CHECKPOINT_FORMAT + 1}))
    with pytest.raises(CheckpointError, match="format"):
        load_checkpoint(path)
    assert body["magic"] == CHECKPOINT_MAGIC  # the writer stamped it


def test_missing_file_rejected(tmp_path):
    with pytest.raises(CheckpointError):
        load_checkpoint(tmp_path / "nope.json")
