"""Crash recovery: exactly-once replay, checkpoint suffixes, migrations.

Every scenario compares the recovered backend against a *golden twin* —
the same op schedule applied to a controller that never crashed — using
the canonical checkpoint encoding, so "recovered" means bit-identical,
not merely plausible.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import obs
from repro.core.operators import RelOp
from repro.core.policy import Policy, TableRef, min_of, predicate
from repro.faults import FaultInjector, SimulatedCrash
from repro.serving._atomic import canonical_bytes
from repro.serving.backend import ScalarBackend
from repro.serving.controller import Controller
from repro.serving.recovery import recover
from repro.serving.wal import WriteAheadLog, read_wal
from repro.tenancy.manager import TenantManager, TenantSpec

METRICS = ("cpu", "mem")


def _policy(kind: str = "min") -> Policy:
    table = TableRef()
    if kind == "min":
        return Policy(min_of(table, "cpu"), name="least-loaded")
    return Policy(predicate(table, "cpu", RelOp.LT, 50), name="under")


def _spec(name: str, kind: str = "min") -> TenantSpec:
    return TenantSpec(name=name, policy=_policy(kind), smbm_quota=8)


def _backend() -> ScalarBackend:
    return ScalarBackend(TenantManager(METRICS, smbm_capacity=16))


def _factory(_ckpt) -> ScalarBackend:
    return _backend()


def _state(backend) -> bytes:
    return canonical_bytes(backend.snapshot().payload())


async def _schedule(ctl: Controller) -> None:
    """The shared op schedule golden twins and victims both run."""
    await ctl.add_tenant(_spec("a"))
    for i in range(4):
        await ctl.update_resource("a", i, {"cpu": i * 3, "mem": i})
    await ctl.hot_swap("a", _policy("pred"))
    await ctl.add_tenant(_spec("b", "pred"))
    await ctl.update_resource("b", 1, {"cpu": 9, "mem": 2})
    await ctl.remove_resource("a", 2)
    await ctl.remove_tenant("b")


def _run_golden() -> ScalarBackend:
    backend = _backend()

    async def run() -> None:
        async with Controller(backend) as ctl:
            await _schedule(ctl)

    asyncio.run(run())
    return backend


def test_clean_shutdown_replays_bit_identically(tmp_path):
    golden = _run_golden()
    backend = _backend()
    wal = WriteAheadLog(tmp_path / "ops.wal")

    async def run() -> None:
        async with Controller(backend, wal=wal) as ctl:
            await _schedule(ctl)

    asyncio.run(run())
    wal.close()
    assert read_wal(tmp_path / "ops.wal").records[-1].kind == "shutdown"

    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        report = recover(tmp_path / "ops.wal", _factory)
        # Clean shutdown: no crash detected.
        assert registry.value_of(
            "faults_detected_total", {"kind": "controller_crash"}
        ) == 0
        assert registry.value_of("wal_records_replayed_total") == 10
    assert not report.unclean and report.torn == 0 and not report.errors
    assert report.replayed == 10 and report.skipped == 0
    assert _state(report.backend) == _state(golden) == _state(backend)


def test_crash_recovers_to_golden_twin_and_is_detected(tmp_path):
    # Golden twin for a crash after the 4th applied op: admit + 3 writes.
    golden = _backend()

    async def run_golden() -> None:
        async with Controller(golden) as ctl:
            await ctl.add_tenant(_spec("a"))
            for i in range(3):
                await ctl.update_resource("a", i, {"cpu": i * 3, "mem": i})

    asyncio.run(run_golden())

    injector = FaultInjector(3)
    hook = injector.arm_crash("ctl.after_apply", at_op=3)
    backend = _backend()
    wal = WriteAheadLog(tmp_path / "ops.wal", crash_hook=hook)

    async def run_victim() -> str:
        ctl = Controller(backend, wal=wal, crash_hook=hook)
        try:
            await _schedule(ctl)
        except SimulatedCrash:
            return "crashed"
        return "survived"

    assert asyncio.run(run_victim()) == "crashed"
    assert injector.injected("controller_crash") == 1

    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        report = recover(tmp_path / "ops.wal", _factory)
        detected = registry.value_of(
            "faults_detected_total", {"kind": "controller_crash"}
        )
    assert detected == 1  # injected == detected parity
    assert report.unclean and not report.errors
    assert report.replayed == 4  # admit + 3 writes, the acked prefix
    assert _state(report.backend) == _state(golden)


def test_checkpoint_bounds_replay_to_the_suffix(tmp_path):
    golden = _run_golden()
    backend = _backend()
    wal = WriteAheadLog(tmp_path / "ops.wal")

    async def run() -> None:
        async with Controller(backend, wal=wal) as ctl:
            await ctl.add_tenant(_spec("a"))
            for i in range(4):
                await ctl.update_resource("a", i, {"cpu": i * 3, "mem": i})
            await ctl.checkpoint(tmp_path / "mid.ckpt")
            await ctl.hot_swap("a", _policy("pred"))
            await ctl.add_tenant(_spec("b", "pred"))
            await ctl.update_resource("b", 1, {"cpu": 9, "mem": 2})
            await ctl.remove_resource("a", 2)
            await ctl.remove_tenant("b")

    asyncio.run(run())
    wal.close()

    report = recover(tmp_path / "ops.wal", _factory)
    assert report.checkpoint_path == str(tmp_path / "mid.ckpt")
    assert report.restored_tenants == 1
    # The 5 pre-checkpoint ops are inside the restored checkpoint.
    assert report.skipped == 5 and report.replayed == 5
    assert _state(report.backend) == _state(golden)


def test_corrupt_checkpoint_falls_back_to_full_replay(tmp_path):
    golden = _run_golden()
    backend = _backend()
    wal = WriteAheadLog(tmp_path / "ops.wal")

    async def run() -> None:
        async with Controller(backend, wal=wal) as ctl:
            await ctl.add_tenant(_spec("a"))
            for i in range(4):
                await ctl.update_resource("a", i, {"cpu": i * 3, "mem": i})
            await ctl.checkpoint(tmp_path / "mid.ckpt")
            await ctl.hot_swap("a", _policy("pred"))
            await ctl.add_tenant(_spec("b", "pred"))
            await ctl.update_resource("b", 1, {"cpu": 9, "mem": 2})
            await ctl.remove_resource("a", 2)
            await ctl.remove_tenant("b")

    asyncio.run(run())
    wal.close()
    # Rot the checkpoint file: the marker must not be trusted blindly.
    (tmp_path / "mid.ckpt").write_text("garbage, not a checkpoint")

    report = recover(tmp_path / "ops.wal", _factory)
    assert report.checkpoint_path is None and report.restored_tenants == 0
    assert report.skipped == 0 and report.replayed == 10
    assert _state(report.backend) == _state(golden)


def test_recovery_is_idempotent(tmp_path):
    backend = _backend()
    wal = WriteAheadLog(tmp_path / "ops.wal")

    async def run() -> None:
        async with Controller(backend, wal=wal) as ctl:
            await _schedule(ctl)

    asyncio.run(run())
    wal.close()
    first = recover(tmp_path / "ops.wal", _factory)
    second = recover(tmp_path / "ops.wal", _factory)
    assert _state(first.backend) == _state(second.backend)
    assert (first.replayed, first.skipped) == (second.replayed,
                                               second.skipped)


def test_torn_tail_is_truncated_and_counted(tmp_path):
    backend = _backend()
    wal = WriteAheadLog(tmp_path / "ops.wal")

    async def run() -> None:
        async with Controller(backend, wal=wal) as ctl:
            await ctl.add_tenant(_spec("a"))
            await ctl.update_resource("a", 1, {"cpu": 5, "mem": 6})

    asyncio.run(run())
    wal.close()
    with open(tmp_path / "ops.wal", "ab") as fh:
        fh.write(b"\x00\x00\x01\x00torn-half-frame")

    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        report = recover(tmp_path / "ops.wal", _factory)
        assert registry.value_of("wal_torn_records_total") == 1
    assert report.torn == 1
    # The shutdown marker is still the last *trusted* record, so the
    # torn garbage does not masquerade as a crash.
    assert not report.unclean
    assert report.replayed == 2
    assert sorted(t.name for t in report.backend.manager) == ["a"]


def test_migration_cutover_rolls_forward_on_the_source(tmp_path):
    """A logged cutover is the commit point: recovery evicts the tenant
    from the source and skips later writes addressed to it."""
    source = _backend()
    dest = _backend()
    wal = WriteAheadLog(tmp_path / "ops.wal")

    async def run() -> None:
        async with Controller(source, wal=wal) as ctl:
            await ctl.add_tenant(_spec("m"))
            await ctl.update_resource("m", 1, {"cpu": 1, "mem": 1})
            await ctl.add_tenant(_spec("keep", "pred"))
            await ctl.begin_migration("m", dest)
            await ctl.update_resource("m", 2, {"cpu": 2, "mem": 2})
            await ctl.cutover("m")
            # Post-cutover writes land on the destination; replay on the
            # source must skip them.
            await ctl.update_resource("m", 3, {"cpu": 3, "mem": 3})
            await ctl.update_resource("keep", 1, {"cpu": 7, "mem": 7})

    asyncio.run(run())
    wal.close()

    report = recover(tmp_path / "ops.wal", _factory)
    assert not report.errors
    assert sorted(t.name for t in report.backend.manager) == ["keep"]
    assert _state(report.backend) == _state(source)
    # And the destination really does hold the moved tenant's writes.
    assert sorted(dest.manager.get("m").module.smbm.snapshot()) == [1, 2, 3]


def test_migration_without_cutover_rolls_back_on_the_source(tmp_path):
    """No cutover record means the move never committed: the tenant
    keeps serving on the recovered source with every write intact."""
    source = _backend()
    dest = _backend()
    wal = WriteAheadLog(tmp_path / "ops.wal")

    async def run() -> None:
        async with Controller(source, wal=wal) as ctl:
            await ctl.add_tenant(_spec("m"))
            await ctl.update_resource("m", 1, {"cpu": 1, "mem": 1})
            await ctl.begin_migration("m", dest)
            await ctl.update_resource("m", 2, {"cpu": 2, "mem": 2})
            await ctl.abort_migration("m")
            await ctl.update_resource("m", 3, {"cpu": 3, "mem": 3})

    asyncio.run(run())
    wal.close()

    report = recover(tmp_path / "ops.wal", _factory)
    assert not report.errors
    assert sorted(t.name for t in report.backend.manager) == ["m"]
    assert sorted(
        report.backend.manager.get("m").module.smbm.snapshot()
    ) == [1, 2, 3]
    assert _state(report.backend) == _state(source)


def test_replay_errors_are_counted_not_fatal(tmp_path):
    """A deterministic apply failure (op that failed pre-crash too) is
    recorded and skipped; everything after it still recovers."""
    backend = _backend()
    wal = WriteAheadLog(tmp_path / "ops.wal")

    async def run() -> None:
        async with Controller(backend, wal=wal) as ctl:
            await ctl.add_tenant(_spec("a"))
            with pytest.raises(Exception):
                # Write to a tenant that was never admitted: logged,
                # then fails apply — deterministically, both times.
                await ctl.update_resource("ghost", 0, {"cpu": 0, "mem": 0})
            await ctl.update_resource("a", 1, {"cpu": 5, "mem": 6})

    asyncio.run(run())
    wal.close()

    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        report = recover(tmp_path / "ops.wal", _factory)
        assert registry.value_of("wal_replay_errors_total") == 1
    assert len(report.errors) == 1
    assert report.errors[0][1] == "update_resource"
    assert report.replayed == 2
    assert _state(report.backend) == _state(backend)


def test_th016_replay_coverage_is_clean():
    from repro.analysis.replay import (
        audit_replay_registry,
        verify_replay_coverage,
    )

    assert verify_replay_coverage().clean

    # The audit actually bites in both directions.
    gap = audit_replay_registry(("add_tenant", "new_op"),
                                {"add_tenant": object()})
    assert [f.rule for f in gap.errors] == ["TH016"]
    assert "new_op" in gap.errors[0].message
    dead = audit_replay_registry(("add_tenant",),
                                 {"add_tenant": object(),
                                  "renamed_op": object()})
    assert [f.rule for f in dead.errors] == ["TH016"]
    assert "renamed_op" in dead.errors[0].message
