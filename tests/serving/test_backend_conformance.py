"""The shared backend conformance suite.

Every :class:`SwitchBackend` must be observably interchangeable: same
traffic produces the same golden trace (checked against a solo
FilterModule oracle *and* across backends), the same routing errors with
the same all-violations shape, the same obs series names (modulo the
``backend`` label), and checkpoints that round-trip between any two
backends TH015-clean.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.analysis.conformance import verify_checkpoint_roundtrip
from repro.core.operators import RelOp
from repro.core.policy import Policy, TableRef, intersection, min_of, predicate
from repro.engine.batch import META_FILTER_OUTPUT, META_FILTER_REQUEST
from repro.errors import ConfigurationError, RoutingError
from repro.rmt.packet import META_TENANT, Packet
from repro.rmt.probe import ProbeCodec
from repro.serving.backend import (
    BatchedBackend,
    ScalarBackend,
    TableWrite,
    build_backend,
)
from repro.switch.filter_module import FilterModule
from repro.tenancy.manager import TenantManager, TenantSpec

METRICS = ("cpu", "mem")
BACKENDS = (ScalarBackend, BatchedBackend)


def _policy_a() -> Policy:
    return Policy(min_of(TableRef(), "cpu"), name="least-cpu")


def _policy_b() -> Policy:
    table = TableRef()
    return Policy(
        min_of(intersection(predicate(table, "cpu", RelOp.LT, 80),
                            predicate(table, "mem", RelOp.GT, 2)), "mem"),
        name="eligible-min-mem",
    )


def _make_backend(cls):
    manager = TenantManager(METRICS, smbm_capacity=16)
    backend = cls(manager)
    backend.program_tenant(TenantSpec("a", _policy_a(), smbm_quota=8))
    backend.program_tenant(TenantSpec("b", _policy_b(), smbm_quota=8))
    return backend


def _schedule():
    """A deterministic mixed schedule: probes (table writes on the wire)
    interleaved with filtering data packets, for two tenants."""
    steps = []
    for i in range(40):
        tenant = "a" if i % 2 else "b"
        if i % 5 == 0:
            steps.append(("probe", tenant, i % 8,
                          {"cpu": (i * 13) % 100, "mem": (i * 7) % 50}))
        else:
            steps.append(("data", tenant))
    return steps


def _traffic(codec: ProbeCodec, steps):
    """Fresh packet objects for one backend run (metadata is mutated)."""
    parser = codec.build_parser()
    packets = []
    for step in steps:
        if step[0] == "probe":
            _, tenant, rid, metrics = step
            packet = parser.parse(codec.encode(rid, metrics))
        else:
            _, tenant = step
            packet = Packet(metadata={META_FILTER_REQUEST: 1})
        packet.metadata[META_TENANT] = tenant
        packets.append(packet)
    return packets


def _golden_traces(steps):
    """Solo per-tenant FilterModules: the differential oracle both
    backends are held to."""
    modules = {"a": FilterModule(8, METRICS, _policy_a()),
               "b": FilterModule(8, METRICS, _policy_b())}
    traces = {"a": [], "b": []}
    for step in steps:
        if step[0] == "probe":
            _, tenant, rid, metrics = step
            modules[tenant].update_resource(rid, metrics)
        else:
            _, tenant = step
            traces[tenant].append(modules[tenant].evaluate().value)
    return traces


def _run(backend, steps):
    codec = ProbeCodec(METRICS)
    packets = _traffic(codec, steps)
    backend.process_batch(packets)
    traces = {"a": [], "b": []}
    for step, packet in zip(steps, packets):
        if step[0] == "data":
            traces[step[1]].append(packet.metadata[META_FILTER_OUTPUT])
    return traces


@pytest.mark.parametrize("cls", BACKENDS, ids=lambda c: c.name)
def test_backend_matches_solo_module_oracle(cls):
    steps = _schedule()
    assert _run(_make_backend(cls), steps) == _golden_traces(steps)


def test_backends_serve_identical_traces():
    steps = _schedule()
    scalar = _run(_make_backend(ScalarBackend), steps)
    batched = _run(_make_backend(BatchedBackend), steps)
    assert scalar == batched


@pytest.mark.parametrize("cls", BACKENDS, ids=lambda c: c.name)
def test_unknown_labels_aggregate_into_one_routing_error(cls):
    backend = _make_backend(cls)
    batch = [
        Packet(metadata={META_FILTER_REQUEST: 1, META_TENANT: "ghost"}),
        Packet(metadata={META_FILTER_REQUEST: 1, META_TENANT: "a"}),
        Packet(metadata={META_FILTER_REQUEST: 1, META_TENANT: "zombie"}),
        Packet(metadata={META_FILTER_REQUEST: 1}),
        Packet(metadata={META_FILTER_REQUEST: 1, META_TENANT: "ghost"}),
    ]
    with pytest.raises(RoutingError) as excinfo:
        backend.process_batch(batch)
    assert excinfo.value.unknown == ("ghost", "zombie")
    assert excinfo.value.unlabelled == 1
    # All-or-nothing: the known tenant's packet was not served either.
    assert META_FILTER_OUTPUT not in batch[1].metadata


@pytest.mark.parametrize("cls", BACKENDS, ids=lambda c: c.name)
def test_write_batch_and_health(cls):
    backend = _make_backend(cls)
    applied = backend.write_batch([
        TableWrite("a", 1, {"cpu": 5, "mem": 9}),
        TableWrite("a", 2, {"cpu": 3, "mem": 1}),
        TableWrite("a", 1, None),
        TableWrite("b", 4, {"cpu": 50, "mem": 8}),
    ])
    assert applied == 4
    assert len(backend.manager.get("a").module.smbm) == 1
    health = backend.health()
    assert health["backend"] == cls.name
    assert health["healthy"] is True
    assert health["tenants"] == 2
    assert health["degraded_tenants"] == []


@pytest.mark.parametrize("cls", BACKENDS, ids=lambda c: c.name)
def test_lifecycle_returns_slice_to_pool(cls):
    backend = _make_backend(cls)
    free_before = len(backend.manager.free_columns)
    backend.unprogram_tenant("b")
    assert len(backend.manager.free_columns) == free_before + 1
    epoch = backend.hot_swap("a", _policy_b())
    assert epoch == 1
    assert backend.manager.get("a").module.policy.name == "eligible-min-mem"


def test_obs_series_names_identical_across_backends():
    def series_names(cls):
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            backend = _make_backend(cls)
            backend.process_batch(_traffic(ProbeCodec(METRICS), _schedule()))
            backend.write_batch([TableWrite("a", 1, {"cpu": 1, "mem": 2})])
            ckpt = backend.snapshot_tenant("a")
            backend.unprogram_tenant("a")
            backend.restore_tenant(ckpt)
            snap = obs.snapshot(registry)
        names = set()
        for kind in snap.values():
            for series in kind:
                names.add(series.split("{")[0])
        return names

    assert series_names(ScalarBackend) == series_names(BatchedBackend)


@pytest.mark.parametrize("src_cls", BACKENDS, ids=lambda c: c.name)
@pytest.mark.parametrize("dst_cls", BACKENDS, ids=lambda c: c.name)
def test_checkpoint_roundtrip_is_th015_clean(src_cls, dst_cls):
    source = _make_backend(src_cls)
    source.write_batch([
        TableWrite("a", i, {"cpu": i * 11 % 60, "mem": i}) for i in range(6)
    ])
    source.hot_swap("a", _policy_b())  # epoch lineage must survive
    dest = dst_cls(TenantManager(METRICS, smbm_capacity=16))
    dest.restore_tenant(source.snapshot_tenant("a"))
    report = verify_checkpoint_roundtrip(source, dest, "a")
    assert report.clean, report.describe()
    assert dest.manager.get("a").plan_epoch == 1


def test_th015_flags_post_restore_divergence():
    source = _make_backend(ScalarBackend)
    source.write_batch([TableWrite("a", 1, {"cpu": 4, "mem": 2})])
    dest = BatchedBackend(TenantManager(METRICS, smbm_capacity=16))
    dest.restore_tenant(source.snapshot_tenant("a"))
    # Perturb the restored table behind the checkpoint's back.
    dest.manager.get("a").module.update_resource(1, {"cpu": 99, "mem": 2})
    report = verify_checkpoint_roundtrip(source, dest, "a")
    assert not report.clean
    assert {f.rule for f in report.findings} == {"TH015"}


def test_failed_restore_leaves_no_half_tenant():
    source = _make_backend(ScalarBackend)
    ckpt = source.snapshot_tenant("a")
    broken = ckpt.__class__(**{**ckpt.payload(),
                               "smbm_state": {"capacity": 99}})
    dest = ScalarBackend(TenantManager(METRICS, smbm_capacity=16))
    with pytest.raises(Exception):
        dest.restore_tenant(broken)
    assert "a" not in dest.manager
    assert len(dest.manager.free_columns) == 2


def test_build_backend_factory():
    manager = TenantManager(METRICS, smbm_capacity=16)
    assert isinstance(build_backend("scalar", manager), ScalarBackend)
    assert isinstance(
        build_backend("batched", TenantManager(METRICS, smbm_capacity=16)),
        BatchedBackend,
    )
    with pytest.raises(ConfigurationError):
        build_backend("quantum", manager)
