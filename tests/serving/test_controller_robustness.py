"""Deadlines, retry, circuit breaker, and load shedding on the controller.

Same plain-sync ``asyncio.run`` style as ``test_controller.py`` (no
asyncio pytest plugin in this repo).
"""

from __future__ import annotations

import asyncio
import itertools

import pytest

from repro import obs
from repro.core.policy import Policy, TableRef, min_of
from repro.engine.batch import META_FILTER_REQUEST
from repro.errors import (
    CircuitOpen,
    ConfigurationError,
    DeadlineExceeded,
    FaultError,
    Overloaded,
    RetryExhausted,
)
from repro.faults import RetryPolicy
from repro.rmt.packet import META_TENANT, Packet
from repro.serving.backend import ScalarBackend, TableWrite
from repro.serving.breaker import BreakerState, CircuitBreakerConfig
from repro.serving.controller import Controller
from repro.tenancy.manager import TenantManager, TenantSpec

METRICS = ("cpu", "mem")


def _policy() -> Policy:
    return Policy(min_of(TableRef(), "cpu"), name="ll")


def _spec(name: str) -> TenantSpec:
    return TenantSpec(name=name, policy=_policy(), smbm_quota=8)


def _backend() -> ScalarBackend:
    return ScalarBackend(TenantManager(METRICS, smbm_capacity=16))


class _FlakyBackend(ScalarBackend):
    """Wraps write_batch to fail with a transient fault N times per call
    pattern, then succeed — the injected fault the retry satellite needs."""

    def __init__(self, manager, *, fail_times: int):
        super().__init__(manager)
        self.fail_times = fail_times
        self.attempts = 0

    def write_batch(self, writes):
        self.attempts += 1
        if self.attempts <= self.fail_times:
            raise FaultError("transient glitch", component="backend",
                             resource=self.attempts)
        return super().write_batch(writes)


# -- retry (the RetryPolicy satellite) -------------------------------------------------


def test_transient_fault_is_retried_to_success():
    backend = _FlakyBackend(TenantManager(METRICS, smbm_capacity=16),
                            fail_times=2)
    registry = obs.MetricsRegistry()

    async def scenario() -> None:
        async with Controller(
            backend, retry_policy=RetryPolicy(max_attempts=3,
                                              base_delay_s=0.0)
        ) as ctl:
            await ctl.add_tenant(_spec("t"))
            await ctl.update_resource("t", 1, {"cpu": 5, "mem": 6})

    with obs.use_registry(registry):
        asyncio.run(scenario())
    assert backend.attempts == 3  # two transient failures, then success
    assert sorted(backend.manager.get("t").module.smbm.snapshot()) == [1]
    assert registry.value_of("controller_retries_total",
                             {"op": "update_resource",
                              "backend": "scalar"}) == 2


def test_permanent_fault_surfaces_as_retry_exhausted_with_context():
    backend = _FlakyBackend(TenantManager(METRICS, smbm_capacity=16),
                            fail_times=10 ** 6)  # never recovers

    async def scenario() -> None:
        async with Controller(
            backend, retry_policy=RetryPolicy(max_attempts=3,
                                              base_delay_s=0.0)
        ) as ctl:
            await ctl.add_tenant(_spec("t"))
            with pytest.raises(RetryExhausted) as err:
                await ctl.update_resource("t", 1, {"cpu": 5, "mem": 6})
            assert err.value.attempts == 3
            assert err.value.component == "controller"
            assert err.value.resource == "t"
            assert isinstance(err.value.__cause__, FaultError)

    asyncio.run(scenario())
    assert backend.attempts == 3


def test_without_retry_policy_fault_surfaces_immediately():
    backend = _FlakyBackend(TenantManager(METRICS, smbm_capacity=16),
                            fail_times=1)

    async def scenario() -> None:
        async with Controller(backend) as ctl:
            await ctl.add_tenant(_spec("t"))
            with pytest.raises(FaultError):
                await ctl.update_resource("t", 1, {"cpu": 5, "mem": 6})

    asyncio.run(scenario())
    assert backend.attempts == 1


def test_configuration_errors_are_not_retried():
    backend = _backend()
    registry = obs.MetricsRegistry()

    async def scenario() -> None:
        async with Controller(
            backend, retry_policy=RetryPolicy(max_attempts=5,
                                              base_delay_s=0.0)
        ) as ctl:
            with pytest.raises(ConfigurationError):
                await ctl.update_resource("ghost", 0, {"cpu": 0, "mem": 0})

    with obs.use_registry(registry):
        asyncio.run(scenario())
    assert registry.value_of("controller_retries_total") == 0


# -- deadlines -------------------------------------------------------------------------


def test_deadline_exceeded_fails_fast_without_applying():
    backend = _backend()
    registry = obs.MetricsRegistry()

    async def scenario() -> None:
        # deadline_s=0: every op has already missed it by apply time.
        async with Controller(backend, deadline_s=0.0) as ctl:
            with pytest.raises(DeadlineExceeded) as err:
                await ctl.add_tenant(_spec("t"))
            assert err.value.deadline_s == 0.0
            assert err.value.waited_s is not None

    with obs.use_registry(registry):
        asyncio.run(scenario())
    assert len(backend.manager) == 0  # never partially applied
    assert registry.value_of("controller_deadline_exceeded_total") == 1


def test_generous_deadline_does_not_fire():
    backend = _backend()
    registry = obs.MetricsRegistry()

    async def scenario() -> None:
        async with Controller(backend, deadline_s=30.0) as ctl:
            await ctl.add_tenant(_spec("t"))
            await ctl.update_resource("t", 1, {"cpu": 5, "mem": 6})

    with obs.use_registry(registry):
        asyncio.run(scenario())
    assert registry.value_of("controller_deadline_exceeded_total") == 0
    assert len(backend.manager) == 1


# -- circuit breaker -------------------------------------------------------------------


def _clock(start: float = 0.0):
    """A controllable monotonic clock for deterministic cooldowns."""
    state = {"now": start}

    def now() -> float:
        return state["now"]

    def advance(dt: float) -> None:
        state["now"] += dt

    return now, advance


def test_breaker_opens_after_consecutive_failures_and_recloses():
    backend = _FlakyBackend(TenantManager(METRICS, smbm_capacity=16),
                            fail_times=3)
    now, advance = _clock()
    config = CircuitBreakerConfig(failure_threshold=3, reset_timeout_s=1.0,
                                  clock=now)
    registry = obs.MetricsRegistry()

    async def scenario() -> None:
        async with Controller(backend, breaker=config) as ctl:
            await ctl.add_tenant(_spec("t"))
            backend.attempts = 0  # only table writes from here on fail
            for _ in range(3):
                with pytest.raises(FaultError):
                    await ctl.update_resource("t", 1, {"cpu": 1, "mem": 1})
            # Threshold reached: the breaker is open, submits fail fast
            # without touching the queue or the backend.
            applied_before = backend.attempts
            with pytest.raises(CircuitOpen) as err:
                await ctl.update_resource("t", 2, {"cpu": 2, "mem": 2})
            assert err.value.tenant == "t" and err.value.failures == 3
            assert backend.attempts == applied_before
            assert registry.value_of("circuit_state", {"tenant": "t"}) == 2
            assert registry.value_of("controller_degraded",
                                     {"backend": "scalar"}) == 1
            # Data path keeps serving while the control plane is tripped.
            served = await ctl.process_batch([
                Packet(metadata={META_FILTER_REQUEST: 1, META_TENANT: "t"})
            ])
            assert len(served) == 1
            # Cooldown elapses; the half-open probe succeeds (backend
            # recovered) and the breaker re-closes.
            advance(1.5)
            await ctl.update_resource("t", 3, {"cpu": 3, "mem": 3})
            assert registry.value_of("circuit_state", {"tenant": "t"}) == 0
            assert registry.value_of("controller_degraded",
                                     {"backend": "scalar"}) == 0

    with obs.use_registry(registry):
        asyncio.run(scenario())
    assert sorted(backend.manager.get("t").module.smbm.snapshot()) == [3]


def test_failed_half_open_probe_reopens():
    backend = _FlakyBackend(TenantManager(METRICS, smbm_capacity=16),
                            fail_times=10 ** 6)
    now, advance = _clock()
    config = CircuitBreakerConfig(failure_threshold=2, reset_timeout_s=1.0,
                                  clock=now)

    async def scenario() -> None:
        async with Controller(backend, breaker=config) as ctl:
            await ctl.add_tenant(_spec("t"))
            backend.attempts = 0
            backend.fail_times = 10 ** 6
            for _ in range(2):
                with pytest.raises(FaultError):
                    await ctl.update_resource("t", 1, {"cpu": 1, "mem": 1})
            advance(1.5)
            # Probe admitted, fails -> straight back to open.
            with pytest.raises(FaultError):
                await ctl.update_resource("t", 1, {"cpu": 1, "mem": 1})
            with pytest.raises(CircuitOpen):
                await ctl.update_resource("t", 1, {"cpu": 1, "mem": 1})

    asyncio.run(scenario())


def test_breakers_are_per_tenant():
    backend = _backend()
    config = CircuitBreakerConfig(failure_threshold=1, reset_timeout_s=60.0)

    async def scenario() -> None:
        async with Controller(backend, breaker=config) as ctl:
            await ctl.add_tenant(_spec("ok"))
            # 'wedged' trips its breaker with one fault-class failure...
            with pytest.raises(Exception):
                await ctl.hot_swap("wedged", _policy())
            # ...but hot_swap on a missing tenant is a ConfigurationError,
            # which must NOT trip the breaker.
            await ctl.update_resource("ok", 1, {"cpu": 1, "mem": 1})

    asyncio.run(scenario())
    assert sorted(backend.manager.get("ok").module.smbm.snapshot()) == [1]


def test_breaker_config_validation():
    with pytest.raises(ConfigurationError):
        CircuitBreakerConfig(failure_threshold=0)
    with pytest.raises(ConfigurationError):
        CircuitBreakerConfig(reset_timeout_s=-1.0)
    assert BreakerState.ENCODING[BreakerState.OPEN] == 2


# -- bounded queues and load shedding --------------------------------------------------


def test_queue_limit_validation():
    with pytest.raises(ConfigurationError):
        Controller(_backend(), queue_limit=0)


def test_saturated_queue_sheds_lowest_priority():
    """Fill a tenant's queue with table writes while the worker is
    blocked, then submit a lifecycle op: a queued write is displaced
    (Overloaded), the lifecycle op gets its slot, and the shed is
    counted."""
    backend = _backend()
    registry = obs.MetricsRegistry()

    async def scenario() -> None:
        async with Controller(backend, queue_limit=3) as ctl:
            await ctl.add_tenant(_spec("t"))
            # Block the admission lock so queued ops cannot drain.
            release = asyncio.Event()

            async def hold_lock() -> None:
                async with ctl._admission_lock:
                    await release.wait()

            holder = asyncio.create_task(hold_lock())
            await asyncio.sleep(0)
            # hot_swap needs admission: it blocks the tenant's worker.
            blocker = asyncio.create_task(ctl.hot_swap("t", _policy()))
            await asyncio.sleep(0)
            writes = [
                asyncio.create_task(ctl.update_resource(
                    "t", i, {"cpu": i, "mem": i}))
                for i in range(3)
            ]
            await asyncio.sleep(0)
            # Queue holds 3 writes (the hot_swap is in the worker, not
            # the queue): a 4th write is shed on arrival...
            with pytest.raises(Overloaded) as err:
                await ctl.update_resource("t", 9, {"cpu": 9, "mem": 9})
            assert err.value.op == "update_resource"
            # ...while an arriving lifecycle op displaces a queued write.
            evict = asyncio.create_task(ctl.remove_tenant("t"))
            await asyncio.sleep(0)
            release.set()
            await holder
            await blocker
            results = await asyncio.gather(*writes,
                                           return_exceptions=True)
            shed = [r for r in results if isinstance(r, Overloaded)]
            assert len(shed) == 1  # the displaced write
            await evict

    with obs.use_registry(registry):
        asyncio.run(scenario())
    assert registry.value_of("controller_shed_total") == 2
    assert registry.value_of(
        "controller_shed_total", {"op": "update_resource",
                                  "backend": "scalar"}) == 2
    assert len(backend.manager) == 0  # the evict applied


def test_unaffected_tenants_keep_serving_under_overload():
    """Overload tenant 'noisy'; tenant 'quiet' still applies control ops
    and serves packets from its last-good plan — degraded mode."""
    backend = _backend()

    async def scenario() -> list:
        async with Controller(backend, queue_limit=2) as ctl:
            await ctl.add_tenant(_spec("noisy"))
            await ctl.add_tenant(_spec("quiet"))
            await ctl.update_resource("quiet", 1, {"cpu": 3, "mem": 4})
            release = asyncio.Event()

            async def hold_lock() -> None:
                async with ctl._admission_lock:
                    await release.wait()

            holder = asyncio.create_task(hold_lock())
            await asyncio.sleep(0)
            blocker = asyncio.create_task(ctl.hot_swap("noisy", _policy()))
            await asyncio.sleep(0)
            flood = [
                asyncio.create_task(ctl.update_resource(
                    "noisy", i, {"cpu": i, "mem": i}))
                for i in range(2)
            ]
            await asyncio.sleep(0)
            shed_count = 0
            for i in itertools.count():
                try:
                    await ctl.update_resource(
                        "noisy", i % 8, {"cpu": 1, "mem": 1})
                except Overloaded:
                    shed_count += 1
                if shed_count >= 3:
                    break
            assert shed_count == 3
            # The quiet tenant's control plane is untouched by the
            # noisy tenant's saturation...
            await ctl.update_resource("quiet", 2, {"cpu": 5, "mem": 6})
            # ...and its data path serves the installed plan.
            served = await ctl.process_batch([
                Packet(metadata={META_FILTER_REQUEST: 1,
                                 META_TENANT: "quiet"})
            ])
            release.set()
            await holder
            await blocker
            await asyncio.gather(*flood, return_exceptions=True)
            return served

    served = asyncio.run(scenario())
    assert len(served) == 1
    assert sorted(
        backend.manager.get("quiet").module.smbm.snapshot()
    ) == [1, 2]


def test_write_batch_still_validates_tenant_ownership():
    backend = _backend()

    async def scenario() -> None:
        async with Controller(backend, queue_limit=8) as ctl:
            await ctl.add_tenant(_spec("t"))
            with pytest.raises(ConfigurationError):
                await ctl.write_batch("t", [
                    TableWrite("other", 1, {"cpu": 1, "mem": 1})
                ])

    asyncio.run(scenario())


def test_pipelined_burst_group_commits_into_few_frames(tmp_path):
    """A gathered burst on one tenant drains as group-commit frames:
    far fewer WAL frames than records, and the log still replays to the
    exact live state."""
    from repro.serving import WriteAheadLog, canonical_bytes, recover

    registry = obs.MetricsRegistry()
    wal_path = tmp_path / "ctl.wal"

    async def scenario() -> ScalarBackend:
        backend = _backend()
        wal = WriteAheadLog(wal_path, sync="flush")
        async with Controller(backend, wal=wal) as ctl:
            await ctl.add_tenant(_spec("a"))
            for _ in range(4):
                await asyncio.gather(*(
                    ctl.update_resource("a", i % 8, {"cpu": i, "mem": 1})
                    for i in range(16)
                ))
        return backend

    with obs.use_registry(registry):
        live = asyncio.run(scenario())
        appends = registry.value_of("wal_appends_total")
        frames = registry.value_of("wal_frames_total")
        # 1 admit + 64 updates + 1 shutdown marker, in far fewer frames.
        assert appends == 66
        assert frames <= 2 + 2 * 4  # admit, shutdown, bursts (+wakeup splits)
        report = recover(wal_path, lambda _ckpt: _backend())
        assert not report.unclean and report.errors == []
        assert (canonical_bytes(report.backend.snapshot().payload())
                == canonical_bytes(live.snapshot().payload()))
