"""Live migration: zero loss, conservation gates, golden-twin traces.

The acceptance scenario: a tenant moves between two switch instances
(across *different* backend kinds) under continuous writes and traffic.
A golden twin — a solo FilterModule fed the identical write/evaluate
schedule, never migrated — defines the bit-identical trace the migrating
tenant must produce end to end: no packet lost, no write dropped, no
output changed by the move.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.operators import RelOp
from repro.core.policy import Policy, TableRef, intersection, min_of, predicate
from repro.engine.batch import META_FILTER_OUTPUT, META_FILTER_REQUEST
from repro.errors import ConfigurationError, IntegrityError
from repro.rmt.packet import META_TENANT, Packet
from repro.serving.backend import BatchedBackend, ScalarBackend, TableWrite
from repro.serving.controller import Controller
from repro.serving.migration import LiveMigration, MigrationState
from repro.switch.filter_module import FilterModule
from repro.tenancy.manager import TenantManager, TenantSpec

METRICS = ("cpu", "mem")


def _policy() -> Policy:
    table = TableRef()
    return Policy(
        min_of(intersection(predicate(table, "cpu", RelOp.LT, 90),
                            predicate(table, "mem", RelOp.GT, 1)), "cpu"),
        name="eligible-least-cpu",
    )


def _backend(cls):
    return cls(TenantManager(METRICS, smbm_capacity=16))


def _admit(backend, name="t"):
    backend.program_tenant(TenantSpec(name, _policy(), smbm_quota=8))


def _serve(backend, name="t"):
    packet = Packet(metadata={META_FILTER_REQUEST: 1, META_TENANT: name})
    backend.process_batch([packet])
    return packet.metadata[META_FILTER_OUTPUT]


def _schedule(rounds=30):
    steps = []
    for i in range(rounds):
        steps.append(("write", i % 6, {"cpu": (i * 17) % 100,
                                       "mem": (i * 5) % 40}))
        steps.append(("serve",))
    return steps


@pytest.mark.parametrize(
    "src_cls,dst_cls",
    [(ScalarBackend, BatchedBackend), (BatchedBackend, ScalarBackend)],
    ids=("scalar-to-batched", "batched-to-scalar"),
)
def test_migration_is_zero_loss_against_golden_twin(src_cls, dst_cls):
    steps = _schedule(30)
    # The golden twin: same schedule, no migration, solo module.
    twin = FilterModule(8, METRICS, _policy())
    golden = []
    for step in steps:
        if step[0] == "write":
            twin.update_resource(step[1], step[2])
        else:
            golden.append(twin.evaluate().value)

    src = _backend(src_cls)
    dst = _backend(dst_cls)
    _admit(src)
    migration = LiveMigration(src, dst, "t")
    trace = []
    third = len(steps) // 3
    for i, step in enumerate(steps):
        if i == third:
            migration.begin()  # enter dual-running a third of the way in
        if i == 2 * third:
            stats = migration.cutover()  # flip on a version boundary
        serving = dst if migration.state is MigrationState.COMPLETE else src
        if step[0] == "write":
            if migration.state is MigrationState.DUAL_RUNNING:
                migration.apply_write(step[1], step[2])
            else:
                serving.write_batch([TableWrite("t", step[1], step[2])])
        else:
            trace.append(_serve(serving))

    assert migration.state is MigrationState.COMPLETE
    assert trace == golden  # bit-identical: the move was invisible
    assert stats["dual_writes"] == migration.dual_writes > 0
    assert "t" not in src.manager  # source slice returned to the pool
    assert "t" in dst.manager


def test_cutover_gate_catches_bypassed_writes():
    src, dst = _backend(ScalarBackend), _backend(BatchedBackend)
    _admit(src)
    src.write_batch([TableWrite("t", 1, {"cpu": 5, "mem": 5})])
    migration = LiveMigration(src, dst, "t")
    migration.begin()
    # A write sneaks around the dual-running gate onto the source only.
    src.write_batch([TableWrite("t", 2, {"cpu": 7, "mem": 7})])
    with pytest.raises(IntegrityError, match="version"):
        migration.cutover()
    # The gate holds the migration open: nothing was torn down.
    assert migration.state is MigrationState.DUAL_RUNNING
    assert "t" in src.manager and "t" in dst.manager
    # Re-converge through the gate and the cutover goes through.
    dst.write_batch([TableWrite("t", 2, {"cpu": 7, "mem": 7})])
    assert migration.cutover()["cutover_version"] > 0


def test_cutover_gate_catches_one_sided_hot_swap():
    src, dst = _backend(ScalarBackend), _backend(ScalarBackend)
    _admit(src)
    migration = LiveMigration(src, dst, "t")
    migration.begin()
    src.hot_swap("t", Policy(min_of(TableRef(), "mem"), name="other"))
    with pytest.raises(IntegrityError, match="epoch"):
        migration.cutover()


def test_abort_returns_destination_slice():
    src, dst = _backend(ScalarBackend), _backend(BatchedBackend)
    _admit(src)
    migration = LiveMigration(src, dst, "t")
    migration.begin()
    migration.apply_write(1, {"cpu": 1, "mem": 1})
    migration.abort()
    assert migration.state is MigrationState.ABORTED
    assert "t" in src.manager  # source untouched, still serving
    assert "t" not in dst.manager
    assert len(dst.manager.free_columns) == 2


def test_migration_state_machine_is_single_use():
    src, dst = _backend(ScalarBackend), _backend(BatchedBackend)
    _admit(src)
    migration = LiveMigration(src, dst, "t")
    with pytest.raises(ConfigurationError):
        migration.apply_write(1, {"cpu": 1, "mem": 1})  # before begin
    with pytest.raises(ConfigurationError):
        migration.cutover()
    migration.begin()
    with pytest.raises(ConfigurationError):
        migration.begin()  # already dual-running
    migration.cutover()
    for op in (migration.begin, migration.cutover, migration.abort):
        with pytest.raises(ConfigurationError):
            op()
    with pytest.raises(ConfigurationError):
        LiveMigration(src, src, "t")  # needs two instances


def test_controller_migrates_under_concurrent_writes():
    """The end-to-end control-plane path: a client streams writes while
    another migrates the tenant; zero control ops dropped, post-cutover
    table equals a twin that saw every write."""
    src, dst = _backend(ScalarBackend), _backend(BatchedBackend)
    applied = []

    async def writer(ctl: Controller) -> None:
        for i in range(30):
            metrics = {"cpu": (i * 11) % 80, "mem": i % 30}
            await ctl.update_resource("t", i % 5, metrics)
            applied.append((i % 5, metrics))
            await asyncio.sleep(0)

    async def mover(ctl: Controller) -> dict:
        await asyncio.sleep(0)  # let some writes land first
        await ctl.begin_migration("t", dst)
        for _ in range(5):
            await asyncio.sleep(0)  # dual-running while writes continue
        return await ctl.cutover("t")

    async def scenario():
        async with Controller(src) as ctl:
            await ctl.add_tenant(TenantSpec("t", _policy(), smbm_quota=8))
            _, stats = await asyncio.gather(writer(ctl), mover(ctl))
            return stats

    stats = asyncio.run(scenario())
    assert stats["tenant"] == "t"
    assert stats["dual_writes"] > 0
    assert "t" not in src.manager and "t" in dst.manager
    # Conservation: the destination table equals a twin that saw every
    # write exactly once, in order — nothing dropped across the move.
    twin = FilterModule(8, METRICS, _policy())
    for rid, metrics in applied:
        twin.update_resource(rid, metrics)
    dst_smbm = dst.manager.get("t").module.smbm
    assert dst_smbm.snapshot() == twin.smbm.snapshot()
    assert len(applied) == 30


def test_post_migration_serving_caches_rebuild():
    """The restored module must not serve stale version-keyed results:
    memo/batch/codegen caches reset across restore (counted on the shared
    serving_cache_resets_total path), then rebuild against the restored
    table."""
    src, dst = _backend(ScalarBackend), _backend(ScalarBackend)
    _admit(src)
    src.write_batch([TableWrite("t", 1, {"cpu": 10, "mem": 10}),
                     TableWrite("t", 2, {"cpu": 2, "mem": 20})])
    before = _serve(src)
    migration = LiveMigration(src, dst, "t")
    migration.begin()
    migration.cutover()
    assert _serve(dst) == before
    module = dst.manager.get("t").module
    # Warm memo on the destination, then a write invalidates it.
    assert module.cache_hits >= 0
    dst.write_batch([TableWrite("t", 3, {"cpu": 1, "mem": 30})])
    assert _serve(dst) != 0
