"""The asyncio control plane: concurrency, ordering, and observability.

The repo carries no asyncio pytest plugin, so every test is a plain sync
function driving its scenario through ``asyncio.run`` — the controller's
public API is awaitable either way.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import obs
from repro.core.operators import RelOp
from repro.core.policy import Policy, TableRef, min_of, predicate
from repro.errors import CompilationError, ConfigurationError
from repro.serving.backend import BatchedBackend, ScalarBackend, TableWrite
from repro.serving.controller import Controller
from repro.tenancy.manager import TenantManager, TenantSpec

METRICS = ("cpu", "mem")
BACKENDS = (ScalarBackend, BatchedBackend)


def _policy(name="ll") -> Policy:
    return Policy(min_of(TableRef(), "cpu"), name=name)


def _spec(name: str) -> TenantSpec:
    return TenantSpec(name=name, policy=_policy(), smbm_quota=8)


def _backend(cls=ScalarBackend):
    return cls(TenantManager(METRICS, smbm_capacity=16))


@pytest.mark.parametrize("cls", BACKENDS, ids=lambda c: c.name)
def test_concurrent_clients_admit_and_write(cls):
    backend = _backend(cls)

    async def client(ctl: Controller, name: str) -> None:
        await ctl.add_tenant(_spec(name))
        for i in range(10):
            await ctl.update_resource(name, i % 4, {"cpu": i, "mem": i})

    async def scenario():
        async with Controller(backend) as ctl:
            await asyncio.gather(client(ctl, "a"), client(ctl, "b"))

    asyncio.run(scenario())
    assert len(backend.manager) == 2
    for name in ("a", "b"):
        assert len(backend.manager.get(name).module.smbm) == 4


def test_per_tenant_ops_apply_in_submission_order():
    backend = _backend()

    async def scenario():
        async with Controller(backend) as ctl:
            await ctl.add_tenant(_spec("t"))
            # Fire a dependent sequence without awaiting intermediates:
            # all land on tenant t's FIFO queue and must apply in order.
            writes = [
                asyncio.ensure_future(
                    ctl.update_resource("t", 1, {"cpu": i, "mem": i})
                )
                for i in range(50)
            ]
            await asyncio.gather(*writes)

    asyncio.run(scenario())
    smbm = backend.manager.get("t").module.smbm
    assert smbm.snapshot()[1] == {"cpu": 49, "mem": 49}  # last write wins
    # 1 add + 49 updates, each an SMBM version bump (update = delete+add
    # composite commits once per op through update_resource).
    assert len(smbm) == 1


def test_interleaved_tenants_do_not_block_each_other():
    backend = _backend()
    order: list[str] = []

    async def client(ctl, name, n):
        await ctl.add_tenant(_spec(name))
        for i in range(n):
            await ctl.update_resource(name, 0, {"cpu": i, "mem": 0})
            order.append(name)

    async def scenario():
        async with Controller(backend) as ctl:
            await asyncio.gather(client(ctl, "a", 20), client(ctl, "b", 20))

    asyncio.run(scenario())
    # Both tenants' streams completed and genuinely interleaved (neither
    # ran to completion before the other started).
    assert order.count("a") == order.count("b") == 20
    assert order[:20].count("a") < 20 and order[:20].count("b") < 20


def test_errors_relay_to_the_submitting_client():
    backend = _backend()

    async def scenario():
        async with Controller(backend) as ctl:
            await ctl.add_tenant(_spec("t"))
            with pytest.raises(CompilationError):
                await ctl.add_tenant(_spec("t"))  # double admission
            with pytest.raises(ConfigurationError):
                await ctl.update_resource("ghost", 1, {"cpu": 1, "mem": 1})
            # The controller survives client errors: next op applies.
            await ctl.update_resource("t", 1, {"cpu": 1, "mem": 1})

    asyncio.run(scenario())
    assert len(backend.manager.get("t").module.smbm) == 1


def test_hot_swap_serializes_with_writes():
    backend = _backend()

    async def scenario():
        async with Controller(backend) as ctl:
            await ctl.add_tenant(_spec("t"))
            futures = [
                asyncio.ensure_future(
                    ctl.update_resource("t", i, {"cpu": i, "mem": i})
                )
                for i in range(5)
            ]
            swap = asyncio.ensure_future(ctl.hot_swap(
                "t", Policy(predicate(TableRef(), "cpu", RelOp.LT, 3),
                            name="swapped"),
            ))
            await asyncio.gather(*futures, swap)
            return swap.result()

    epoch = asyncio.run(scenario())
    assert epoch == 1
    assert backend.manager.get("t").module.policy.name == "swapped"


def test_write_batch_rejects_foreign_tenant_writes():
    backend = _backend()

    async def scenario():
        async with Controller(backend) as ctl:
            await ctl.add_tenant(_spec("t"))
            with pytest.raises(ConfigurationError):
                await ctl.write_batch("t", [
                    TableWrite("other", 1, {"cpu": 1, "mem": 1}),
                ])
            return await ctl.write_batch("t", [
                TableWrite("t", 1, {"cpu": 1, "mem": 1}),
                TableWrite("t", 2, {"cpu": 2, "mem": 2}),
                TableWrite("t", 1, None),
            ])

    assert asyncio.run(scenario()) == 3
    assert sorted(backend.manager.get("t").module.smbm.snapshot()) == [2]


def test_closed_controller_rejects_submissions():
    backend = _backend()

    async def scenario():
        ctl = Controller(backend)
        await ctl.add_tenant(_spec("t"))
        await ctl.aclose()
        with pytest.raises(ConfigurationError):
            await ctl.add_tenant(_spec("u"))

    asyncio.run(scenario())


def test_controller_obs_series():
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        backend = _backend()

        async def scenario():
            async with Controller(backend) as ctl:
                await ctl.add_tenant(_spec("t"))
                for i in range(3):
                    await ctl.update_resource("t", i, {"cpu": i, "mem": i})
                try:
                    await ctl.update_resource("ghost", 0,
                                              {"cpu": 0, "mem": 0})
                except ConfigurationError:
                    pass

        asyncio.run(scenario())
        snap = obs.snapshot(registry)
    counters = snap["counters"]
    assert counters[
        'controller_ops_total{backend="scalar",op="add_tenant",outcome="ok"}'
    ] == 1
    assert counters[
        'controller_ops_total{backend="scalar",op="update_resource",'
        'outcome="ok"}'
    ] == 3
    assert counters[
        'controller_ops_total{backend="scalar",op="update_resource",'
        'outcome="error"}'
    ] == 1
    gauges = snap["gauges"]
    assert ('controller_queue_depth{backend="scalar",tenant="t"}'
            in gauges)
    assert any(k.startswith("controller_apply_ns") for k in snap["histograms"])


def test_module_smoke_entrypoint(capsys):
    from repro.serving.controller import main

    assert main(["--backend", "batched", "--writes", "4"]) == 0
    out = capsys.readouterr().out
    assert "healthy" in out
    assert "controller_ops_total" in out
