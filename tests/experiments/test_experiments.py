"""Integration tests for the figure-experiment harnesses.

These run each experiment at miniature scale — enough to exercise the full
stack (policies -> compiled pipelines -> simulator) and its invariants, not
to reproduce the paper's factors (that is the benchmarks' job).
"""

import pytest

from repro.experiments import (
    CachingExperimentConfig,
    L4LBExperimentConfig,
    PortLBExperimentConfig,
    RoutingExperimentConfig,
    run_caching_experiment,
    run_l4lb_experiment,
    run_portlb_experiment,
    run_routing_experiment,
)

TINY_ROUTING = dict(
    n_leaf=4, n_spine=4, hosts_per_leaf=2, duration_s=0.01, drain_s=0.3,
    load=0.5, seed=2,
)


class TestRoutingExperiment:
    @pytest.mark.parametrize("policy", ["policy1", "policy2", "policy3"])
    def test_runs_and_completes_flows(self, policy):
        result = run_routing_experiment(
            RoutingExperimentConfig(policy=policy, **TINY_ROUTING)
        )
        assert result.completed > 10
        assert result.mean_fct > 0
        assert result.p99_fct >= result.mean_fct
        if policy != "policy1":
            assert result.policy_decisions > 0

    def test_deterministic_given_seed(self):
        a = run_routing_experiment(
            RoutingExperimentConfig(policy="policy2", **TINY_ROUTING)
        )
        b = run_routing_experiment(
            RoutingExperimentConfig(policy="policy2", **TINY_ROUTING)
        )
        assert a.mean_fct == b.mean_fct
        assert a.drops == b.drops

    def test_seed_changes_outcome(self):
        base = dict(TINY_ROUTING)
        a = run_routing_experiment(
            RoutingExperimentConfig(policy="policy1", **base)
        )
        base["seed"] = 9
        b = run_routing_experiment(
            RoutingExperimentConfig(policy="policy1", **base)
        )
        assert a.mean_fct != b.mean_fct

    def test_degraded_links_increase_fct(self):
        base = dict(TINY_ROUTING)
        clean = run_routing_experiment(RoutingExperimentConfig(
            policy="policy1", degraded_spines=0, flaky_spines=0, **base
        ))
        degraded = run_routing_experiment(RoutingExperimentConfig(
            policy="policy1", degraded_spines=2, degraded_fraction=0.2,
            flaky_spines=0, **base
        ))
        assert degraded.mean_fct > clean.mean_fct


class TestPortLBExperiment:
    @pytest.mark.parametrize("policy", ["policy1", "policy2", "policy3"])
    def test_runs(self, policy):
        result = run_portlb_experiment(PortLBExperimentConfig(
            policy=policy, n_leaf=4, n_spine=4, hosts_per_leaf=2,
            duration_s=0.01, drain_s=0.3, load=0.5, seed=2,
        ))
        assert result.completed > 10

    def test_thanos_drill_mode_runs_in_fabric(self):
        """The full compiled-pipeline DRILL inside the simulator."""
        result = run_portlb_experiment(PortLBExperimentConfig(
            policy="policy3", drill_mode="thanos", d=2, m=1,
            n_leaf=2, n_spine=4, hosts_per_leaf=1,
            duration_s=0.004, drain_s=0.3, load=0.4, seed=2,
        ))
        assert result.completed > 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(Exception):
            run_portlb_experiment(PortLBExperimentConfig(
                policy="policy9", duration_s=0.005, load=0.4,
            ))


class TestL4LBExperiment:
    def test_runs_and_pairs(self):
        kw = dict(n_queries=150, seed=3)
        r1 = run_l4lb_experiment(L4LBExperimentConfig(which_policy=1, **kw))
        r2 = run_l4lb_experiment(L4LBExperimentConfig(which_policy=2, **kw))
        assert len(r1.response_times) == 150
        assert len(r2.response_times) == 150
        ratios = r1.per_query_ratios(r2)
        assert len(ratios) == 150
        assert ratios == sorted(ratios)

    def test_percentile_bounds(self):
        r = run_l4lb_experiment(L4LBExperimentConfig(which_policy=1, n_queries=100))
        assert r.percentile(0) <= r.percentile(50) <= r.percentile(100)

    def test_policy2_not_worse_on_average(self):
        kw = dict(n_queries=400, seed=3)
        r1 = run_l4lb_experiment(L4LBExperimentConfig(which_policy=1, **kw))
        r2 = run_l4lb_experiment(L4LBExperimentConfig(which_policy=2, **kw))
        assert r2.mean() < r1.mean()


class TestCachingExperiment:
    def test_cache_serves_and_speeds_up(self):
        kw = dict(n_queries=300, seed=3)
        nc = run_caching_experiment(CachingExperimentConfig(enable_cache=False, **kw))
        wc = run_caching_experiment(CachingExperimentConfig(enable_cache=True, **kw))
        assert nc.cache_hit_fraction() == 0.0
        assert wc.cache_hit_fraction() > 0.2
        mean_nc = sum(nc.response_times()) / len(nc.results)
        mean_wc = sum(wc.response_times()) / len(wc.results)
        assert mean_wc < mean_nc

    def test_cached_results_marked(self):
        wc = run_caching_experiment(
            CachingExperimentConfig(enable_cache=True, n_queries=200, seed=3)
        )
        cached = [r for r in wc.results if r.served_from_cache]
        assert cached
        assert all(r.server == -1 for r in cached)
        assert all(
            r.response_time == wc.config.switch_rtt_s for r in cached
        )


class TestFatTreeRouting:
    def test_fat_tree_topology_runs(self):
        result = run_routing_experiment(RoutingExperimentConfig(
            policy="policy2", topology="fat_tree", fat_tree_k=4,
            load=0.4, duration_s=0.006, drain_s=0.3, seed=2,
            top_x=2, degraded_spines=1, flaky_spines=1,
        ))
        assert result.completed > 5
        assert result.policy_decisions > 0

    def test_unknown_topology_rejected(self):
        with pytest.raises(Exception):
            run_routing_experiment(RoutingExperimentConfig(
                policy="policy1", topology="hypercube", duration_s=0.005,
            ))


class TestInbandProbeMode:
    def test_inband_mode_runs_and_decides(self):
        result = run_routing_experiment(RoutingExperimentConfig(
            policy="policy2", probe_mode="inband", **TINY_ROUTING
        ))
        assert result.completed > 10
        assert result.policy_decisions > 0

    def test_unknown_probe_mode_rejected(self):
        with pytest.raises(Exception):
            run_routing_experiment(RoutingExperimentConfig(
                policy="policy2", probe_mode="telepathy", duration_s=0.004,
            ))
