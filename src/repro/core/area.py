"""Analytical area and clock model (section 6, Tables 1-4).

The paper reports ASIC synthesis results (Synopsys DC, open 15 nm process)
for every hardware block.  We cannot run synthesis here, so this module is a
**component-derived cost model calibrated against the paper's published
numbers**:

* **SMBM** (Table 1) — N*(m+1) flip-flop entries; shift/mux wiring grows the
  per-entry cost, giving area ~ (m+1) * N^1.25.  Clock falls with the
  parallel search depth, ~ 1 / log2(N).
* **BFPU** (Table 2) — pure bitwise logic over N-bit vectors: area exactly
  linear in N, clock flat (40 GHz in the paper — far above any system clock).
* **UFPU** (Table 2) — N-entry temp list + priority encoder: area ~ N^1.2;
  clock limited by the N-wide priority-encoder reduction tree.
* **Cell** (Table 3) — two K-UFPUs dominate: area linear in K; clock equals
  the UFPU clock at the default N (the paper's 2.1 GHz).
* **Filter pipeline** (Table 4) — (n/2 * k) Cells plus k Benes crossbars of
  size n*f; Cells account for >90% of the area; the clock is the Cell clock,
  independent of n and k.

Exponents and coefficients were fit to the published tables; the benches
print paper-vs-model side by side, and the tests assert agreement within a
modelling tolerance on every published cell plus the derived claims (Cell
dominance, clock independence, sub-percent chip overhead).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.benes import BenesNetwork
from repro.errors import ConfigurationError

__all__ = [
    "smbm_area_mm2",
    "smbm_clock_ghz",
    "bfpu_area_mm2",
    "bfpu_clock_ghz",
    "ufpu_area_mm2",
    "ufpu_clock_ghz",
    "cell_area_mm2",
    "cell_clock_ghz",
    "pipeline_area_mm2",
    "pipeline_clock_ghz",
    "pipeline_area_breakdown",
    "chip_overhead_percent",
    "PAPER_TABLE1",
    "PAPER_TABLE2_BFPU",
    "PAPER_TABLE2_UFPU",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "SWITCH_CHIP_AREA_MM2_RANGE",
    "TARGET_CLOCK_GHZ",
]

#: State-of-the-art switching chips occupy 300-700 mm^2 (section 6).
SWITCH_CHIP_AREA_MM2_RANGE = (300.0, 700.0)
#: Clock of state-of-the-art multi-terabit switches (section 6).
TARGET_CLOCK_GHZ = 1.0

# -- published numbers (the calibration targets) ---------------------------------

#: Table 1: {(m, N): (area_mm2, clock_ghz)}.
PAPER_TABLE1: dict[tuple[int, int], tuple[float, float]] = {
    (2, 64): (0.012, 4.4), (2, 128): (0.029, 4.0),
    (2, 256): (0.071, 3.6), (2, 512): (0.186, 2.9),
    (4, 64): (0.020, 4.3), (4, 128): (0.046, 4.2),
    (4, 256): (0.109, 3.6), (4, 512): (0.267, 2.5),
    (8, 64): (0.036, 4.9), (8, 128): (0.080, 3.7),
    (8, 256): (0.183, 3.6), (8, 512): (0.425, 2.5),
}

#: Table 2 (BFPU row): {N: (area_mm2, clock_ghz)}.
PAPER_TABLE2_BFPU: dict[int, tuple[float, float]] = {
    64: (216e-6, 40.0), 128: (431e-6, 40.0),
    256: (852e-6, 40.0), 512: (0.002, 40.0),
}

#: Table 2 (UFPU row): {N: (area_mm2, clock_ghz)}.
PAPER_TABLE2_UFPU: dict[int, tuple[float, float]] = {
    64: (0.001, 3.8), 128: (0.002, 2.2),
    256: (0.005, 1.9), 512: (0.012, 1.8),
}

#: Table 3: {K: (area_mm2, clock_ghz)} at the default N=128.
PAPER_TABLE3: dict[int, tuple[float, float]] = {
    2: (0.016, 2.1), 4: (0.032, 2.1), 8: (0.063, 2.1), 16: (0.126, 2.1),
}

#: Table 4: {(n, k): (area_mm2, clock_ghz)} at defaults K=4, f=2, N=128.
PAPER_TABLE4: dict[tuple[int, int], tuple[float, float]] = {
    (2, 2): (0.067, 2.1), (2, 4): (0.131, 2.1), (2, 8): (0.261, 2.1),
    (4, 2): (0.135, 2.1), (4, 4): (0.270, 2.1), (4, 8): (0.545, 2.1),
    (8, 2): (0.281, 2.1), (8, 4): (0.562, 2.1), (8, 8): (1.125, 2.1),
}

# -- calibration constants ---------------------------------------------------------

# SMBM: per-dimension entry cost, area ~ (m+1) * N^1.25 (flip-flop bits plus
# shift/compare wiring growing slowly with N).
_SMBM_AREA_COEFF = 0.020 / (5 * 64 ** 1.25)  # anchored at (m=4, N=64)
# SMBM clock: per-N periods (ns) averaged across m (the per-m spread in
# Table 1 is synthesis noise; the limiting path does not depend on m).
_SMBM_PERIOD_NS: dict[int, float] = {64: 0.221, 128: 0.253, 256: 0.278, 512: 0.382}

# BFPU: pure bitwise logic, linear in N.
_BFPU_AREA_MM2_PER_BIT = 216e-6 / 64
_BFPU_CLOCK_GHZ = 40.0

# UFPU: temp list + priority encoder, area ~ N^1.2.
_UFPU_AREA_COEFF = 0.001 / 64 ** 1.2
# UFPU clock: published periods (ns) per N; interpolated in log2(N).
_UFPU_PERIOD_NS: dict[int, float] = {
    n: 1.0 / clock for n, (_a, clock) in PAPER_TABLE2_UFPU.items()
}

# Benes 2x2 switch over an N-bit bus.
_BENES_SWITCH_MM2_PER_BIT = 250e-6 / 128

_DEFAULT_N = 128

# Cell: two K-UFPUs plus I/O generators and internal crossbars; calibrated
# wiring factor over the raw 2*K*ufpu_area(N) term, anchored so that the
# model reproduces Table 3's (K=4, N=128) cell exactly.
_CELL_WIRING_FACTOR = 0.032 / (2 * 4 * (_UFPU_AREA_COEFF * _DEFAULT_N ** 1.2))


def _interp_period_ns(table: dict[int, float], n: int) -> float:
    """Piecewise-linear interpolation of a period table in log2(N).

    Exact at published sizes; edge slopes extrapolate beyond the table.
    """
    xs = sorted(table)
    x = math.log2(n)
    pts = [(math.log2(k), table[k]) for k in xs]
    if x <= pts[0][0]:
        (x0, y0), (x1, y1) = pts[0], pts[1]
    elif x >= pts[-1][0]:
        (x0, y0), (x1, y1) = pts[-2], pts[-1]
    else:
        for (x0, y0), (x1, y1) in zip(pts, pts[1:]):
            if x0 <= x <= x1:
                break
    slope = (y1 - y0) / (x1 - x0)
    return max(y0 + slope * (x - x0), 0.02)


def _require_positive(**values: int) -> None:
    for name, value in values.items():
        if value <= 0:
            raise ConfigurationError(f"{name} must be positive, got {value}")


# -- SMBM (Table 1) ----------------------------------------------------------------


def smbm_area_mm2(n: int, m: int) -> float:
    """Chip area of an SMBM with N resources and m metrics, in mm^2."""
    _require_positive(n=n, m=m)
    return _SMBM_AREA_COEFF * (m + 1) * n ** 1.25


def smbm_clock_ghz(n: int, m: int) -> float:
    """Achievable clock of the SMBM, in GHz.

    The limiting path is the parallel search across a sorted list (a log-
    depth comparison tree); the metric count only adds parallel copies, so
    the model depends on N alone, consistent with Table 1 where clock
    variation across m is synthesis noise.
    """
    _require_positive(n=n, m=m)
    return 1.0 / _interp_period_ns(_SMBM_PERIOD_NS, n)


# -- BFPU / UFPU (Table 2) -----------------------------------------------------------


def bfpu_area_mm2(n: int) -> float:
    """Chip area of one BFPU over N-bit table vectors, in mm^2."""
    _require_positive(n=n)
    return _BFPU_AREA_MM2_PER_BIT * n


def bfpu_clock_ghz(n: int) -> float:
    """BFPU clock: a couple of gate levels regardless of N."""
    _require_positive(n=n)
    return _BFPU_CLOCK_GHZ


def ufpu_area_mm2(n: int) -> float:
    """Chip area of one UFPU over an N-entry table, in mm^2."""
    _require_positive(n=n)
    return _UFPU_AREA_COEFF * n ** 1.2


def ufpu_clock_ghz(n: int) -> float:
    """UFPU clock, limited by the N-wide priority-encoder tree."""
    _require_positive(n=n)
    return 1.0 / _interp_period_ns(_UFPU_PERIOD_NS, n)


# -- Cell (Table 3) ----------------------------------------------------------------


def cell_area_mm2(k: int, n: int = _DEFAULT_N) -> float:
    """Chip area of one Cell whose K-UFPUs have chain length ``k``."""
    _require_positive(k=k, n=n)
    return _CELL_WIRING_FACTOR * 2 * k * ufpu_area_mm2(n)


def cell_clock_ghz(k: int, n: int = _DEFAULT_N) -> float:
    """Cell clock equals the clock of its constituent UFPU (section 6)."""
    _require_positive(k=k, n=n)
    # The published Cell clock (2.1 GHz at N=128) is marginally below the
    # standalone UFPU clock; the small fixed derating covers the Cell's
    # internal muxing.
    return min(ufpu_clock_ghz(n), 2.1 * ufpu_clock_ghz(n) / ufpu_clock_ghz(128))


# -- filter pipeline (Table 4) ---------------------------------------------------------


def _benes_switches_per_stage(n: int, f: int) -> int:
    """2x2 switches in one stage's nf x n crossbar, realised as a Benes net."""
    return BenesNetwork.for_crossbar(n, f).switch_count()


def pipeline_area_breakdown(
    n: int, k: int, f: int = 2, chain_k: int = 4, capacity: int = _DEFAULT_N
) -> dict[str, float]:
    """Area split of an n-input, k-stage pipeline: cells vs crossbars (mm^2)."""
    _require_positive(n=n, k=k, f=f, chain_k=chain_k, capacity=capacity)
    if n % 2:
        raise ConfigurationError(f"n must be even, got {n}")
    cells = (n // 2) * k * cell_area_mm2(chain_k, capacity)
    crossbars = (
        k * _benes_switches_per_stage(n, f) * _BENES_SWITCH_MM2_PER_BIT * capacity
    )
    return {"cells": cells, "crossbars": crossbars, "total": cells + crossbars}


def pipeline_area_mm2(
    n: int, k: int, f: int = 2, chain_k: int = 4, capacity: int = _DEFAULT_N
) -> float:
    """Total chip area of the programmable filter pipeline, in mm^2."""
    return pipeline_area_breakdown(n, k, f, chain_k, capacity)["total"]


def pipeline_clock_ghz(
    n: int, k: int, f: int = 2, chain_k: int = 4, capacity: int = _DEFAULT_N
) -> float:
    """Pipeline clock = Cell clock, independent of n and k (section 6)."""
    _require_positive(n=n, k=k, f=f)
    return cell_clock_ghz(chain_k, capacity)


def chip_overhead_percent(
    area_mm2: float, chip_mm2: float | None = None
) -> tuple[float, float]:
    """Overhead of adding ``area_mm2`` to a 300-700 mm^2 switching chip.

    Returns (max_percent, min_percent): the overhead against the smallest
    and largest chips in the range (the paper's "0.3-0.15%" style claim).
    """
    if area_mm2 < 0:
        raise ConfigurationError(f"area must be non-negative, got {area_mm2}")
    low, high = SWITCH_CHIP_AREA_MM2_RANGE if chip_mm2 is None else (chip_mm2, chip_mm2)
    return 100.0 * area_mm2 / low, 100.0 * area_mm2 / high


@dataclass(frozen=True)
class ModelComparison:
    """One paper-vs-model cell, used by the benches."""

    label: str
    paper: float
    model: float

    @property
    def ratio(self) -> float:
        return self.model / self.paper if self.paper else math.inf
