"""Binary Filter Processing Unit (section 5.2.2).

A BFPU merges two tables — encoded as bit vectors — in **one clock cycle**.
Because tables are bit vectors, the set operators reduce to bitwise logic:

* ``union``        → ``a OR b``
* ``intersection`` → ``a AND b``
* ``difference``   → ``a AND NOT b``
* ``no-op``        → a 2:1 mux selected by the compile-time ``choice`` bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.bitvector import BitVector
from repro.core.clocked import PipelineLatch
from repro.core.operators import BinaryOp
from repro.errors import ConfigurationError

__all__ = ["BinaryConfig", "BFPU", "ClockedBFPU", "BFPU_LATENCY_CYCLES"]

#: Processing latency of a BFPU (section 5.2.2).
BFPU_LATENCY_CYCLES = 1


@dataclass(frozen=True)
class BinaryConfig:
    """Compile-time configuration of one BFPU.

    ``choice`` selects the passthrough input for the ``no-op`` opcode
    (0 → first input, 1 → second input) and must be ``None`` otherwise.
    """

    opcode: BinaryOp
    choice: int | None = None

    def __post_init__(self) -> None:
        if self.opcode.needs_choice:
            if self.choice not in (0, 1):
                raise ConfigurationError("no-op BFPU requires choice in {0, 1}")
        elif self.choice is not None:
            raise ConfigurationError(f"{self.opcode} takes no choice operand")

    @classmethod
    def passthrough(cls, choice: int) -> "BinaryConfig":
        """A mux that forwards input ``choice`` unchanged."""
        return cls(BinaryOp.NO_OP, choice=choice)

    def describe(self) -> str:
        if self.opcode is BinaryOp.NO_OP:
            return f"mux(choice={self.choice})"
        return str(self.opcode)


class BFPU:
    """A single programmable binary filter processing unit.

    The opcode is fixed at compile time, so the per-packet dispatch is
    resolved once at construction: ``evaluate`` is a direct call into the
    selected single-cycle bitwise operation.
    """

    def __init__(self, config: BinaryConfig):
        self._config = config
        op = config.opcode
        if op is BinaryOp.NO_OP:
            if config.choice == 0:
                self._fn: Callable[[BitVector, BitVector], BitVector] = (
                    lambda a, b: a.copy()
                )
            else:
                self._fn = lambda a, b: b.copy()
        elif op is BinaryOp.UNION:
            self._fn = BitVector.__or__
        elif op is BinaryOp.INTERSECTION:
            self._fn = BitVector.__and__
        elif op is BinaryOp.DIFFERENCE:
            self._fn = BitVector.__sub__
        else:  # pragma: no cover - exhaustive over BinaryOp
            raise ConfigurationError(f"unhandled opcode {op}")

    @property
    def config(self) -> BinaryConfig:
        return self._config

    def evaluate(self, a: BitVector, b: BitVector) -> BitVector:
        """Merge the two input tables according to the configured opcode."""
        return self._fn(a, b)


class ClockedBFPU:
    """Cycle-accurate BFPU: 1-cycle latency, one merge accepted per cycle."""

    def __init__(self, config: BinaryConfig):
        self._unit = BFPU(config)
        self._pipe: PipelineLatch[BitVector] = PipelineLatch(BFPU_LATENCY_CYCLES)
        self._cycle = 0

    @property
    def cycle(self) -> int:
        return self._cycle

    def issue(self, a: BitVector, b: BitVector) -> None:
        self._pipe.issue(self._unit.evaluate(a, b))

    def tick(self) -> BitVector | None:
        out = self._pipe.tick()
        self._cycle += 1
        return out
