"""A tiny synchronous-hardware simulation harness.

The cycle-accurate models in this package (SMBM, UFPU, BFPU, the filter
pipeline) all follow the same discipline as the System Verilog they stand in
for: state changes only at clock edges, and fully pipelined units accept a new
request every cycle while completing each request a fixed number of cycles
later.

:class:`PipelineLatch` models that fixed-latency, one-issue-per-cycle
behaviour: requests pushed at cycle ``t`` emerge at cycle ``t + latency``.
:class:`Clock` drives a set of components, calling ``tick()`` on each in
registration order once per cycle.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generic, Protocol, TypeVar

from repro.errors import SimulationError

__all__ = ["Clocked", "Clock", "PipelineLatch"]

T = TypeVar("T")


class Clocked(Protocol):
    """Anything driven by a clock edge."""

    def tick(self) -> None:
        """Advance internal state by one clock cycle."""


class Clock:
    """Drives registered components one clock edge at a time."""

    def __init__(self) -> None:
        self._components: list[Clocked] = []
        self._cycle = 0

    @property
    def cycle(self) -> int:
        """Number of completed clock cycles."""
        return self._cycle

    def register(self, component: Clocked) -> None:
        """Attach a component; ``tick`` order follows registration order."""
        self._components.append(component)

    def step(self, cycles: int = 1) -> None:
        """Advance the clock by ``cycles`` edges."""
        if cycles < 0:
            raise SimulationError(f"cannot step a negative cycle count: {cycles}")
        for _ in range(cycles):
            for component in self._components:
                component.tick()
            self._cycle += 1


class PipelineLatch(Generic[T]):
    """A fixed-latency, fully pipelined stage.

    One item may be issued per cycle; each item retires exactly ``latency``
    ticks after it was issued.  This captures the paper's repeated claim
    "the design is fully pipelined and can serve a new request every clock
    cycle" with a deterministic per-request latency.
    """

    def __init__(self, latency: int):
        if latency < 1:
            raise SimulationError(f"latency must be >= 1 cycle, got {latency}")
        self._latency = latency
        # Each slot holds the item that will retire after that many more ticks.
        self._stages: deque[Any] = deque([None] * latency, maxlen=latency)
        self._issued_this_cycle = False

    @property
    def latency(self) -> int:
        return self._latency

    def issue(self, item: T) -> None:
        """Present a new item at the pipeline input for this cycle."""
        if self._issued_this_cycle:
            raise SimulationError("at most one issue per clock cycle")
        self._stages[-1] = item  # placed at the input stage; shifts on tick
        self._issued_this_cycle = True

    def tick(self) -> T | None:
        """Clock edge: shift the pipeline, returning the retiring item."""
        retired = self._stages.popleft()
        self._stages.append(None)
        self._issued_this_cycle = False
        return retired

    def occupancy(self) -> int:
        """Number of in-flight items."""
        return sum(1 for slot in self._stages if slot is not None)
