"""The relational resource table abstraction (section 4).

Thanos represents a set of N resources, each with M stateful metrics, as a
relational table with M+1 attributes: a unique resource id (the primary key)
plus the M metrics.  This module provides that abstraction as plain Python —
the *software reference* against which the hardware models (SMBM + filter
units, which operate on sorted lists and bit vectors) are differentially
tested.

All reference filter operators here follow the abstract operator definitions
of section 4.1 exactly, including FIFO tie-breaking for ``min``/``max`` (the
entry enqueued first wins a value tie, because the SMBM keeps equal-valued
entries in enqueue order).
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.core.operators import RelOp
from repro.errors import CapacityError, ConfigurationError

__all__ = ["Resource", "ResourceTable"]


@dataclass(frozen=True)
class Resource:
    """One row of the resource table: a unique id plus metric values."""

    resource_id: int
    metrics: Mapping[str, int]

    def metric(self, name: str) -> int:
        try:
            return self.metrics[name]
        except KeyError:
            raise ConfigurationError(
                f"resource {self.resource_id} has no metric {name!r}; "
                f"known metrics: {sorted(self.metrics)}"
            ) from None


@dataclass
class ResourceTable:
    """A relational table of resources keyed by resource id.

    ``capacity`` bounds the number of rows (the hardware N); ``metric_names``
    fixes the schema (the hardware M dimensions).  Enqueue order is recorded
    so that value ties resolve FIFO, matching the SMBM.
    """

    capacity: int
    metric_names: tuple[str, ...]
    _rows: dict[int, Resource] = field(default_factory=dict)
    _enqueue_seq: dict[int, int] = field(default_factory=dict)
    _next_seq: int = 0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {self.capacity}")
        if not self.metric_names:
            raise ConfigurationError("a resource table needs at least one metric")
        if len(set(self.metric_names)) != len(self.metric_names):
            raise ConfigurationError(f"duplicate metric names: {self.metric_names}")

    # -- mutation ------------------------------------------------------------

    def add(self, resource_id: int, metrics: Mapping[str, int]) -> None:
        """Insert a new row.  The id must be unused and fit in [0, capacity)."""
        if not 0 <= resource_id < self.capacity:
            raise CapacityError(
                f"resource id {resource_id} out of range [0, {self.capacity})"
            )
        if resource_id in self._rows:
            raise ConfigurationError(f"resource id {resource_id} already present")
        if set(metrics) != set(self.metric_names):
            raise ConfigurationError(
                f"metrics {sorted(metrics)} do not match schema "
                f"{sorted(self.metric_names)}"
            )
        self._rows[resource_id] = Resource(resource_id, dict(metrics))
        self._enqueue_seq[resource_id] = self._next_seq
        self._next_seq += 1

    def delete(self, resource_id: int) -> None:
        """Remove a row if present; removing an absent id is a no-op,
        matching the SMBM primitive ("deletes ... if present")."""
        self._rows.pop(resource_id, None)
        self._enqueue_seq.pop(resource_id, None)

    def update(self, resource_id: int, metrics: Mapping[str, int]) -> None:
        """Replace a row's metrics (delete + re-add, as the paper composes it)."""
        self.delete(resource_id)
        self.add(resource_id, metrics)

    # -- access ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, resource_id: int) -> bool:
        return resource_id in self._rows

    def __iter__(self) -> Iterator[Resource]:
        return iter(self._rows.values())

    def get(self, resource_id: int) -> Resource:
        try:
            return self._rows[resource_id]
        except KeyError:
            raise ConfigurationError(f"no resource with id {resource_id}") from None

    def ids(self) -> set[int]:
        """The set of resource ids currently present."""
        return set(self._rows)

    def enqueue_seq(self, resource_id: int) -> int:
        """Monotone insertion sequence number (FIFO tie-break key)."""
        return self._enqueue_seq[resource_id]

    def sorted_by(self, metric: str) -> list[Resource]:
        """Rows ordered by (metric value, enqueue order) — the SMBM list order."""
        if metric not in self.metric_names:
            raise ConfigurationError(f"unknown metric {metric!r}")
        return sorted(
            self._rows.values(),
            key=lambda r: (r.metric(metric), self._enqueue_seq[r.resource_id]),
        )

    # -- reference unary operators (section 4.1.1) -------------------------------

    def ref_predicate(
        self, subset: Iterable[int], metric: str, rel_op: RelOp, val: int
    ) -> set[int]:
        """All resources in ``subset`` whose metric satisfies the predicate."""
        present = self.ids() & set(subset)
        return {
            rid for rid in present if rel_op.apply(self.get(rid).metric(metric), val)
        }

    def _extreme(self, subset: Iterable[int], metric: str, want_min: bool) -> set[int]:
        present = self.ids() & set(subset)
        if not present:
            return set()
        ordered = [r for r in self.sorted_by(metric) if r.resource_id in present]
        chosen = ordered[0] if want_min else ordered[-1]
        return {chosen.resource_id}

    def ref_min(self, subset: Iterable[int], metric: str) -> set[int]:
        """Single entry with the lowest metric (FIFO tie-break)."""
        return self._extreme(subset, metric, want_min=True)

    def ref_max(self, subset: Iterable[int], metric: str) -> set[int]:
        """Single entry with the highest metric (last in SMBM list order).

        Note the asymmetry inherited from the hardware: with ties, ``min``
        returns the first-enqueued tied entry while ``max`` returns the
        last-enqueued one, because both simply read an end of the same
        sorted-with-FIFO-ties list.
        """
        return self._extreme(subset, metric, want_min=False)

    def ref_random(self, subset: Iterable[int], rng: _random.Random) -> set[int]:
        """Single entry chosen uniformly at random from the subset."""
        present = sorted(self.ids() & set(subset))
        if not present:
            return set()
        return {rng.choice(present)}

    # -- reference binary operators (section 4.1.2) -------------------------------

    @staticmethod
    def ref_union(a: set[int], b: set[int]) -> set[int]:
        return a | b

    @staticmethod
    def ref_intersection(a: set[int], b: set[int]) -> set[int]:
        return a & b

    @staticmethod
    def ref_difference(a: set[int], b: set[int]) -> set[int]:
        return a - b
