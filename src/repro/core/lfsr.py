"""Linear-feedback shift registers.

The UFPU's ``random`` operator draws a random index from a standard hardware
random number generator, an LFSR (section 5.2.1).  We model a Fibonacci LFSR
with maximal-length taps for common widths, plus a helper that maps the raw
register state to an index in ``[0, n)`` the way a hardware sampler would
(truncate to the next power of two and re-draw on overflow is avoided in
hardware; we use modulo, which the paper's single-cycle budget permits as a
multiply-free operation when n is a power of two and which we document as a
modelling simplification otherwise).
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = ["LFSR", "MAXIMAL_TAPS"]

# Maximal-length feedback taps (XNOR/XOR form) per register width.  Taps are
# 1-indexed bit positions as conventionally listed in LFSR tables.
MAXIMAL_TAPS: dict[int, tuple[int, ...]] = {
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 11, 10, 4),
    16: (16, 15, 13, 4),
    24: (24, 23, 22, 17),
    32: (32, 30, 26, 25),
}


class LFSR:
    """A Fibonacci linear-feedback shift register.

    The register must be seeded with a non-zero value (the all-zero state is
    the lock-up state of an XOR-feedback LFSR).  ``step`` advances one clock
    cycle and returns the new register contents.
    """

    __slots__ = ("_width", "_taps", "_state")

    def __init__(self, width: int, seed: int = 1):
        if width not in MAXIMAL_TAPS:
            raise ConfigurationError(
                f"no maximal-length taps known for width {width}; "
                f"supported widths: {sorted(MAXIMAL_TAPS)}"
            )
        mask = (1 << width) - 1
        seed &= mask
        if seed == 0:
            raise ConfigurationError("LFSR seed must be non-zero")
        self._width = width
        self._taps = MAXIMAL_TAPS[width]
        self._state = seed

    @property
    def width(self) -> int:
        return self._width

    @property
    def state(self) -> int:
        """Current register contents."""
        return self._state

    def step(self) -> int:
        """Advance one clock; return the new state."""
        feedback = 0
        for tap in self._taps:
            feedback ^= (self._state >> (tap - 1)) & 1
        self._state = ((self._state << 1) | feedback) & ((1 << self._width) - 1)
        if self._state == 0:  # cannot happen with maximal taps, but be safe
            self._state = 1
        return self._state

    def sample(self, n: int) -> int:
        """Advance one clock and return a pseudo-random index in ``[0, n)``."""
        if n <= 0:
            raise ConfigurationError(f"sample range must be positive, got {n}")
        return self.step() % n

    def period(self) -> int:
        """The sequence period of a maximal-length LFSR of this width."""
        return (1 << self._width) - 1
