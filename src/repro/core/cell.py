"""The Cell: paired filter units behind 2×2 crossbars (section 5.3.2).

A Cell is the building block of the serial chain pipeline.  It combines
**two K-UFPUs and two BFPUs** with cheap 2×2 crossbar switches so that, with
2 inputs ``(I1, I2)`` and 2 outputs ``(O1, O2)``, it is *fully
reconfigurable*: any unary operation can be applied to either input, any
binary operation to the input pair, and any result can leave on either
output line.

Datapath (matching Figure 13/14):

    (I1, I2) --[input 2x2 crossbar]--> (a, b)
    u1 = K-UFPU1(a),  u2 = K-UFPU2(b)
    O1 = BFPU1(u1, u2),  O2 = BFPU2(u1, u2)

Applying only unary ops means programming the BFPUs as muxes
(``no-op`` with choice 0/1); applying a binary op to the raw inputs means
programming the K-UFPUs as ``no-op``; the Figure 14 pattern — unary ops on
both inputs merged by an ``intersection`` — uses all four units at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bfpu import BFPU, BFPU_LATENCY_CYCLES, BinaryConfig
from repro.core.bitvector import BitVector
from repro.core.kufpu import KUFPU, KUnaryConfig
from repro.core.smbm import SMBM
from repro.core.ufpu import UFPU_LATENCY_CYCLES

__all__ = ["CellConfig", "Cell"]


@dataclass(frozen=True)
class CellConfig:
    """Compile-time configuration of one Cell.

    ``input_swap`` configures the input 2×2 crossbar (False = straight,
    True = crossed).  Defaults are full bypass: both K-UFPUs no-op and the
    BFPUs muxing input 1 to output 1 and input 2 to output 2.
    """

    input_swap: bool = False
    kufpu1: KUnaryConfig = field(default_factory=KUnaryConfig.no_op)
    kufpu2: KUnaryConfig = field(default_factory=KUnaryConfig.no_op)
    bfpu1: BinaryConfig = field(default_factory=lambda: BinaryConfig.passthrough(0))
    bfpu2: BinaryConfig = field(default_factory=lambda: BinaryConfig.passthrough(1))

    @classmethod
    def bypass(cls) -> "CellConfig":
        """The identity Cell: (O1, O2) = (I1, I2)."""
        return cls()

    def describe(self) -> str:
        parts = []
        if self.input_swap:
            parts.append("swap")
        parts.append(f"U1=[{self.kufpu1.describe()}]")
        parts.append(f"U2=[{self.kufpu2.describe()}]")
        parts.append(f"B1=[{self.bfpu1.describe()}]")
        parts.append(f"B2=[{self.bfpu2.describe()}]")
        return "Cell(" + ", ".join(parts) + ")"


class Cell:
    """A physical Cell with a given K-UFPU chain length."""

    def __init__(self, chain_length: int, config: CellConfig, *, lfsr_seed: int = 1,
                 naive: bool = False):
        self._config = config
        self._kufpu1 = KUFPU(
            chain_length, config.kufpu1, lfsr_seed=lfsr_seed, naive=naive
        )
        self._kufpu2 = KUFPU(
            chain_length, config.kufpu2, lfsr_seed=lfsr_seed + chain_length,
            naive=naive,
        )
        self._bfpu1 = BFPU(config.bfpu1)
        self._bfpu2 = BFPU(config.bfpu2)

    @property
    def config(self) -> CellConfig:
        return self._config

    @property
    def chain_length(self) -> int:
        return self._kufpu1.chain_length

    @property
    def latency_cycles(self) -> int:
        """Input crossbar is pure wiring; units dominate the latency."""
        return self._kufpu1.latency_cycles + BFPU_LATENCY_CYCLES

    def reset_state(self) -> None:
        self._kufpu1.reset_state()
        self._kufpu2.reset_state()

    def evaluate(
        self, in1: BitVector, in2: BitVector, smbm: SMBM
    ) -> tuple[BitVector, BitVector]:
        """One packet's traversal of the Cell."""
        a, b = (in2, in1) if self._config.input_swap else (in1, in2)
        u1 = self._kufpu1.evaluate(a, smbm)
        u2 = self._kufpu2.evaluate(b, smbm)
        return self._bfpu1.evaluate(u1, u2), self._bfpu2.evaluate(u1, u2)


#: Latency of a Cell whose K-UFPUs have chain length L, in cycles.
def cell_latency_cycles(chain_length: int) -> int:
    """Deterministic Cell latency for a given K-UFPU chain length."""
    return chain_length * UFPU_LATENCY_CYCLES + BFPU_LATENCY_CYCLES
