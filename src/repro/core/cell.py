"""The Cell: paired filter units behind 2×2 crossbars (section 5.3.2).

A Cell is the building block of the serial chain pipeline.  It combines
**two K-UFPUs and two BFPUs** with cheap 2×2 crossbar switches so that, with
2 inputs ``(I1, I2)`` and 2 outputs ``(O1, O2)``, it is *fully
reconfigurable*: any unary operation can be applied to either input, any
binary operation to the input pair, and any result can leave on either
output line.

Datapath (matching Figure 13/14):

    (I1, I2) --[input 2x2 crossbar]--> (a, b)
    u1 = K-UFPU1(a),  u2 = K-UFPU2(b)
    O1 = BFPU1(u1, u2),  O2 = BFPU2(u1, u2)

Applying only unary ops means programming the BFPUs as muxes
(``no-op`` with choice 0/1); applying a binary op to the raw inputs means
programming the K-UFPUs as ``no-op``; the Figure 14 pattern — unary ops on
both inputs merged by an ``intersection`` — uses all four units at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bfpu import BFPU, BFPU_LATENCY_CYCLES, BinaryConfig
from repro.core.bitvector import BitVector
from repro.core.kufpu import KUFPU, KUnaryConfig
from repro.core.smbm import SMBM
from repro.core.ufpu import UFPU_LATENCY_CYCLES
from repro.errors import CellFault, ConfigurationError

__all__ = ["CellConfig", "Cell"]


@dataclass(frozen=True)
class CellConfig:
    """Compile-time configuration of one Cell.

    ``input_swap`` configures the input 2×2 crossbar (False = straight,
    True = crossed).  Defaults are full bypass: both K-UFPUs no-op and the
    BFPUs muxing input 1 to output 1 and input 2 to output 2.
    """

    input_swap: bool = False
    kufpu1: KUnaryConfig = field(default_factory=KUnaryConfig.no_op)
    kufpu2: KUnaryConfig = field(default_factory=KUnaryConfig.no_op)
    bfpu1: BinaryConfig = field(default_factory=lambda: BinaryConfig.passthrough(0))
    bfpu2: BinaryConfig = field(default_factory=lambda: BinaryConfig.passthrough(1))

    @classmethod
    def bypass(cls) -> "CellConfig":
        """The identity Cell: (O1, O2) = (I1, I2)."""
        return cls()

    def describe(self) -> str:
        parts = []
        if self.input_swap:
            parts.append("swap")
        parts.append(f"U1=[{self.kufpu1.describe()}]")
        parts.append(f"U2=[{self.kufpu2.describe()}]")
        parts.append(f"B1=[{self.bfpu1.describe()}]")
        parts.append(f"B2=[{self.bfpu2.describe()}]")
        return "Cell(" + ", ".join(parts) + ")"


class Cell:
    """A physical Cell with a given K-UFPU chain length.

    ``position`` (optional) records where the Cell sits in its pipeline as a
    ``(stage, index)`` pair (stage 1-based, index 0-based); it only matters
    for fault reporting — a dead Cell raises :class:`~repro.errors.CellFault`
    carrying its position so fail-around recompilation knows which physical
    resource to route around.

    Fault model (hardware faults, distinct from compile-time config):

    * :meth:`kill` — the whole Cell dies; evaluating it raises ``CellFault``.
    * :meth:`inject_stuck` — one unit column (side 1 or 2) is stuck: stuck-at
      0 drives that output line all-zeros, stuck-at 1 wedges the column's
      datapath transparent, so the output is a copy of the column's crossbar
      input (units no longer transform it).  Stuck faults are *silent* —
      they corrupt results without raising — which is what built-in self-test
      (golden-model comparison) exists to catch.
    """

    def __init__(self, chain_length: int, config: CellConfig, *, lfsr_seed: int = 1,
                 naive: bool = False,
                 position: tuple[int, int] | None = None):
        self._config = config
        self._position = position
        self._dead = False
        self._stuck: dict[int, int] = {}
        self._kufpu1 = KUFPU(
            chain_length, config.kufpu1, lfsr_seed=lfsr_seed, naive=naive
        )
        self._kufpu2 = KUFPU(
            chain_length, config.kufpu2, lfsr_seed=lfsr_seed + chain_length,
            naive=naive,
        )
        self._bfpu1 = BFPU(config.bfpu1)
        self._bfpu2 = BFPU(config.bfpu2)

    @property
    def config(self) -> CellConfig:
        return self._config

    @property
    def position(self) -> tuple[int, int] | None:
        return self._position

    @property
    def chain_length(self) -> int:
        return self._kufpu1.chain_length

    @property
    def latency_cycles(self) -> int:
        """Input crossbar is pure wiring; units dominate the latency."""
        return self._kufpu1.latency_cycles + BFPU_LATENCY_CYCLES

    # -- hardware fault hooks ---------------------------------------------------

    @property
    def is_dead(self) -> bool:
        return self._dead

    @property
    def stuck_faults(self) -> dict[int, int]:
        """Active stuck-at faults: {side: stuck_value} (copy)."""
        return dict(self._stuck)

    def kill(self) -> None:
        """The Cell stops responding; evaluation raises CellFault."""
        self._dead = True

    def revive(self) -> None:
        self._dead = False

    def inject_stuck(self, side: int, stuck: int) -> None:
        """Wedge output column ``side`` (1 or 2) at ``stuck`` (0 or 1)."""
        if side not in (1, 2):
            raise ConfigurationError(f"cell side must be 1 or 2, got {side}")
        if stuck not in (0, 1):
            raise ConfigurationError(f"stuck value must be 0 or 1, got {stuck}")
        self._stuck[side] = stuck

    def clear_stuck(self, side: int) -> None:
        """Remove the stuck-at fault on one side, if any."""
        self._stuck.pop(side, None)

    def clear_faults(self) -> None:
        self._dead = False
        self._stuck.clear()

    def reset_state(self) -> None:
        self._kufpu1.reset_state()
        self._kufpu2.reset_state()

    def evaluate(
        self, in1: BitVector, in2: BitVector, smbm: SMBM
    ) -> tuple[BitVector, BitVector]:
        """One packet's traversal of the Cell."""
        if self._dead:
            stage, index = self._position if self._position else (None, None)
            raise CellFault(
                f"cell at stage={stage} index={index} is dead",
                stage=stage, index=index,
            )
        a, b = (in2, in1) if self._config.input_swap else (in1, in2)
        u1 = self._kufpu1.evaluate(a, smbm)
        u2 = self._kufpu2.evaluate(b, smbm)
        o1 = self._bfpu1.evaluate(u1, u2)
        o2 = self._bfpu2.evaluate(u1, u2)
        if self._stuck:
            s1 = self._stuck.get(1)
            if s1 is not None:
                o1 = BitVector.zeros(o1.width) if s1 == 0 else in1.copy()
            s2 = self._stuck.get(2)
            if s2 is not None:
                o2 = BitVector.zeros(o2.width) if s2 == 0 else in2.copy()
        return o1, o2


#: Latency of a Cell whose K-UFPUs have chain length L, in cycles.
def cell_latency_cycles(chain_length: int) -> int:
    """Deterministic Cell latency for a given K-UFPU chain length."""
    return chain_length * UFPU_LATENCY_CYCLES + BFPU_LATENCY_CYCLES
