"""K-UFPU: the programmable parallel chain pipeline (section 5.3.1).

A K-UFPU is a linear chain of ``chain_length`` UFPUs.  The first ``K`` units
are programmed with one identical unary opcode; the remaining units are
``no-op`` bypasses.  I/O generators between the units implement Equation 1:

    I_i = I_{i-1} - O_{i-1}   (for i > 1),   I_1 = I

and the final output is the union of the per-unit outputs,
``O = O_1 ∪ ... ∪ O_K``.

With ``K = 1`` a K-UFPU is functionally a plain UFPU.  With ``K > 1`` and a
selector opcode it filters *K distinct* entries: K ``min`` units yield the K
smallest entries, K ``random`` units yield K distinct uniform draws, etc.

Latency is deterministic — every input traverses all ``chain_length`` units
(bypass units still latch) — so the chain adds
``chain_length * UFPU_LATENCY_CYCLES`` cycles regardless of K, and is fully
pipelined.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bitvector import BitVector
from repro.core.operators import RelOp, UnaryOp
from repro.core.smbm import SMBM
from repro.core.ufpu import UFPU, UFPU_LATENCY_CYCLES, UnaryConfig
from repro.errors import ConfigurationError

__all__ = ["KUnaryConfig", "KUFPU"]


@dataclass(frozen=True)
class KUnaryConfig:
    """Compile-time configuration of a K-UFPU.

    ``k`` is the number of programmed (non-bypass) units; it must not exceed
    the physical chain length of the K-UFPU it is loaded into.
    """

    opcode: UnaryOp
    k: int = 1
    attr: str | None = None
    rel_op: RelOp | None = None
    val: int | None = None

    def __post_init__(self) -> None:
        if self.k < 0:
            raise ConfigurationError(f"k must be non-negative, got {self.k}")
        if self.opcode is UnaryOp.NO_OP and self.k > 1:
            raise ConfigurationError("a no-op chain is meaningless beyond k=1")
        # Reuse UnaryConfig's operand validation.
        self.unit_config()

    def unit_config(self) -> UnaryConfig:
        """The per-unit configuration shared by the K programmed UFPUs."""
        return UnaryConfig(
            opcode=self.opcode, attr=self.attr, rel_op=self.rel_op, val=self.val
        )

    @classmethod
    def no_op(cls) -> "KUnaryConfig":
        return cls(UnaryOp.NO_OP, k=1)

    def describe(self) -> str:
        base = self.unit_config().describe()
        return base if self.k == 1 else f"K={self.k}, {base}"


class KUFPU:
    """A physical parallel chain of UFPUs with its I/O generators."""

    def __init__(
        self, chain_length: int, config: KUnaryConfig, *, lfsr_seed: int = 1,
        naive: bool = False
    ):
        if chain_length < 1:
            raise ConfigurationError(
                f"chain length must be >= 1, got {chain_length}"
            )
        if config.k > chain_length:
            raise ConfigurationError(
                f"K={config.k} exceeds physical chain length {chain_length}"
            )
        self._chain_length = chain_length
        self._config = config
        unit_cfg = config.unit_config()
        # Only the first K units are programmed; the rest are bypasses whose
        # outputs the I/O generators exclude from the final union.
        self._units = [
            UFPU(unit_cfg, lfsr_seed=lfsr_seed + i, naive=naive)
            for i in range(config.k)
        ]

    @property
    def chain_length(self) -> int:
        return self._chain_length

    @property
    def config(self) -> KUnaryConfig:
        return self._config

    @property
    def latency_cycles(self) -> int:
        """Deterministic traversal latency: all units latch, programmed or not."""
        return self._chain_length * UFPU_LATENCY_CYCLES

    def reset_state(self) -> None:
        for unit in self._units:
            unit.reset_state()

    def evaluate(self, inp: BitVector, smbm: SMBM) -> BitVector:
        """One packet's traversal: Equation 1 chaining plus the output union.

        The I/O-generator bookkeeping runs on raw ints; BitVectors are only
        materialised at the unit boundaries.
        """
        if self._config.opcode is UnaryOp.NO_OP:
            return inp.copy()
        width = inp.width
        accumulated = 0
        current = inp
        for unit in self._units:
            out = unit.evaluate(current, smbm)
            accumulated |= out.value
            remaining = current.value & ~out.value
            if not remaining:
                break  # remaining units see an empty table and contribute nothing
            current = BitVector.from_int(width, remaining)
        return BitVector.from_int(width, accumulated)
