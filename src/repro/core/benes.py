"""Crossbars and Benes switching networks (section 5.3.2).

Each stage of the serial chain pipeline is fed by an ``nf x n`` crossbar
(n input lines, fan-out f, n Cell input ports).  Thanos implements these
crossbars as **multi-stage non-blocking Clos networks — Benes networks —
built out of 2x2 crossbar switches**, routed offline at compile time (the
routing problem is only hard for online switching, which never occurs here).

Two models live in this module:

* :class:`Crossbar` — the functional model used by the pipeline: a mapping
  from each output port to its source input line, validated against the
  fan-out bound.  This is what a configured, non-blocking network *does*.
* :class:`BenesNetwork` — the structural model: a recursive Benes network of
  2x2 switches with an implementation of the classic looping algorithm to
  route any permutation, used to (a) demonstrate the non-blocking property
  the paper relies on and (b) count switches for the area model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence, TypeVar

from repro.errors import ConfigurationError, RoutingError

__all__ = ["Crossbar", "BenesNetwork", "BenesConfig", "benes_switch_count"]

T = TypeVar("T")


class Crossbar:
    """Functional ``(n_inputs * fanout) x n_outputs`` non-blocking crossbar.

    ``wiring`` maps output port -> source input line.  An input line may
    feed at most ``fanout`` outputs; outputs absent from the map carry no
    signal (the pipeline models them as empty tables).
    """

    def __init__(self, n_inputs: int, n_outputs: int, fanout: int,
                 wiring: Mapping[int, int]):
        if n_inputs < 1 or n_outputs < 1:
            raise ConfigurationError("crossbar needs at least one input and output")
        if fanout < 1:
            raise ConfigurationError(f"fan-out must be >= 1, got {fanout}")
        uses: dict[int, int] = {}
        for out_port, in_line in wiring.items():
            if not 0 <= out_port < n_outputs:
                raise ConfigurationError(
                    f"output port {out_port} out of range [0, {n_outputs})"
                )
            if not 0 <= in_line < n_inputs:
                raise ConfigurationError(
                    f"input line {in_line} out of range [0, {n_inputs})"
                )
            uses[in_line] = uses.get(in_line, 0) + 1
        for in_line, count in uses.items():
            if count > fanout:
                raise RoutingError(
                    f"input line {in_line} fans out to {count} outputs, "
                    f"exceeding the fan-out bound f={fanout}"
                )
        self._n_inputs = n_inputs
        self._n_outputs = n_outputs
        self._fanout = fanout
        self._wiring = dict(wiring)

    @property
    def n_inputs(self) -> int:
        return self._n_inputs

    @property
    def n_outputs(self) -> int:
        return self._n_outputs

    @property
    def fanout(self) -> int:
        return self._fanout

    @property
    def wiring(self) -> dict[int, int]:
        return dict(self._wiring)

    def apply(self, inputs: Sequence[T], idle: T) -> list[T]:
        """Propagate input signals to output ports; unwired ports get ``idle``."""
        if len(inputs) != self._n_inputs:
            raise ConfigurationError(
                f"expected {self._n_inputs} input signals, got {len(inputs)}"
            )
        return [
            inputs[self._wiring[port]] if port in self._wiring else idle
            for port in range(self._n_outputs)
        ]


@dataclass
class BenesConfig:
    """Switch settings of one (recursive) Benes network.

    For ``size == 2`` the network is a single 2x2 switch held in
    ``cross_in[0]``.  For larger sizes, ``cross_in``/``cross_out`` hold the
    input/output switch columns and ``top``/``bottom`` the two half-size
    subnetworks.
    """

    size: int
    cross_in: list[bool]
    cross_out: list[bool]
    top: "BenesConfig | None" = None
    bottom: "BenesConfig | None" = None

    def switch_count(self) -> int:
        """Number of 2x2 switches configured (set or not) in this network."""
        if self.size == 2:
            return 1
        assert self.top is not None and self.bottom is not None
        return (
            len(self.cross_in)
            + len(self.cross_out)
            + self.top.switch_count()
            + self.bottom.switch_count()
        )


class BenesNetwork:
    """A Benes network over ``size`` terminals (``size`` = power of two >= 2)."""

    def __init__(self, size: int):
        if size < 2 or size & (size - 1):
            raise ConfigurationError(
                f"Benes network size must be a power of two >= 2, got {size}"
            )
        self._size = size

    @property
    def size(self) -> int:
        return self._size

    @property
    def depth(self) -> int:
        """Number of switch columns: 2*log2(size) - 1."""
        return 2 * int(math.log2(self._size)) - 1

    def switch_count(self) -> int:
        """Total 2x2 switches: (size/2) * depth."""
        return (self._size // 2) * self.depth

    # -- routing (the looping algorithm) --------------------------------------

    def route(self, permutation: Sequence[int]) -> BenesConfig:
        """Compute switch settings realising ``permutation``.

        ``permutation[i]`` is the output terminal that input terminal ``i``
        must reach.  Any permutation is routable — the non-blocking property
        of the Benes network.
        """
        perm = list(permutation)
        if sorted(perm) != list(range(self._size)):
            raise RoutingError(
                f"not a permutation of [0, {self._size}): {perm}"
            )
        return self._route(perm)

    @staticmethod
    def _route(perm: list[int]) -> BenesConfig:
        n = len(perm)
        if n == 2:
            return BenesConfig(size=2, cross_in=[perm[0] == 1], cross_out=[])

        # Looping algorithm: 2-colour the terminals so that the two inputs of
        # every input switch take different subnetworks, and the two outputs
        # of every output switch are fed from different subnetworks.  The
        # constraint graph (input-sibling and output-sibling edges) is a
        # disjoint union of even cycles, so alternating colours along each
        # cycle always succeeds.
        inv = [0] * n
        for i, p in enumerate(perm):
            inv[p] = i
        colour: list[int | None] = [None] * n  # per input terminal: 0=top, 1=bottom
        for start in range(n):
            if colour[start] is not None:
                continue
            current, c = start, 0
            while colour[current] is None:
                colour[current] = c
                # Output sibling: the input feeding the other port of the
                # output switch our current input lands on must use the
                # other subnetwork.
                out_sibling = perm[current] ^ 1
                peer = inv[out_sibling]
                if colour[peer] is None:
                    colour[peer] = 1 - c
                # Input sibling of that peer continues the cycle with the
                # same colour as `current`'s complement's complement.
                current = peer ^ 1
                c = 1 - colour[peer]

        half = n // 2
        cross_in = [colour[2 * i] == 1 for i in range(half)]
        top_perm = [0] * half
        bot_perm = [0] * half
        cross_out = [False] * half
        for i in range(n):
            sub_in = i // 2
            sub_out = perm[i] // 2
            if colour[i] == 0:
                top_perm[sub_in] = sub_out
            else:
                bot_perm[sub_in] = sub_out
            # Output switch `sub_out` is crossed when the even output is fed
            # from the bottom subnetwork.
            if perm[i] % 2 == 0:
                cross_out[sub_out] = colour[i] == 1
        return BenesConfig(
            size=n,
            cross_in=cross_in,
            cross_out=cross_out,
            top=BenesNetwork._route(top_perm),
            bottom=BenesNetwork._route(bot_perm),
        )

    # -- evaluation -------------------------------------------------------------

    def apply(self, inputs: Sequence[T], config: BenesConfig) -> list[T]:
        """Propagate signals through a configured network."""
        if len(inputs) != self._size:
            raise ConfigurationError(
                f"expected {self._size} signals, got {len(inputs)}"
            )
        if config.size != self._size:
            raise ConfigurationError(
                f"config is for size {config.size}, network is size {self._size}"
            )
        return self._apply(list(inputs), config)

    @staticmethod
    def _apply(signals: list[T], config: BenesConfig) -> list[T]:
        n = len(signals)
        if n == 2:
            if config.cross_in[0]:
                return [signals[1], signals[0]]
            return list(signals)
        half = n // 2
        top_in: list[T] = []
        bot_in: list[T] = []
        for i in range(half):
            a, b = signals[2 * i], signals[2 * i + 1]
            if config.cross_in[i]:
                a, b = b, a
            top_in.append(a)
            bot_in.append(b)
        assert config.top is not None and config.bottom is not None
        top_out = BenesNetwork._apply(top_in, config.top)
        bot_out = BenesNetwork._apply(bot_in, config.bottom)
        out: list[T] = []
        for i in range(half):
            a, b = top_out[i], bot_out[i]
            if config.cross_out[i]:
                a, b = b, a
            out.extend((a, b))
        return out

    # -- fan-out mappings ----------------------------------------------------------

    @classmethod
    def for_crossbar(cls, n_lines: int, fanout: int) -> "BenesNetwork":
        """The Benes network backing an ``(n_lines * fanout) x n_lines`` crossbar.

        Inputs are replicated ``fanout`` times, and the terminal count is
        padded to the next power of two.
        """
        terminals = max(2, n_lines * fanout)
        size = 1 << math.ceil(math.log2(terminals))
        return cls(size)

    def route_crossbar(
        self, crossbar: Crossbar
    ) -> tuple[BenesConfig, list[int | None]]:
        """Realise a crossbar wiring on this network.

        Returns the switch configuration and the terminal plan: entry ``t``
        of the plan names the input line whose signal is presented at
        network input terminal ``t`` (``None`` for idle terminals).  Input
        line ``i`` occupies terminals ``i*fanout .. i*fanout + fanout - 1``
        (its replicas); output port ``p`` is network output terminal ``p``.
        """
        needed = crossbar.n_inputs * crossbar.fanout
        if needed > self._size or crossbar.n_outputs > self._size:
            raise RoutingError(
                f"crossbar ({crossbar.n_inputs}x{crossbar.n_outputs}, "
                f"f={crossbar.fanout}) does not fit a size-{self._size} network"
            )
        plan: list[int | None] = [None] * self._size
        for line in range(crossbar.n_inputs):
            for r in range(crossbar.fanout):
                plan[line * crossbar.fanout + r] = line

        # Assign each wired output a distinct replica terminal of its source.
        replica_next = [0] * crossbar.n_inputs
        perm: list[int | None] = [None] * self._size  # input terminal -> output
        for port in sorted(crossbar.wiring):
            line = crossbar.wiring[port]
            r = replica_next[line]
            replica_next[line] += 1
            terminal = line * crossbar.fanout + r
            perm[terminal] = port
        # Complete to a full permutation with the unused terminals/outputs.
        used_outputs = set(crossbar.wiring)
        free_outputs = (o for o in range(self._size) if o not in used_outputs)
        for t in range(self._size):
            if perm[t] is None:
                perm[t] = next(free_outputs)
        config = self.route([p for p in perm if p is not None])
        return config, plan
