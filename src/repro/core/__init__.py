"""Core contribution of the paper: the chained multi-dimensional filter module.

This package models every hardware block of Thanos's filter module
(SIGCOMM 2022, section 5):

* :class:`~repro.core.smbm.SMBM` — the Sorted Multidimensional Bidirectional
  Map resource table (section 5.1);
* :class:`~repro.core.ufpu.UFPU` and :class:`~repro.core.bfpu.BFPU` — the two
  programmable filter processing units (section 5.2);
* :class:`~repro.core.kufpu.KUFPU` — the programmable parallel chain pipeline
  (section 5.3.1);
* :class:`~repro.core.cell.Cell` and
  :class:`~repro.core.pipeline.FilterPipeline` — the programmable serial chain
  pipeline built from Cells and Benes crossbars (section 5.3.2);
* :mod:`~repro.core.policy` and :mod:`~repro.core.compiler` — the policy
  abstraction (section 4) and its mapping onto the hardware pipeline;
* :mod:`~repro.core.area` — the analytical area and clock model used to
  reproduce Tables 1-4.
"""

from repro.core.bitvector import BitVector
from repro.core.table import ResourceTable
from repro.core.smbm import SMBM
from repro.core.operators import UnaryOp, BinaryOp, RelOp
from repro.core.ufpu import UFPU, UnaryConfig
from repro.core.bfpu import BFPU, BinaryConfig
from repro.core.kufpu import KUFPU, KUnaryConfig
from repro.core.cell import Cell
from repro.core.pipeline import ClockedFilterPipeline, FilterPipeline, PipelineParams
from repro.core.policy import (
    Policy,
    TableRef,
    Unary,
    Binary,
    ParallelChain,
    Conditional,
    predicate,
    min_of,
    max_of,
    random_pick,
    round_robin,
    union,
    intersection,
    difference,
)
from repro.core.compiler import PolicyCompiler, CompiledPolicy

__all__ = [
    "BitVector",
    "ResourceTable",
    "SMBM",
    "UnaryOp",
    "BinaryOp",
    "RelOp",
    "UFPU",
    "UnaryConfig",
    "BFPU",
    "BinaryConfig",
    "KUFPU",
    "KUnaryConfig",
    "Cell",
    "FilterPipeline",
    "ClockedFilterPipeline",
    "PipelineParams",
    "Policy",
    "TableRef",
    "Unary",
    "Binary",
    "ParallelChain",
    "Conditional",
    "predicate",
    "min_of",
    "max_of",
    "random_pick",
    "round_robin",
    "union",
    "intersection",
    "difference",
    "PolicyCompiler",
    "CompiledPolicy",
]
