"""Priority encoders.

A priority encoder takes an N-bit vector and returns the index of the first
(or last) set bit.  Thanos's UFPU uses priority encoders in three places
(section 5.2.1):

* ``min``/``max`` — find the first/last valid entry of the masked, sorted
  metric list;
* ``round-robin`` — find the next valid index in cyclic order after
  ``last_id``;
* ``random`` — find the first valid index at or after a random draw ``r``,
  wrapping around.

The functions here operate on :class:`~repro.core.bitvector.BitVector` and
also report the combinational depth of the encoder (a tree of 2:1 selectors),
which feeds the timing model in :mod:`repro.core.area`.
"""

from __future__ import annotations

import math

from repro.core.bitvector import BitVector

__all__ = [
    "encode_first",
    "encode_last",
    "encode_cyclic",
    "encoder_depth",
]


def encode_first(vector: BitVector) -> int | None:
    """Index of the lowest set bit, or ``None`` if the vector is empty."""
    return vector.first_set()


def encode_last(vector: BitVector) -> int | None:
    """Index of the highest set bit, or ``None`` if the vector is empty."""
    return vector.last_set()


def encode_cyclic(vector: BitVector, start: int) -> int | None:
    """First set bit at or after ``start``, wrapping to the vector start.

    Hardware realisation: rotate the vector right by ``start`` positions
    (pure wiring) and feed it to a first-one priority encoder.
    """
    return vector.first_set_from(start)


def encoder_depth(width: int) -> int:
    """Combinational logic depth, in gate levels, of an N-wide encoder.

    A first-one priority encoder over N bits is a balanced binary reduction
    tree, hence ``ceil(log2(N))`` levels.  This is the term that makes the
    UFPU clock rate fall with N in Table 2.
    """
    if width <= 1:
        return 1
    return max(1, math.ceil(math.log2(width)))
