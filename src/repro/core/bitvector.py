"""Fixed-width bit vectors.

Thanos encodes the relational tables flowing between filter processing units
as bit vectors indexed by resource id (section 5.2.1): bit ``i`` set means the
resource with id ``i`` is present in the (sub-)table.  Encoding tables this
way reduces the binary set operators of the BFPU to single-cycle bitwise
logic.

The class here is a small, immutable-width, mutable-content bit vector with
the operations the hardware uses: bitwise AND/OR/NOT, population count and
first/last set-bit queries (the priority-encoder primitives).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import ConfigurationError

__all__ = ["BitVector"]


class BitVector:
    """A fixed-width vector of bits backed by a Python integer.

    The width is fixed at construction; all bitwise operations require both
    operands to have the same width, mirroring fixed-width hardware buses.
    """

    __slots__ = ("_width", "_bits")

    def __init__(self, width: int, bits: int = 0):
        if width <= 0:
            raise ConfigurationError(f"bit vector width must be positive, got {width}")
        mask = (1 << width) - 1
        if bits & ~mask:
            raise ConfigurationError(
                f"initial value 0x{bits:x} does not fit in {width} bits"
            )
        self._width = width
        self._bits = bits

    # -- constructors ------------------------------------------------------

    @classmethod
    def zeros(cls, width: int) -> "BitVector":
        """All-clear vector of the given width."""
        return cls(width, 0)

    @classmethod
    def ones(cls, width: int) -> "BitVector":
        """All-set vector of the given width."""
        return cls(width, (1 << width) - 1)

    @classmethod
    def from_indices(cls, width: int, indices: Iterable[int]) -> "BitVector":
        """Vector with exactly the given bit positions set."""
        bits = 0
        for i in indices:
            if not 0 <= i < width:
                raise ConfigurationError(f"index {i} out of range for width {width}")
            bits |= 1 << i
        return cls(width, bits)

    @classmethod
    def single(cls, width: int, index: int) -> "BitVector":
        """Vector with only ``index`` set (a one-hot output)."""
        return cls.from_indices(width, (index,))

    @classmethod
    def from_int(cls, width: int, bits: int) -> "BitVector":
        """Unchecked internal constructor for the fast path.

        The caller guarantees ``0 <= bits < 2**width`` (e.g. the value came
        out of same-width bitwise logic); no validation is performed.
        """
        self = object.__new__(cls)
        self._width = width
        self._bits = bits
        return self

    # -- basic accessors ---------------------------------------------------

    @property
    def width(self) -> int:
        """Number of bit positions in the vector."""
        return self._width

    @property
    def value(self) -> int:
        """The raw integer value (bit ``i`` of the int is position ``i``)."""
        return self._bits

    def __len__(self) -> int:
        return self._width

    def __getitem__(self, index: int) -> bool:
        if not 0 <= index < self._width:
            raise IndexError(f"bit index {index} out of range [0, {self._width})")
        return bool((self._bits >> index) & 1)

    def __setitem__(self, index: int, value: bool) -> None:
        if not 0 <= index < self._width:
            raise IndexError(f"bit index {index} out of range [0, {self._width})")
        if value:
            self._bits |= 1 << index
        else:
            self._bits &= ~(1 << index)

    def __iter__(self) -> Iterator[bool]:
        bits = self._bits
        for _ in range(self._width):
            yield bool(bits & 1)
            bits >>= 1

    def indices(self) -> Iterator[int]:
        """Yield the positions of set bits in increasing order."""
        bits = self._bits
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    def popcount(self) -> int:
        """Number of set bits."""
        return self._bits.bit_count()

    def is_empty(self) -> bool:
        """True when no bit is set (an empty table)."""
        return self._bits == 0

    # -- priority-encoder primitives ----------------------------------------

    def first_set(self) -> int | None:
        """Index of the lowest set bit, or ``None`` when empty.

        This is the combinational "priority encoder" the UFPU uses to find
        the first valid entry of a masked sorted list (section 5.2.1).
        """
        if self._bits == 0:
            return None
        return (self._bits & -self._bits).bit_length() - 1

    def last_set(self) -> int | None:
        """Index of the highest set bit, or ``None`` when empty."""
        if self._bits == 0:
            return None
        return self._bits.bit_length() - 1

    def first_set_from(self, start: int) -> int | None:
        """Index of the first set bit at or after ``start``, wrapping around.

        Implements the cyclic priority encoder used by the round-robin and
        random operators: the hardware feeds the rotated vector
        ``{v[start : N-1], v[0 : start-1]}`` to a priority encoder.
        """
        if not 0 <= start < self._width:
            raise IndexError(f"start {start} out of range [0, {self._width})")
        if self._bits == 0:
            return None
        high = self._bits >> start
        if high:
            return start + ((high & -high).bit_length() - 1)
        low = self._bits & ((1 << start) - 1)
        return (low & -low).bit_length() - 1

    # -- bitwise operators (the BFPU set operations) -------------------------

    def _check_width(self, other: "BitVector") -> None:
        if self._width != other._width:
            raise ConfigurationError(
                f"width mismatch: {self._width} vs {other._width}"
            )

    def __and__(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        return BitVector.from_int(self._width, self._bits & other._bits)

    def __or__(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        return BitVector.from_int(self._width, self._bits | other._bits)

    def __xor__(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        return BitVector.from_int(self._width, self._bits ^ other._bits)

    def __invert__(self) -> "BitVector":
        return BitVector.from_int(self._width, ~self._bits & ((1 << self._width) - 1))

    def __sub__(self, other: "BitVector") -> "BitVector":
        """Set difference: bits in self and not in other (BFPU difference)."""
        self._check_width(other)
        return BitVector.from_int(self._width, self._bits & ~other._bits)

    # -- equality / hashing / repr ------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self._width == other._width and self._bits == other._bits

    def __hash__(self) -> int:
        return hash((self._width, self._bits))

    def copy(self) -> "BitVector":
        """An independent vector with the same width and contents."""
        return BitVector.from_int(self._width, self._bits)

    def __repr__(self) -> str:
        body = format(self._bits, f"0{self._width}b")
        return f"BitVector({self._width}, 0b{body})"
