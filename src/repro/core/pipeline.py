"""The programmable serial chain pipeline (section 5.3.2).

The pipeline has ``k`` stages.  Each stage is an ``nf x n`` crossbar (modelled
functionally by :class:`~repro.core.benes.Crossbar`, realisable as a Benes
network — see :mod:`repro.core.benes`) feeding ``n/2`` Cells.  Stage 1's
crossbar selects from the ``n`` original pipeline inputs; stage ``i``'s
crossbar selects from the ``n`` output lines of stage ``i-1``, each of which
may fan out to at most ``f`` crossbar ports.  The outputs of stage ``k`` are
the pipeline outputs.

All crossbar wirings and unit opcodes are fixed at compile time (by
:class:`~repro.core.compiler.PolicyCompiler`); at runtime the pipeline maps
packets' input tables to output tables at one packet per clock, with a
deterministic latency of ``k * (chain_length * 2 + 1)`` cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro import obs
from repro.core.benes import Crossbar
from repro.core.bitvector import BitVector
from repro.core.cell import Cell, CellConfig, cell_latency_cycles
from repro.core.clocked import PipelineLatch
from repro.core.operators import BinaryOp, UnaryOp
from repro.core.smbm import SMBM
from repro.errors import ConfigurationError

__all__ = [
    "PipelineParams",
    "StageConfig",
    "PipelineConfig",
    "FilterPipeline",
    "ClockedFilterPipeline",
]


@dataclass(frozen=True)
class PipelineParams:
    """Physical dimensions of a filter pipeline (section 6 design parameters).

    ``n``: input/output lines per stage (default 4);
    ``k``: number of stages (default 4);
    ``f``: output fan-out (default 2);
    ``chain_length``: physical length of every K-UFPU (default 4).
    Defaults are the paper's defaults.
    """

    n: int = 4
    k: int = 4
    f: int = 2
    chain_length: int = 4

    def __post_init__(self) -> None:
        if self.n < 2 or self.n % 2:
            raise ConfigurationError(f"n must be even and >= 2, got {self.n}")
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")
        if self.f < 1:
            raise ConfigurationError(f"f must be >= 1, got {self.f}")
        if self.chain_length < 1:
            raise ConfigurationError(
                f"chain_length must be >= 1, got {self.chain_length}"
            )

    @property
    def cells_per_stage(self) -> int:
        return self.n // 2

    @property
    def latency_cycles(self) -> int:
        """Deterministic end-to-end latency in clock cycles."""
        return self.k * cell_latency_cycles(self.chain_length)


@dataclass
class StageConfig:
    """One stage: the crossbar wiring plus a CellConfig per Cell.

    ``wiring`` maps each Cell input port (0..n-1; Cell ``c`` owns ports
    ``2c`` and ``2c+1``) to the source line (0..n-1) of the previous stage
    (or of the pipeline inputs, for stage 1).  Ports left unwired receive an
    empty table.
    """

    wiring: dict[int, int] = field(default_factory=dict)
    cells: list[CellConfig] = field(default_factory=list)


@dataclass
class PipelineConfig:
    """Full compile-time configuration: one StageConfig per stage."""

    stages: list[StageConfig]

    def is_stateless(self) -> bool:
        """True when no programmed unit keeps state across packets.

        A stateless configuration's output is a pure function of the SMBM
        contents (and the input tables), which is what makes table-version
        memoization sound.
        """
        return not any(
            cell.kufpu1.opcode.is_stateful or cell.kufpu2.opcode.is_stateful
            for stage in self.stages
            for cell in stage.cells
        )

    def describe(self) -> str:
        lines = []
        for s, stage in enumerate(self.stages, start=1):
            lines.append(f"stage {s}: wiring={stage.wiring}")
            for c, cell in enumerate(stage.cells):
                lines.append(f"  cell {c}: {cell.describe()}")
        return "\n".join(lines)


@dataclass(frozen=True)
class _CellPlan:
    """Pruned-evaluation verdict for one physical Cell.

    ``live`` — at least one of the Cell's output lines can reach a live
    pipeline output; dead Cells are skipped entirely (their lines carry an
    empty table placeholder nobody reads).
    ``bypass`` — the Cell is a pure straight-through wire (both K-UFPUs
    no-op, both BFPUs the identity muxes, no input swap), so its outputs are
    copies of its input ports and the unit machinery can be skipped.
    """

    live: bool
    bypass: bool


def _cell_needed_inputs(
    cfg: CellConfig, o1_live: bool, o2_live: bool
) -> tuple[bool, bool]:
    """Which of a live Cell's input ports can influence its live outputs.

    Traces liveness backward through the BFPUs (a passthrough mux reads one
    side only) and the input 2x2 crossbar.  Ports that cannot influence a
    live output need not keep their upstream source line alive.
    """
    need_u1 = need_u2 = False
    for out_live, bcfg in ((o1_live, cfg.bfpu1), (o2_live, cfg.bfpu2)):
        if not out_live:
            continue
        if bcfg.opcode is BinaryOp.NO_OP:
            if bcfg.choice == 0:
                need_u1 = True
            else:
                need_u2 = True
        else:
            need_u1 = need_u2 = True
    if cfg.input_swap:
        return need_u2, need_u1
    return need_u1, need_u2


class FilterPipeline:
    """A configured, runnable serial chain pipeline.

    ``live_outputs`` (optional) names the pipeline output lines the caller
    actually consumes; the constructor then derives a pruned evaluation
    plan — a backward liveness pass over the stage wirings — that skips
    NO_OP bypass Cells, unwired ports, and Cells whose outputs cannot reach
    a live line.  With the default ``None`` every output is treated as
    live (safe for direct use), which still enables the bypass shortcut and
    interior-dead-line pruning.
    """

    def __init__(self, params: PipelineParams, config: PipelineConfig,
                 *, lfsr_seed: int = 1, naive: bool = False,
                 live_outputs: Iterable[int] | None = None):
        if len(config.stages) != params.k:
            raise ConfigurationError(
                f"config has {len(config.stages)} stages, pipeline has k={params.k}"
            )
        self._params = params
        self._crossbars: list[Crossbar] = []
        self._cells: list[list[Cell]] = []
        seed = lfsr_seed
        for s, stage in enumerate(config.stages):
            if len(stage.cells) != params.cells_per_stage:
                raise ConfigurationError(
                    f"stage {s + 1} has {len(stage.cells)} cell configs, "
                    f"need {params.cells_per_stage}"
                )
            # Crossbar validation enforces the fan-out bound f per source line.
            self._crossbars.append(
                Crossbar(params.n, params.n, params.f, stage.wiring)
            )
            row: list[Cell] = []
            for c, cell_cfg in enumerate(stage.cells):
                row.append(
                    Cell(params.chain_length, cell_cfg, lfsr_seed=seed,
                         naive=naive, position=(s + 1, c))
                )
                seed += 2 * params.chain_length + 1
            self._cells.append(row)
        self._config = config
        self._plan = self._build_plan(config, live_outputs)
        # Observability.  The evaluation plan is fixed at construction, so
        # per-cell activation/skip totals are exactly (packets evaluated) x
        # (static plan verdicts): the hot loop only bumps one int, and a
        # weakly-held collect hook derives the per-cell series on demand.
        self._packets_evaluated = 0
        if obs.get_registry().enabled:
            obs.get_registry().add_hook(self._obs_collect)

    def _obs_collect(self):
        """Collect hook: per-cell activation/bypass/skip counters."""
        n_packets = self._packets_evaluated
        yield obs.Sample("pipeline_packets_total", n_packets,
                         help="packets evaluated by filter pipelines")
        for s, row in enumerate(self._plan, start=1):
            for c, plan in enumerate(row):
                labels = (("cell", str(c)), ("stage", str(s)))
                if not plan.live:
                    name = "pipeline_cell_skips_total"
                elif plan.bypass:
                    name = "pipeline_cell_bypasses_total"
                else:
                    name = "pipeline_cell_activations_total"
                yield obs.Sample(
                    name, n_packets, labels=labels,
                    help="per-cell packet traversals by plan verdict "
                         "(activated / bypassed wire / pruned skip)",
                )

    def _build_plan(
        self, config: PipelineConfig, live_outputs: Iterable[int] | None
    ) -> list[list[_CellPlan]]:
        """Backward liveness pass: which Cells matter, which are pure wires."""
        n = self._params.n
        if live_outputs is None:
            live = set(range(n))
        else:
            live = {line for line in live_outputs}
            for line in live:
                if not 0 <= line < n:
                    raise ConfigurationError(
                        f"live output line {line} out of range [0, {n})"
                    )
        plans: list[list[_CellPlan]] = []
        for stage in reversed(config.stages):
            row_plans: list[_CellPlan] = []
            needed_sources: set[int] = set()
            for c, cell_cfg in enumerate(stage.cells):
                o1_live = (2 * c) in live
                o2_live = (2 * c + 1) in live
                if not (o1_live or o2_live):
                    row_plans.append(_CellPlan(live=False, bypass=False))
                    continue
                bypass = (
                    not cell_cfg.input_swap
                    and cell_cfg.kufpu1.opcode is UnaryOp.NO_OP
                    and cell_cfg.kufpu2.opcode is UnaryOp.NO_OP
                    and cell_cfg.bfpu1.opcode is BinaryOp.NO_OP
                    and cell_cfg.bfpu1.choice == 0
                    and cell_cfg.bfpu2.opcode is BinaryOp.NO_OP
                    and cell_cfg.bfpu2.choice == 1
                )
                row_plans.append(_CellPlan(live=True, bypass=bypass))
                need_i1, need_i2 = _cell_needed_inputs(cell_cfg, o1_live, o2_live)
                if need_i1 and (2 * c) in stage.wiring:
                    needed_sources.add(stage.wiring[2 * c])
                if need_i2 and (2 * c + 1) in stage.wiring:
                    needed_sources.add(stage.wiring[2 * c + 1])
            plans.append(row_plans)
            live = needed_sources
        plans.reverse()
        return plans

    @property
    def params(self) -> PipelineParams:
        return self._params

    @property
    def config(self) -> PipelineConfig:
        return self._config

    @property
    def latency_cycles(self) -> int:
        return self._params.latency_cycles

    def cell_at(self, stage: int, index: int) -> Cell:
        """The physical Cell at 1-based ``stage``, 0-based ``index``."""
        if not 1 <= stage <= self._params.k:
            raise ConfigurationError(
                f"stage {stage} out of range [1, {self._params.k}]"
            )
        if not 0 <= index < self._params.cells_per_stage:
            raise ConfigurationError(
                f"cell index {index} out of range "
                f"[0, {self._params.cells_per_stage})"
            )
        return self._cells[stage - 1][index]

    def active_cells(self) -> list[tuple[int, int]]:
        """(stage, index) of Cells the evaluation plan actually runs.

        Live non-bypass Cells are the ones whose units touch packets — the
        set a fault injector targets to guarantee an observable effect.
        """
        return [
            (s, c)
            for s, row in enumerate(self._plan, start=1)
            for c, plan in enumerate(row)
            if plan.live and not plan.bypass
        ]

    def reset_state(self) -> None:
        """Clear all stateful operator registers (round-robin positions)."""
        for row in self._cells:
            for cell in row:
                cell.reset_state()

    def evaluate(
        self, smbm: SMBM, inputs: list[BitVector] | None = None
    ) -> list[BitVector]:
        """One packet's traversal: n input tables in, n output tables out.

        When ``inputs`` is omitted every input line carries the full
        resource table (the common case: the pipeline input *is* the SMBM,
        Figure 14).
        """
        n = self._params.n
        width = smbm.capacity
        if inputs is None:
            full = smbm.id_vector()
            lines = [full.copy() for _ in range(n)]
        else:
            if len(inputs) != n:
                raise ConfigurationError(
                    f"expected {n} input tables, got {len(inputs)}"
                )
            for vec in inputs:
                if vec.width != width:
                    raise ConfigurationError(
                        f"input width {vec.width} != SMBM capacity {width}"
                    )
            lines = [vec.copy() for vec in inputs]

        self._packets_evaluated += 1
        empty = BitVector.zeros(width)
        for crossbar, row, plan_row in zip(self._crossbars, self._cells,
                                           self._plan):
            ports = crossbar.apply(lines, idle=empty)
            next_lines: list[BitVector] = []
            for c, cell in enumerate(row):
                plan = plan_row[c]
                if not plan.live:
                    # Dead Cell: no live output is reachable from its lines,
                    # so skip the units and park empty placeholders.
                    next_lines.extend((empty, empty))
                elif plan.bypass:
                    # Pure wire: outputs are copies of the input ports.
                    next_lines.extend(
                        (ports[2 * c].copy(), ports[2 * c + 1].copy())
                    )
                else:
                    o1, o2 = cell.evaluate(ports[2 * c], ports[2 * c + 1], smbm)
                    next_lines.extend((o1, o2))
            lines = next_lines
        return lines

    def evaluate_probed(
        self, smbm: SMBM, inputs: list[BitVector] | None = None
    ) -> dict[tuple[int, int], tuple[BitVector, BitVector, BitVector, BitVector]]:
        """Diagnostic traversal capturing every active Cell's port I/O.

        Returns ``{(stage, index): (in1, in2, out1, out2)}`` for the live
        non-bypass Cells — the observation a built-in self-test needs to
        compare each physical Cell against a golden model *on the inputs it
        actually saw* (so a corrupted upstream Cell does not implicate the
        healthy Cells downstream of it).  Diagnostic passes are not counted
        in the packet totals.
        """
        n = self._params.n
        width = smbm.capacity
        if inputs is None:
            full = smbm.id_vector()
            lines = [full.copy() for _ in range(n)]
        else:
            if len(inputs) != n:
                raise ConfigurationError(
                    f"expected {n} input tables, got {len(inputs)}"
                )
            lines = [vec.copy() for vec in inputs]
        probes: dict[tuple[int, int],
                     tuple[BitVector, BitVector, BitVector, BitVector]] = {}
        empty = BitVector.zeros(width)
        for s, (crossbar, row, plan_row) in enumerate(
            zip(self._crossbars, self._cells, self._plan), start=1
        ):
            ports = crossbar.apply(lines, idle=empty)
            next_lines: list[BitVector] = []
            for c, cell in enumerate(row):
                plan = plan_row[c]
                if not plan.live:
                    next_lines.extend((empty, empty))
                elif plan.bypass:
                    next_lines.extend(
                        (ports[2 * c].copy(), ports[2 * c + 1].copy())
                    )
                else:
                    i1, i2 = ports[2 * c], ports[2 * c + 1]
                    o1, o2 = cell.evaluate(i1, i2, smbm)
                    probes[(s, c)] = (i1.copy(), i2.copy(), o1, o2)
                    next_lines.extend((o1, o2))
            lines = next_lines
        return probes


class ClockedFilterPipeline:
    """Cycle-accurate wrapper: one packet enters per cycle, its outputs
    emerge exactly ``params.latency_cycles`` ticks later.

    The design-goal test bench of section 5: fully pipelined (a new packet
    is accepted every clock), with a small *deterministic* latency.  Results
    are computed against the SMBM state visible at issue time, matching
    hardware where the first stage latches its operands on entry.
    """

    def __init__(self, params: PipelineParams, config: PipelineConfig,
                 *, lfsr_seed: int = 1, naive: bool = False,
                 live_outputs: Iterable[int] | None = None):
        self._inner = FilterPipeline(
            params, config, lfsr_seed=lfsr_seed, naive=naive,
            live_outputs=live_outputs,
        )
        self._latch: PipelineLatch[list[BitVector]] = PipelineLatch(
            params.latency_cycles
        )
        self._cycle = 0

    @property
    def params(self) -> PipelineParams:
        return self._inner.params

    @property
    def cycle(self) -> int:
        return self._cycle

    @property
    def latency_cycles(self) -> int:
        return self._inner.latency_cycles

    def issue(self, smbm: SMBM, inputs: list[BitVector] | None = None) -> None:
        """Present one packet's tables at the pipeline input this cycle."""
        self._latch.issue(self._inner.evaluate(smbm, inputs))

    def tick(self) -> list[BitVector] | None:
        """Clock edge; returns the output tables retiring this cycle."""
        out = self._latch.tick()
        self._cycle += 1
        return out

    def occupancy(self) -> int:
        """Packets currently in flight inside the pipeline."""
        return self._latch.occupancy()
