"""The programmable serial chain pipeline (section 5.3.2).

The pipeline has ``k`` stages.  Each stage is an ``nf x n`` crossbar (modelled
functionally by :class:`~repro.core.benes.Crossbar`, realisable as a Benes
network — see :mod:`repro.core.benes`) feeding ``n/2`` Cells.  Stage 1's
crossbar selects from the ``n`` original pipeline inputs; stage ``i``'s
crossbar selects from the ``n`` output lines of stage ``i-1``, each of which
may fan out to at most ``f`` crossbar ports.  The outputs of stage ``k`` are
the pipeline outputs.

All crossbar wirings and unit opcodes are fixed at compile time (by
:class:`~repro.core.compiler.PolicyCompiler`); at runtime the pipeline maps
packets' input tables to output tables at one packet per clock, with a
deterministic latency of ``k * (chain_length * 2 + 1)`` cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.benes import Crossbar
from repro.core.bitvector import BitVector
from repro.core.cell import Cell, CellConfig, cell_latency_cycles
from repro.core.clocked import PipelineLatch
from repro.core.smbm import SMBM
from repro.errors import ConfigurationError

__all__ = [
    "PipelineParams",
    "StageConfig",
    "PipelineConfig",
    "FilterPipeline",
    "ClockedFilterPipeline",
]


@dataclass(frozen=True)
class PipelineParams:
    """Physical dimensions of a filter pipeline (section 6 design parameters).

    ``n``: input/output lines per stage (default 4);
    ``k``: number of stages (default 4);
    ``f``: output fan-out (default 2);
    ``chain_length``: physical length of every K-UFPU (default 4).
    Defaults are the paper's defaults.
    """

    n: int = 4
    k: int = 4
    f: int = 2
    chain_length: int = 4

    def __post_init__(self) -> None:
        if self.n < 2 or self.n % 2:
            raise ConfigurationError(f"n must be even and >= 2, got {self.n}")
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")
        if self.f < 1:
            raise ConfigurationError(f"f must be >= 1, got {self.f}")
        if self.chain_length < 1:
            raise ConfigurationError(
                f"chain_length must be >= 1, got {self.chain_length}"
            )

    @property
    def cells_per_stage(self) -> int:
        return self.n // 2

    @property
    def latency_cycles(self) -> int:
        """Deterministic end-to-end latency in clock cycles."""
        return self.k * cell_latency_cycles(self.chain_length)


@dataclass
class StageConfig:
    """One stage: the crossbar wiring plus a CellConfig per Cell.

    ``wiring`` maps each Cell input port (0..n-1; Cell ``c`` owns ports
    ``2c`` and ``2c+1``) to the source line (0..n-1) of the previous stage
    (or of the pipeline inputs, for stage 1).  Ports left unwired receive an
    empty table.
    """

    wiring: dict[int, int] = field(default_factory=dict)
    cells: list[CellConfig] = field(default_factory=list)


@dataclass
class PipelineConfig:
    """Full compile-time configuration: one StageConfig per stage."""

    stages: list[StageConfig]

    def describe(self) -> str:
        lines = []
        for s, stage in enumerate(self.stages, start=1):
            lines.append(f"stage {s}: wiring={stage.wiring}")
            for c, cell in enumerate(stage.cells):
                lines.append(f"  cell {c}: {cell.describe()}")
        return "\n".join(lines)


class FilterPipeline:
    """A configured, runnable serial chain pipeline."""

    def __init__(self, params: PipelineParams, config: PipelineConfig,
                 *, lfsr_seed: int = 1):
        if len(config.stages) != params.k:
            raise ConfigurationError(
                f"config has {len(config.stages)} stages, pipeline has k={params.k}"
            )
        self._params = params
        self._crossbars: list[Crossbar] = []
        self._cells: list[list[Cell]] = []
        seed = lfsr_seed
        for s, stage in enumerate(config.stages):
            if len(stage.cells) != params.cells_per_stage:
                raise ConfigurationError(
                    f"stage {s + 1} has {len(stage.cells)} cell configs, "
                    f"need {params.cells_per_stage}"
                )
            # Crossbar validation enforces the fan-out bound f per source line.
            self._crossbars.append(
                Crossbar(params.n, params.n, params.f, stage.wiring)
            )
            row: list[Cell] = []
            for cell_cfg in stage.cells:
                row.append(Cell(params.chain_length, cell_cfg, lfsr_seed=seed))
                seed += 2 * params.chain_length + 1
            self._cells.append(row)
        self._config = config

    @property
    def params(self) -> PipelineParams:
        return self._params

    @property
    def config(self) -> PipelineConfig:
        return self._config

    @property
    def latency_cycles(self) -> int:
        return self._params.latency_cycles

    def reset_state(self) -> None:
        """Clear all stateful operator registers (round-robin positions)."""
        for row in self._cells:
            for cell in row:
                cell.reset_state()

    def evaluate(
        self, smbm: SMBM, inputs: list[BitVector] | None = None
    ) -> list[BitVector]:
        """One packet's traversal: n input tables in, n output tables out.

        When ``inputs`` is omitted every input line carries the full
        resource table (the common case: the pipeline input *is* the SMBM,
        Figure 14).
        """
        n = self._params.n
        width = smbm.capacity
        if inputs is None:
            full = smbm.id_vector()
            lines = [full.copy() for _ in range(n)]
        else:
            if len(inputs) != n:
                raise ConfigurationError(
                    f"expected {n} input tables, got {len(inputs)}"
                )
            for vec in inputs:
                if vec.width != width:
                    raise ConfigurationError(
                        f"input width {vec.width} != SMBM capacity {width}"
                    )
            lines = [vec.copy() for vec in inputs]

        empty = BitVector.zeros(width)
        for crossbar, row in zip(self._crossbars, self._cells):
            ports = crossbar.apply(lines, idle=empty)
            next_lines: list[BitVector] = []
            for c, cell in enumerate(row):
                o1, o2 = cell.evaluate(ports[2 * c], ports[2 * c + 1], smbm)
                next_lines.extend((o1, o2))
            lines = next_lines
        return lines


class ClockedFilterPipeline:
    """Cycle-accurate wrapper: one packet enters per cycle, its outputs
    emerge exactly ``params.latency_cycles`` ticks later.

    The design-goal test bench of section 5: fully pipelined (a new packet
    is accepted every clock), with a small *deterministic* latency.  Results
    are computed against the SMBM state visible at issue time, matching
    hardware where the first stage latches its operands on entry.
    """

    def __init__(self, params: PipelineParams, config: PipelineConfig,
                 *, lfsr_seed: int = 1):
        self._inner = FilterPipeline(params, config, lfsr_seed=lfsr_seed)
        self._latch: PipelineLatch[list[BitVector]] = PipelineLatch(
            params.latency_cycles
        )
        self._cycle = 0

    @property
    def params(self) -> PipelineParams:
        return self._inner.params

    @property
    def cycle(self) -> int:
        return self._cycle

    @property
    def latency_cycles(self) -> int:
        return self._inner.latency_cycles

    def issue(self, smbm: SMBM, inputs: list[BitVector] | None = None) -> None:
        """Present one packet's tables at the pipeline input this cycle."""
        self._latch.issue(self._inner.evaluate(smbm, inputs))

    def tick(self) -> list[BitVector] | None:
        """Clock edge; returns the output tables retiring this cycle."""
        out = self._latch.tick()
        self._cycle += 1
        return out

    def occupancy(self) -> int:
        """Packets currently in flight inside the pipeline."""
        return self._latch.occupancy()
