"""Reference (naive) UFPU data path: the paper's literal temp-list walk.

These are the original O(N) list-based implementations of the predicate,
min and max operators, kept as the differential-testing oracle for the
O(log N) mask engine in :mod:`repro.core.ufpu` /
:meth:`repro.core.smbm.SMBM.metric_index`.  ``UFPU(config, naive=True)``
routes its selector opcodes through these functions, and the property tests
in ``tests/core`` assert bit-for-bit agreement between the two paths over
randomized tables and policies.

They mirror the paper's clock-by-clock description directly: cycle 1 copies
the attribute's sorted list into a temp list and masks entries whose
resource is absent from the input vector (NULL); cycle 2 applies the
predicate per entry, or feeds the validity bits to a first-one / last-one
priority encoder (sorted list, so first valid = min, last valid = max).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.bitvector import BitVector
from repro.core.priority_encoder import encode_first, encode_last
from repro.core.smbm import SMBM

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.compiler import CompiledPolicy
    from repro.core.pipeline import PipelineParams
    from repro.core.policy import Policy
    from repro.core.ufpu import UnaryConfig

__all__ = [
    "GoldenOracle",
    "masked_temp_list",
    "naive_predicate",
    "naive_extreme",
]


class GoldenOracle:
    """A compiled O(N) reference pipeline for one policy.

    The shared golden model behind both the built-in self-test
    (:meth:`repro.switch.filter_module.FilterModule.self_test`) and the
    runtime sanitizer: each used to compile its own naive pipeline and walk
    the reference path independently; both now ask this oracle.  Compiled
    lazily on first use (``verify=False`` — the fast path being checked
    already went through the verifier, and the oracle must stay usable even
    while diagnosing a table the sanitizer has flagged).

    Only meaningful for stateless policies: a stateful unit's outputs
    advance per evaluation, so oracle and fast path legitimately diverge.
    """

    def __init__(
        self,
        policy: "Policy",
        params: "PipelineParams | None" = None,
        *,
        lfsr_seed: int = 1,
    ):
        self._policy = policy
        self._params = params
        self._lfsr_seed = lfsr_seed
        self._compiled: "CompiledPolicy | None" = None

    @property
    def compiled(self) -> "CompiledPolicy":
        """The naive-path compilation (built on first access)."""
        if self._compiled is None:
            from repro.core.compiler import PolicyCompiler

            self._compiled = PolicyCompiler(self._params).compile(
                self._policy, lfsr_seed=self._lfsr_seed, naive=True,
                verify=False,
            )
        return self._compiled

    def expected(self, smbm: SMBM) -> BitVector:
        """The reference answer for the current table contents."""
        return self.compiled.evaluate(smbm)


def masked_temp_list(
    config: "UnaryConfig", inp: BitVector, smbm: SMBM
) -> list[tuple[int, int] | None]:
    """Cycle 1: copy the attribute list, masking invalid entries to NULL.

    Entry ``i`` is ``(value, id)`` when the reverse-mapped resource id is
    present in the input vector, else ``None`` (the paper's NULL).
    """
    assert config.attr is not None
    temp: list[tuple[int, int] | None] = []
    for value, rid in smbm.attr_list(config.attr):
        temp.append((value, rid) if inp[rid] else None)
    return temp


def naive_predicate(config: "UnaryConfig", inp: BitVector, smbm: SMBM) -> BitVector:
    """Cycle 2: apply the predicate to every valid temp-list entry."""
    assert config.rel_op is not None and config.val is not None
    out = BitVector.zeros(inp.width)
    for entry in masked_temp_list(config, inp, smbm):
        if entry is None:
            continue
        value, rid = entry
        if config.rel_op.apply(value, config.val):
            out[rid] = True
    return out


def naive_extreme(
    config: "UnaryConfig", inp: BitVector, smbm: SMBM, *, want_min: bool
) -> BitVector:
    """Cycle 2: validity bits -> first/last-one priority encoder."""
    temp = masked_temp_list(config, inp, smbm)
    out = BitVector.zeros(inp.width)
    if not temp:
        return out
    valid = BitVector.from_indices(
        len(temp), (i for i, entry in enumerate(temp) if entry is not None)
    )
    idx = encode_first(valid) if want_min else encode_last(valid)
    if idx is not None:
        entry = temp[idx]
        assert entry is not None  # the encoder only reports valid positions
        out[entry[1]] = True
    return out
