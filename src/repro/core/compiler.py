"""Compiling filter policies onto the serial chain pipeline.

The compiler maps a :class:`~repro.core.policy.Policy` DAG onto a
:class:`~repro.core.pipeline.FilterPipeline` of given dimensions
``(n, k, f, chain_length)``, producing the compile-time configuration the
paper's Figure 14 illustrates: opcodes for every K-UFPU and BFPU, crossbar
wirings for every stage, and the output-line assignment.  Configurations are
fixed at compile time; nothing reconfigures at runtime (section 5.3.2).

Mapping rules (all visible in Figure 14):

* a **binary operator** occupies a whole Cell; unary operators feeding it
  directly are *fused* into the same Cell's K-UFPUs (e.g. ``cpu<X ∩ mem>Y``
  is one Cell), provided the unary result has no other consumer;
* a standalone **unary operator** occupies one Cell side (its BFPU is a
  passthrough mux);
* a value needed at a later stage than it was produced is carried forward
  through **no-op passthrough** sides, consuming crossbar fan-out along the
  way;
* every stage's crossbar may tap each previous-stage line at most ``f``
  times; the ``n`` original input lines (each carrying the full resource
  table) provide ``n*f`` table taps at stage 1;
* a :class:`~repro.core.policy.Conditional` root compiles both branches to
  the last stage and records a MUX plan, executed by the RMT stage after
  the filter module.

Exceeding any physical resource raises
:class:`~repro.errors.CompilationError` with a description of what ran out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro import obs
from repro.core.bfpu import BinaryConfig
from repro.core.bitvector import BitVector
from repro.core.cell import CellConfig
from repro.core.kufpu import KUnaryConfig
from repro.core.operators import BinaryOp
from repro.core.pipeline import (
    FilterPipeline,
    PipelineConfig,
    PipelineParams,
    StageConfig,
)
from repro.core.policy import Binary, Conditional, Node, Policy, TableRef, Unary
from repro.core.smbm import SMBM
from repro.errors import CompilationError, ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.analysis.findings import Finding
    from repro.analysis.verifier import TableSchema
    from repro.engine.codegen import PlanCodegen

__all__ = ["PolicyCompiler", "CompiledPolicy", "MuxPlan"]

_NOOP_K = KUnaryConfig.no_op()


@dataclass(frozen=True)
class _Wire:
    """A value travelling the pipeline: output ``line`` of ``stage``.

    Stage 0 denotes the pipeline inputs; ``line is None`` there means "any
    input line" (they all carry the full resource table).
    """

    stage: int
    line: int | None


@dataclass(frozen=True)
class MuxPlan:
    """Post-pipeline MUX for a conditional policy (RMT stage, section 4.2.3).

    By default the MUX selects output ``primary_line`` when it is non-empty,
    else ``fallback_line``.  The RMT stage hosting the MUX may instead drive
    the select with any predicate it can compute (over packet metadata,
    registers, ...): pass ``mux_select`` to
    :meth:`CompiledPolicy.evaluate` to model that externally-computed
    condition.
    """

    primary_line: int
    fallback_line: int


class _SideUse:
    """One allocated Cell side: a unary op applied to a source wire."""

    __slots__ = ("kconfig", "source")

    def __init__(self, kconfig: KUnaryConfig, source: _Wire):
        self.kconfig = kconfig
        self.source = source


class _CellState:
    """Allocation state of one physical Cell during compilation."""

    __slots__ = ("sides", "binary")

    def __init__(self) -> None:
        self.sides: list[_SideUse | None] = [None, None]
        self.binary: BinaryConfig | None = None

    def free_side(self) -> int | None:
        for i, side in enumerate(self.sides):
            if side is None:
                return i
        return None

    def is_empty(self) -> bool:
        return self.sides == [None, None] and self.binary is None


class PolicyCompiler:
    """Compiles policies for a pipeline of fixed physical dimensions."""

    def __init__(self, params: PipelineParams | None = None):
        self._params = params if params is not None else PipelineParams()

    @property
    def params(self) -> PipelineParams:
        return self._params

    def compile(
        self,
        policy: Policy,
        *,
        taps: dict[str, Node] | None = None,
        lfsr_seed: int = 1,
        naive: bool = False,
        dead_cells: "Iterable[tuple[int, int]] | None" = None,
        input_lines: "Iterable[int] | None" = None,
        verify: bool = True,
        schema: "TableSchema | None" = None,
        target_clock_ghz: float | None = None,
        codegen: bool = False,
    ) -> "CompiledPolicy":
        """Map ``policy`` onto the pipeline, or raise CompilationError.

        ``taps`` names interior nodes whose values should also be carried to
        the pipeline outputs (e.g. DRILL's "examined samples" set, which the
        RMT stage after the module stores as next decision's feedback input).

        ``naive=True`` builds the pipeline on the O(N) reference data path
        (the differential-testing oracle) instead of the mask-engine fast
        path; the emitted configuration is identical either way.

        ``dead_cells`` names physical Cells — ``(stage, index)`` pairs,
        stage 1-based — that must not be allocated (fail-around after a
        hardware fault): the policy is mapped onto the surviving Cells, and
        ``CompilationError`` is raised only when they truly cannot host it.

        ``input_lines`` restricts the pipeline input lines the plan may tap
        (tenant slicing: each tenant owns the input lines its Cell columns
        drive).  "Any input" table references draw only from the allowed
        set, and an explicitly indexed
        :class:`~repro.core.policy.TableRef` outside it is rejected with
        rule TH014 — the static half of cross-tenant isolation.

        ``verify`` (default on) runs the static plan verifier
        (:class:`repro.analysis.verifier.PlanVerifier`) over the result:
        error-level findings raise :class:`~repro.errors.CompilationError`
        with their rule id; warning-level lints are recorded on
        :attr:`CompiledPolicy.lint_findings` and counted through the obs
        registry.  ``schema`` (a
        :class:`repro.analysis.verifier.TableSchema`) enables the
        SMBM-dependent checks — unknown metrics and timing closure against
        ``target_clock_ghz`` (default: the paper's 1 GHz switch target).
        ``verify=False`` is the escape hatch for deliberately-degenerate
        plans (and for the verifier's own trial compilations).

        ``codegen=True`` additionally runs the TH012 eligibility lint and,
        when the plan is eligible, attaches a
        :class:`repro.engine.codegen.PlanCodegen` specialization tier to
        the result (:attr:`CompiledPolicy.codegen`).  Ineligible plans
        compile fine but carry TH012 warnings and no codegen tier.  The
        combination ``codegen=True, verify=False`` is rejected: the whole
        bargain — generated code may elide every runtime check — rests on
        the plan having been verified.
        """
        if codegen and not verify:
            raise ConfigurationError(
                "codegen=True requires verify=True: specialized kernels "
                "elide the runtime checks only a verified plan may drop"
            )
        with obs.get_tracer().span("policy_compile") as span:
            compiled = self._compile(
                policy, taps=taps, lfsr_seed=lfsr_seed, naive=naive,
                dead_cells=dead_cells, input_lines=input_lines,
            )
            # Attribute the emitted configuration's deterministic hardware
            # latency, so traces carry both wall time and modelled cycles.
            span.add_cycles(compiled.latency_cycles)
        if verify:
            # Late import: repro.analysis.verifier imports this module's
            # types for its trial-compile helper.
            from repro.analysis.verifier import PlanVerifier

            verifier = PlanVerifier(
                self._params, schema=schema,
                target_clock_ghz=target_clock_ghz,
            )
            report = verifier.verify_compiled(compiled)
            report.emit()
            report.raise_if_errors()
            warnings = report.warnings
            if codegen:
                eligibility = verifier.verify_codegen(compiled)
                eligibility.emit()
                warnings = warnings + eligibility.warnings
                if eligibility.clean:
                    # Late import: the engine layer sits above core.
                    from repro.engine.codegen import PlanCodegen

                    compiled.attach_codegen(PlanCodegen(compiled))
            compiled.attach_lint_findings(warnings)
        return compiled

    def _compile(
        self,
        policy: Policy,
        *,
        taps: dict[str, Node] | None,
        lfsr_seed: int,
        naive: bool,
        dead_cells: "Iterable[tuple[int, int]] | None" = None,
        input_lines: "Iterable[int] | None" = None,
    ) -> "CompiledPolicy":
        dead = frozenset(
            (int(stage), int(index)) for stage, index in (dead_cells or ())
        )
        allowed = (
            None if input_lines is None
            else frozenset(int(line) for line in input_lines)
        )
        if allowed is not None:
            if not allowed:
                raise ConfigurationError(
                    "input_lines must name at least one pipeline input"
                )
            for line in allowed:
                if not 0 <= line < self._params.n:
                    raise ConfigurationError(
                        f"allowed input line {line} out of range "
                        f"[0, {self._params.n})"
                    )
        for stage, index in dead:
            if not 1 <= stage <= self._params.k:
                raise ConfigurationError(
                    f"dead cell stage {stage} out of range [1, {self._params.k}]"
                )
            if not 0 <= index < self._params.cells_per_stage:
                raise ConfigurationError(
                    f"dead cell index {index} out of range "
                    f"[0, {self._params.cells_per_stage})"
                )
        state = _CompileState(self._params, dead_cells=dead,
                              input_lines=allowed)
        root = policy.root
        state.prepare(root)
        if isinstance(root, Conditional):
            primary = state.compile_node(root.primary)
            fallback = state.compile_node(root.fallback)
            primary = state.bring_to(primary, self._params.k)
            fallback = state.bring_to(fallback, self._params.k)
            assert primary.line is not None and fallback.line is not None
            mux = MuxPlan(primary.line, fallback.line)
            output_line = primary.line
        else:
            wire = state.bring_to(state.compile_node(root), self._params.k)
            assert wire.line is not None
            mux = None
            output_line = wire.line
        tap_lines: dict[str, int] = {}
        for name, node in (taps or {}).items():
            wire = state.bring_to(state.compile_node(node), self._params.k)
            assert wire.line is not None
            tap_lines[name] = wire.line
        config = state.emit()
        return CompiledPolicy(
            policy=policy,
            params=self._params,
            config=config,
            output_line=output_line,
            mux=mux,
            tap_lines=tap_lines,
            lfsr_seed=lfsr_seed,
            naive=naive,
            dead_cells=dead,
        )


class _CompileState:
    """Mutable allocation state for one compilation."""

    def __init__(self, params: PipelineParams,
                 dead_cells: frozenset[tuple[int, int]] = frozenset(),
                 input_lines: frozenset[int] | None = None):
        self.params = params
        # Physical Cells that must never be allocated (hardware faults).
        self.dead_cells = dead_cells
        # Pipeline inputs this plan may tap (None = all of them); tenant
        # slicing confines a plan to the lines its own columns drive.
        self.input_lines = input_lines
        # stages[t] for t in 1..k, index 0 unused.
        self.cells: list[list[_CellState]] = [
            [_CellState() for _ in range(params.cells_per_stage)]
            for _ in range(params.k + 1)
        ]
        # Crossbar fan-out accounting: taps[t][line] = number of stage-t
        # crossbar ports wired to line `line` of stage t-1.
        self.taps: list[list[int]] = [
            [0] * params.n for _ in range(params.k + 1)
        ]
        # Materialised node wires, per node id, keyed by stage.
        self.wires: dict[int, dict[int, _Wire]] = {}
        # How many parents each node has (fusion is only legal at 1).
        self.parent_count: dict[int, int] = {}
        # Input lines carrying caller-supplied tables (explicit TableRefs);
        # "any table" taps must avoid these.
        self.reserved_inputs: set[int] = set()

    # -- resource accounting ------------------------------------------------------

    def _tap(self, stage: int, source: _Wire) -> int:
        """Consume one crossbar tap at ``stage`` for ``source``; return line."""
        assert source.stage == stage - 1, (source, stage)
        if source.line is not None:
            line = source.line
            if self.taps[stage][line] >= self.params.f:
                raise CompilationError(
                    f"fan-out exhausted: line {line} of stage {source.stage} "
                    f"already feeds f={self.params.f} ports of stage {stage}",
                    rule="TH005", stage=stage,
                )
        else:
            # "Any input line": pick the least-tapped original input that is
            # not reserved for a caller-supplied table and, under tenant
            # slicing, belongs to this plan's allowed input set.
            allowed = (
                range(self.params.n) if self.input_lines is None
                else sorted(self.input_lines)
            )
            candidates = [
                (self.taps[stage][l], l) for l in allowed
                if self.taps[stage][l] < self.params.f
                and l not in self.reserved_inputs
            ]
            if not candidates:
                raise CompilationError(
                    f"all {len(list(allowed))} allowed pipeline inputs "
                    f"exhausted their f={self.params.f} stage-1 taps "
                    f"(reserved: {sorted(self.reserved_inputs)})",
                    rule="TH005", stage=stage,
                )
            line = min(candidates)[1]
        self.taps[stage][line] += 1
        return line

    def _alloc_side(self, stage: int) -> tuple[int, int]:
        """A free unary side at ``stage``: (cell index, side index)."""
        if not 1 <= stage <= self.params.k:
            raise CompilationError(
                f"policy needs a stage {stage} but the pipeline has "
                f"k={self.params.k}",
                rule="TH009", stage=stage,
            )
        for c, cell in enumerate(self.cells[stage]):
            if (stage, c) in self.dead_cells:
                continue  # hardware fault: route around this Cell
            if cell.binary is not None:
                continue  # both sides belong to the binary op
            side = cell.free_side()
            if side is not None:
                return c, side
        raise CompilationError(
            f"no free Cell side at stage {stage}: all {self.params.n} "
            "unary slots in use or dead",
            rule="TH009", stage=stage,
        )

    def _alloc_cell(self, stage: int) -> int:
        """A whole free Cell at ``stage`` for a binary operator."""
        if not 1 <= stage <= self.params.k:
            raise CompilationError(
                f"policy needs a stage {stage} but the pipeline has "
                f"k={self.params.k}",
                rule="TH009", stage=stage,
            )
        for c, cell in enumerate(self.cells[stage]):
            if (stage, c) in self.dead_cells:
                continue  # hardware fault: route around this Cell
            if cell.is_empty():
                return c
        raise CompilationError(
            f"no free Cell at stage {stage} for a binary operator: all "
            f"{self.params.cells_per_stage} Cells partly or fully in use "
            "or dead",
            rule="TH009", stage=stage,
        )

    # -- checkpoint / rollback ------------------------------------------------------

    def _snapshot(self) -> tuple:
        """Copy all allocation state, so a failed placement attempt can be
        rolled back without leaking the resources it consumed."""
        cells_copy: list[list[_CellState]] = []
        for row in self.cells:
            new_row = []
            for cell in row:
                c = _CellState()
                c.sides = list(cell.sides)
                c.binary = cell.binary
                new_row.append(c)
            cells_copy.append(new_row)
        taps_copy = [list(row) for row in self.taps]
        wires_copy = {nid: dict(by_stage) for nid, by_stage in self.wires.items()}
        return cells_copy, taps_copy, wires_copy

    def _restore(self, snap: tuple) -> None:
        self.cells, self.taps, self.wires = snap

    # -- wire management ----------------------------------------------------------

    def _record(self, node: Node, wire: _Wire) -> _Wire:
        self.wires.setdefault(node.node_id, {})[wire.stage] = wire
        return wire

    def bring_to(self, wire: _Wire, stage: int) -> _Wire:
        """Carry a wire forward to ``stage`` through no-op passthroughs."""
        while wire.stage < stage:
            wire = self._place_step(_NOOP_K, wire, wire.stage + 1)
        if wire.stage != stage:
            raise CompilationError(
                f"value produced at stage {wire.stage} cannot feed stage "
                f"{stage}: the pipeline is feed-forward",
                rule="TH006", stage=stage,
            )
        return wire

    def _latest_wire(self, node: Node) -> _Wire | None:
        by_stage = self.wires.get(node.node_id)
        if not by_stage:
            return None
        return by_stage[max(by_stage)]

    # -- placement ---------------------------------------------------------------

    def _place_step(self, kconfig: KUnaryConfig, source: _Wire,
                    stage: int) -> _Wire:
        """Place one unary op at exactly ``stage``; source must be adjacent.

        No searching, no passthrough insertion — this is the primitive both
        :meth:`bring_to` (with a no-op config) and the stage-searching
        placers build on.
        """
        assert source.stage == stage - 1, (source, stage)
        c, side = self._alloc_side(stage)
        line = self._tap(stage, source)
        self.cells[stage][c].sides[side] = _SideUse(kconfig, _Wire(stage - 1, line))
        return _Wire(stage, 2 * c + side)

    def _place_unary(self, kconfig: KUnaryConfig, source: _Wire,
                     min_stage: int) -> _Wire:
        """Place one unary op at the earliest feasible stage."""
        if kconfig.k > self.params.chain_length:
            raise CompilationError(
                f"parallel chain K={kconfig.k} exceeds the physical K-UFPU "
                f"chain length {self.params.chain_length}",
                rule="TH004", operator=kconfig.describe(),
            )
        last_error: CompilationError | None = None
        for stage in range(max(min_stage, source.stage + 1), self.params.k + 1):
            snap = self._snapshot()
            try:
                src = self.bring_to(source, stage - 1)
                return self._place_step(kconfig, src, stage)
            except CompilationError as exc:
                self._restore(snap)
                last_error = exc
        raise CompilationError(
            f"could not place {kconfig.describe()} in any stage "
            f">= {min_stage}: {last_error}",
            rule=(last_error.rule or "TH009") if last_error else "TH009",
            stage=last_error.stage if last_error else None,
            operator=kconfig.describe(),
        )

    def _place_binary(self, opcode: BinaryOp, choice: int | None,
                      left_cfg: KUnaryConfig, left_src: _Wire,
                      right_cfg: KUnaryConfig, right_src: _Wire) -> _Wire:
        """Place a (possibly unary-fused) binary op in a whole Cell."""
        for cfg in (left_cfg, right_cfg):
            if cfg.k > self.params.chain_length:
                raise CompilationError(
                    f"parallel chain K={cfg.k} exceeds the physical K-UFPU "
                    f"chain length {self.params.chain_length}",
                    rule="TH004", operator=cfg.describe(),
                )
        min_stage = max(left_src.stage, right_src.stage) + 1
        last_error: CompilationError | None = None
        for stage in range(min_stage, self.params.k + 1):
            snap = self._snapshot()
            try:
                c = self._alloc_cell(stage)
                lsrc = self.bring_to(left_src, stage - 1)
                rsrc = self.bring_to(right_src, stage - 1)
                lline = self._tap(stage, lsrc)
                rline = self._tap(stage, rsrc)
            except CompilationError as exc:
                self._restore(snap)
                last_error = exc
                continue
            cell = self.cells[stage][c]
            cell.sides[0] = _SideUse(left_cfg, _Wire(stage - 1, lline))
            cell.sides[1] = _SideUse(right_cfg, _Wire(stage - 1, rline))
            if opcode is BinaryOp.NO_OP:
                cell.binary = BinaryConfig(opcode, choice=choice)
            else:
                cell.binary = BinaryConfig(opcode)
            return _Wire(stage, 2 * c)
        raise CompilationError(
            f"could not place binary {opcode} in any stage "
            f">= {min_stage}: {last_error}",
            rule=(last_error.rule or "TH009") if last_error else "TH009",
            stage=last_error.stage if last_error else None,
            operator=str(opcode),
        )

    # -- recursive compilation -----------------------------------------------------

    def prepare(self, root: Node) -> None:
        """Count parents over the full policy DAG (fusion legality) and
        collect the explicitly indexed input lines."""
        self.parent_count[root.node_id] = 1
        self._count_parents(root)

        def scan(node: Node) -> None:
            if isinstance(node, TableRef) and node.input_index is not None:
                if not 0 <= node.input_index < self.params.n:
                    raise CompilationError(
                        f"input index {node.input_index} out of range for a "
                        f"pipeline with n={self.params.n} inputs",
                        rule="TH006", operator=node.describe(),
                    )
                if (self.input_lines is not None
                        and node.input_index not in self.input_lines):
                    raise CompilationError(
                        f"{node.describe()} taps input line "
                        f"{node.input_index}, outside this tenant's allowed "
                        f"lines {sorted(self.input_lines)}",
                        rule="TH014", operator=node.describe(),
                    )
                self.reserved_inputs.add(node.input_index)
            for child in node.children():
                scan(child)

        scan(root)

    def _count_parents(self, node: Node) -> None:
        for child in node.children():
            self.parent_count[child.node_id] = (
                self.parent_count.get(child.node_id, 0) + 1
            )
            self._count_parents(child)

    def _fusable(self, node: Node) -> bool:
        """A node a binary parent may absorb into its Cell's K-UFPU."""
        if isinstance(node, TableRef):
            return True
        return (
            isinstance(node, Unary)
            and self.parent_count.get(node.node_id, 1) == 1
            and node.node_id not in self.wires
        )

    @staticmethod
    def _table_wire(node: TableRef) -> _Wire:
        return _Wire(0, node.input_index)

    def _operand(self, node: Node) -> tuple[KUnaryConfig, _Wire]:
        """Resolve a binary operand: fused unary config + its source wire."""
        if self._fusable(node):
            if isinstance(node, TableRef):
                return _NOOP_K, self._table_wire(node)
            assert isinstance(node, Unary)
            return node.config, self._source_of(node.child)
        return _NOOP_K, self.compile_node(node)

    def _source_of(self, node: Node) -> _Wire:
        if isinstance(node, TableRef):
            return self._table_wire(node)
        return self.compile_node(node)

    def compile_node(self, node: Node) -> _Wire:
        """Materialise ``node``; reuse the wire if already materialised."""
        existing = self._latest_wire(node)
        if existing is not None:
            return existing
        if isinstance(node, TableRef):
            # A bare table reference only needs a wire when consumed by a
            # later stage; materialise it as a stage-1 passthrough.
            return self._record(
                node, self._place_unary(_NOOP_K, self._table_wire(node), 1)
            )
        if isinstance(node, Unary):
            src = self._source_of(node.child)
            return self._record(
                node, self._place_unary(node.config, src, src.stage + 1)
            )
        if isinstance(node, Binary):
            left_cfg, left_src = self._operand(node.left)
            right_cfg, right_src = self._operand(node.right)
            return self._record(
                node,
                self._place_binary(
                    node.opcode, node.choice, left_cfg, left_src,
                    right_cfg, right_src,
                ),
            )
        raise CompilationError(
            f"cannot compile node type {type(node).__name__}",
            rule="TH006", operator=type(node).__name__,
        )

    # -- emission -----------------------------------------------------------------

    def emit(self) -> PipelineConfig:
        stages: list[StageConfig] = []
        for stage in range(1, self.params.k + 1):
            wiring: dict[int, int] = {}
            cell_cfgs: list[CellConfig] = []
            for c, cell in enumerate(self.cells[stage]):
                k1 = cell.sides[0].kconfig if cell.sides[0] else _NOOP_K
                k2 = cell.sides[1].kconfig if cell.sides[1] else _NOOP_K
                if cell.sides[0]:
                    assert cell.sides[0].source.line is not None
                    wiring[2 * c] = cell.sides[0].source.line
                if cell.sides[1]:
                    assert cell.sides[1].source.line is not None
                    wiring[2 * c + 1] = cell.sides[1].source.line
                bfpu1 = cell.binary if cell.binary else BinaryConfig.passthrough(0)
                cell_cfgs.append(
                    CellConfig(
                        kufpu1=k1,
                        kufpu2=k2,
                        bfpu1=bfpu1,
                        bfpu2=BinaryConfig.passthrough(1),
                    )
                )
            stages.append(StageConfig(wiring=wiring, cells=cell_cfgs))
        return PipelineConfig(stages=stages)


class CompiledPolicy:
    """A policy mapped onto a runnable filter pipeline.

    ``evaluate`` runs one packet's filtering: the pipeline produces its
    output tables and, for conditional policies, the post-pipeline RMT MUX
    picks the primary output when non-empty, else the fallback.
    """

    def __init__(self, policy: Policy, params: PipelineParams,
                 config: PipelineConfig, output_line: int,
                 mux: MuxPlan | None, tap_lines: dict[str, int] | None = None,
                 lfsr_seed: int = 1, naive: bool = False,
                 dead_cells: Iterable[tuple[int, int]] = ()):
        self._policy = policy
        self._params = params
        self._config = config
        self._output_line = output_line
        self._mux = mux
        self._tap_lines = dict(tap_lines or {})
        self._naive = naive
        self._dead_cells = frozenset(dead_cells)
        # Warning-level verifier findings, attached post-verification.
        self._lint_findings: tuple["Finding", ...] = ()
        # The codegen specialization tier, attached by compile(codegen=True)
        # when the plan passes the TH012 eligibility lint.
        self._codegen: "PlanCodegen | None" = None
        # Memoizable iff no programmed unit keeps cross-packet state.
        self._stateless = config.is_stateless()
        # Only these output lines are ever read back; the pipeline prunes
        # everything that cannot reach them.
        live = {output_line} | set(self._tap_lines.values())
        if mux is not None:
            live |= {mux.primary_line, mux.fallback_line}
        self._pipeline = FilterPipeline(
            params, config, lfsr_seed=lfsr_seed, naive=naive,
            live_outputs=live,
        )
        # The faults are physical: the freshly modelled pipeline must carry
        # them too, so a mis-compilation that routed through a dead Cell
        # would fault loudly instead of silently computing.
        for stage, index in self._dead_cells:
            self._pipeline.cell_at(stage, index).kill()

    @property
    def policy(self) -> Policy:
        return self._policy

    @property
    def params(self) -> PipelineParams:
        return self._params

    @property
    def config(self) -> PipelineConfig:
        return self._config

    @property
    def output_line(self) -> int:
        return self._output_line

    @property
    def mux(self) -> MuxPlan | None:
        return self._mux

    @property
    def pipeline(self) -> FilterPipeline:
        """The physical pipeline realising this policy (fault hooks live
        on its Cells)."""
        return self._pipeline

    @property
    def dead_cells(self) -> frozenset[tuple[int, int]]:
        """Physical Cells this compilation was told to route around."""
        return self._dead_cells

    @property
    def stateless(self) -> bool:
        """True when the policy contains no round-robin/random units.

        A stateless policy's output depends only on the SMBM contents and
        the input tables, so callers may cache results keyed on
        :attr:`~repro.core.smbm.SMBM.version`.
        """
        return self._stateless

    @property
    def naive(self) -> bool:
        """True when built on the O(N) reference data path."""
        return self._naive

    @property
    def lint_findings(self) -> tuple["Finding", ...]:
        """Warning-level verifier findings attached at compile time.

        Empty when compiled with ``verify=False`` or when the plan was
        clean; error-level findings never appear here (they raise).
        """
        return self._lint_findings

    def attach_lint_findings(self, findings: list["Finding"]) -> None:
        self._lint_findings = tuple(findings)

    @property
    def codegen(self) -> "PlanCodegen | None":
        """The specialization tier, or ``None`` when not requested at
        compile time or when the plan carries TH012 blockers."""
        return self._codegen

    def attach_codegen(self, codegen: "PlanCodegen") -> None:
        self._codegen = codegen

    @property
    def latency_cycles(self) -> int:
        return self._params.latency_cycles

    def reset_state(self) -> None:
        self._pipeline.reset_state()

    @property
    def tap_lines(self) -> dict[str, int]:
        return dict(self._tap_lines)

    def _run(
        self, smbm: SMBM, extra_inputs: dict[int, BitVector] | None
    ) -> list[BitVector]:
        if not extra_inputs:
            return self._pipeline.evaluate(smbm)
        full = smbm.id_vector()
        inputs = [full.copy() for _ in range(self._params.n)]
        for index, table in extra_inputs.items():
            if not 0 <= index < self._params.n:
                raise ConfigurationError(
                    f"extra input index {index} out of range for n={self._params.n}"
                )
            inputs[index] = table
        return self._pipeline.evaluate(smbm, inputs)

    def _mux_output(
        self, outputs: list[BitVector], mux_select: bool | None
    ) -> BitVector:
        if self._mux is None:
            return outputs[self._output_line]
        primary = outputs[self._mux.primary_line]
        if mux_select is None:
            mux_select = not primary.is_empty()
        if mux_select:
            return primary
        return outputs[self._mux.fallback_line]

    def evaluate(
        self,
        smbm: SMBM,
        extra_inputs: dict[int, BitVector] | None = None,
        *,
        mux_select: bool | None = None,
    ) -> BitVector:
        """One packet's traversal: the final filtered table.

        ``mux_select`` overrides the conditional MUX with an externally
        computed predicate (the general ``if (predicate)`` conditional of
        section 4.2.3, where the RMT stage drives the select from packet
        metadata); ``None`` keeps the default primary-if-non-empty rule.
        """
        return self._mux_output(self._run(smbm, extra_inputs), mux_select)

    def evaluate_restricted(
        self,
        smbm: SMBM,
        mask: int,
        *,
        mux_select: bool | None = None,
    ) -> BitVector:
        """One packet's traversal with every input line restricted to
        ``table ∩ mask`` — the scalar reference semantics of a batch row
        carrying a candidate-set mask (``META_FILTER_INPUT``).

        All ``n`` input lines carry the restricted table, so the plan must
        not read caller-supplied ``input[i]`` tables (those rows take the
        per-packet ``extra_inputs`` path instead).
        """
        base = BitVector.from_int(smbm.capacity, smbm.id_mask() & mask)
        inputs = [base.copy() for _ in range(self._params.n)]
        outputs = self._pipeline.evaluate(smbm, inputs)
        return self._mux_output(outputs, mux_select)

    def evaluate_with_taps(
        self,
        smbm: SMBM,
        extra_inputs: dict[int, BitVector] | None = None,
        *,
        mux_select: bool | None = None,
    ) -> tuple[BitVector, dict[str, BitVector]]:
        """Evaluate, also returning the tapped interior values by name."""
        outputs = self._run(smbm, extra_inputs)
        taps = {name: outputs[line] for name, line in self._tap_lines.items()}
        return self._mux_output(outputs, mux_select), taps

    def select(
        self,
        smbm: SMBM,
        extra_inputs: dict[int, BitVector] | None = None,
        *,
        mux_select: bool | None = None,
    ) -> int | None:
        """Evaluate and return the single selected resource id, if exactly one."""
        out = self.evaluate(smbm, extra_inputs, mux_select=mux_select)
        if out.popcount() != 1:
            return None
        return out.first_set()

    def describe(self) -> str:
        lines = [f"policy {self._policy.name!r} on n={self._params.n}, "
                 f"k={self._params.k}, f={self._params.f}, "
                 f"K-chain={self._params.chain_length}"]
        lines.append(self._config.describe())
        if self._mux is not None:
            lines.append(
                f"RMT mux: O{self._mux.primary_line} if non-empty "
                f"else O{self._mux.fallback_line}"
            )
        else:
            lines.append(f"output line: O{self._output_line}")
        return "\n".join(lines)
