"""Filter policy abstraction (section 4).

A policy is a DAG of filter operator nodes over the resource table:

* :class:`TableRef` — a pipeline input carrying the full resource table;
* :class:`Unary` — one unary operator (section 4.1.1), possibly as a
  *parallel chain* of K identical operators (section 4.2.1) when ``k > 1``;
* :class:`Binary` — one binary operator merging two sub-policies
  (section 4.1.2);
* :class:`Conditional` — the section 4.2.3 pattern
  ``if primary's output is non-empty then primary else fallback``,
  realised as a MUX in the RMT stage following the filter module.  Every
  conditional policy in the paper's evaluation (Table 5) has this
  empty-check shape.

The module-level helpers (:func:`predicate`, :func:`min_of`, …) build nodes
with a fluent feel::

    servers = TableRef()
    eligible = intersection(
        intersection(predicate(servers, "cpu", RelOp.LT, 70),
                     predicate(servers, "mem", RelOp.GT, 1024)),
        predicate(servers, "bw", RelOp.GT, 2000),
    )
    policy = Policy(Conditional(random_pick(eligible), random_pick(servers)))

:class:`PolicyInterpreter` evaluates a policy directly over an SMBM — the
reference semantics the compiled hardware pipeline is differentially tested
against.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.bitvector import BitVector
from repro.core.kufpu import KUFPU, KUnaryConfig
from repro.core.operators import BinaryOp, RelOp, UnaryOp
from repro.core.smbm import SMBM
from repro.errors import ConfigurationError

__all__ = [
    "Node",
    "TableRef",
    "Unary",
    "ParallelChain",
    "Binary",
    "Conditional",
    "Policy",
    "PolicyInterpreter",
    "predicate",
    "min_of",
    "max_of",
    "random_pick",
    "round_robin",
    "union",
    "intersection",
    "difference",
]

_node_ids = itertools.count()


@dataclass(frozen=True, eq=False)
class Node:
    """Base class for policy DAG nodes.

    Nodes use identity equality: the same node object used twice is shared
    fan-out, two structurally equal nodes are independent operators.
    """

    node_id: int = field(default_factory=lambda: next(_node_ids), init=False)

    def children(self) -> tuple["Node", ...]:
        return ()


@dataclass(frozen=True, eq=False)
class TableRef(Node):
    """A pipeline input line.

    With the default ``input_index=None`` the line carries the full resource
    table (the common case).  An explicit ``input_index`` names a specific
    pipeline input whose table the *caller* supplies at evaluation time —
    this is how feedback state enters a policy, e.g. DRILL's "m least loaded
    samples from the last time slot" (Table 5), which the RMT pipeline
    stores and presents as an input table.
    """

    input_index: int | None = None

    def describe(self) -> str:
        if self.input_index is None:
            return "table"
        return f"input[{self.input_index}]"


@dataclass(frozen=True, eq=False)
class Unary(Node):
    """A unary operator (or a parallel chain of K of them) over a sub-policy."""

    config: KUnaryConfig = field(default_factory=KUnaryConfig.no_op)
    child: Node = field(default_factory=TableRef)

    def children(self) -> tuple[Node, ...]:
        return (self.child,)

    def describe(self) -> str:
        return self.config.describe()


class ParallelChain(Unary):
    """Alias emphasising a K>1 parallel chain (section 4.2.1)."""


@dataclass(frozen=True, eq=False)
class Binary(Node):
    """A binary operator merging two sub-policies."""

    opcode: BinaryOp = BinaryOp.UNION
    left: Node = field(default_factory=TableRef)
    right: Node = field(default_factory=TableRef)
    choice: int | None = None

    def __post_init__(self) -> None:
        if self.opcode.needs_choice and self.choice not in (0, 1):
            raise ConfigurationError("no-op Binary requires choice in {0, 1}")

    def children(self) -> tuple[Node, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        return str(self.opcode)


@dataclass(frozen=True, eq=False)
class Conditional(Node):
    """``primary`` if its output is non-empty, else ``fallback`` (section 4.2.3)."""

    primary: Node = field(default_factory=TableRef)
    fallback: Node = field(default_factory=TableRef)

    def children(self) -> tuple[Node, ...]:
        return (self.primary, self.fallback)

    def describe(self) -> str:
        return "if-non-empty-else"


@dataclass(frozen=True, eq=False)
class Policy:
    """A complete filter policy: a root node plus a human-readable name.

    A :class:`Conditional` may appear only at the root — its MUX lives in
    the RMT stage after the filter module, so it cannot feed further filter
    operators (section 4.2.3).
    """

    root: Node = field(default_factory=TableRef)
    name: str = "policy"

    def __post_init__(self) -> None:
        def check(node: Node, at_root: bool) -> None:
            if isinstance(node, Conditional) and not at_root:
                raise ConfigurationError(
                    "Conditional nodes are only supported at the policy root: "
                    "the selecting MUX is implemented in the RMT stage after "
                    "the filter module (section 4.2.3)"
                )
            for child in node.children():
                check(child, at_root=False)

        check(self.root, at_root=True)


# -- fluent constructors ----------------------------------------------------------


def predicate(child: Node, attr: str, rel_op: RelOp | str, val: int,
              k: int = 1) -> Unary:
    """``predicate(table, attrX rel_op val)`` — section 4.1.1 operator 2."""
    op = rel_op if isinstance(rel_op, RelOp) else RelOp(rel_op)
    return Unary(
        config=KUnaryConfig(UnaryOp.PREDICATE, k=k, attr=attr, rel_op=op, val=val),
        child=child,
    )


def min_of(child: Node, attr: str, k: int = 1) -> Unary:
    """``min(table, attrX)`` — with ``k > 1``, the K smallest entries."""
    return Unary(config=KUnaryConfig(UnaryOp.MIN, k=k, attr=attr), child=child)


def max_of(child: Node, attr: str, k: int = 1) -> Unary:
    """``max(table, attrX)`` — with ``k > 1``, the K largest entries."""
    return Unary(config=KUnaryConfig(UnaryOp.MAX, k=k, attr=attr), child=child)


def random_pick(child: Node, k: int = 1) -> Unary:
    """``random(table)`` — with ``k > 1``, K distinct uniform picks."""
    return Unary(config=KUnaryConfig(UnaryOp.RANDOM, k=k), child=child)


def round_robin(child: Node, attr: str) -> Unary:
    """``round-robin(table, attrX)`` — weighted round-robin selection."""
    return Unary(config=KUnaryConfig(UnaryOp.ROUND_ROBIN, attr=attr), child=child)


def union(left: Node, right: Node) -> Binary:
    return Binary(opcode=BinaryOp.UNION, left=left, right=right)


def intersection(left: Node, right: Node) -> Binary:
    return Binary(opcode=BinaryOp.INTERSECTION, left=left, right=right)


def difference(left: Node, right: Node) -> Binary:
    return Binary(opcode=BinaryOp.DIFFERENCE, left=left, right=right)


# -- reference interpreter ----------------------------------------------------------


class PolicyInterpreter:
    """Direct evaluation of a policy DAG over an SMBM.

    Stateful operators (round-robin, random) keep per-node state across
    calls, exactly as the hardware units they stand for.  Shared sub-DAGs
    (the same node object reachable twice) are evaluated once per packet.
    """

    def __init__(self, policy: Policy, *, lfsr_seed: int = 1,
                 chain_length: int | None = None, naive: bool = False):
        self._policy = policy
        self._units: dict[int, KUFPU] = {}
        seed = lfsr_seed

        def build(node: Node) -> None:
            if isinstance(node, Unary) and node.node_id not in self._units:
                nonlocal seed
                length = chain_length if chain_length is not None else max(1, node.config.k)
                self._units[node.node_id] = KUFPU(
                    length, node.config, lfsr_seed=seed, naive=naive
                )
                seed += length + 1
            for child in node.children():
                build(child)

        build(policy.root)

    @property
    def policy(self) -> Policy:
        return self._policy

    def reset_state(self) -> None:
        for unit in self._units.values():
            unit.reset_state()

    def evaluate(
        self, smbm: SMBM, extra_inputs: dict[int, BitVector] | None = None,
        *, record: dict[int, BitVector] | None = None,
    ) -> BitVector:
        """One packet's policy evaluation; returns the output table.

        ``extra_inputs`` supplies the tables for explicit
        ``TableRef(input_index=i)`` nodes.  ``record``, when given, is
        used as the per-node memo and left filled with every evaluated
        node's output keyed by ``node_id`` — the concrete witness the
        semantic soundness suite checks abstract regions against (nodes
        short-circuited away, e.g. a Conditional's untaken arm, stay
        absent).
        """
        cache: dict[int, BitVector] = {} if record is None else record

        def walk(node: Node) -> BitVector:
            if node.node_id in cache:
                return cache[node.node_id]
            if isinstance(node, TableRef):
                if node.input_index is None:
                    out = smbm.id_vector()
                elif extra_inputs is None or node.input_index not in extra_inputs:
                    raise ConfigurationError(
                        f"policy reads input[{node.input_index}] but no such "
                        "extra input was supplied"
                    )
                else:
                    out = extra_inputs[node.input_index]
            elif isinstance(node, Unary):
                out = self._units[node.node_id].evaluate(walk(node.child), smbm)
            elif isinstance(node, Binary):
                left = walk(node.left)
                right = walk(node.right)
                if node.opcode is BinaryOp.NO_OP:
                    out = left if node.choice == 0 else right
                elif node.opcode is BinaryOp.UNION:
                    out = left | right
                elif node.opcode is BinaryOp.INTERSECTION:
                    out = left & right
                else:
                    out = left - right
            elif isinstance(node, Conditional):
                primary = walk(node.primary)
                out = primary if not primary.is_empty() else walk(node.fallback)
            else:  # pragma: no cover
                raise ConfigurationError(f"unknown node type {type(node)!r}")
            cache[node.node_id] = out
            return out

        return walk(self._policy.root)

    def select(
        self, smbm: SMBM, extra_inputs: dict[int, BitVector] | None = None
    ) -> int | None:
        """Evaluate and return the single selected resource id, if exactly one."""
        out = self.evaluate(smbm, extra_inputs)
        if out.popcount() != 1:
            return None
        return out.first_set()
