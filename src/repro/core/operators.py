"""Filter operator definitions (section 4.1).

Thanos supports two classes of filter operators:

* **unary** — ``no-op``, ``predicate``, ``min``, ``max``, ``round-robin``,
  ``random`` — filter a single table on at most one attribute;
* **binary** — ``no-op`` (a 2:1 mux), ``union``, ``intersection``,
  ``difference`` — merge the outputs of two unary operations.

These enums are the *opcodes* with which UFPUs and BFPUs are programmed at
compile time; the semantic implementations live in :mod:`repro.core.ufpu`,
:mod:`repro.core.bfpu`, and the reference versions in
:mod:`repro.core.table`.
"""

from __future__ import annotations

import enum
import operator as _operator
from typing import Callable

__all__ = ["RelOp", "UnaryOp", "BinaryOp"]


class RelOp(enum.Enum):
    """Relational operators usable in a predicate: {<, >, <=, >=, ==, !=}."""

    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    EQ = "=="
    NE = "!="

    @property
    def fn(self) -> Callable[[int, int], bool]:
        return _REL_FNS[self]

    def apply(self, lhs: int, rhs: int) -> bool:
        """Evaluate ``lhs rel_op rhs``."""
        return self.fn(lhs, rhs)

    def __str__(self) -> str:
        return self.value


_REL_FNS: dict[RelOp, Callable[[int, int], bool]] = {
    RelOp.LT: _operator.lt,
    RelOp.GT: _operator.gt,
    RelOp.LE: _operator.le,
    RelOp.GE: _operator.ge,
    RelOp.EQ: _operator.eq,
    RelOp.NE: _operator.ne,
}


class UnaryOp(enum.Enum):
    """Unary filter opcodes (section 4.1.1)."""

    NO_OP = "no-op"
    PREDICATE = "predicate"
    MIN = "min"
    MAX = "max"
    ROUND_ROBIN = "round-robin"
    RANDOM = "random"

    @property
    def needs_attribute(self) -> bool:
        """Whether the opcode consumes an ``attrX`` operand."""
        return self in (UnaryOp.PREDICATE, UnaryOp.MIN, UnaryOp.MAX, UnaryOp.ROUND_ROBIN)

    @property
    def needs_predicate_operands(self) -> bool:
        """Whether the opcode consumes ``rel_op`` and ``val`` operands."""
        return self is UnaryOp.PREDICATE

    @property
    def is_selector(self) -> bool:
        """Whether the opcode outputs at most a single entry."""
        return self in (UnaryOp.MIN, UnaryOp.MAX, UnaryOp.ROUND_ROBIN, UnaryOp.RANDOM)

    @property
    def is_stateful(self) -> bool:
        """Whether the opcode keeps per-unit state across packets.

        Stateful operators (round-robin position, LFSR phase) make a policy's
        output depend on evaluation history, so its results cannot be
        memoized against an unchanged table.
        """
        return self in (UnaryOp.ROUND_ROBIN, UnaryOp.RANDOM)

    def __str__(self) -> str:
        return self.value


class BinaryOp(enum.Enum):
    """Binary filter opcodes (section 4.1.2)."""

    NO_OP = "no-op"  # 2:1 mux controlled by `choice`
    UNION = "union"
    INTERSECTION = "intersection"
    DIFFERENCE = "difference"

    @property
    def needs_choice(self) -> bool:
        """Whether the opcode consumes a ``choice`` operand (the mux select)."""
        return self is BinaryOp.NO_OP

    def __str__(self) -> str:
        return self.value
