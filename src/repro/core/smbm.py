"""Sorted Multidimensional Bidirectional Map (section 5.1).

The SMBM is Thanos's hardware resource table.  For N resources with M
metrics it keeps **M+1 flat sorted lists** — one for the resource id
(primary attribute) and one per metric — with a **bidirectional mapping**
between the id dimension and every metric dimension: each id entry points at
its M metric entries, and each metric entry points back at its id entry.

Hardware properties modelled here:

* lists are sorted in increasing order, equal values kept in enqueue (FIFO)
  order (section 5.1);
* ``add`` and ``delete`` each take exactly **two clock cycles** — cycle one
  searches all lists in parallel for the affected positions, cycle two
  performs the shift-and-write — and are **fully pipelined**, one write
  retired per cycle (section 5.1.2-5.1.3);
* writes commit **atomically in the second cycle**, so a read issued in any
  cycle observes either the pre-write or post-write table, never a torn
  state (section 5.1.4);
* the whole structure is readable **every cycle** in parallel with writes,
  because every list lives in flip-flops rather than SRAM (section 5.1.3).

:class:`SMBM` is the functional model (every method completes immediately,
used on the packet fast path of the network simulator);
:class:`ClockedSMBM` wraps it with the cycle-accurate write pipeline used by
the hardware-behaviour tests.
"""

from __future__ import annotations

import bisect
from typing import Mapping, Sequence

from repro import obs
from repro.core.bitvector import BitVector
from repro.core.clocked import PipelineLatch
from repro.core.operators import RelOp
from repro.errors import (
    CapacityError,
    ConfigurationError,
    IntegrityError,
    SimulationError,
)

__all__ = ["SMBM", "MetricIndex", "ClockedSMBM", "WRITE_LATENCY_CYCLES",
           "STORED_WORD_BITS"]

#: Latency, in clock cycles, of the add and delete primitives (section 5.1.3).
WRITE_LATENCY_CYCLES = 2

#: Width of one stored metric word in the fault model: every metric value is
#: held in a 64-bit flip-flop word, so single-event upsets flip one of these
#: 64 bits.  The ECC model in :mod:`repro.faults.ecc` protects exactly this
#: word.
STORED_WORD_BITS = 64


class MetricIndex:
    """Rank/mask arrays over one metric dimension: the read fast path.

    Built from the metric's sorted flat list (value, seq, id) entries, it
    keeps three parallel arrays:

    * ``values[r]`` — the value of the entry at rank ``r`` (sorted, FIFO
      ties), so a relational bound becomes a :func:`bisect` over ranks;
    * ``ids[r]`` — the resource id of the entry at rank ``r`` (the batched
      engine's rank-order permutation: reordering an id-indexed column by
      ``ids`` turns min/max-k into "first/last k set bits");
    * ``prefix[r]`` — id-bitmask (plain int) of entries with rank < ``r``;
    * ``suffix[r]`` — id-bitmask of entries with rank >= ``r``.

    A predicate ``attr ∘ val`` is then two bisects plus
    ``prefix[hi] & ~prefix[lo] & input``; min/max are a binary search for
    the lowest/highest rank whose prefix/suffix mask intersects the input —
    O(log N) integer ANDs instead of an O(N) Python tuple scan.  This is the
    software analogue of the hardware evaluating against the already-sorted
    flip-flop lists every cycle.

    Indexes are immutable snapshots: the owning :class:`SMBM` rebuilds one
    lazily when its :attr:`SMBM.version` has moved past the index's build
    version (reads vastly outnumber writes in every workload, so the O(N)
    rebuild amortises away).
    """

    __slots__ = ("values", "ids", "prefix", "suffix")

    def __init__(self, entries: Sequence[tuple[int, int, int]]):
        n = len(entries)
        self.values = [value for value, _seq, _rid in entries]
        self.ids = [rid for _value, _seq, rid in entries]
        prefix = [0] * (n + 1)
        acc = 0
        for r, (_value, _seq, rid) in enumerate(entries):
            acc |= 1 << rid
            prefix[r + 1] = acc
        self.prefix = prefix
        suffix = [0] * (n + 1)
        acc = 0
        for r in range(n - 1, -1, -1):
            acc |= 1 << entries[r][2]
            suffix[r] = acc
        self.suffix = suffix

    def __len__(self) -> int:
        return len(self.values)

    def predicate_mask(self, rel_op: RelOp, val: int, input_bits: int) -> int:
        """Ids from ``input_bits`` whose value satisfies ``value ∘ val``."""
        values = self.values
        n = len(values)
        if rel_op is RelOp.LT:
            lo, hi = 0, bisect.bisect_left(values, val)
        elif rel_op is RelOp.LE:
            lo, hi = 0, bisect.bisect_right(values, val)
        elif rel_op is RelOp.GT:
            lo, hi = bisect.bisect_right(values, val), n
        elif rel_op is RelOp.GE:
            lo, hi = bisect.bisect_left(values, val), n
        elif rel_op is RelOp.EQ:
            lo = bisect.bisect_left(values, val)
            hi = bisect.bisect_right(values, val)
        elif rel_op is RelOp.NE:
            lo = bisect.bisect_left(values, val)
            hi = bisect.bisect_right(values, val)
            return (self.prefix[lo] | self.suffix[hi]) & input_bits
        else:  # pragma: no cover - exhaustive over RelOp
            raise ConfigurationError(f"unhandled relational operator {rel_op}")
        return self.prefix[hi] & ~self.prefix[lo] & input_bits

    def min_mask(self, input_bits: int) -> int:
        """One-hot mask of the lowest-rank entry present in ``input_bits``.

        Binary search for the smallest rank prefix intersecting the input;
        at that point ``prefix[r] & input`` holds exactly the one id bit of
        the first valid entry (= the minimum, FIFO among equal values).
        """
        if not (self.prefix[-1] & input_bits):
            return 0
        lo, hi = 1, len(self.values)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.prefix[mid] & input_bits:
                hi = mid
            else:
                lo = mid + 1
        return self.prefix[lo] & input_bits

    def max_mask(self, input_bits: int) -> int:
        """One-hot mask of the highest-rank entry present in ``input_bits``.

        Mirror image of :meth:`min_mask` over the suffix masks; the last
        valid entry is the maximum (latest-enqueued among equal values),
        matching the reference path's last-one priority encoder.
        """
        if not (self.suffix[0] & input_bits):
            return 0
        lo, hi = 0, len(self.values) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.suffix[mid] & input_bits:
                lo = mid
            else:
                hi = mid - 1
        return self.suffix[lo] & input_bits


class SMBM:
    """Functional model of the Sorted Multidimensional Bidirectional Map.

    ``capacity`` is the hardware N (number of flip-flop rows per list);
    ``metric_names`` is the ordered schema of the M metric dimensions.
    """

    def __init__(
        self,
        capacity: int,
        metric_names: Sequence[str],
        *,
        sanitize: bool = False,
        tenant: str | None = None,
    ):
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        if not metric_names:
            raise ConfigurationError("SMBM needs at least one metric dimension")
        names = tuple(metric_names)
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate metric names: {names}")
        self._capacity = capacity
        self._metric_names = names
        # Forward map: id -> {metric: value}, plus the enqueue sequence used
        # as the FIFO tie-break key inside every sorted list.
        self._rows: dict[int, dict[str, int]] = {}
        self._seq: dict[int, int] = {}
        self._next_seq = 0
        # One flat sorted list per metric dimension.  Entries are
        # (value, enqueue_seq, id): the (value, seq) prefix is the sort key,
        # the trailing id is the reverse-map pointer back to the id dimension.
        self._metric_lists: dict[str, list[tuple[int, int, int]]] = {
            name: [] for name in names
        }
        # The id dimension: ids are unique, so plain sorted order suffices.
        self._id_list: list[int] = []
        # Presence bitmask over [0, capacity), maintained incrementally so
        # the pipeline's input table is an O(1) read.
        self._id_bits = 0
        # Monotonic write counter: bumped by every committed add/delete.
        # Readers key caches (metric indexes, memoized policy outputs) on it.
        self._version = 0
        # Lazily rebuilt per-metric fast-path indexes: name -> (version, index).
        self._indexes: dict[str, tuple[int, MetricIndex]] = {}
        # Committed-write listeners (parity/ECC maintenance, replication
        # shims).  Writes are rare relative to reads, so the notify cost
        # stays off the packet fast path entirely.
        self._write_listeners: list = []
        # Sanitizer mode: every committed write re-checks the structural
        # invariants (sortedness, bidirectional map agreement, presence
        # mask).  O(N * M) per write, so strictly a debug/verification
        # mode — the read fast path is untouched either way.
        self._sanitize = sanitize
        if sanitize:
            self.add_write_listener(self._sanitize_listener)
        # Observability: writes and index rebuilds are rare relative to
        # reads, so they increment registry counters directly (no-ops under
        # the default null registry); occupancy/version are published by a
        # weakly-held collect hook only when a real registry is active.
        # A multi-tenant deployment passes ``tenant`` so every smbm_* series
        # splits per tenant and a neighbour's writes never pollute the view.
        self._tenant = tenant
        tlabels = {} if tenant is None else {"tenant": tenant}
        registry = obs.get_registry()
        self._obs_adds = registry.counter(
            "smbm_writes_total", {"op": "add", **tlabels},
            help="committed SMBM writes",
        )
        self._obs_deletes = registry.counter(
            "smbm_writes_total", {"op": "delete", **tlabels},
            help="committed SMBM writes",
        )
        self._obs_rebuilds = registry.counter(
            "smbm_index_rebuilds_total", tlabels or None,
            help="lazy MetricIndex rebuilds after a table write",
        )
        if registry.enabled:
            registry.add_hook(self._obs_collect)

    def _obs_collect(self):
        """Collect hook: occupancy and version as aggregate samples."""
        tlabels = (
            () if self._tenant is None else (("tenant", self._tenant),)
        )
        yield obs.Sample("smbm_resources", len(self._rows), kind="gauge",
                         labels=tlabels,
                         help="resources currently stored across SMBMs")
        yield obs.Sample("smbm_version_total", self._version,
                         labels=tlabels,
                         help="committed writes (sum of version counters)")

    @property
    def tenant(self) -> str | None:
        """Owning tenant name under multi-tenant slicing (obs label)."""
        return self._tenant

    # -- schema / occupancy ----------------------------------------------------

    @property
    def capacity(self) -> int:
        """Hardware N: maximum number of resources."""
        return self._capacity

    @property
    def metric_names(self) -> tuple[str, ...]:
        """The M metric dimensions, in schema order."""
        return self._metric_names

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, resource_id: int) -> bool:
        return resource_id in self._rows

    @property
    def version(self) -> int:
        """Monotonic counter of committed writes (adds and deletes).

        Two reads bracketed by equal versions observed the identical table,
        so any value derived purely from the table may be reused between
        them — the basis of metric-index reuse and policy memoization.
        """
        return self._version

    def is_full(self) -> bool:
        return len(self._rows) >= self._capacity

    # -- write primitives (section 5.1.2) ---------------------------------------

    def add(self, resource_id: int, metrics: Mapping[str, int]) -> None:
        """``add(SMBM, id, [metric1: val1, ..., metricM: valM])``.

        Inserts a new entry keeping every dimension list sorted, with FIFO
        order among equal values, and installs the bidirectional pointers.
        """
        if not 0 <= resource_id < self._capacity:
            raise CapacityError(
                f"resource id {resource_id} out of range [0, {self._capacity}); "
                "ids index the bit-vector encoding so must be < N"
            )
        if resource_id in self._rows:
            raise ConfigurationError(
                f"resource id {resource_id} already present; "
                "update = delete followed by add"
            )
        if set(metrics) != set(self._metric_names):
            raise ConfigurationError(
                f"metric set {sorted(metrics)} does not match schema "
                f"{sorted(self._metric_names)}"
            )
        if self.is_full():
            raise CapacityError(f"SMBM full: capacity {self._capacity}")

        seq = self._next_seq
        self._next_seq += 1
        self._rows[resource_id] = {name: int(metrics[name]) for name in self._metric_names}
        self._seq[resource_id] = seq
        for name in self._metric_names:
            entry = (self._rows[resource_id][name], seq, resource_id)
            bisect.insort(self._metric_lists[name], entry)
        bisect.insort(self._id_list, resource_id)
        self._id_bits |= 1 << resource_id
        self._version += 1
        self._obs_adds.inc()
        if self._write_listeners:
            row = dict(self._rows[resource_id])
            for listener in self._write_listeners:
                listener("add", resource_id, row)

    def delete(self, resource_id: int) -> None:
        """``delete(SMBM, id)`` — removes the entry if present (else no-op)."""
        row = self._rows.pop(resource_id, None)
        if row is None:
            return
        seq = self._seq.pop(resource_id)
        for name in self._metric_names:
            entry = (row[name], seq, resource_id)
            lst = self._metric_lists[name]
            pos = bisect.bisect_left(lst, entry)
            if pos >= len(lst) or lst[pos] != entry:
                raise SimulationError(
                    f"bidirectional map corrupted: {entry} missing from {name} list"
                )
            del lst[pos]
        pos = bisect.bisect_left(self._id_list, resource_id)
        del self._id_list[pos]
        self._id_bits &= ~(1 << resource_id)
        self._version += 1
        self._obs_deletes.inc()
        if self._write_listeners:
            for listener in self._write_listeners:
                listener("delete", resource_id, None)

    def update(self, resource_id: int, metrics: Mapping[str, int]) -> None:
        """Composite update: delete followed by add, as the paper prescribes."""
        self.delete(resource_id)
        self.add(resource_id, metrics)

    @property
    def sanitize(self) -> bool:
        """True when every committed write re-checks the invariants."""
        return self._sanitize

    def _sanitize_listener(self, kind: str, resource_id: int, row) -> None:
        """Commit-time invariant check, installed when ``sanitize=True``."""
        try:
            self.check_invariants()
        except SimulationError as exc:
            raise IntegrityError(
                f"sanitizer: invariant violated after committed "
                f"{kind} of resource {resource_id}: {exc}",
                component="smbm",
                resource=resource_id,
            ) from exc

    def add_write_listener(self, listener) -> None:
        """Subscribe to committed writes: ``listener(kind, id, row)``.

        ``kind`` is ``"add"``, ``"delete"`` or ``"repair"``; ``row`` is a
        copy of the committed metric values (None for deletes).  Used by the
        parity/ECC layer to keep check words in lockstep with the table.
        """
        self._write_listeners.append(listener)

    # -- fault model (SEU injection and repair) ---------------------------------

    def corrupt_stored_bit(self, resource_id: int, metric: str, bit: int) -> tuple[int, int]:
        """Fault-injection backdoor: flip one bit of a stored metric word.

        Models a single-event upset in the flip-flop row holding the value:
        the stored word changes *in place* — subsequent hardware reads (the
        forward map and any rebuilt fast-path index) observe the corrupted
        value — but nothing that only a committed write would touch moves:
        the :attr:`version` counter stays put (so version-keyed caches keep
        serving pre-corruption results until a scrubber notices), write
        listeners are not notified (the parity word now *disagrees* with the
        stored word, which is exactly what detection keys on), and the FIFO
        enqueue order is preserved.

        Returns ``(old_value, new_value)``.
        """
        row = self._rows.get(resource_id)
        if row is None:
            raise ConfigurationError(f"no resource with id {resource_id}")
        if metric not in row:
            raise ConfigurationError(
                f"unknown metric {metric!r}; schema: {self._metric_names}"
            )
        if not 0 <= bit < STORED_WORD_BITS:
            raise ConfigurationError(
                f"bit {bit} outside the {STORED_WORD_BITS}-bit stored word"
            )
        old = row[metric]
        new = old ^ (1 << bit)
        seq = self._seq[resource_id]
        lst = self._metric_lists[metric]
        pos = bisect.bisect_left(lst, (old, seq, resource_id))
        if pos >= len(lst) or lst[pos] != (old, seq, resource_id):
            raise SimulationError("bidirectional map corrupted before injection")
        del lst[pos]
        bisect.insort(lst, (new, seq, resource_id))
        row[metric] = new
        # The corrupted flop is read from the next cycle on: drop the cached
        # snapshot so fast-path reads rebuild against the flipped word.
        self._indexes.pop(metric, None)
        return old, new

    def repair_row(self, resource_id: int, corrected: Mapping[str, int]) -> list[str]:
        """Restore a row to ``corrected`` values in place (scrubber repair).

        Unlike :meth:`update` this preserves the row's FIFO enqueue order —
        an ECC correction rewrites the damaged word, it does not re-enqueue
        the resource.  The version counter is bumped (a repair is a
        committed write), which invalidates every version-keyed cache:
        metric indexes rebuild and policy memos recompute on the next read.
        Returns the list of metric names whose stored value actually moved.
        """
        row = self._rows.get(resource_id)
        if row is None:
            raise ConfigurationError(f"no resource with id {resource_id}")
        if set(corrected) != set(self._metric_names):
            raise ConfigurationError(
                f"metric set {sorted(corrected)} does not match schema "
                f"{sorted(self._metric_names)}"
            )
        seq = self._seq[resource_id]
        repaired: list[str] = []
        for name in self._metric_names:
            good = int(corrected[name])
            if row[name] == good:
                continue
            lst = self._metric_lists[name]
            entry = (row[name], seq, resource_id)
            pos = bisect.bisect_left(lst, entry)
            if pos >= len(lst) or lst[pos] != entry:
                raise SimulationError(
                    f"bidirectional map corrupted: {entry} missing from {name} list"
                )
            del lst[pos]
            bisect.insort(lst, (good, seq, resource_id))
            row[name] = good
            repaired.append(name)
        if repaired:
            self._version += 1
            if self._write_listeners:
                snapshot = dict(row)
                for listener in self._write_listeners:
                    listener("repair", resource_id, snapshot)
        return repaired

    # -- read interface (shared with the filter pipeline) -------------------------

    def ids(self) -> list[int]:
        """The id dimension list, in sorted order."""
        return list(self._id_list)

    def id_vector(self) -> BitVector:
        """Presence bit vector over [0, capacity): the pipeline's input table."""
        return BitVector.from_int(self._capacity, self._id_bits)

    def id_mask(self) -> int:
        """The presence bitmask as a raw int (the fast path's input table)."""
        return self._id_bits

    def metric_index(self, metric: str) -> MetricIndex:
        """The fast-path :class:`MetricIndex` for one metric dimension.

        Rebuilt lazily: an index built at the current :attr:`version` is
        reused verbatim; the first read after a write rebuilds it in O(N).
        """
        cached = self._indexes.get(metric)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        if metric not in self._metric_lists:
            raise ConfigurationError(
                f"unknown metric {metric!r}; schema: {self._metric_names}"
            )
        index = MetricIndex(self._metric_lists[metric])
        self._indexes[metric] = (self._version, index)
        self._obs_rebuilds.inc()
        return index

    def metric_of(self, resource_id: int, metric: str) -> int:
        """Forward map: id -> metric value."""
        try:
            row = self._rows[resource_id]
        except KeyError:
            raise ConfigurationError(f"no resource with id {resource_id}") from None
        if metric not in row:
            raise ConfigurationError(
                f"unknown metric {metric!r}; schema: {self._metric_names}"
            )
        return row[metric]

    def metrics_of(self, resource_id: int) -> dict[str, int]:
        """Forward map: id -> all metric values (a row of the relational table)."""
        try:
            return dict(self._rows[resource_id])
        except KeyError:
            raise ConfigurationError(f"no resource with id {resource_id}") from None

    def attr_list(self, metric: str) -> list[tuple[int, int]]:
        """The sorted flat list of one metric dimension as (value, id) pairs.

        This is the list a UFPU copies into its ``temp_list`` in its first
        clock cycle; the id in each pair is the reverse-map pointer.
        """
        if metric not in self._metric_lists:
            raise ConfigurationError(
                f"unknown metric {metric!r}; schema: {self._metric_names}"
            )
        return [(value, rid) for (value, _seq, rid) in self._metric_lists[metric]]

    def rank_of(self, resource_id: int, metric: str) -> int:
        """Position of a resource's entry within a metric dimension list."""
        row = self._rows.get(resource_id)
        if row is None:
            raise ConfigurationError(f"no resource with id {resource_id}")
        entry = (row[metric], self._seq[resource_id], resource_id)
        lst = self._metric_lists[metric]
        pos = bisect.bisect_left(lst, entry)
        if pos >= len(lst) or lst[pos] != entry:
            raise SimulationError("bidirectional map corrupted in rank_of")
        return pos

    def check_invariants(self) -> None:
        """Assert structural invariants; used by property-based tests.

        * every dimension list is sorted (FIFO among equal values);
        * forward and reverse maps agree on every entry;
        * all lists have exactly one entry per stored resource.
        """
        n = len(self._rows)
        if len(self._id_list) != n:
            raise SimulationError("id list length disagrees with row count")
        if self._id_list != sorted(self._id_list):
            raise SimulationError("id list not sorted")
        if self._id_bits != sum(1 << rid for rid in self._id_list):
            raise SimulationError("presence bitmask disagrees with id list")
        for name in self._metric_names:
            lst = self._metric_lists[name]
            if len(lst) != n:
                raise SimulationError(f"{name} list length disagrees with row count")
            if lst != sorted(lst):
                raise SimulationError(f"{name} list not sorted with FIFO ties")
            for value, seq, rid in lst:
                if rid not in self._rows:
                    raise SimulationError(f"{name} list points at absent id {rid}")
                if self._rows[rid][name] != value or self._seq[rid] != seq:
                    raise SimulationError(
                        f"forward/reverse maps disagree for id {rid} metric {name}"
                    )
            index = self.metric_index(name)
            if index.values != [value for value, _seq, _rid in lst]:
                raise SimulationError(f"{name} fast-path index values out of date")
            if index.prefix[-1] != self._id_bits or index.suffix[0] != self._id_bits:
                raise SimulationError(
                    f"{name} fast-path index masks disagree with presence bitmask"
                )

    def snapshot(self) -> dict[int, dict[str, int]]:
        """A deep copy of the current relational contents (for testing)."""
        return {rid: dict(row) for rid, row in self._rows.items()}

    # -- checkpoint / restore (serving-layer state migration) ---------------------

    def export_state(self) -> dict[str, object]:
        """Bit-faithful state export for checkpoint/restore.

        Captures everything a restored table needs to be indistinguishable
        from this one: the stored metric words, the FIFO enqueue sequence
        (sorted-list tie-break order), the next sequence number, and the
        :attr:`version` counter.  The derived structures (sorted lists,
        presence mask, fast-path indexes) are *not* exported — they are
        rebuilt deterministically from the rows and sequence numbers, which
        is exactly how :meth:`check_invariants` defines consistency.
        """
        return {
            "capacity": self._capacity,
            "metric_names": list(self._metric_names),
            "rows": {rid: dict(row) for rid, row in self._rows.items()},
            "seq": dict(self._seq),
            "next_seq": self._next_seq,
            "version": self._version,
        }

    def restore_state(self, state: Mapping[str, object]) -> None:
        """Restore a state produced by :meth:`export_state`, in place.

        The capacity and metric schema must match this table's; everything
        else — rows, FIFO order, version counter — is overwritten.  Write
        listeners see one ``("delete", rid, None)`` per row dropped and one
        ``("restore", rid, row)`` per row present afterwards, so attached
        maintenance state (ECC check words, replication shims) resyncs in
        lockstep.  Version-keyed caches held by *callers* (policy memos,
        metric indexes of other readers) must be invalidated by the caller:
        the restored version counter may be **lower** than the current one,
        so version-keyed reuse across a restore is unsound — the serving
        layer's restore path does exactly that.
        """
        if state.get("capacity") != self._capacity:
            raise ConfigurationError(
                f"checkpoint capacity {state.get('capacity')} does not match "
                f"table capacity {self._capacity}"
            )
        if tuple(state.get("metric_names", ())) != self._metric_names:  # type: ignore[arg-type]
            raise ConfigurationError(
                f"checkpoint schema {state.get('metric_names')} does not "
                f"match table schema {list(self._metric_names)}"
            )
        rows = state["rows"]
        seqs = state["seq"]
        assert isinstance(rows, dict) and isinstance(seqs, dict)
        if set(rows) != set(seqs):
            raise ConfigurationError(
                "corrupt checkpoint state: row ids and sequence ids disagree"
            )
        if len(rows) > self._capacity:
            raise CapacityError(
                f"checkpoint holds {len(rows)} rows, table capacity is "
                f"{self._capacity}"
            )
        dropped = [rid for rid in self._rows if rid not in rows]
        self._rows = {}
        self._seq = {}
        self._metric_lists = {name: [] for name in self._metric_names}
        self._id_list = []
        self._id_bits = 0
        for rid, row in rows.items():
            rid = int(rid)
            if not 0 <= rid < self._capacity:
                raise CapacityError(
                    f"checkpoint row id {rid} out of range [0, {self._capacity})"
                )
            if set(row) != set(self._metric_names):
                raise ConfigurationError(
                    f"checkpoint row {rid} metric set {sorted(row)} does not "
                    f"match schema {sorted(self._metric_names)}"
                )
            seq = int(seqs[rid])
            self._rows[rid] = {n: int(row[n]) for n in self._metric_names}
            self._seq[rid] = seq
            for name in self._metric_names:
                bisect.insort(
                    self._metric_lists[name], (self._rows[rid][name], seq, rid)
                )
            bisect.insort(self._id_list, rid)
            self._id_bits |= 1 << rid
        self._next_seq = int(state["next_seq"])  # type: ignore[arg-type]
        self._version = int(state["version"])  # type: ignore[arg-type]
        self._indexes.clear()
        if self._write_listeners:
            for rid in dropped:
                for listener in self._write_listeners:
                    listener("delete", rid, None)
            for rid in self._id_list:
                row_copy = dict(self._rows[rid])
                for listener in self._write_listeners:
                    listener("restore", rid, row_copy)


class _WriteOp:
    """A pending write travelling through the 2-cycle write pipeline."""

    __slots__ = ("kind", "resource_id", "metrics")

    def __init__(self, kind: str, resource_id: int, metrics: Mapping[str, int] | None):
        self.kind = kind
        self.resource_id = resource_id
        self.metrics = metrics


class ClockedSMBM:
    """Cycle-accurate wrapper: 2-cycle pipelined writes, per-cycle reads.

    At most one write may be issued per cycle; it commits atomically on the
    tick that completes its second cycle.  ``read()`` may be called any
    number of times per cycle and always observes the committed state.
    """

    def __init__(self, capacity: int, metric_names: Sequence[str]):
        self._smbm = SMBM(capacity, metric_names)
        self._pipe: PipelineLatch[_WriteOp] = PipelineLatch(WRITE_LATENCY_CYCLES)
        self._cycle = 0
        self._commit_log: list[tuple[int, str, int]] = []

    @property
    def cycle(self) -> int:
        return self._cycle

    @property
    def commit_log(self) -> list[tuple[int, str, int]]:
        """(cycle, kind, resource_id) for every committed write, in order."""
        return list(self._commit_log)

    def issue_add(self, resource_id: int, metrics: Mapping[str, int]) -> None:
        """Present an add at the write port for the current cycle."""
        self._pipe.issue(_WriteOp("add", resource_id, dict(metrics)))

    def issue_delete(self, resource_id: int) -> None:
        """Present a delete at the write port for the current cycle."""
        self._pipe.issue(_WriteOp("delete", resource_id, None))

    def tick(self) -> None:
        """Clock edge: advance the write pipeline, committing a retiring op."""
        retiring = self._pipe.tick()
        if retiring is not None:
            if retiring.kind == "add":
                assert retiring.metrics is not None
                self._smbm.add(retiring.resource_id, retiring.metrics)
            else:
                self._smbm.delete(retiring.resource_id)
            self._commit_log.append((self._cycle, retiring.kind, retiring.resource_id))
        self._cycle += 1

    def read(self) -> SMBM:
        """The committed table (valid to read every cycle, during writes)."""
        return self._smbm
