"""Unary Filter Processing Unit (section 5.2.1).

A UFPU is programmed at compile time with an opcode (and operands) from
:class:`~repro.core.operators.UnaryOp` and, at runtime, maps an input table —
encoded as a bit vector indexed by resource id — to an output bit vector, in
**two clock cycles**, fully pipelined.

The functional ``evaluate`` method realises the paper's semantics with two
interchangeable data paths:

* the **fast path** (default) evaluates predicate/min/max against the
  SMBM's :class:`~repro.core.smbm.MetricIndex` — two bisects plus a handful
  of integer bitmask ANDs, O(log N) instead of an O(N) temp-list walk.
  Outputs are converted to :class:`BitVector` only at the unit boundary.
* the **reference path** (``naive=True``) is the paper's literal
  clock-by-clock temp-list description, kept in
  :mod:`repro.core.ufpu_reference` as the differential-testing oracle.

Operator semantics (identical on both paths):

* **predicate** — cycle 1 copies the attribute's sorted list into a temp
  list and masks entries whose resource is absent from the input vector
  (using the SMBM reverse map); cycle 2 applies the predicate to every valid
  temp-list entry in parallel and sets the output bits through the reverse
  map.
* **min / max** — cycle 1 copies + masks as above; cycle 2 feeds the
  validity bits to a first-one / last-one priority encoder; because the list
  is sorted, the first (last) valid entry is the minimum (maximum).
* **round-robin** — keeps internal state ``<last_id, w>``; re-selects
  ``last_id`` while its weight (the value of ``attrX``) is not exhausted,
  else advances a cyclic priority encoder to the next valid id.  (The paper
  starts the cyclic search *at* ``last_id``, which would re-return a valid
  but weight-exhausted ``last_id`` forever; we start at ``last_id + 1``,
  which realises the abstract weighted-round-robin semantics of
  section 4.1.1.  Each entry is selected ``max(1, weight)`` times per round.)
* **random** — cycle 1 draws ``r`` from an LFSR; cycle 2 outputs ``r`` if
  valid, else the first valid index cyclically after ``r``.

:class:`ClockedUFPU` wraps the functional unit in a 2-cycle pipeline latch
for the cycle-accurate tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import ufpu_reference
from repro.core.bitvector import BitVector
from repro.core.clocked import PipelineLatch
from repro.core.lfsr import LFSR
from repro.core.operators import RelOp, UnaryOp
from repro.core.priority_encoder import encode_cyclic
from repro.core.smbm import SMBM
from repro.errors import ConfigurationError

__all__ = ["UnaryConfig", "UFPU", "ClockedUFPU", "UFPU_LATENCY_CYCLES"]

#: Processing latency of a UFPU (section 5.2.1).
UFPU_LATENCY_CYCLES = 2


@dataclass(frozen=True)
class UnaryConfig:
    """Compile-time configuration of one UFPU.

    ``attr`` names the SMBM metric dimension the opcode operates on;
    ``rel_op``/``val`` are the predicate operands.  Operands not used by the
    opcode must be left ``None`` — the constructor enforces this so that a
    mis-compiled pipeline fails loudly.
    """

    opcode: UnaryOp
    attr: str | None = None
    rel_op: RelOp | None = None
    val: int | None = None

    def __post_init__(self) -> None:
        if self.opcode.needs_attribute and self.attr is None:
            raise ConfigurationError(f"{self.opcode} requires an attribute operand")
        if not self.opcode.needs_attribute and self.attr is not None:
            raise ConfigurationError(f"{self.opcode} takes no attribute operand")
        has_pred = self.rel_op is not None or self.val is not None
        if self.opcode.needs_predicate_operands:
            if self.rel_op is None or self.val is None:
                raise ConfigurationError("predicate requires rel_op and val operands")
        elif has_pred:
            raise ConfigurationError(f"{self.opcode} takes no rel_op/val operands")

    @classmethod
    def no_op(cls) -> "UnaryConfig":
        return cls(UnaryOp.NO_OP)

    def describe(self) -> str:
        """Human-readable form, e.g. ``predicate(util < 60)``."""
        if self.opcode is UnaryOp.PREDICATE:
            return f"predicate({self.attr} {self.rel_op} {self.val})"
        if self.opcode.needs_attribute:
            return f"{self.opcode}({self.attr})"
        return str(self.opcode)


class UFPU:
    """A single programmable unary filter processing unit."""

    def __init__(self, config: UnaryConfig, *, lfsr_seed: int = 1,
                 lfsr_width: int = 16, naive: bool = False):
        self._config = config
        # Reference-path switch: route predicate/min/max through the O(N)
        # temp-list oracle instead of the mask engine.
        self._naive = naive
        # Random operator state: a free-running LFSR (section 5.2.1).
        self._lfsr = LFSR(lfsr_width, seed=lfsr_seed)
        # Round-robin operator state: <last_id, w>.
        self._rr_last_id: int | None = None
        self._rr_w = 0

    @property
    def config(self) -> UnaryConfig:
        return self._config

    @property
    def naive(self) -> bool:
        return self._naive

    def reset_state(self) -> None:
        """Clear the stateful operator registers (round-robin position)."""
        self._rr_last_id = None
        self._rr_w = 0

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, inp: BitVector, smbm: SMBM) -> BitVector:
        """Apply the configured operation to the input table for one packet."""
        if inp.width != smbm.capacity:
            raise ConfigurationError(
                f"input vector width {inp.width} != SMBM capacity {smbm.capacity}"
            )
        op = self._config.opcode
        if op is UnaryOp.NO_OP:
            return inp.copy()
        if op is UnaryOp.PREDICATE:
            return self._predicate(inp, smbm)
        if op is UnaryOp.MIN:
            return self._extreme(inp, smbm, want_min=True)
        if op is UnaryOp.MAX:
            return self._extreme(inp, smbm, want_min=False)
        if op is UnaryOp.ROUND_ROBIN:
            return self._round_robin(inp, smbm)
        if op is UnaryOp.RANDOM:
            return self._random(inp, smbm)
        raise ConfigurationError(f"unhandled opcode {op}")  # pragma: no cover

    def _predicate(self, inp: BitVector, smbm: SMBM) -> BitVector:
        cfg = self._config
        assert cfg.attr is not None and cfg.rel_op is not None and cfg.val is not None
        if self._naive:
            return ufpu_reference.naive_predicate(cfg, inp, smbm)
        index = smbm.metric_index(cfg.attr)
        return BitVector.from_int(
            inp.width, index.predicate_mask(cfg.rel_op, cfg.val, inp.value)
        )

    def _extreme(self, inp: BitVector, smbm: SMBM, *, want_min: bool) -> BitVector:
        cfg = self._config
        assert cfg.attr is not None
        if self._naive:
            return ufpu_reference.naive_extreme(cfg, inp, smbm, want_min=want_min)
        index = smbm.metric_index(cfg.attr)
        bits = index.min_mask(inp.value) if want_min else index.max_mask(inp.value)
        return BitVector.from_int(inp.width, bits)

    def _round_robin(self, inp: BitVector, smbm: SMBM) -> BitVector:
        if inp.is_empty():
            return BitVector.zeros(inp.width)
        assert self._config.attr is not None
        last = self._rr_last_id
        if last is not None and (inp.value >> last) & 1:
            weight = smbm.metric_of(last, self._config.attr) if last in smbm else 0
            if self._rr_w < max(1, weight):
                # Keep serving the same entry while its weight allows.
                self._rr_w += 1
                return BitVector.from_int(inp.width, 1 << last)
        # Advance: first valid index cyclically after last (or from 0).
        start = 0 if last is None else (last + 1) % inp.width
        nxt = encode_cyclic(inp, start)
        assert nxt is not None  # inp is non-empty
        self._rr_last_id = nxt
        self._rr_w = 1
        return BitVector.from_int(inp.width, 1 << nxt)

    def _random(self, inp: BitVector, smbm: SMBM) -> BitVector:
        if inp.is_empty():
            return BitVector.zeros(inp.width)
        r = self._lfsr.sample(inp.width)
        idx = r if (inp.value >> r) & 1 else encode_cyclic(inp, r)
        assert idx is not None
        return BitVector.from_int(inp.width, 1 << idx)


class ClockedUFPU:
    """Cycle-accurate UFPU: 2-cycle latency, one new input accepted per cycle."""

    def __init__(self, config: UnaryConfig, *, lfsr_seed: int = 1,
                 naive: bool = False):
        self._unit = UFPU(config, lfsr_seed=lfsr_seed, naive=naive)
        self._pipe: PipelineLatch[BitVector] = PipelineLatch(UFPU_LATENCY_CYCLES)
        self._cycle = 0

    @property
    def cycle(self) -> int:
        return self._cycle

    def issue(self, inp: BitVector, smbm: SMBM) -> None:
        """Present an input table at the unit for this cycle.

        The result is computed against the SMBM state visible at issue time,
        matching hardware where cycle 1 latches the temp list.
        """
        self._pipe.issue(self._unit.evaluate(inp, smbm))

    def tick(self) -> BitVector | None:
        """Clock edge; returns the output retiring this cycle, if any."""
        out = self._pipe.tick()
        self._cycle += 1
        return out
