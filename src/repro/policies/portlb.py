"""Load balancing over switch ports (section 7.2.4).

* **Policy 1** — random output port;
* **Policy 2** — least queued output port;
* **Policy 3** — DRILL: sample ``d`` random ports, consider also the ``m``
  least loaded samples remembered from the previous time slot, pick the
  minimum-queue port among them, and remember this slot's samples.

DRILL's Table 5 expression in Thanos is::

    union( K=d random(table),  K=m min(queue)(previous samples) )
        |> K=1 min(queue)

where "previous samples" enters the pipeline as an explicit input table fed
back from the last decision (RMT-side state).  :class:`DrillPolicy` runs
exactly this compiled pipeline per packet; because per-packet pipeline
evaluation in Python is slow, it also offers a ``fast`` mode with the same
semantics in plain code (used by the large simulation sweeps; the
equivalence is covered by tests).

Queue lengths are *local* metrics: in hardware they are event-maintained in
the SMBM at enqueue/dequeue (section 3); here we write the live queue depths
into the SMBM right before each decision, which is equivalent at decision
time.
"""

from __future__ import annotations

import random

from repro.core.bitvector import BitVector
from repro.core.compiler import PolicyCompiler
from repro.core.pipeline import PipelineParams
from repro.core.policy import (
    Policy,
    TableRef,
    min_of,
    random_pick,
    union,
)
from repro.core.smbm import SMBM
from repro.errors import ConfigurationError
from repro.netsim.packet import NetPacket
from repro.netsim.switch import NetSwitch

__all__ = ["RandomPortPolicy", "LeastQueuedPortPolicy", "DrillPolicy",
           "drill_policy_ast"]

#: Queue depths are stored in the SMBM in 64-byte units to stay in int range.
QUEUE_UNIT_BYTES = 64


class RandomPortPolicy:
    """Policy 1: uniform random among candidate ports."""

    def __init__(self, rng: random.Random):
        self._rng = rng

    def choose(self, switch: NetSwitch, packet: NetPacket,
               candidates: list[int]) -> int:
        return self._rng.choice(candidates)


class _PortTableMixin:
    """Shared machinery: a per-switch SMBM of candidate ports with their
    queue depths (resource id = index into the candidate list).

    ``update_period_s`` models how often the hardware samples the queue
    registers into the SMBM: every decision within one period sees the same
    snapshot, exactly like the multiple in-flight decisions of a real
    multi-pipeline ingress.  Zero means a fresh snapshot per decision.
    The herding this staleness induces in "pick the global minimum" is the
    effect DRILL's randomised sampling is designed to break.
    """

    update_period_s: float = 0.0

    def _port_smbm(self, switch: NetSwitch, candidates: list[int]) -> SMBM:
        smbm = switch.attachments.get("portlb_smbm")
        if not isinstance(smbm, SMBM):
            smbm = SMBM(max(len(candidates), 2), ["queue"])
            switch.attachments["portlb_smbm"] = smbm
            switch.attachments["portlb_snapshot_at"] = float("-inf")
        now = switch._sim.now
        last = switch.attachments["portlb_snapshot_at"]
        if self.update_period_s and now - last < self.update_period_s:
            return smbm  # decisions within the period share the snapshot
        switch.attachments["portlb_snapshot_at"] = now
        for index, port in enumerate(candidates):
            # Queue metric = drain time in tenths of a microsecond, so ports
            # of unequal speed compare correctly (a short queue on a slow
            # port is still a long wait).
            link = switch.ports[port]
            drain_s = link.queued_bytes * 8 / link.bandwidth_bps
            depth = int(drain_s * 1e7)
            if index in smbm:
                smbm.update(index, {"queue": depth})
            else:
                smbm.add(index, {"queue": depth})
        return smbm


class LeastQueuedPortPolicy(_PortTableMixin):
    """Policy 2: the least-queued port, through a compiled min(queue)."""

    def __init__(self, params: PipelineParams | None = None,
                 update_period_s: float = 0.0):
        self.update_period_s = update_period_s
        self._compiled = PolicyCompiler(
            params or PipelineParams(n=2, k=1, f=2, chain_length=1)
        ).compile(Policy(min_of(TableRef(), "queue"), name="portlb-least-queued"))

    def choose(self, switch: NetSwitch, packet: NetPacket,
               candidates: list[int]) -> int:
        smbm = self._port_smbm(switch, candidates)
        selected = self._compiled.select(smbm)
        if selected is None or selected >= len(candidates):
            return candidates[0]
        return candidates[selected]


def drill_policy_ast(d: int, m: int) -> tuple[Policy, dict]:
    """The DRILL policy AST plus the tap for the feedback samples.

    Returns ``(policy, taps)`` where ``taps['examined']`` is the union node
    whose value the RMT stage stores as the next decision's input 1.
    """
    if d < 1 or m < 0:
        raise ConfigurationError(f"DRILL needs d >= 1 and m >= 0, got d={d} m={m}")
    sampled = random_pick(TableRef(), k=d)
    if m > 0:
        remembered = min_of(TableRef(input_index=1), "queue", k=m)
        examined = union(sampled, remembered)
        taps = {"examined": examined}
    else:
        examined = sampled
        taps = {}  # no memory, no feedback input to store
    policy = Policy(min_of(examined, "queue"), name=f"drill-d{d}-m{m}")
    return policy, taps


class DrillPolicy(_PortTableMixin):
    """Policy 3: DRILL(d, m), per-packet decisions.

    ``mode='thanos'`` evaluates the compiled filter pipeline per packet;
    ``mode='fast'`` computes the same decision in plain Python (for the
    large simulation sweeps).
    """

    def __init__(
        self,
        d: int = 2,
        m: int = 1,
        *,
        mode: str = "fast",
        rng: random.Random | None = None,
        params: PipelineParams | None = None,
        lfsr_seed: int = 1,
        update_period_s: float = 0.0,
    ):
        if mode not in ("thanos", "fast"):
            raise ConfigurationError(f"unknown DRILL mode {mode!r}")
        self.d = d
        self.m = m
        self.update_period_s = update_period_s
        self._mode = mode
        self._rng = rng or random.Random(0)
        if mode == "thanos":
            chain = max(d, m, 1)
            policy, taps = drill_policy_ast(d, m)
            self._compiled = PolicyCompiler(
                params or PipelineParams(n=4, k=3, f=2, chain_length=chain)
            ).compile(policy, taps=taps, lfsr_seed=lfsr_seed)

    # -- per-switch feedback state ---------------------------------------------------

    def _prev_samples(self, switch: NetSwitch, width: int) -> BitVector:
        prev = switch.attachments.get("drill_prev")
        if isinstance(prev, BitVector) and prev.width == width:
            return prev
        return BitVector.zeros(width)

    # -- decisions ------------------------------------------------------------------------

    def choose(self, switch: NetSwitch, packet: NetPacket,
               candidates: list[int]) -> int:
        smbm = self._port_smbm(switch, candidates)
        if self._mode == "thanos":
            index = self._choose_thanos(switch, smbm, len(candidates))
        else:
            index = self._choose_fast(switch, smbm, len(candidates))
        return candidates[index]

    def _choose_thanos(self, switch: NetSwitch, smbm: SMBM, n: int) -> int:
        prev = self._prev_samples(switch, smbm.capacity)
        out, taps = self._compiled.evaluate_with_taps(smbm, {1: prev})
        if "examined" in taps:
            switch.attachments["drill_prev"] = taps["examined"]
        selected = out.first_set()
        if selected is None or selected >= n:
            return self._rng.randrange(n)
        return selected

    def _choose_fast(self, switch: NetSwitch, smbm: SMBM, n: int) -> int:
        prev = self._prev_samples(switch, smbm.capacity)
        sampled: set[int] = set()
        pool = list(range(n))
        self._rng.shuffle(pool)
        sampled.update(pool[: self.d])
        remembered = sorted(
            (i for i in prev.indices() if i < n),
            key=lambda i: smbm.metric_of(i, "queue"),
        )[: self.m]
        examined = sampled | set(remembered)
        best = min(examined, key=lambda i: (smbm.metric_of(i, "queue"), i))
        switch.attachments["drill_prev"] = BitVector.from_indices(
            smbm.capacity, examined
        )
        return best
