"""Performance-aware routing policies (section 7.2.3).

Three uplink-selection policies for leaf/edge switches:

* **Policy 1** — select a path uniformly at random (what ECMP achieves);
* **Policy 2** — select the path with least utilisation (CONGA-style);
* **Policy 3** — filter paths simultaneously among the top-X least queued,
  top-X least lossy, and top-X least utilised, then pick the least utilised
  of the filtered set, falling back to Policy 2 when the intersection is
  empty.  This is the policy "which cannot be implemented on existing
  programmable switches" — it needs Thanos's chained K-UFPU intersections.

:class:`ThanosRoutingPolicy` runs any of the three through a real compiled
filter pipeline: one :class:`~repro.switch.filter_module.FilterModule` per
(switch, destination edge), whose SMBM holds one resource per candidate
uplink port with the ``(util, queue, loss)`` path metrics, refreshed by the
probe service.
"""

from __future__ import annotations

import random

from repro.core.pipeline import PipelineParams
from repro.core.policy import (
    Conditional,
    Policy,
    TableRef,
    intersection,
    min_of,
    random_pick,
)
from repro.errors import ConfigurationError
from repro.netsim.packet import NetPacket
from repro.netsim.probes import PATH_METRIC_NAMES, PathMetricsDirectory, ProbeService
from repro.netsim.switch import NetSwitch
from repro.netsim.topology import Network
from repro.switch.filter_module import FilterModule

__all__ = ["RandomUplinkPolicy", "routing_policy_ast", "ThanosRoutingPolicy"]


class RandomUplinkPolicy:
    """Policy 1 without any hardware: uniform random uplink (baseline)."""

    def __init__(self, rng: random.Random):
        self._rng = rng

    def choose(self, switch: NetSwitch, packet: NetPacket,
               candidates: list[int]) -> int:
        return self._rng.choice(candidates)


def routing_policy_ast(name: str, top_x: int = 5) -> Policy:
    """The section 7.2.3 policy ASTs over the (util, queue, loss) schema."""
    table = TableRef()
    if name == "policy1":
        return Policy(random_pick(table), name="routing-random")
    if name == "policy2":
        return Policy(min_of(table, "util"), name="routing-least-util")
    if name == "policy3":
        if top_x < 1:
            raise ConfigurationError(f"top-X must be >= 1, got {top_x}")
        eligible = intersection(
            intersection(
                min_of(table, "queue", k=top_x),
                min_of(table, "loss", k=top_x),
            ),
            min_of(table, "util", k=top_x),
        )
        return Policy(
            Conditional(min_of(eligible, "util"), min_of(TableRef(), "util")),
            name="routing-multi-metric",
        )
    raise ConfigurationError(
        f"unknown routing policy {name!r}; expected policy1/policy2/policy3"
    )


class ThanosRoutingPolicy:
    """Uplink selection through compiled Thanos filter pipelines.

    Resources are candidate uplink ports, identified inside the SMBM by
    their index within the switch's ``up_ports`` list.  Path metrics are
    refreshed by the probe service at its period — routing decisions between
    refreshes act on stale state, exactly as with real probe packets.
    """

    def __init__(
        self,
        network: Network,
        directory: PathMetricsDirectory,
        probe_service: ProbeService | None,
        policy_name: str,
        *,
        top_x: int = 5,
        params: PipelineParams | None = None,
        rng: random.Random | None = None,
    ):
        self._network = network
        self._directory = directory
        self._policy_name = policy_name
        self._top_x = top_x
        self._params = params or PipelineParams(n=8, k=4, f=2, chain_length=8)
        self._rng = rng or random.Random(0)
        self._modules: dict[tuple[str, str], FilterModule] = {}
        self._seed = 1
        # Snapshot mode: a ProbeService drives periodic refreshes from the
        # live directory.  In-band mode (probe_service=None): metric updates
        # arrive per returning probe via deliver_path_metrics, and the
        # directory is only used to bootstrap newly created modules.
        if probe_service is not None:
            probe_service.register(self.refresh)

    # -- module management ---------------------------------------------------------

    def _policy(self, n_candidates: int) -> Policy:
        # Clamp top-X to the candidate count so small fabrics stay sane.
        return routing_policy_ast(
            self._policy_name, top_x=min(self._top_x, n_candidates)
        )

    def _module_for(self, switch: NetSwitch, dst_edge: str) -> FilterModule:
        key = (switch.name, dst_edge)
        module = self._modules.get(key)
        if module is None:
            n = len(switch.up_ports)
            module = FilterModule(
                capacity=max(n, 2),
                metric_names=PATH_METRIC_NAMES,
                policy=self._policy(n),
                params=self._params,
                lfsr_seed=self._seed,
            )
            self._seed += 97
            self._modules[key] = module
            self._refresh_module(switch, dst_edge, module, self._network.sim.now)
        return module

    def _refresh_module(
        self, switch: NetSwitch, dst_edge: str, module: FilterModule, now: float
    ) -> None:
        metrics = self._directory.port_metrics(switch.name, dst_edge, now)
        port_to_index = {port: i for i, port in enumerate(switch.up_ports)}
        for pm in metrics:
            index = port_to_index.get(pm.port)
            if index is None:
                continue  # a down-route port; not a candidate resource
            module.update_resource(index, pm.as_smbm_metrics())

    def refresh(self, now: float) -> None:
        """Probe tick: push fresh path metrics into every module's SMBM."""
        for (switch_name, dst_edge), module in self._modules.items():
            switch = self._network.switches[switch_name]
            self._refresh_module(switch, dst_edge, module, now)

    def deliver_path_metrics(
        self, switch_name: str, dst_edge: str, port: int,
        metrics: dict[str, float], now: float,
    ) -> None:
        """In-band probe return: one path's accumulated metrics arrive at
        their origin switch and update its SMBM (delete+add, section 5.1.2).

        The signature matches :class:`~repro.netsim.inband_probes.
        InbandProbeService`'s deliver callback.  With several paths behind
        one port, the freshest report wins.
        """
        switch = self._network.switches[switch_name]
        module = self._module_for(switch, dst_edge)
        port_to_index = {p: i for i, p in enumerate(switch.up_ports)}
        index = port_to_index.get(port)
        if index is None:
            return  # the port stopped being a candidate (route change)
        from repro.netsim.probes import LOSS_SCALE, UTIL_SCALE

        module.update_resource(index, {
            "util": int(metrics["util"] * UTIL_SCALE),
            "queue": int(metrics["queue"]),
            "loss": int(metrics["loss"] * LOSS_SCALE),
        })

    # -- the ForwardingPolicy interface ------------------------------------------------

    def choose(self, switch: NetSwitch, packet: NetPacket,
               candidates: list[int]) -> int:
        dst_edge = self._network.edge_of(packet.dst)
        module = self._module_for(switch, dst_edge)
        selected = module.select()
        if selected is None or selected >= len(switch.up_ports):
            return self._rng.choice(candidates)
        return switch.up_ports[selected]
