"""Stateful L4 load balancing over end servers (section 7.2.2).

Two spine-switch policies over the server resource table
``(cpu, mem, bw)`` — cpu utilisation percent, available memory MB, available
bandwidth Mbps, refreshed by server probes:

* **Policy 1** — select a server uniformly at random (what production L4
  load balancers do);
* **Policy 2** — select uniformly at random among servers with
  ``cpu < X and mem > Y and bw > Z``; if that set is empty, fall back to
  Policy 1.  (The Figure 14 worked example.)

Connection affinity is provided by a SilkRoad-style exact-match connection
table: once a flow is mapped to a server, later packets of the flow stick to
it regardless of policy output.
"""

from __future__ import annotations

from repro.core.pipeline import PipelineParams
from repro.core.policy import (
    Conditional,
    Policy,
    TableRef,
    intersection,
    predicate,
    random_pick,
)
from repro.errors import CapacityError, ConfigurationError
from repro.switch.filter_module import FilterModule

__all__ = ["ConnectionTable", "L4LoadBalancer", "l4lb_policy_ast"]

#: The paper's thresholds: X=70% cpu, Y=1 GB memory, Z=2 Gbps bandwidth.
DEFAULT_CPU_LIMIT = 70
DEFAULT_MEM_FLOOR_MB = 1024
DEFAULT_BW_FLOOR_MBPS = 2000

SERVER_METRICS = ("cpu", "mem", "bw")


class ConnectionTable:
    """A SilkRoad-style exact-match table: flow id -> server id.

    Models the single key-value table the paper implemented ("we did not
    implement advanced SilkRoad functionalities").
    """

    def __init__(self, capacity: int = 65536):
        if capacity <= 0:
            raise ConfigurationError("connection table capacity must be positive")
        self._capacity = capacity
        self._entries: dict[int, int] = {}
        self.hits = 0
        self.inserts = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, flow_id: int) -> int | None:
        server = self._entries.get(flow_id)
        if server is not None:
            self.hits += 1
        return server

    def insert(self, flow_id: int, server: int) -> None:
        if flow_id in self._entries:
            raise ConfigurationError(f"flow {flow_id} already mapped")
        if len(self._entries) >= self._capacity:
            raise CapacityError("connection table full")
        self._entries[flow_id] = server
        self.inserts += 1

    def remove(self, flow_id: int) -> None:
        self._entries.pop(flow_id, None)

    def drop_server(self, server: int) -> list[int]:
        """Remove every flow pinned to ``server`` (its connections died
        with it); returns the dropped flow ids so they can be remapped."""
        dropped = [f for f, s in self._entries.items() if s == server]
        for flow_id in dropped:
            del self._entries[flow_id]
        return dropped


def l4lb_policy_ast(
    which: int,
    cpu_limit: int = DEFAULT_CPU_LIMIT,
    mem_floor: int = DEFAULT_MEM_FLOOR_MB,
    bw_floor: int = DEFAULT_BW_FLOOR_MBPS,
) -> Policy:
    """Policy 1 or Policy 2 of section 7.2.2 as an AST."""
    if which == 1:
        return Policy(random_pick(TableRef()), name="l4lb-policy1")
    if which == 2:
        servers = TableRef()
        eligible = intersection(
            intersection(
                predicate(servers, "cpu", "<", cpu_limit),
                predicate(servers, "mem", ">", mem_floor),
            ),
            predicate(servers, "bw", ">", bw_floor),
        )
        return Policy(
            Conditional(random_pick(eligible), random_pick(TableRef())),
            name="l4lb-policy2",
        )
    raise ConfigurationError(f"unknown L4 LB policy {which}; expected 1 or 2")


class L4LoadBalancer:
    """The spine-switch load balancer: filter module + connection table."""

    def __init__(
        self,
        n_servers: int,
        which_policy: int,
        *,
        cpu_limit: int = DEFAULT_CPU_LIMIT,
        mem_floor: int = DEFAULT_MEM_FLOOR_MB,
        bw_floor: int = DEFAULT_BW_FLOOR_MBPS,
        params: PipelineParams | None = None,
        lfsr_seed: int = 1,
    ):
        if n_servers < 1:
            raise ConfigurationError("need at least one server")
        self._module = FilterModule(
            capacity=max(n_servers, 2),
            metric_names=SERVER_METRICS,
            policy=l4lb_policy_ast(which_policy, cpu_limit, mem_floor, bw_floor),
            params=params or PipelineParams(n=4, k=3, f=2, chain_length=2),
            lfsr_seed=lfsr_seed,
        )
        self._n_servers = n_servers
        self._live = set(range(n_servers))
        self.connections = ConnectionTable()
        self.fallback_assignments = 0
        self.evictions = 0

    @property
    def module(self) -> FilterModule:
        return self._module

    @property
    def live_servers(self) -> frozenset[int]:
        """Servers currently eligible for new assignments."""
        return frozenset(self._live)

    def on_probe(self, server: int, metrics: dict[str, int]) -> None:
        """A server probe: refresh its row in the resource table.

        A probe answered by an evicted server readmits it — the probe *is*
        the liveness signal, so hearing one means the server is back.
        """
        if not 0 <= server < self._n_servers:
            raise ConfigurationError(f"unknown server {server}")
        self._live.add(server)
        self._module.update_resource(server, metrics)

    def evict_server(self, server: int) -> list[int]:
        """Take a dead server out of rotation.

        Its resource row is deleted (the filter can no longer pick it), it
        leaves the fallback live set, and its connection-affinity entries
        are dropped so those flows remap on their next packet.  Returns the
        flow ids that lost their pinning.
        """
        if not 0 <= server < self._n_servers:
            raise ConfigurationError(f"unknown server {server}")
        self._live.discard(server)
        self._module.remove_resource(server)
        self.evictions += 1
        return self.connections.drop_server(server)

    def assign(self, flow_id: int) -> int:
        """Map a flow to a server (stable across the flow's lifetime)."""
        existing = self.connections.lookup(flow_id)
        if existing is not None:
            return existing
        server = self._module.select()
        if server is None or server >= self._n_servers or server not in self._live:
            # No resource data yet (or a non-singleton output): spread
            # deterministically over the live set, as a hash-based LB would.
            live = sorted(self._live) or list(range(self._n_servers))
            server = live[flow_id % len(live)]
            self.fallback_assignments += 1
        self.connections.insert(flow_id, server)
        return server

    def release(self, flow_id: int) -> None:
        self.connections.remove(flow_id)
