"""Data plane diagnosis (Figure 5).

    Filter all switch ports with packet rate > t.

The monitor keeps a per-port decayed packet-rate metric in an SMBM; the
diagnosis query itself is a Thanos predicate evaluated at line rate, so an
operator (or an in-band telemetry packet) gets the answer without touching
the control plane.
"""

from __future__ import annotations

import math

from repro.core.pipeline import PipelineParams
from repro.core.policy import Policy, TableRef, predicate
from repro.errors import ConfigurationError
from repro.switch.filter_module import FilterModule

__all__ = ["PortRateMonitor"]


class PortRateMonitor:
    """Per-port packet rates with a line-rate threshold query."""

    def __init__(
        self,
        n_ports: int,
        rate_threshold_pps: float,
        *,
        tau_s: float = 1e-3,
        params: PipelineParams | None = None,
    ):
        if n_ports < 1:
            raise ConfigurationError("need at least one port")
        if rate_threshold_pps <= 0:
            raise ConfigurationError("threshold must be positive")
        self._tau = tau_s
        self._module = FilterModule(
            capacity=max(n_ports, 2),
            metric_names=("rate",),
            policy=Policy(
                predicate(TableRef(), "rate", ">", int(rate_threshold_pps)),
                name="diagnosis-port-rate",
            ),
            params=params or PipelineParams(n=2, k=1, f=1, chain_length=1),
        )
        self._n = n_ports
        self._rates = [0.0] * n_ports
        self._last = [0.0] * n_ports
        for port in range(n_ports):
            self._module.update_resource(port, {"rate": 0})

    @property
    def module(self) -> FilterModule:
        return self._module

    def on_packet(self, port: int, now: float) -> None:
        """Record one packet through ``port``."""
        if not 0 <= port < self._n:
            raise ConfigurationError(f"port {port} out of range [0, {self._n})")
        dt = now - self._last[port]
        if dt > 0:
            self._rates[port] *= math.exp(-dt / self._tau)
        self._rates[port] += 1.0 / self._tau
        self._last[port] = now
        self._module.update_resource(port, {"rate": int(self._rates[port])})

    def hot_ports(self) -> set[int]:
        """The Figure 5 query: all ports with packet rate over threshold."""
        return set(self._module.evaluate().indices())

    def rate_of(self, port: int, now: float) -> float:
        rate = self._rates[port]
        dt = now - self._last[port]
        if dt > 0:
            rate *= math.exp(-dt / self._tau)
        return rate
