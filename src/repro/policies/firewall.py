"""Security and firewall (Figure 6).

    If the packet rate for an IP destination D is > T, filter (and
    black-list or drop packets from) all source IPs sending to D.

The switch tracks per-destination packet rates in an SMBM (a decaying
counter refreshed per packet — the event-driven local-metric path of
section 3) and evaluates a Thanos ``predicate(rate > T)`` to obtain the set
of destinations under attack.  Sources seen sending to a black-listed
destination are black-listed too; their packets drop at ingress.
"""

from __future__ import annotations

import math

from repro.core.pipeline import PipelineParams
from repro.core.policy import Policy, TableRef, predicate
from repro.errors import ConfigurationError
from repro.switch.filter_module import FilterModule

__all__ = ["RateFirewall"]


class RateFirewall:
    """Rate-based destination black-listing."""

    def __init__(
        self,
        n_destinations: int,
        rate_threshold_pps: float,
        *,
        tau_s: float = 1e-3,
        params: PipelineParams | None = None,
    ):
        if n_destinations < 1:
            raise ConfigurationError("need at least one destination slot")
        if rate_threshold_pps <= 0:
            raise ConfigurationError("rate threshold must be positive")
        self._tau = tau_s
        self._threshold = rate_threshold_pps
        # The SMBM stores each destination's decayed packet rate in pps.
        self._module = FilterModule(
            capacity=max(n_destinations, 2),
            metric_names=("rate",),
            policy=Policy(
                predicate(TableRef(), "rate", ">", int(rate_threshold_pps)),
                name="firewall-rate",
            ),
            params=params or PipelineParams(n=2, k=1, f=1, chain_length=1),
        )
        self._n = n_destinations
        self._rates: dict[int, float] = {}
        self._last_seen: dict[int, float] = {}
        self._senders_to: dict[int, set[int]] = {}
        self._blacklist: set[int] = set()
        self.packets_dropped = 0

    @property
    def module(self) -> FilterModule:
        return self._module

    @property
    def blacklisted_sources(self) -> set[int]:
        return set(self._blacklist)

    def _update_rate(self, dst: int, now: float) -> None:
        rate = self._rates.get(dst, 0.0)
        last = self._last_seen.get(dst, now)
        if now > last:
            rate *= math.exp(-(now - last) / self._tau)
        rate += 1.0 / self._tau  # one packet adds 1/tau pps of decayed rate
        self._rates[dst] = rate
        self._last_seen[dst] = now
        self._module.update_resource(dst, {"rate": int(rate)})

    def on_packet(self, src: int, dst: int, now: float) -> bool:
        """Process one packet; returns True if forwarded, False if dropped."""
        if src in self._blacklist:
            self.packets_dropped += 1
            return False
        if not 0 <= dst < self._n:
            raise ConfigurationError(f"destination {dst} out of range")
        self._senders_to.setdefault(dst, set()).add(src)
        self._update_rate(dst, now)
        # The filter policy returns every destination over threshold; all
        # sources sending to those destinations are black-listed (Figure 6).
        over = self._module.evaluate()
        for hot_dst in over.indices():
            self._blacklist |= self._senders_to.get(hot_dst, set())
        if src in self._blacklist:
            self.packets_dropped += 1
            return False
        return True

    def rate_of(self, dst: int, now: float) -> float:
        """Current decayed rate estimate for a destination, in pps."""
        rate = self._rates.get(dst, 0.0)
        last = self._last_seen.get(dst, now)
        if now > last:
            rate *= math.exp(-(now - last) / self._tau)
        return rate
