"""The Table 5 example policies.

Table 5 of the paper shows how five evaluation policies map onto Thanos
filter chains.  This module builds each as a policy AST (plus, for DRILL,
its feedback tap) so the Table 5 bench can compile all of them onto the
default pipeline and verify their semantics.

| Key                  | Paper policy                                  |
|----------------------|-----------------------------------------------|
| ``ecmp-random``      | Policy 1 in 7.2.3 — K=1 random (ECMP)         |
| ``conga-min-util``   | Policy 2 in 7.2.3 — K=1 min(util) (CONGA)     |
| ``l4lb-resource``    | Policy 2 in 7.2.2 — predicate intersection -> random, MUX fallback |
| ``routing-top-x``    | Policy 3 in 7.2.3 — triple top-X intersection -> min(util), MUX fallback |
| ``drill``            | Policy 3 in 7.2.4 — DRILL(d, m)               |
"""

from __future__ import annotations

from repro.core.policy import Node, Policy
from repro.errors import ConfigurationError
from repro.policies.l4lb import l4lb_policy_ast
from repro.policies.portlb import drill_policy_ast
from repro.policies.routing import routing_policy_ast

__all__ = ["TABLE5_POLICIES", "build_table5_policy"]

TABLE5_POLICIES = (
    "ecmp-random",
    "conga-min-util",
    "l4lb-resource",
    "routing-top-x",
    "drill",
)


def build_table5_policy(
    key: str, *, top_x: int = 3, d: int = 2, m: int = 1
) -> tuple[Policy, dict[str, Node]]:
    """Build one Table 5 policy; returns (policy, taps)."""
    if key == "ecmp-random":
        return routing_policy_ast("policy1"), {}
    if key == "conga-min-util":
        return routing_policy_ast("policy2"), {}
    if key == "l4lb-resource":
        return l4lb_policy_ast(2), {}
    if key == "routing-top-x":
        return routing_policy_ast("policy3", top_x=top_x), {}
    if key == "drill":
        return drill_policy_ast(d, m)
    raise ConfigurationError(
        f"unknown Table 5 policy {key!r}; known: {TABLE5_POLICIES}"
    )
