"""Network functions built on Thanos filter policies (section 7).

* :mod:`~repro.policies.routing` — performance-aware routing, Policies 1-3
  of section 7.2.3 (ECMP-style random, CONGA-style least-utilised, and the
  multi-metric top-X intersection policy only Thanos can express);
* :mod:`~repro.policies.portlb` — load balancing over switch ports,
  Policies 1-3 of section 7.2.4 including DRILL;
* :mod:`~repro.policies.l4lb` — stateful L4 load balancing over servers,
  Policies 1-2 of section 7.2.2, with a SilkRoad-style connection table;
* :mod:`~repro.policies.firewall` — the Figure 6 rate-based blacklist;
* :mod:`~repro.policies.diagnosis` — the Figure 5 port-rate query;
* :mod:`~repro.policies.table5` — the Table 5 policy constructors.
"""

from repro.policies.routing import (
    RandomUplinkPolicy,
    ThanosRoutingPolicy,
    routing_policy_ast,
)
from repro.policies.portlb import (
    RandomPortPolicy,
    LeastQueuedPortPolicy,
    DrillPolicy,
)
from repro.policies.l4lb import ConnectionTable, L4LoadBalancer
from repro.policies.firewall import RateFirewall
from repro.policies.diagnosis import PortRateMonitor
from repro.policies.table5 import TABLE5_POLICIES, build_table5_policy

__all__ = [
    "RandomUplinkPolicy",
    "ThanosRoutingPolicy",
    "routing_policy_ast",
    "RandomPortPolicy",
    "LeastQueuedPortPolicy",
    "DrillPolicy",
    "ConnectionTable",
    "L4LoadBalancer",
    "RateFirewall",
    "PortRateMonitor",
    "TABLE5_POLICIES",
    "build_table5_policy",
]
