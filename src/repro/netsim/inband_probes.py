"""In-band probe packets (section 3, remote metrics — the full mechanism).

:class:`~repro.netsim.probes.ProbeService` models probing as periodic metric
snapshots (capturing staleness only).  This module implements the mechanism
the paper actually describes: **real probe packets** that

* are injected at each edge switch, one per (candidate path, destination
  edge) pair, every period;
* are *source-routed* along their path, accumulating the worst-link metrics
  (max utilisation, max queue, max loss) hop by hop;
* bounce at the destination edge and return to the originator, which hands
  the accumulated path metrics to the routing policy (updating its SMBM);
* occupy real link bandwidth and queue space, and can themselves be dropped
  — probing on a congested fabric is not free.

This matches CONGA/HULA-style leaf-to-leaf probing; section 7.2.3's "each
switch periodically generates the queuing, loss rate, and utilization
metrics for its links and sends it to all the leaf switches" is realised by
the accumulation the probe performs as it crosses those switches' links.
"""

from __future__ import annotations

import itertools
from typing import Callable

from repro.errors import ConfigurationError, SimulationError
from repro.netsim.packet import NetPacket
from repro.netsim.sim import Simulator
from repro.netsim.topology import Network

__all__ = ["ProbePacket", "InbandProbeService", "PROBE_BYTES"]

#: Wire size of a probe packet (id + M metrics, Ethernet-framed).
PROBE_BYTES = 64

_probe_flow_ids = itertools.count(1 << 40)  # never collides with data flows

#: Callback signature: (origin switch, dst edge, first-hop port, metrics, now).
Deliver = Callable[[str, str, int, dict[str, float], float], None]


class ProbePacket(NetPacket):
    """A source-routed probe accumulating worst-link path metrics."""

    __slots__ = ("route", "hop_index", "origin", "dst_edge", "first_port",
                 "acc_util", "acc_queue", "acc_loss", "returning")

    def __init__(self, route: list[str], origin: str, dst_edge: str,
                 first_port: int):
        super().__init__(
            flow_id=next(_probe_flow_ids), src=-1, dst=-1, seq=0,
            size_bytes=PROBE_BYTES,
        )
        self.route = route
        self.hop_index = 0
        self.origin = origin
        self.dst_edge = dst_edge
        self.first_port = first_port
        self.acc_util = 0.0
        self.acc_queue = 0
        self.acc_loss = 0.0
        self.returning = False


class InbandProbeService:
    """Injects, forwards, and collects probe packets on a network.

    Every ``period_s`` each edge switch sends one probe along every
    enumerated path to every other edge switch.  Completed round trips call
    ``deliver`` with the forward-path metrics.
    """

    def __init__(self, sim: Simulator, network: Network, deliver: Deliver,
                 period_s: float = 1e-3):
        if period_s <= 0:
            raise ConfigurationError(f"probe period must be positive: {period_s}")
        self._sim = sim
        self._network = network
        self._deliver = deliver
        self._period = period_s
        self._running = False
        # (origin, dst_edge) -> list of (first_port, node route).
        self._routes: dict[tuple[str, str], list[tuple[int, list[str]]]] = {}
        self.probes_sent = 0
        self.probes_completed = 0
        self.probes_lost = 0
        self._install_handlers()

    # -- setup --------------------------------------------------------------------

    def _edges(self) -> list[str]:
        return sorted({self._network.edge_of(h) for h in self._network.hosts})

    def _paths(self, origin: str, dst_edge: str) -> list[tuple[int, list[str]]]:
        key = (origin, dst_edge)
        cached = self._routes.get(key)
        if cached is None:
            cached = []
            for node_path in self._network.paths_between(origin, dst_edge):
                if len(node_path) < 2:
                    continue
                port = self._network.port_between(origin, node_path[1])
                cached.append((port, node_path))
            self._routes[key] = cached
        return cached

    def _install_handlers(self) -> None:
        """Teach every switch to source-route probe packets."""
        for switch in self._network.switches.values():
            original_receive = switch.receive

            def receive(packet, in_port, _switch=switch,
                        _orig=original_receive):
                if isinstance(packet, ProbePacket):
                    self._handle_probe(_switch, packet)
                else:
                    _orig(packet, in_port)

            switch.receive = receive  # type: ignore[method-assign]

    # -- probe lifecycle --------------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._sim.schedule(0.0, self._inject_round)

    def _inject_round(self) -> None:
        edges = self._edges()
        for origin in edges:
            for dst_edge in edges:
                if dst_edge == origin:
                    continue
                for port, route in self._paths(origin, dst_edge):
                    probe = ProbePacket(route, origin, dst_edge, port)
                    self.probes_sent += 1
                    self._forward(self._network.switches[origin], probe)
        self._sim.schedule(self._period, self._inject_round)

    def _handle_probe(self, switch, probe: ProbePacket) -> None:
        node = switch.name
        expected = probe.route[-1] if probe.returning else probe.route[
            min(probe.hop_index, len(probe.route) - 1)
        ]
        if not probe.returning and node == probe.route[-1]:
            # Reached the destination edge: bounce back along the reverse.
            probe.returning = True
            probe.route = list(reversed(probe.route))
            probe.hop_index = 0
        if probe.returning and node == probe.route[-1]:
            # Home again: hand the forward-path metrics to the policy.
            self.probes_completed += 1
            self._deliver(
                probe.origin, probe.dst_edge, probe.first_port,
                {
                    "util": probe.acc_util,
                    "queue": probe.acc_queue,
                    "loss": probe.acc_loss,
                },
                self._sim.now,
            )
            return
        self._forward(switch, probe)

    def _forward(self, switch, probe: ProbePacket) -> None:
        node = switch.name
        try:
            position = probe.route.index(node)
        except ValueError:
            raise SimulationError(
                f"probe strayed off its route: at {node}, route {probe.route}"
            ) from None
        next_hop = probe.route[position + 1]
        port = self._network.port_between(node, next_hop)
        link = switch.ports[port]
        if not probe.returning:
            # Accumulate the worst link seen along the forward path.
            now = self._sim.now
            probe.acc_util = max(probe.acc_util, link.metrics.utilization(now))
            probe.acc_queue = max(probe.acc_queue, link.queued_bytes)
            probe.acc_loss = max(probe.acc_loss, link.metrics.loss_rate(now))
        probe.hop_index = position + 1
        if not link.send(probe):
            self.probes_lost += 1  # probes drop like any other packet
