"""Network switches with pluggable forwarding policies and flowlets.

Forwarding model: each switch has a deterministic downstream route for every
host it can reach strictly downward (unique in leaf-spine and FatTree
fabrics); for all other destinations the candidate set is the switch's
uplink ports, and the configured :class:`ForwardingPolicy` picks one.

Policies decide per *flowlet* (CONGA/HULA-style) when ``flowlet_gap_s`` is
set, or per packet when it is ``None`` (DRILL-style).  The policy object is
where Thanos plugs in: the policies in :mod:`repro.policies` evaluate
compiled filter pipelines over SMBM resource tables to make this choice.
"""

from __future__ import annotations

from typing import Protocol

from repro.errors import ConfigurationError, SimulationError
from repro.netsim.link import Link
from repro.netsim.packet import NetPacket
from repro.netsim.sim import Simulator

__all__ = ["ForwardingPolicy", "NetSwitch"]


class ForwardingPolicy(Protocol):
    """Chooses an egress port among candidates for one decision."""

    def choose(
        self, switch: "NetSwitch", packet: NetPacket, candidates: list[int]
    ) -> int: ...


class _Flowlet:
    __slots__ = ("port", "last_seen")

    def __init__(self, port: int, last_seen: float):
        self.port = port
        self.last_seen = last_seen


class NetSwitch:
    """One switch: egress links per port, routes, and a forwarding policy."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        policy: ForwardingPolicy | None = None,
        flowlet_gap_s: float | None = 100e-6,
    ):
        self._sim = sim
        self.name = name
        self.ports: list[Link] = []
        self.down_routes: dict[int, int] = {}  # host_id -> port
        self.up_ports: list[int] = []
        self.policy = policy
        self.flowlet_gap_s = flowlet_gap_s
        self._flowlets: dict[tuple[int, int], _Flowlet] = {}
        self.packets_forwarded = 0
        self.policy_decisions = 0
        # Slot for attachments made by higher layers (path metric tables,
        # filter modules, DRILL sample memory, ...).
        self.attachments: dict[str, object] = {}

    # -- wiring (done by the topology builder) -----------------------------------------

    def add_port(self, link: Link) -> int:
        self.ports.append(link)
        return len(self.ports) - 1

    def set_down_route(self, host_id: int, port: int) -> None:
        self.down_routes[host_id] = port

    def set_up_ports(self, ports: list[int]) -> None:
        self.up_ports = list(ports)

    # -- forwarding -----------------------------------------------------------------------

    def receive(self, packet: NetPacket, in_port: int) -> None:
        self.forward(packet)

    def forward(self, packet: NetPacket) -> None:
        port = self.down_routes.get(packet.dst)
        if port is None:
            port = self._choose_uplink(packet)
        if not 0 <= port < len(self.ports):
            raise SimulationError(
                f"{self.name}: routed packet to invalid port {port}"
            )
        self.packets_forwarded += 1
        self.ports[port].send(packet)

    def _choose_uplink(self, packet: NetPacket) -> int:
        if not self.up_ports:
            raise SimulationError(
                f"{self.name}: no route to host {packet.dst} and no uplinks"
            )
        if len(self.up_ports) == 1:
            return self.up_ports[0]
        if self.policy is None:
            raise ConfigurationError(
                f"{self.name}: multiple uplinks but no forwarding policy"
            )
        if self.flowlet_gap_s is None:
            self.policy_decisions += 1
            return self.policy.choose(self, packet, self.up_ports)
        key = (packet.flow_id, packet.dst)
        now = self._sim.now
        flowlet = self._flowlets.get(key)
        if flowlet is not None and now - flowlet.last_seen <= self.flowlet_gap_s:
            flowlet.last_seen = now
            return flowlet.port
        self.policy_decisions += 1
        port = self.policy.choose(self, packet, self.up_ports)
        self._flowlets[key] = _Flowlet(port, now)
        return port

    # -- observability ---------------------------------------------------------------------

    def queue_bytes(self, port: int) -> int:
        """Egress queue occupancy of one port (the DRILL local metric)."""
        return self.ports[port].queued_bytes
