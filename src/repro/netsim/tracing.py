"""Flow tracing: completion times and summary statistics."""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.errors import SimulationError
from repro.netsim.transport import TcpFlow

__all__ = ["FlowRecord", "FlowRecorder"]


@dataclass(frozen=True)
class FlowRecord:
    """One completed flow: its definition and completion time."""

    flow: TcpFlow
    finished_at: float

    @property
    def fct(self) -> float:
        """Flow completion time in seconds."""
        return self.finished_at - self.flow.start_time


class FlowRecorder:
    """Collects flow lifecycles and computes FCT statistics."""

    def __init__(self) -> None:
        self._started: dict[int, TcpFlow] = {}
        self._records: list[FlowRecord] = []
        # Flow completions are rare events, so the FCT histogram is fed
        # directly (a no-op against the default null registry).
        registry = obs.get_registry()
        self._obs_fct_us = registry.histogram(
            "netsim_fct_us",
            help="flow completion times (microseconds, pow2 buckets)",
        )
        if registry.enabled:
            registry.add_hook(self._obs_collect)

    def _obs_collect(self):
        """Collect hook: flow lifecycle counters."""
        yield obs.Sample("netsim_flows_completed_total", len(self._records),
                         help="flows that finished")
        yield obs.Sample("netsim_flows_in_flight", len(self._started),
                         kind="gauge", help="flows started but not finished")

    def on_start(self, flow: TcpFlow) -> None:
        if flow.flow_id in self._started:
            raise SimulationError(f"flow {flow.flow_id} started twice")
        self._started[flow.flow_id] = flow

    def on_complete(self, flow: TcpFlow, finished_at: float) -> None:
        if flow.flow_id not in self._started:
            raise SimulationError(f"flow {flow.flow_id} completed without starting")
        del self._started[flow.flow_id]
        record = FlowRecord(flow, finished_at)
        self._records.append(record)
        self._obs_fct_us.observe(record.fct * 1e6)

    @property
    def completed(self) -> list[FlowRecord]:
        return list(self._records)

    @property
    def in_flight(self) -> int:
        return len(self._started)

    def fcts(self) -> list[float]:
        return [r.fct for r in self._records]

    def mean_fct(self) -> float:
        fcts = self.fcts()
        if not fcts:
            raise SimulationError("no completed flows to average")
        return sum(fcts) / len(fcts)

    def percentile_fct(self, p: float) -> float:
        """FCT percentile (p in [0, 100]) by nearest-rank."""
        fcts = sorted(self.fcts())
        if not fcts:
            raise SimulationError("no completed flows")
        if not 0 <= p <= 100:
            raise SimulationError(f"percentile out of range: {p}")
        rank = min(len(fcts) - 1, max(0, int(round(p / 100 * (len(fcts) - 1)))))
        return fcts[rank]
