"""Path metrics and their periodic distribution (the probe mechanism).

Section 3: remote metrics reach switches in probe packets; each switch
"periodically generates the queuing, loss rate, and utilization metrics for
its links and sends it to all the leaf switches" (section 7.2.3).

:class:`PathMetricsDirectory` enumerates, for a (switch, destination edge)
pair, the equal-cost paths grouped by first-hop port, and computes each
port's path metrics from the live link estimators: a path's metric is the
*worst link* on it (max), and a port's metric is its *best path* (min).

:class:`ProbeService` is the staleness model: every ``period_s`` it invokes
the registered refresh callbacks, which copy the live metrics into the
policies' SMBM resource tables — exactly what a burst of probe packets
achieves on the real switch, with the same update granularity.  (We do not
serialise the probe packets through the fabric themselves; the byte-level
probe path is modelled and tested in :mod:`repro.rmt.probe` /
:mod:`repro.switch`.  The behavioural effect probes have on routing — RTT-
scale staleness of the metric tables — is captured by the period.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError
from repro.netsim.sim import Simulator
from repro.netsim.topology import Network

__all__ = ["PathMetrics", "PathMetricsDirectory", "ProbeService"]

#: Fixed-point scale for utilisation and loss when stored in integer SMBMs.
UTIL_SCALE = 1000
LOSS_SCALE = 10_000


@dataclass(frozen=True)
class PathMetrics:
    """Aggregated metrics of the best path behind one first-hop port."""

    port: int
    util: float   # [0, ~1]
    queue_bytes: int
    loss: float   # [0, 1]

    def as_smbm_metrics(self) -> dict[str, int]:
        """Integer encoding for the SMBM (util/loss in fixed point)."""
        return {
            "util": int(self.util * UTIL_SCALE),
            "queue": int(self.queue_bytes),
            "loss": int(self.loss * LOSS_SCALE),
        }


#: The metric schema every routing SMBM uses.
PATH_METRIC_NAMES = ("util", "queue", "loss")


class PathMetricsDirectory:
    """Computes per-port path metrics over the live link estimators."""

    def __init__(self, network: Network):
        self._network = network
        # (switch, dst_edge) -> list of (port, [link, link, ...]) per path.
        self._path_cache: dict[tuple[str, str], list[tuple[int, list]]] = {}

    def _paths(self, switch_name: str, dst_edge: str) -> list[tuple[int, list]]:
        key = (switch_name, dst_edge)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        paths = []
        for node_path in self._network.paths_between(switch_name, dst_edge):
            if len(node_path) < 2:
                continue
            port = self._network.port_between(switch_name, node_path[1])
            links = [
                self._network.link_between(a, b)
                for a, b in zip(node_path, node_path[1:])
            ]
            paths.append((port, links))
        if not paths:
            raise ConfigurationError(
                f"no paths from {switch_name} to {dst_edge}"
            )
        self._path_cache[key] = paths
        return paths

    def port_metrics(
        self, switch_name: str, dst_edge: str, now: float
    ) -> list[PathMetrics]:
        """One PathMetrics per candidate first-hop port, best path per port."""
        per_port: dict[int, PathMetrics] = {}
        for port, links in self._paths(switch_name, dst_edge):
            util = max(link.metrics.utilization(now) for link in links)
            queue = max(link.queued_bytes for link in links)
            loss = max(link.metrics.loss_rate(now) for link in links)
            candidate = PathMetrics(port, util, queue, loss)
            best = per_port.get(port)
            if best is None or (candidate.util, candidate.queue_bytes, candidate.loss) < (
                best.util, best.queue_bytes, best.loss
            ):
                per_port[port] = candidate
        return [per_port[p] for p in sorted(per_port)]


class ProbeService:
    """Periodic metric distribution: the staleness clock of the system."""

    def __init__(self, sim: Simulator, period_s: float = 100e-6):
        if period_s <= 0:
            raise ConfigurationError(f"probe period must be positive: {period_s}")
        self._sim = sim
        self._period = period_s
        self._callbacks: list[Callable[[float], None]] = []
        self._running = False
        self.ticks = 0
        self._drop_budget = 0
        self.ticks_lost = 0

    @property
    def period_s(self) -> float:
        return self._period

    def drop_next(self, n: int = 1) -> None:
        """Fault injection: lose the next ``n`` probe bursts entirely.

        A lost burst means no table refresh that period — policies act on
        metrics one period staler, the exact failure probe packets have on
        a real fabric.  Lost ticks are counted in :attr:`ticks_lost`.
        """
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        self._drop_budget += n

    def register(self, callback: Callable[[float], None]) -> None:
        """Add a refresh callback; it runs once immediately on registration
        (the initial probe burst) and then once per period."""
        self._callbacks.append(callback)
        callback(self._sim.now)

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._sim.schedule(self._period, self._tick)

    def _tick(self) -> None:
        self.ticks += 1
        if self._drop_budget > 0:
            self._drop_budget -= 1
            self.ticks_lost += 1
        else:
            now = self._sim.now
            for callback in self._callbacks:
                callback(now)
        self._sim.schedule(self._period, self._tick)
