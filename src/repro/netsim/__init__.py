"""Packet-level discrete-event network simulator.

This is the substrate for the paper's performance evaluation (section 7.2):
the FPGA leaf-spine testbed of Figure 15 and the ~450-host FatTree simulator
are both replaced by this package (the paper itself uses a packet-level
simulator for its larger experiments).

Components:

* :mod:`~repro.netsim.sim` — the event loop;
* :mod:`~repro.netsim.packet` — lightweight simulation packets;
* :mod:`~repro.netsim.link` — links with drop-tail egress queues,
  serialisation and propagation delay, and per-link metric tracking
  (utilisation EWMA, loss counts, queue occupancy);
* :mod:`~repro.netsim.transport` — a simplified TCP (slow start, AIMD,
  fast retransmit, RTO);
* :mod:`~repro.netsim.host` / :mod:`~repro.netsim.switch` — end hosts and
  switches with pluggable forwarding policies and flowlet support;
* :mod:`~repro.netsim.topology` — the Figure 15 leaf-spine and FatTree
  builders, with path enumeration;
* :mod:`~repro.netsim.probes` — periodic distribution of path metrics to
  switch resource tables (the probe-packet mechanism of section 3, modelled
  as periodic metric snapshots with a configurable staleness period);
* :mod:`~repro.netsim.tracing` — flow completion time recording.
"""

from repro.netsim.sim import Simulator
from repro.netsim.packet import NetPacket
from repro.netsim.link import Link, LinkMetrics
from repro.netsim.transport import TcpFlow, TcpSender, TcpReceiver
from repro.netsim.host import Host
from repro.netsim.switch import NetSwitch, ForwardingPolicy
from repro.netsim.topology import Network, build_leaf_spine, build_fat_tree
from repro.netsim.probes import PathMetricsDirectory, ProbeService
from repro.netsim.inband_probes import InbandProbeService, ProbePacket
from repro.netsim.tracing import FlowRecorder, FlowRecord

__all__ = [
    "Simulator",
    "NetPacket",
    "Link",
    "LinkMetrics",
    "TcpFlow",
    "TcpSender",
    "TcpReceiver",
    "Host",
    "NetSwitch",
    "ForwardingPolicy",
    "Network",
    "build_leaf_spine",
    "build_fat_tree",
    "PathMetricsDirectory",
    "ProbeService",
    "InbandProbeService",
    "ProbePacket",
    "FlowRecorder",
    "FlowRecord",
]
