"""End hosts: flow sources and sinks.

A host has one access link to its edge switch.  It owns the TCP senders for
flows it originates and creates receivers on demand for incoming flows.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError, SimulationError
from repro.netsim.link import Link
from repro.netsim.packet import NetPacket
from repro.netsim.sim import Simulator
from repro.netsim.transport import TcpFlow, TcpReceiver, TcpSender

__all__ = ["Host"]

DoneFn = Callable[[TcpFlow, float], None]


class Host:
    """One end host, identified by an integer ``host_id``."""

    def __init__(self, sim: Simulator, host_id: int):
        self._sim = sim
        self.host_id = host_id
        self.name = f"host{host_id}"
        self._uplink: Link | None = None
        self._senders: dict[int, TcpSender] = {}
        self._receivers: dict[int, TcpReceiver] = {}
        self.packets_received = 0

    def attach_uplink(self, link: Link) -> None:
        if self._uplink is not None:
            raise ConfigurationError(f"{self.name} already has an uplink")
        self._uplink = link

    @property
    def uplink(self) -> Link:
        if self._uplink is None:
            raise ConfigurationError(f"{self.name} has no uplink attached")
        return self._uplink

    # -- sending ----------------------------------------------------------------------

    def send_packet(self, packet: NetPacket) -> None:
        self.uplink.send(packet)

    def start_flow(self, flow: TcpFlow, on_done: DoneFn) -> TcpSender:
        """Create the sender and schedule its start at the flow start time."""
        if flow.src != self.host_id:
            raise ConfigurationError(
                f"flow {flow.flow_id} has src {flow.src}, host is {self.host_id}"
            )
        if flow.flow_id in self._senders:
            raise ConfigurationError(f"duplicate flow id {flow.flow_id}")
        sender = TcpSender(self._sim, flow, self.send_packet, on_done)
        self._senders[flow.flow_id] = sender
        self._sim.at(flow.start_time, sender.start)
        return sender

    # -- receiving ----------------------------------------------------------------------

    def receive(self, packet: NetPacket, in_port: int) -> None:
        self.packets_received += 1
        if packet.dst != self.host_id:
            raise SimulationError(
                f"{self.name} received a packet for host {packet.dst}: "
                "mis-routed by the fabric"
            )
        if packet.is_ack:
            sender = self._senders.get(packet.flow_id)
            if sender is not None:
                sender.on_ack(packet.ack)
            return
        receiver = self._receivers.get(packet.flow_id)
        if receiver is None:
            receiver = TcpReceiver(
                self._sim, packet.flow_id, sender=packet.src,
                receiver=self.host_id, send=self.send_packet,
            )
            self._receivers[packet.flow_id] = receiver
        receiver.on_data(packet)
