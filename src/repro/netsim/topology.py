"""Topology builders: the Figure 15 leaf-spine testbed and FatTree fabrics.

:class:`Network` holds hosts, switches, and links, builds the connectivity
graph, and derives forwarding state: destinations with a unique shortest-
path first hop get a deterministic route; destinations reachable over
multiple equal-cost first hops are forwarded by the switch's uplink policy.

Path enumeration (for the path-metric directory) uses :mod:`networkx` over
the same graph.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import ConfigurationError, SimulationError
from repro.netsim.host import Host
from repro.netsim.link import Link
from repro.netsim.sim import Simulator
from repro.netsim.switch import ForwardingPolicy, NetSwitch
from repro.netsim.tracing import FlowRecorder
from repro.netsim.transport import TcpFlow, TcpSender

__all__ = ["Network", "build_leaf_spine", "build_fat_tree"]


class Network:
    """A simulated network: nodes, links, routing state, and flow tracing."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.hosts: dict[int, Host] = {}
        self.switches: dict[str, NetSwitch] = {}
        self.links: dict[tuple[str, str], Link] = {}
        self.graph = nx.DiGraph()
        self.recorder = FlowRecorder()
        self._port_of: dict[tuple[str, str], int] = {}
        self._edge_of_host: dict[int, str] = {}
        self._finalized = False

    # -- construction -----------------------------------------------------------------

    def add_host(self, host_id: int) -> Host:
        if host_id in self.hosts:
            raise ConfigurationError(f"duplicate host id {host_id}")
        host = Host(self.sim, host_id)
        self.hosts[host_id] = host
        self.graph.add_node(host.name, kind="host")
        return host

    def add_switch(
        self,
        name: str,
        policy: ForwardingPolicy | None = None,
        flowlet_gap_s: float | None = 100e-6,
    ) -> NetSwitch:
        if name in self.switches:
            raise ConfigurationError(f"duplicate switch name {name}")
        switch = NetSwitch(self.sim, name, policy, flowlet_gap_s)
        self.switches[name] = switch
        self.graph.add_node(name, kind="switch")
        return switch

    def _node(self, name: str) -> Host | NetSwitch:
        if name in self.switches:
            return self.switches[name]
        for host in self.hosts.values():
            if host.name == name:
                return host
        raise ConfigurationError(f"unknown node {name!r}")

    def connect(
        self,
        a: str,
        b: str,
        bandwidth_bps: float = 10e9,
        prop_delay_s: float = 1e-6,
        queue_capacity_bytes: int = 150_000,
        metrics_tau_s: float = 500e-6,
    ) -> None:
        """Create the two unidirectional links of a full-duplex cable."""
        node_a, node_b = self._node(a), self._node(b)
        for src, dst in ((node_a, node_b), (node_b, node_a)):
            # The destination's ingress port id: for switches, the port the
            # reverse link occupies; hosts have a single implicit port.
            in_port = 0
            link = Link(
                self.sim, f"{src.name}->{dst.name}", dst, in_port,
                bandwidth_bps, prop_delay_s, queue_capacity_bytes,
                metrics_tau_s,
            )
            self.links[(src.name, dst.name)] = link
            self.graph.add_edge(src.name, dst.name)
            if isinstance(src, NetSwitch):
                port = src.add_port(link)
                self._port_of[(src.name, dst.name)] = port
            else:
                src.attach_uplink(link)
        if isinstance(node_a, Host) and isinstance(node_b, NetSwitch):
            self._edge_of_host[node_a.host_id] = node_b.name
        if isinstance(node_b, Host) and isinstance(node_a, NetSwitch):
            self._edge_of_host[node_b.host_id] = node_a.name

    def port_between(self, switch_name: str, neighbor_name: str) -> int:
        """The egress port of ``switch_name`` facing ``neighbor_name``."""
        try:
            return self._port_of[(switch_name, neighbor_name)]
        except KeyError:
            raise ConfigurationError(
                f"no link {switch_name} -> {neighbor_name}"
            ) from None

    def link_between(self, a: str, b: str) -> Link:
        try:
            return self.links[(a, b)]
        except KeyError:
            raise ConfigurationError(f"no link {a} -> {b}") from None

    def edge_of(self, host_id: int) -> str:
        """The edge switch a host hangs off."""
        try:
            return self._edge_of_host[host_id]
        except KeyError:
            raise ConfigurationError(f"host {host_id} has no edge switch") from None

    # -- routing ----------------------------------------------------------------------

    def finalize_routes(self) -> None:
        """Derive deterministic routes and uplink candidate sets.

        For every (switch, host): if all shortest paths share one first hop,
        install it as the deterministic route; otherwise the first-hop ports
        join the switch's uplink candidate set.
        """
        for switch in self.switches.values():
            up_ports: set[int] = set()
            for host in self.hosts.values():
                try:
                    paths = list(
                        nx.all_shortest_paths(self.graph, switch.name, host.name)
                    )
                except nx.NetworkXNoPath:
                    continue
                first_hops = {path[1] for path in paths}
                ports = {self.port_between(switch.name, hop) for hop in first_hops}
                if len(ports) == 1:
                    switch.set_down_route(host.host_id, next(iter(ports)))
                else:
                    up_ports |= ports
            switch.set_up_ports(sorted(up_ports))
        self._finalized = True

    def paths_between(self, switch_name: str, dst_edge: str) -> list[list[str]]:
        """All shortest node-paths from a switch to a destination edge switch."""
        if switch_name == dst_edge:
            return [[switch_name]]
        return list(nx.all_shortest_paths(self.graph, switch_name, dst_edge))

    # -- flows --------------------------------------------------------------------------

    def start_flow(self, flow: TcpFlow) -> TcpSender:
        if not self._finalized:
            raise SimulationError("finalize_routes() must run before traffic")
        if flow.dst not in self.hosts:
            raise ConfigurationError(f"unknown destination host {flow.dst}")
        self.recorder.on_start(flow)
        return self.hosts[flow.src].start_flow(flow, self.recorder.on_complete)

    # -- aggregate stats --------------------------------------------------------------------

    def total_drops(self) -> int:
        return sum(link.packets_dropped for link in self.links.values())

    def total_sent(self) -> int:
        return sum(link.packets_sent for link in self.links.values())


def build_leaf_spine(
    sim: Simulator,
    n_leaf: int = 4,
    n_spine: int = 2,
    hosts_per_leaf: int = 2,
    bandwidth_bps: float = 10e9,
    prop_delay_s: float = 1e-6,
    queue_capacity_bytes: int = 150_000,
    policy_factory=None,
    flowlet_gap_s: float | None = 100e-6,
    metrics_tau_s: float = 500e-6,
) -> Network:
    """The Figure 15 shape: leaves below, spines above, hosts on leaves.

    Defaults (4 leaves, 2 spines, 8 hosts) reproduce the paper's testbed
    exactly; larger values are used by the simulation benches.
    """
    net = Network(sim)
    for s in range(n_spine):
        policy = policy_factory(net) if policy_factory else None
        net.add_switch(f"spine{s}", policy, flowlet_gap_s)
    for l in range(n_leaf):
        policy = policy_factory(net) if policy_factory else None
        net.add_switch(f"leaf{l}", policy, flowlet_gap_s)
    host_id = 0
    for l in range(n_leaf):
        for _ in range(hosts_per_leaf):
            net.add_host(host_id)
            net.connect(
                f"host{host_id}", f"leaf{l}",
                bandwidth_bps, prop_delay_s, queue_capacity_bytes,
                metrics_tau_s,
            )
            host_id += 1
    for l in range(n_leaf):
        for s in range(n_spine):
            net.connect(
                f"leaf{l}", f"spine{s}",
                bandwidth_bps, prop_delay_s, queue_capacity_bytes,
                metrics_tau_s,
            )
    net.finalize_routes()
    return net


def build_fat_tree(
    sim: Simulator,
    k: int = 4,
    bandwidth_bps: float = 10e9,
    prop_delay_s: float = 1e-6,
    queue_capacity_bytes: int = 150_000,
    policy_factory=None,
    flowlet_gap_s: float | None = 100e-6,
    metrics_tau_s: float = 500e-6,
) -> Network:
    """A k-ary FatTree: k pods, (k/2)^2 cores, k^3/4 hosts."""
    if k < 2 or k % 2:
        raise ConfigurationError(f"FatTree k must be even and >= 2, got {k}")
    net = Network(sim)
    half = k // 2

    def make_switch(name):
        policy = policy_factory(net) if policy_factory else None
        return net.add_switch(name, policy, flowlet_gap_s)

    for c in range(half * half):
        make_switch(f"core{c}")
    for pod in range(k):
        for a in range(half):
            make_switch(f"agg{pod}_{a}")
        for e in range(half):
            make_switch(f"edge{pod}_{e}")
    host_id = 0
    for pod in range(k):
        for e in range(half):
            for _ in range(half):
                net.add_host(host_id)
                net.connect(
                    f"host{host_id}", f"edge{pod}_{e}",
                    bandwidth_bps, prop_delay_s, queue_capacity_bytes,
                    metrics_tau_s,
                )
                host_id += 1
            for a in range(half):
                net.connect(
                    f"edge{pod}_{e}", f"agg{pod}_{a}",
                    bandwidth_bps, prop_delay_s, queue_capacity_bytes,
                    metrics_tau_s,
                )
        for a in range(half):
            for i in range(half):
                core_index = a * half + i
                net.connect(
                    f"agg{pod}_{a}", f"core{core_index}",
                    bandwidth_bps, prop_delay_s, queue_capacity_bytes,
                    metrics_tau_s,
                )
    net.finalize_routes()
    return net
