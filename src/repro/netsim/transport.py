"""A simplified TCP.

Enough congestion control to make the paper's flow-completion-time
experiments meaningful: slow start, congestion avoidance (AIMD), triple
duplicate-ACK fast retransmit, and an RTO with exponential backoff and
go-back-N recovery.  Datacenter-scale constants (small minimum RTO) follow
common practice for 10 Gbps fabrics.

Sequence numbers count MSS-sized segments, not bytes: the last segment of a
flow may be shorter on the wire but occupies one sequence number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError
from repro.netsim.packet import ACK_BYTES, MSS_BYTES, NetPacket
from repro.netsim.sim import Simulator

__all__ = ["TcpFlow", "TcpSender", "TcpReceiver"]

#: Initial congestion window, in segments.
INIT_CWND = 10.0
#: Initial slow-start threshold, in segments.
INIT_SSTHRESH = 64.0
#: Minimum retransmission timeout (datacenter setting).
MIN_RTO_S = 200e-6
#: Maximum RTO after backoff.
MAX_RTO_S = 50e-3

SendFn = Callable[[NetPacket], None]
DoneFn = Callable[["TcpFlow", float], None]


@dataclass(frozen=True)
class TcpFlow:
    """One flow: who talks to whom, how much, starting when."""

    flow_id: int
    src: int
    dst: int
    size_bytes: int
    start_time: float

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigurationError(f"flow size must be positive: {self.size_bytes}")

    @property
    def num_segments(self) -> int:
        return -(-self.size_bytes // MSS_BYTES)

    def segment_bytes(self, seq: int) -> int:
        """Wire payload of segment ``seq`` (the tail segment may be short)."""
        if seq == self.num_segments - 1:
            remainder = self.size_bytes % MSS_BYTES
            return remainder if remainder else MSS_BYTES
        return MSS_BYTES


class TcpSender:
    """Sender-side state machine for one flow."""

    def __init__(
        self, sim: Simulator, flow: TcpFlow, send: SendFn, on_done: DoneFn
    ):
        self._sim = sim
        self.flow = flow
        self._send = send
        self._on_done = on_done
        self.snd_una = 0
        self.snd_nxt = 0
        self.cwnd = INIT_CWND
        self.ssthresh = INIT_SSTHRESH
        self._dup_acks = 0
        self._done = False
        # RTT estimation (one timed segment at a time; Karn's rule).
        self._srtt: float | None = None
        self._rttvar = 0.0
        self._rto = 1e-3
        self._backoff = 1
        self._timed_seq: int | None = None
        self._timed_at = 0.0
        self._retransmitted: set[int] = set()
        # Timer tokens: an incremented epoch invalidates stale timeouts.
        self._timer_epoch = 0
        self.retransmissions = 0
        self.timeouts = 0

    # -- lifecycle ------------------------------------------------------------------

    def start(self) -> None:
        """Begin transmitting (call at the flow's start time)."""
        self._send_available()
        self._arm_timer()

    @property
    def completed(self) -> bool:
        return self._done

    # -- transmission ------------------------------------------------------------------

    def _window_limit(self) -> int:
        return min(self.snd_una + int(self.cwnd), self.flow.num_segments)

    def _send_available(self) -> None:
        while self.snd_nxt < self._window_limit():
            self._transmit(self.snd_nxt)
            self.snd_nxt += 1

    def _transmit(self, seq: int) -> None:
        packet = NetPacket(
            self.flow.flow_id, self.flow.src, self.flow.dst, seq,
            self.flow.segment_bytes(seq),
        )
        if self._timed_seq is None and seq not in self._retransmitted:
            self._timed_seq = seq
            self._timed_at = self._sim.now
        self._send(packet)

    # -- ACK processing -----------------------------------------------------------------

    def on_ack(self, ack: int) -> None:
        if self._done:
            return
        if ack > self.snd_una:
            self._handle_new_ack(ack)
        elif ack == self.snd_una:
            self._handle_dup_ack()

    def _handle_new_ack(self, ack: int) -> None:
        newly_acked = ack - self.snd_una
        self.snd_una = ack
        self._dup_acks = 0
        self._backoff = 1
        if self._timed_seq is not None and ack > self._timed_seq:
            self._sample_rtt(self._sim.now - self._timed_at)
            self._timed_seq = None
        # Window growth: slow start below ssthresh, else AIMD.
        for _ in range(newly_acked):
            if self.cwnd < self.ssthresh:
                self.cwnd += 1
            else:
                self.cwnd += 1.0 / self.cwnd
        if self.snd_una >= self.flow.num_segments:
            self._done = True
            self._timer_epoch += 1  # cancel the outstanding timer
            self._on_done(self.flow, self._sim.now)
            return
        if self.snd_nxt < self.snd_una:
            self.snd_nxt = self.snd_una
        self._send_available()
        self._arm_timer()

    def _handle_dup_ack(self) -> None:
        self._dup_acks += 1
        if self._dup_acks == 3:
            # Fast retransmit + simplified fast recovery.
            self.ssthresh = max(self.cwnd / 2, 2.0)
            self.cwnd = self.ssthresh
            self._retransmitted.add(self.snd_una)
            self.retransmissions += 1
            self._transmit(self.snd_una)
            self._arm_timer()

    # -- RTO ----------------------------------------------------------------------------

    def _sample_rtt(self, rtt: float) -> None:
        if self._srtt is None:
            self._srtt = rtt
            self._rttvar = rtt / 2
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - rtt)
            self._srtt = 0.875 * self._srtt + 0.125 * rtt
        self._rto = max(MIN_RTO_S, self._srtt + 4 * self._rttvar)

    def _arm_timer(self) -> None:
        self._timer_epoch += 1
        epoch = self._timer_epoch
        delay = min(self._rto * self._backoff, MAX_RTO_S)
        self._sim.schedule(delay, lambda: self._on_timeout(epoch))

    def _on_timeout(self, epoch: int) -> None:
        if self._done or epoch != self._timer_epoch:
            return
        self.timeouts += 1
        self.ssthresh = max(self.cwnd / 2, 2.0)
        self.cwnd = 1.0
        self._backoff = min(self._backoff * 2, 64)
        self.snd_nxt = self.snd_una  # go-back-N
        self._timed_seq = None
        self._retransmitted.add(self.snd_una)
        self.retransmissions += 1
        self._send_available()
        self._arm_timer()


class TcpReceiver:
    """Receiver-side state for one flow: cumulative ACKs.

    The receiver is created on demand from the first data packet, so it
    needs only the addressing triple, not the flow size.
    """

    def __init__(self, sim: Simulator, flow_id: int, sender: int, receiver: int,
                 send: SendFn):
        self._sim = sim
        self.flow_id = flow_id
        self._sender = sender
        self._receiver = receiver
        self._send = send
        self._received: set[int] = set()
        self.rcv_next = 0

    def on_data(self, packet: NetPacket) -> None:
        if packet.seq >= self.rcv_next:
            self._received.add(packet.seq)
        while self.rcv_next in self._received:
            self._received.discard(self.rcv_next)
            self.rcv_next += 1
        ack = NetPacket(
            self.flow_id, self._receiver, self._sender, packet.seq,
            ACK_BYTES, is_ack=True, ack=self.rcv_next,
        )
        self._send(ack)
