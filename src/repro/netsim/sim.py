"""The discrete-event loop.

A classic calendar: events are (time, sequence, callback) triples on a heap.
The sequence number makes event ordering deterministic for equal timestamps
(FIFO), which keeps every simulation fully reproducible for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.errors import SimulationError

__all__ = ["Simulator"]


class Simulator:
    """A discrete-event simulator with seconds as the time unit."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._events_run = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_run(self) -> int:
        return self._events_run

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        heapq.heappush(self._queue, (self._now + delay, next(self._seq), callback))

    def at(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute time ``time``."""
        self.schedule(time - self._now, callback)

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the event queue, optionally bounded by time or event count."""
        while self._queue:
            if max_events is not None and self._events_run >= max_events:
                return
            time, _seq, callback = self._queue[0]
            if until is not None and time > until:
                self._now = until
                return
            heapq.heappop(self._queue)
            if time < self._now:
                raise SimulationError("event queue went backwards in time")
            self._now = time
            callback()
            self._events_run += 1
        if until is not None:
            self._now = max(self._now, until)

    def pending(self) -> int:
        """Number of scheduled events not yet run."""
        return len(self._queue)
