"""Simulation packets.

``NetPacket`` is deliberately lightweight (``__slots__``, no header stack):
the network simulator pushes hundreds of thousands of these through the
event loop.  The byte-accurate header machinery lives in :mod:`repro.rmt`
and is exercised by the switch-architecture tests; the two meet in the probe
path, where the same metric schema flows through both.
"""

from __future__ import annotations

import itertools

__all__ = ["NetPacket", "HEADER_BYTES", "ACK_BYTES", "MSS_BYTES"]

#: Combined header overhead charged per data packet on the wire.
HEADER_BYTES = 40
#: Size of a pure-ACK segment on the wire.
ACK_BYTES = 40
#: Maximum segment size for the simplified TCP.
MSS_BYTES = 1460

_packet_ids = itertools.count()


class NetPacket:
    """One packet in flight.

    ``seq`` counts MSS-sized segments within a flow (not bytes); ``ack``
    carries the receiver's cumulative next-expected segment for ACKs.
    """

    __slots__ = (
        "packet_id", "flow_id", "src", "dst", "seq", "ack",
        "size_bytes", "is_ack", "enqueued_at", "hops",
    )

    def __init__(
        self,
        flow_id: int,
        src: int,
        dst: int,
        seq: int,
        size_bytes: int,
        *,
        is_ack: bool = False,
        ack: int = -1,
    ):
        self.packet_id = next(_packet_ids)
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.seq = seq
        self.ack = ack
        self.size_bytes = size_bytes
        self.is_ack = is_ack
        self.enqueued_at = -1.0
        self.hops = 0

    def __repr__(self) -> str:
        kind = "ack" if self.is_ack else "data"
        return (
            f"NetPacket({kind} flow={self.flow_id} {self.src}->{self.dst} "
            f"seq={self.seq} ack={self.ack} {self.size_bytes}B)"
        )
