"""Links with drop-tail egress queues and per-link metric tracking.

A :class:`Link` is unidirectional: the sender enqueues packets into a
drop-tail FIFO; a transmitter drains it at the link bandwidth (serialisation
delay) and delivers each packet after the propagation delay.

:class:`LinkMetrics` maintains the three stateful metrics the paper's
routing and load-balancing policies consume (section 7.2.3):

* **utilisation** — a CONGA-style decaying rate estimator (DRE): a byte
  counter that decays exponentially with time constant ``tau``; dividing by
  ``rate * tau`` yields a [0, ~1] utilisation estimate;
* **loss rate** — decayed counters of dropped vs. offered packets;
* **queue occupancy** — the live drop-tail queue depth in bytes.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Protocol

from repro import obs
from repro.errors import ConfigurationError
from repro.netsim.packet import HEADER_BYTES, NetPacket
from repro.netsim.sim import Simulator

__all__ = ["Node", "LinkMetrics", "Link"]


class Node(Protocol):
    """Anything that can terminate a link."""

    name: str

    def receive(self, packet: NetPacket, in_port: int) -> None: ...


class LinkMetrics:
    """Decaying estimators for utilisation and loss, plus queue depth."""

    def __init__(self, bandwidth_bps: float, tau: float = 500e-6):
        self._bandwidth_bps = bandwidth_bps
        self._tau = tau
        self._dre_bytes = 0.0
        self._offered = 0.0
        self._dropped = 0.0
        self._last_decay = 0.0

    def _decay(self, now: float) -> None:
        dt = now - self._last_decay
        if dt > 0:
            factor = math.exp(-dt / self._tau)
            self._dre_bytes *= factor
            self._offered *= factor
            self._dropped *= factor
            self._last_decay = now

    def on_transmit(self, now: float, size_bytes: int) -> None:
        self._decay(now)
        self._dre_bytes += size_bytes
        self._offered += 1

    def on_drop(self, now: float) -> None:
        self._decay(now)
        self._offered += 1
        self._dropped += 1

    def utilization(self, now: float) -> float:
        """Link utilisation estimate in [0, ~1]."""
        self._decay(now)
        capacity_bytes = self._bandwidth_bps / 8 * self._tau
        return self._dre_bytes / capacity_bytes if capacity_bytes else 0.0

    def loss_rate(self, now: float) -> float:
        """Fraction of recently offered packets that were dropped."""
        self._decay(now)
        if self._offered <= 0:
            return 0.0
        return self._dropped / self._offered


class Link:
    """A unidirectional link: drop-tail queue -> serialiser -> propagation."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        dst: Node,
        dst_port: int,
        bandwidth_bps: float = 10e9,
        prop_delay_s: float = 1e-6,
        queue_capacity_bytes: int = 150_000,
        metrics_tau_s: float = 500e-6,
    ):
        if bandwidth_bps <= 0:
            raise ConfigurationError(f"bandwidth must be positive: {bandwidth_bps}")
        if prop_delay_s < 0:
            raise ConfigurationError(f"negative propagation delay: {prop_delay_s}")
        if queue_capacity_bytes <= 0:
            raise ConfigurationError("queue capacity must be positive")
        self._sim = sim
        self.name = name
        self._dst = dst
        self._dst_port = dst_port
        self._bandwidth_bps = bandwidth_bps
        self._prop_delay_s = prop_delay_s
        self._capacity_bytes = queue_capacity_bytes
        self._queue: deque[NetPacket] = deque()
        self._queued_bytes = 0
        self._busy = False
        self._metrics_tau_s = metrics_tau_s
        self.metrics = LinkMetrics(bandwidth_bps, tau=metrics_tau_s)
        self._error_rate = 0.0
        self._error_rng = None
        self._failed = False
        self.packets_sent = 0
        self.packets_dropped = 0
        self.packets_corrupted = 0
        self.bytes_sent = 0
        # Observability: the data path already keeps plain int counters
        # (above), so a weakly-held collect hook publishes them — plus the
        # live DRE utilisation estimate — without touching the per-packet
        # path at all.
        if obs.get_registry().enabled:
            obs.get_registry().add_hook(self._obs_collect)

    def _obs_collect(self):
        """Collect hook: per-link traffic counters and utilisation."""
        labels = (("link", self.name),)
        yield obs.Sample("netsim_link_tx_packets_total", self.packets_sent,
                         labels=labels, help="packets transmitted")
        yield obs.Sample("netsim_link_tx_bytes_total", self.bytes_sent,
                         labels=labels, help="wire bytes transmitted")
        yield obs.Sample("netsim_link_drops_total", self.packets_dropped,
                         labels=labels,
                         help="packets dropped (queue overflow or corruption)")
        yield obs.Sample("netsim_link_utilization",
                         self.metrics.utilization(self._sim.now),
                         kind="gauge", labels=labels,
                         help="DRE utilisation estimate in [0, ~1]")
        yield obs.Sample("netsim_link_queue_bytes", self._queued_bytes,
                         kind="gauge", labels=labels,
                         help="live drop-tail queue occupancy")

    # -- observable state ---------------------------------------------------------

    @property
    def bandwidth_bps(self) -> float:
        return self._bandwidth_bps

    @property
    def prop_delay_s(self) -> float:
        return self._prop_delay_s

    @property
    def queued_bytes(self) -> int:
        """Live queue occupancy — the DRILL metric."""
        return self._queued_bytes

    @property
    def queued_packets(self) -> int:
        return len(self._queue)

    def set_error_rate(self, rate: float, rng) -> None:
        """Make the link flaky: each transmitted packet is independently
        corrupted (and dropped) with probability ``rate``.

        This is the failure mode that separates multi-metric filtering from
        utilisation-only routing: a lossy link *reads as lightly utilised*
        (drops suppress its throughput), so ``min(util)`` is drawn to it,
        while the loss-rate dimension exposes it.
        """
        if not 0 <= rate < 1:
            raise ConfigurationError(f"error rate must be in [0, 1): {rate}")
        self._error_rate = rate
        self._error_rng = rng

    @property
    def failed(self) -> bool:
        return self._failed

    def fail(self) -> None:
        """Take the link down (a flap's falling edge).

        While down every offered packet is dropped (and counted); packets
        already queued keep draining — they were committed to the egress
        buffer before the cut.  End-to-end recovery is the transport's job
        (TCP retransmission), which is what the chaos harness asserts.
        """
        self._failed = True

    def restore(self) -> None:
        """Bring the link back up (the flap's rising edge)."""
        self._failed = False

    def renegotiate(self, bandwidth_bps: float) -> None:
        """Change the link rate (models auto-negotiation to a lower speed,
        the common source of fabric asymmetry).  Queued packets drain at the
        new rate from the next transmission on."""
        if bandwidth_bps <= 0:
            raise ConfigurationError(f"bandwidth must be positive: {bandwidth_bps}")
        self._bandwidth_bps = bandwidth_bps
        self.metrics = LinkMetrics(bandwidth_bps, tau=self._metrics_tau_s)

    # -- data path ------------------------------------------------------------------

    def send(self, packet: NetPacket) -> bool:
        """Enqueue for transmission; returns False on a drop-tail drop."""
        if self._failed:
            self.packets_dropped += 1
            self.metrics.on_drop(self._sim.now)
            return False
        wire_bytes = packet.size_bytes + HEADER_BYTES
        if self._queued_bytes + wire_bytes > self._capacity_bytes:
            self.packets_dropped += 1
            self.metrics.on_drop(self._sim.now)
            return False
        packet.enqueued_at = self._sim.now
        self._queue.append(packet)
        self._queued_bytes += wire_bytes
        if not self._busy:
            self._busy = True
            self._sim.schedule(0.0, self._transmit_next)
        return True

    def _transmit_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        packet = self._queue.popleft()
        wire_bytes = packet.size_bytes + HEADER_BYTES
        self._queued_bytes -= wire_bytes
        ser_delay = wire_bytes * 8 / self._bandwidth_bps
        if self._error_rate and self._error_rng.random() < self._error_rate:
            # Corrupted on the wire: occupies the link, never arrives.
            self.packets_dropped += 1
            self.packets_corrupted += 1
            self.metrics.on_drop(self._sim.now)
        else:
            self.metrics.on_transmit(self._sim.now, wire_bytes)
            self.packets_sent += 1
            self.bytes_sent += wire_bytes
            packet.hops += 1
            self._sim.schedule(
                ser_delay + self._prop_delay_s,
                lambda p=packet: self._dst.receive(p, self._dst_port),
            )
        self._sim.schedule(ser_delay, self._transmit_next)
