"""Batched columnar evaluation and verified-plan policy codegen.

The engine is the throughput tier above the per-packet fast path:

* :class:`~repro.engine.batch.PacketBatch` — the columnar
  (struct-of-arrays) packet buffer;
* :class:`~repro.engine.columnar.BatchedEvaluator` — interpreted batch
  evaluation over mask columns (numpy lane + pure-Python fallback);
* :class:`~repro.engine.codegen.PlanCodegen` — per-plan specialized flat
  closures and batch kernels, cached on ``(plan_hash, smbm.version)``.

numpy is optional (the ``repro[batch]`` extra): every module consults
:data:`repro.engine._np.HAVE_NUMPY` at call time and falls back to the
pure-Python int-mask lane without it.
"""

from repro.engine._np import HAVE_NUMPY
from repro.engine.batch import (
    META_FILTER_INPUT,
    META_FILTER_OUTPUT,
    META_FILTER_REQUEST,
    META_FILTER_SELECTED,
    PacketBatch,
)
from repro.engine.codegen import PlanCodegen, generate_plan_source, plan_hash_of
from repro.engine.columnar import BatchedEvaluator, MIN_NUMPY_ROWS

__all__ = [
    "HAVE_NUMPY",
    "MIN_NUMPY_ROWS",
    "PacketBatch",
    "BatchedEvaluator",
    "PlanCodegen",
    "generate_plan_source",
    "plan_hash_of",
    "META_FILTER_INPUT",
    "META_FILTER_OUTPUT",
    "META_FILTER_REQUEST",
    "META_FILTER_SELECTED",
]
