"""Per-plan policy codegen: verified plans become flat specialized closures.

The interpreted fast path pays Python dispatch per operator object per
packet, plus the bounds/width/liveness checks the pipeline model carries.
Once the static verifier (TH001-TH011) has proven a plan safe and the
TH012 eligibility lint has proven it *specializable* — stateless, no
caller-supplied inputs, no interior taps — all of that is provably dead
weight: the plan's meaning is a pure function of the table contents.

:class:`PlanCodegen` therefore emits, once per distinct plan, one small
Python module of straight-line code with two entry points:

* ``specialize(smbm)`` — resolves everything that is constant for one
  table version (predicate satisfying-sets as raw int masks, bound
  min/max bisect methods) and returns a flat ``kernel(mask) -> mask``
  closure over those constants: no operator objects, no checks, no
  dispatch;
* ``specialize_batch(smbm, np)`` — the same, over dense bool matrices
  ``[B, capacity]`` for the columnar batch tier (numpy only).

Sources are cached module-wide on ``plan_hash`` (a digest of the
canonical DAG serialization) and exec'd once; specialized kernels are
cached per instance on ``smbm.version`` — exactly the key the scalar
memo invalidates on, so a committed table write respecializes on the
next evaluation and nothing staler can ever be served.

The interpreted pipeline stays available as the differential oracle
(:meth:`~repro.switch.filter_module.FilterModule.sanitize_check`
pattern); the generated code is the optimisation, never the spec.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Sequence

from repro import obs
from repro.core.operators import BinaryOp, RelOp, UnaryOp
from repro.core.policy import Binary, Conditional, Node, Policy, TableRef, Unary
from repro.core.smbm import SMBM
from repro.engine import _np
from repro.engine.columnar import (
    MIN_NUMPY_ROWS,
    masks_to_matrix,
    matrix_to_masks,
    select_k_ranked,
    select_k_scalar,
    unpack_mask,
)
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.compiler import CompiledPolicy

__all__ = ["PlanCodegen", "generate_plan_source", "plan_hash_of"]


#: exec'd namespaces keyed by plan hash: each distinct plan shape is
#: generated and compiled exactly once per process, however many modules
#: (or benchmark sweeps) instantiate it.
_SOURCE_CACHE: dict[str, dict] = {}


def _walk_postorder(policy: Policy) -> list[Node]:
    """Every reachable node once, children before parents (shared sub-DAGs
    appear a single time, so they are evaluated once per packet)."""
    order: list[Node] = []
    seen: set[int] = set()

    def visit(node: Node) -> None:
        if node.node_id in seen:
            return
        seen.add(node.node_id)
        for child in node.children():
            visit(child)
        order.append(node)

    visit(policy.root)
    return order


def _canonical(policy: Policy) -> tuple[str, tuple[RelOp, ...]]:
    """Canonical DAG serialization + the plan's relational-operator table.

    Node identity (sharing) is captured through post-order ordinals, so
    ``union(p, p)`` of one shared predicate and ``union(p1, p2)`` of two
    structurally equal predicates serialize differently — they are
    different plans (one evaluation vs two).
    """
    order = _walk_postorder(policy)
    ordinal = {node.node_id: i for i, node in enumerate(order)}
    relops: list[RelOp] = []
    tokens: list[str] = []
    for node in order:
        if isinstance(node, TableRef):
            tokens.append(f"T({node.input_index})")
        elif isinstance(node, Unary):
            cfg = node.config
            rel = ""
            if cfg.rel_op is not None:
                rel = f",{cfg.rel_op.value}"
                if cfg.rel_op not in relops:
                    relops.append(cfg.rel_op)
            tokens.append(
                f"U({cfg.opcode.value},k={cfg.k},a={cfg.attr!r}{rel},"
                f"v={cfg.val},{ordinal[node.child.node_id]})"
            )
        elif isinstance(node, Binary):
            tokens.append(
                f"B({node.opcode.value},c={node.choice},"
                f"{ordinal[node.left.node_id]},{ordinal[node.right.node_id]})"
            )
        elif isinstance(node, Conditional):
            tokens.append(
                f"C({ordinal[node.primary.node_id]},"
                f"{ordinal[node.fallback.node_id]})"
            )
        else:  # pragma: no cover - exhaustive over node types
            raise ConfigurationError(f"unknown node type {type(node)!r}")
    return ";".join(tokens), tuple(relops)


def plan_hash_of(policy: Policy) -> str:
    """The plan hash: a stable digest of the canonical DAG serialization."""
    canon, _relops = _canonical(policy)
    return hashlib.sha256(canon.encode()).hexdigest()[:16]


def generate_plan_source(policy: Policy) -> tuple[str, str, tuple[RelOp, ...]]:
    """Emit the plan's specialized source.

    Returns ``(source, plan_hash, relops)``; ``relops`` is the table the
    generated code indexes as ``RELOPS[j]`` (enum members cannot be
    spelled as literals).  The source is capacity-independent: everything
    table-shaped is resolved inside ``specialize`` at run time.
    """
    canon, relops = _canonical(policy)
    digest = hashlib.sha256(canon.encode()).hexdigest()[:16]
    relop_index = {op: j for j, op in enumerate(relops)}
    order = _walk_postorder(policy)
    ordinal = {node.node_id: i for i, node in enumerate(order)}

    idx_vars: dict[str, str] = {}      # metric attr -> preamble index var
    pre_s: list[str] = []              # scalar specialize preamble
    pre_b: list[str] = []              # batch specialize preamble
    body_s: list[str] = []             # scalar kernel body
    body_b: list[str] = []             # batch kernel body
    name: dict[int, str] = {}          # node id -> kernel variable/alias

    def index_var(attr: str) -> str:
        var = idx_vars.get(attr)
        if var is None:
            var = f"i{len(idx_vars)}"
            idx_vars[attr] = var
            line = f"{var} = smbm.metric_index({attr!r})"
            pre_s.append(line)
            pre_b.append(line)
        return var

    for node in order:
        i = ordinal[node.node_id]
        if isinstance(node, TableRef):
            if node.input_index is not None:
                raise ConfigurationError(
                    f"cannot specialize {node.describe()}: caller-supplied "
                    "input tables are per-packet, not per-version"
                )
            name[node.node_id] = "t"
        elif isinstance(node, Unary):
            cfg = node.config
            op = cfg.opcode
            child = name[node.child.node_id]
            if op is UnaryOp.NO_OP:
                name[node.node_id] = child
            elif op is UnaryOp.PREDICATE:
                assert cfg.rel_op is not None and cfg.val is not None
                sat = (f"{index_var(cfg.attr or '')}.predicate_mask("
                       f"RELOPS[{relop_index[cfg.rel_op]}], {cfg.val}, full)")
                pre_s.append(f"c{i} = {sat}")
                pre_b.append(f"c{i} = unpack_mask(np, {sat}, capacity)")
                body_s.append(f"v{i} = {child} & c{i}")
                body_b.append(f"v{i} = {child} & c{i}")
                name[node.node_id] = f"v{i}"
            elif op in (UnaryOp.MIN, UnaryOp.MAX):
                var = index_var(cfg.attr or "")
                method = "min_mask" if op is UnaryOp.MIN else "max_mask"
                pre_s.append(f"p{i} = {var}.{method}")
                pre_b.append(f"a{i} = np.asarray({var}.ids, dtype=np.intp)")
                if cfg.k == 1:
                    body_s.append(f"v{i} = p{i}({child})")
                else:
                    body_s.append(
                        f"v{i} = select_k_scalar(p{i}, {child}, {cfg.k})"
                    )
                body_b.append(
                    f"v{i} = select_k_ranked(np, {child}, a{i}, {cfg.k}, "
                    f"{op is UnaryOp.MAX})"
                )
                name[node.node_id] = f"v{i}"
            else:
                raise ConfigurationError(
                    f"cannot specialize stateful operator {cfg.describe()}: "
                    "its output advances per packet, not per table version"
                )
        elif isinstance(node, Binary):
            left = name[node.left.node_id]
            right = name[node.right.node_id]
            if node.opcode is BinaryOp.NO_OP:
                name[node.node_id] = left if node.choice == 0 else right
            else:
                expr = {
                    BinaryOp.UNION: f"{left} | {right}",
                    BinaryOp.INTERSECTION: f"{left} & {right}",
                    BinaryOp.DIFFERENCE: f"{left} & ~{right}",
                }[node.opcode]
                body_s.append(f"v{i} = {expr}")
                body_b.append(f"v{i} = {expr}")
                name[node.node_id] = f"v{i}"
        elif isinstance(node, Conditional):
            primary = name[node.primary.node_id]
            fallback = name[node.fallback.node_id]
            body_s.append(f"v{i} = {primary} if {primary} else {fallback}")
            # np.any, not ndarray.any: the method form lazily imports
            # through the calling frame's builtins, which the hermetic
            # exec namespace deliberately empties.
            body_b.append(
                f"v{i} = np.where(np.any({primary}, axis=1)[:, None], "
                f"{primary}, {fallback})"
            )
            name[node.node_id] = f"v{i}"
        else:  # pragma: no cover - exhaustive over node types
            raise ConfigurationError(f"unknown node type {type(node)!r}")

    root = name[policy.root.node_id]

    def block(lines: list[str], indent: str) -> str:
        return "\n".join(indent + line for line in lines) if lines else ""

    # The header names only the plan hash: equal plans must emit
    # byte-identical source (the module-wide cache is keyed on the hash,
    # and the policy's display name is metadata, not plan content).
    parts = [f"# plan {digest}", "", "def specialize(smbm):",
             "    full = (1 << smbm.capacity) - 1"]
    if pre_s:
        parts.append(block(pre_s, "    "))
    parts.append("    def kernel(t):")
    if body_s:
        parts.append(block(body_s, "        "))
    parts.append(f"        return {root}")
    parts.append("    return kernel")
    parts.append("")
    parts.append("def specialize_batch(smbm, np):")
    parts.append("    capacity = smbm.capacity")
    parts.append("    full = (1 << capacity) - 1")
    if pre_b:
        parts.append(block(pre_b, "    "))
    parts.append("    def kernel(t):")
    if body_b:
        parts.append(block(body_b, "        "))
    parts.append(f"        return {root}")
    parts.append("    return kernel")
    return "\n".join(parts) + "\n", digest, relops


class PlanCodegen:
    """The codegen tier of one compiled plan.

    Construction requires a specialization-eligible plan (no TH012
    blockers — see
    :func:`repro.analysis.verifier.specialization_blockers`); the
    compiler's ``codegen=True`` path checks eligibility before building
    one, and construction re-raises :class:`ConfigurationError` on an
    ineligible plan as defense in depth.
    """

    def __init__(self, compiled: "CompiledPolicy"):
        from repro.analysis.verifier import specialization_blockers

        blockers = specialization_blockers(compiled)
        if blockers:
            raise ConfigurationError(
                "plan is not specialization-eligible (TH012): "
                + "; ".join(blockers)
            )
        policy = compiled.policy
        self._policy = policy
        source, digest, relops = generate_plan_source(policy)
        self._source = source
        self._hash = digest
        namespace = _SOURCE_CACHE.get(digest)
        if namespace is None:
            namespace = {
                "__builtins__": {},
                "RELOPS": relops,
                "unpack_mask": unpack_mask,
                "select_k_ranked": select_k_ranked,
                "select_k_scalar": select_k_scalar,
            }
            exec(compile(source, f"<plan {digest}>", "exec"), namespace)
            _SOURCE_CACHE[digest] = namespace
        self._specialize = namespace["specialize"]
        self._specialize_batch = namespace["specialize_batch"]
        # Single-entry version-keyed kernel caches, one per lane: the SMBM
        # version only moves forward, so older kernels can never become
        # valid again — same invalidation point as the FilterModule memo.
        self._scalar_version: int | None = None
        self._scalar_kernel = None
        self._batch_version: int | None = None
        self._batch_kernel = None
        # Hot-path counters stay plain ints; a weakly-held collect hook
        # publishes them only when a real registry is active.
        self._specializations = 0
        self._hits = 0
        self._misses = 0
        registry = obs.get_registry()
        self._obs_policy = policy.name
        if registry.enabled:
            registry.add_hook(self._obs_collect)

    def _obs_collect(self):
        labels = (("policy", self._obs_policy),)
        yield obs.Sample(
            "codegen_cache_hits_total", self._hits, labels=labels,
            help="evaluations served by an already-specialized kernel",
        )
        yield obs.Sample(
            "codegen_cache_misses_total", self._misses, labels=labels,
            help="evaluations that had to respecialize (table version moved)",
        )
        yield obs.Sample(
            "codegen_specializations_total", self._specializations,
            labels=labels,
            help="specialized kernels built (scalar and batch lanes)",
        )

    @property
    def policy(self) -> Policy:
        return self._policy

    @property
    def plan_hash(self) -> str:
        """Digest of the canonical DAG: the source-cache key."""
        return self._hash

    @property
    def source(self) -> str:
        """The generated module source (for inspection and tests)."""
        return self._source

    @property
    def specializations(self) -> int:
        """Kernels built so far (one per table version per lane touched)."""
        return self._specializations

    @property
    def cache_hits(self) -> int:
        return self._hits

    @property
    def cache_misses(self) -> int:
        return self._misses

    def counters(self) -> dict[str, int]:
        return {
            "specializations": self._specializations,
            "cache_hits": self._hits,
            "cache_misses": self._misses,
        }

    def invalidate(self) -> None:
        """Drop both lanes' specialized kernels unconditionally.

        The version-keyed caches assume the SMBM version only moves
        forward; a checkpoint *restore* can move it backward (or land on a
        reused version number over different contents), so the serving
        layer's cache-reset path calls this alongside dropping the scalar
        memo.
        """
        self._scalar_version = None
        self._scalar_kernel = None
        self._batch_version = None
        self._batch_kernel = None

    # -- scalar lane ---------------------------------------------------------------

    def kernel(self, smbm: SMBM):
        """The flat ``kernel(mask) -> mask`` closure for the current table
        version, specializing if the version moved."""
        version = smbm.version
        if version == self._scalar_version:
            self._hits += 1
        else:
            self._scalar_kernel = self._specialize(smbm)
            self._scalar_version = version
            self._specializations += 1
            self._misses += 1
        return self._scalar_kernel

    def evaluate(self, smbm: SMBM) -> int:
        """One packet's policy output as a raw int mask."""
        return self.kernel(smbm)(smbm.id_mask())

    # -- batch lane ----------------------------------------------------------------

    def evaluate_masks(self, smbm: SMBM, masks: Sequence[int]) -> list[int]:
        """One output mask per input mask (inputs are intersected with the
        table's presence mask, like the interpreted batch tier)."""
        if not masks:
            return []
        present = smbm.id_mask()
        base = [present & m for m in masks]
        if _np.HAVE_NUMPY and len(base) >= MIN_NUMPY_ROWS:
            np = _np.numpy
            version = smbm.version
            if version == self._batch_version:
                self._hits += 1
            else:
                self._batch_kernel = self._specialize_batch(smbm, np)
                self._batch_version = version
                self._specializations += 1
                self._misses += 1
            matrix = masks_to_matrix(np, base, smbm.capacity)
            return matrix_to_masks(np, self._batch_kernel(matrix))
        kern = self.kernel(smbm)
        return [kern(b) for b in base]
