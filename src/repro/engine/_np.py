"""Optional numpy: the single import guard for the batched engine.

numpy ships in the optional ``repro[batch]`` extra, not the core install.
Everything in :mod:`repro.engine` goes through this module so there is
exactly one place that decides whether the vectorised kernels exist; the
pure-Python fallbacks are selected wherever ``HAVE_NUMPY`` is false.

Tests monkeypatch :data:`HAVE_NUMPY` (never the ``numpy`` binding itself)
to force the fallback lane on machines that do have numpy installed, so
callers must consult the flag at *call* time, not import time.
"""

from __future__ import annotations

try:  # pragma: no cover - trivially one branch per environment
    import numpy
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    numpy = None  # type: ignore[assignment]
    HAVE_NUMPY = False

__all__ = ["numpy", "HAVE_NUMPY"]
