"""Batched columnar policy evaluation over id-mask columns.

The scalar fast path walks interpreted operator objects once *per packet*;
at batch sizes beyond a handful of packets, Python dispatch — not the
algorithm — dominates.  :class:`BatchedEvaluator` walks the policy DAG
once *per batch* instead, carrying a whole column of input masks through
every operator:

* with numpy (the optional ``repro[batch]`` extra) a column is a dense
  boolean matrix ``[B, capacity]`` and each operator is a handful of
  vectorised array ops — a predicate is one AND against a satisfying-ids
  row vector, min/max-k is a cumulative sum over rank-ordered columns;
* without numpy the column is a list of raw int masks and each operator
  loops the rows through the same :class:`~repro.core.smbm.MetricIndex`
  bisect primitives the scalar fast path uses.

Either lane computes the DAG semantics of
:class:`~repro.core.policy.PolicyInterpreter` — legal exactly for plans
with no cross-packet state and no caller-supplied inputs, the same
eligibility the TH012 lint gates codegen on.  The free helper functions
(mask packing, rank-select) are shared with the generated batch kernels in
:mod:`repro.engine.codegen`.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.operators import BinaryOp, UnaryOp
from repro.core.policy import Binary, Conditional, Node, Policy, TableRef, Unary
from repro.core.smbm import SMBM
from repro.engine import _np
from repro.errors import ConfigurationError

__all__ = [
    "BatchedEvaluator",
    "MIN_NUMPY_ROWS",
    "masks_to_matrix",
    "matrix_to_masks",
    "unpack_mask",
    "select_k_ranked",
]

#: Below this many rows the numpy lane's fixed costs (packing, array
#: allocation) outweigh the vectorisation win; the int-mask lane runs.
MIN_NUMPY_ROWS = 8


# -- shared column primitives (also used by generated batch kernels) -----------


def masks_to_matrix(np, masks: Sequence[int], capacity: int):
    """Raw int masks -> dense bool matrix ``[len(masks), capacity]``."""
    nbytes = (capacity + 7) // 8
    buf = b"".join(m.to_bytes(nbytes, "little") for m in masks)
    arr = np.frombuffer(buf, dtype=np.uint8).reshape(len(masks), nbytes)
    bits = np.unpackbits(arr, axis=1, bitorder="little")[:, :capacity]
    return bits.astype(bool)


def matrix_to_masks(np, matrix) -> list[int]:
    """Dense bool matrix -> one raw int mask per row."""
    packed = np.packbits(matrix, axis=1, bitorder="little")
    return [int.from_bytes(row.tobytes(), "little") for row in packed]


def unpack_mask(np, mask: int, capacity: int):
    """One raw int mask -> bool row vector of length ``capacity``."""
    return masks_to_matrix(np, (mask,), capacity)[0]


def select_k_ranked(np, column, ids, k: int, reverse: bool):
    """The k lowest-rank (or highest, when ``reverse``) entries per row.

    ``column`` is a bool matrix ``[B, capacity]`` indexed by id;
    ``ids`` is the metric's rank-ordered id array
    (:attr:`~repro.core.smbm.MetricIndex.ids`).  Reordering the columns
    into rank order turns "k smallest values" into "first k set bits",
    which a cumulative sum answers for the whole batch at once — the
    columnar analogue of the K-UFPU chain's Equation 1 iteration.
    """
    ranked = column[:, ids]
    if reverse:
        ranked = ranked[:, ::-1]
    selected = ranked & (np.cumsum(ranked, axis=1) <= k)
    if reverse:
        selected = selected[:, ::-1]
    out = np.zeros_like(column)
    out[:, ids] = selected
    return out


def select_k_scalar(pick, bits: int, k: int) -> int:
    """Equation 1 on one raw int mask: union of k select-and-strip rounds.

    ``pick`` is a bound :meth:`~repro.core.smbm.MetricIndex.min_mask` or
    :meth:`~repro.core.smbm.MetricIndex.max_mask`.
    """
    acc = 0
    cur = bits
    for _ in range(k):
        one = pick(cur)
        if not one:
            break
        acc |= one
        cur &= ~one
    return acc


# -- the interpreted batch tier ---------------------------------------------------


class BatchedEvaluator:
    """Columnar DAG evaluation of one stateless policy.

    Construction rejects policies the columnar semantics cannot express:
    stateful operators (their outputs advance per packet, so per-batch
    evaluation would change meaning) and explicitly-indexed table inputs
    (their tables arrive from the caller per packet, not from the SMBM).
    """

    def __init__(self, policy: Policy, capacity: int):
        self._policy = policy
        self._capacity = capacity
        self._full = (1 << capacity) - 1
        seen: set[int] = set()

        def check(node: Node) -> None:
            if node.node_id in seen:
                return
            seen.add(node.node_id)
            if isinstance(node, TableRef) and node.input_index is not None:
                raise ConfigurationError(
                    f"batched evaluation cannot supply {node.describe()}: "
                    "caller-provided input tables are per-packet"
                )
            if isinstance(node, Unary) and node.config.opcode.is_stateful:
                raise ConfigurationError(
                    f"batched evaluation requires a stateless policy; "
                    f"{node.config.describe()} keeps per-packet state"
                )
            for child in node.children():
                check(child)

        check(policy.root)

    @property
    def policy(self) -> Policy:
        return self._policy

    def evaluate_masks(self, smbm: SMBM, masks: Sequence[int]) -> list[int]:
        """One output mask per input mask, against the current table.

        Each input mask is first intersected with the table's presence
        mask — the mask names the candidate subset of the *stored*
        resources the policy may consider for that row.
        """
        if smbm.capacity != self._capacity:
            raise ConfigurationError(
                f"evaluator built for capacity {self._capacity}, "
                f"table has {smbm.capacity}"
            )
        if not masks:
            return []
        present = smbm.id_mask()
        base = [present & m for m in masks]
        if _np.HAVE_NUMPY and len(base) >= MIN_NUMPY_ROWS:
            return self._evaluate_numpy(smbm, base)
        return self._evaluate_python(smbm, base)

    # -- pure-Python lane: lists of raw int masks ----------------------------------

    def _evaluate_python(self, smbm: SMBM, base: list[int]) -> list[int]:
        full = self._full
        memo: dict[int, list[int]] = {}

        def walk(node: Node) -> list[int]:
            cached = memo.get(node.node_id)
            if cached is not None:
                return cached
            if isinstance(node, TableRef):
                col = base
            elif isinstance(node, Unary):
                child = walk(node.child)
                cfg = node.config
                op = cfg.opcode
                if op is UnaryOp.NO_OP:
                    col = child
                elif op is UnaryOp.PREDICATE:
                    assert cfg.attr is not None and cfg.rel_op is not None
                    assert cfg.val is not None
                    sat = smbm.metric_index(cfg.attr).predicate_mask(
                        cfg.rel_op, cfg.val, full
                    )
                    col = [c & sat for c in child]
                elif op in (UnaryOp.MIN, UnaryOp.MAX):
                    assert cfg.attr is not None
                    index = smbm.metric_index(cfg.attr)
                    pick = (index.min_mask if op is UnaryOp.MIN
                            else index.max_mask)
                    k = cfg.k
                    col = [select_k_scalar(pick, c, k) for c in child]
                else:  # pragma: no cover - rejected at construction
                    raise ConfigurationError(f"stateful opcode {op} in batch")
            elif isinstance(node, Binary):
                left = walk(node.left)
                right = walk(node.right)
                op = node.opcode
                if op is BinaryOp.NO_OP:
                    col = left if node.choice == 0 else right
                elif op is BinaryOp.UNION:
                    col = [a | b for a, b in zip(left, right)]
                elif op is BinaryOp.INTERSECTION:
                    col = [a & b for a, b in zip(left, right)]
                else:
                    col = [a & ~b for a, b in zip(left, right)]
            elif isinstance(node, Conditional):
                primary = walk(node.primary)
                fallback = walk(node.fallback)
                col = [p if p else f for p, f in zip(primary, fallback)]
            else:  # pragma: no cover
                raise ConfigurationError(f"unknown node type {type(node)!r}")
            memo[node.node_id] = col
            return col

        return walk(self._policy.root)

    # -- numpy lane: dense bool matrices [B, capacity] ------------------------------

    def _evaluate_numpy(self, smbm: SMBM, base: list[int]) -> list[int]:
        np = _np.numpy
        full = self._full
        capacity = self._capacity
        base_matrix = masks_to_matrix(np, base, capacity)
        memo: dict[int, object] = {}

        def walk(node: Node):
            cached = memo.get(node.node_id)
            if cached is not None:
                return cached
            if isinstance(node, TableRef):
                col = base_matrix
            elif isinstance(node, Unary):
                child = walk(node.child)
                cfg = node.config
                op = cfg.opcode
                if op is UnaryOp.NO_OP:
                    col = child
                elif op is UnaryOp.PREDICATE:
                    assert cfg.attr is not None and cfg.rel_op is not None
                    assert cfg.val is not None
                    sat = smbm.metric_index(cfg.attr).predicate_mask(
                        cfg.rel_op, cfg.val, full
                    )
                    col = child & unpack_mask(np, sat, capacity)
                elif op in (UnaryOp.MIN, UnaryOp.MAX):
                    assert cfg.attr is not None
                    index = smbm.metric_index(cfg.attr)
                    ids = np.asarray(index.ids, dtype=np.intp)
                    col = select_k_ranked(
                        np, child, ids, cfg.k, op is UnaryOp.MAX
                    )
                else:  # pragma: no cover - rejected at construction
                    raise ConfigurationError(f"stateful opcode {op} in batch")
            elif isinstance(node, Binary):
                left = walk(node.left)
                right = walk(node.right)
                op = node.opcode
                if op is BinaryOp.NO_OP:
                    col = left if node.choice == 0 else right
                elif op is BinaryOp.UNION:
                    col = left | right
                elif op is BinaryOp.INTERSECTION:
                    col = left & right
                else:
                    col = left & ~right
            elif isinstance(node, Conditional):
                primary = walk(node.primary)
                fallback = walk(node.fallback)
                non_empty = primary.any(axis=1)[:, None]
                col = np.where(non_empty, primary, fallback)
            else:  # pragma: no cover
                raise ConfigurationError(f"unknown node type {type(node)!r}")
            memo[node.node_id] = col
            return col

        return matrix_to_masks(np, walk(self._policy.root))
