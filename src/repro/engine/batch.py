"""Columnar packet batches: the struct-of-arrays buffer of the batch tier.

A :class:`PacketBatch` holds one *column* per packet attribute instead of
one object per packet — the filter-request flags, the optional per-packet
input masks (candidate resource sets), any extracted header/metadata
fields, and the two output columns the filter module writes
(``filter_output`` / ``filter_selected``).  Columns keep evaluation costs
amortised: the batched engine touches each column once per batch instead
of chasing ``Packet`` objects and metadata dicts once per packet.

The metadata keys mirror the per-packet protocol of
:mod:`repro.switch.filter_module`; they are *defined* here (the switch
module re-exports them) so the engine layer has no dependency on the
switch layer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids rmt import at runtime
    from repro.rmt.packet import Packet

__all__ = [
    "PacketBatch",
    "META_FILTER_REQUEST",
    "META_FILTER_OUTPUT",
    "META_FILTER_SELECTED",
    "META_FILTER_INPUT",
    "META_FILTER_EPOCH",
]

#: Metadata flag a packet sets to request filtering.
META_FILTER_REQUEST = "filter_request"
#: Metadata keys the filter module writes.
META_FILTER_OUTPUT = "filter_output"      # bit-vector value (int)
META_FILTER_SELECTED = "filter_selected"  # single id, or -1 if not a singleton
#: Optional per-packet candidate set: an id-bitmask (int) restricting the
#: resource table the policy sees for this packet.  Absent means the full
#: table (the common case — Figure 14's pipeline inputs).
META_FILTER_INPUT = "filter_input"
#: Plan-epoch watermark stamped alongside every filter output: which
#: installed plan generation produced the result.  A hitless hot-swap bumps
#: the epoch exactly once, so a packet stream spanning a swap carries a
#: monotone watermark separating old-plan from new-plan outputs — the
#: invariant the swap tests key on ("never a mixed plan").
META_FILTER_EPOCH = "filter_epoch"


class PacketBatch:
    """A fixed-size batch of packets in columnar (struct-of-arrays) form.

    ``request[i]`` — whether packet ``i`` asked for filtering;
    ``input_masks`` — ``None`` for a *uniform* batch (every packet filters
    the full table), else one ``int | None`` mask per packet (``None`` =
    full table for that packet);
    ``fields[name][i]`` — extracted metadata/header columns;
    ``outputs`` / ``selected`` — result columns, ``None`` until evaluated.
    """

    __slots__ = ("_size", "_request", "_input_masks", "_fields",
                 "_outputs", "_selected", "_epochs", "_packets")

    def __init__(
        self,
        size: int,
        *,
        request: Sequence[bool] | None = None,
        input_masks: Sequence[int | None] | None = None,
        fields: dict[str, Sequence[object]] | None = None,
    ):
        if size < 0:
            raise ConfigurationError(f"batch size must be >= 0, got {size}")
        if request is not None and len(request) != size:
            raise ConfigurationError(
                f"request column has {len(request)} rows, batch size is {size}"
            )
        if input_masks is not None and len(input_masks) != size:
            raise ConfigurationError(
                f"input_masks column has {len(input_masks)} rows, "
                f"batch size is {size}"
            )
        for name, col in (fields or {}).items():
            if len(col) != size:
                raise ConfigurationError(
                    f"field column {name!r} has {len(col)} rows, "
                    f"batch size is {size}"
                )
        self._size = size
        self._request = (
            [True] * size if request is None else [bool(r) for r in request]
        )
        self._input_masks = (
            None if input_masks is None else list(input_masks)
        )
        self._fields = {name: list(col) for name, col in (fields or {}).items()}
        self._outputs: list[int | None] = [None] * size
        self._selected: list[int | None] = [None] * size
        self._epochs: list[int | None] = [None] * size
        self._packets: "Sequence[Packet] | None" = None

    # -- constructors -------------------------------------------------------------

    @classmethod
    def uniform(cls, size: int) -> "PacketBatch":
        """A homogeneous batch: every packet filters the full table."""
        return cls(size)

    @classmethod
    def from_packets(
        cls, packets: "Sequence[Packet]", field_names: Iterable[str] = ()
    ) -> "PacketBatch":
        """Columnarise a packet list: one pass over the objects, then the
        engine works on flat columns.  ``field_names`` selects extra
        metadata keys to extract into :meth:`field` columns.

        The batch remembers the source packets so :meth:`scatter` can write
        the output columns back onto their metadata afterwards.
        """
        names = tuple(field_names)
        request = []
        masks: list[int | None] = []
        any_mask = False
        fields: dict[str, list[object]] = {name: [] for name in names}
        for packet in packets:
            meta = packet.metadata
            request.append(bool(meta.get(META_FILTER_REQUEST)))
            mask = meta.get(META_FILTER_INPUT)
            masks.append(int(mask) if mask is not None else None)
            any_mask = any_mask or mask is not None
            for name in names:
                fields[name].append(meta.get(name))
        batch = cls(
            len(request),
            request=request,
            input_masks=masks if any_mask else None,
            fields=fields,
        )
        batch._packets = packets
        return batch

    # -- columns ------------------------------------------------------------------

    @property
    def size(self) -> int:
        return self._size

    def __len__(self) -> int:
        return self._size

    @property
    def request(self) -> list[bool]:
        """The filter-request column."""
        return self._request

    @property
    def input_masks(self) -> list[int | None] | None:
        """Per-packet candidate masks, or ``None`` for a uniform batch."""
        return self._input_masks

    @property
    def outputs(self) -> list[int | None]:
        """The ``filter_output`` column (raw int masks; ``None`` = not run)."""
        return self._outputs

    @property
    def selected(self) -> list[int | None]:
        """The ``filter_selected`` column (id, or -1 if not a singleton)."""
        return self._selected

    @property
    def epochs(self) -> list[int | None]:
        """The ``filter_epoch`` watermark column (plan generation that
        produced each row's output; ``None`` = not run)."""
        return self._epochs

    def field(self, name: str) -> list[object]:
        """One extracted metadata column."""
        try:
            return self._fields[name]
        except KeyError:
            raise ConfigurationError(
                f"no field column {name!r}; extracted: {sorted(self._fields)}"
            ) from None

    # -- batch shape queries ---------------------------------------------------------

    def is_uniform(self) -> bool:
        """True when every requesting packet filters the full table — the
        shape whose evaluation collapses to a single policy run per batch
        signature (one memo probe for the whole batch)."""
        if self._input_masks is None:
            return True
        return all(
            mask is None
            for mask, req in zip(self._input_masks, self._request)
            if req
        )

    def requesting_indices(self) -> list[int]:
        """Row indices of the packets that asked for filtering."""
        return [i for i, req in enumerate(self._request) if req]

    def signature(self, version: int) -> tuple[int, bool]:
        """The memo key of this batch against a table at ``version``:
        batches with equal signatures over an unchanged table evaluate to
        the same output column shape."""
        return (version, self.is_uniform())

    # -- write-back -------------------------------------------------------------------

    def scatter(self) -> None:
        """Write the output columns back onto the source packets' metadata
        (no-op rows whose packets did not request filtering, exactly like
        the scalar :meth:`FilterModule.hook`)."""
        if self._packets is None:
            raise ConfigurationError(
                "scatter() requires a batch built with from_packets()"
            )
        for packet, out, sel, epoch in zip(self._packets, self._outputs,
                                           self._selected, self._epochs):
            if out is None:
                continue
            packet.metadata[META_FILTER_OUTPUT] = out
            packet.metadata[META_FILTER_SELECTED] = sel
            if epoch is not None:
                packet.metadata[META_FILTER_EPOCH] = epoch

    def __repr__(self) -> str:
        kind = "uniform" if self.is_uniform() else "masked"
        done = sum(1 for out in self._outputs if out is not None)
        return (f"PacketBatch(size={self._size}, {kind}, "
                f"requesting={len(self.requesting_indices())}, "
                f"evaluated={done})")
