"""Exception hierarchy shared across the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class CapacityError(ReproError):
    """A hardware structure was asked to hold more state than it has."""


class ConfigurationError(ReproError):
    """A component was configured with invalid or inconsistent parameters."""


class ConfigError(ConfigurationError):
    """Mutually exclusive configuration flags were combined.

    The typed variant of :class:`ConfigurationError` raised by components
    with a flag-exclusivity matrix (e.g.
    :class:`~repro.switch.filter_module.FilterModule`): ``conflicts`` lists
    every violated pair as ``(flag_a, flag_b)`` tuples so tests and callers
    can assert on exactly which combination was rejected rather than
    pattern-matching message text.  All conflicts are reported in one
    raise, not just the first one found.
    """

    def __init__(
        self,
        message: str,
        *,
        conflicts: "tuple[tuple[str, str], ...] | list[tuple[str, str]]" = (),
    ):
        super().__init__(message)
        self.conflicts = tuple(tuple(pair) for pair in conflicts)

    def involves(self, flag: str) -> bool:
        """True when ``flag`` appears in any reported conflict pair."""
        return any(flag in pair for pair in self.conflicts)


class CompilationError(ReproError):
    """A filter policy cannot be mapped onto the target pipeline.

    Carries the same structured context the static verifier's findings use
    (see :mod:`repro.analysis.findings`), so compile-time failures and
    verification rejections share one diagnostic format: ``rule`` is the
    stable ``THnnn`` rule id, ``stage`` (1-based) and ``cell`` locate the
    physical resource that ran out or was mis-wired, and ``operator``
    describes the policy operator being placed.  All fields are optional —
    raise sites fill in what they know.
    """

    def __init__(
        self,
        message: str,
        *,
        rule: str | None = None,
        stage: int | None = None,
        cell: int | None = None,
        operator: str | None = None,
    ):
        super().__init__(message)
        self.rule = rule
        self.stage = stage
        self.cell = cell
        self.operator = operator

    def context(self) -> dict[str, int | str | None]:
        """The structured context as a dict (for logs and assertions)."""
        return {
            "rule": self.rule,
            "stage": self.stage,
            "cell": self.cell,
            "operator": self.operator,
        }

    def __str__(self) -> str:
        base = super().__str__()
        parts = []
        if self.rule is not None:
            parts.append(f"rule={self.rule}")
        if self.stage is not None:
            parts.append(f"stage={self.stage}")
        if self.cell is not None:
            parts.append(f"cell={self.cell}")
        if self.operator is not None:
            parts.append(f"operator={self.operator}")
        return f"{base} [{', '.join(parts)}]" if parts else base


class RoutingError(ReproError):
    """A switching network could not realise the requested connection set.

    Also raised by multi-tenant demux when packets cannot be routed to an
    owning tenant.  Following the all-violations ConfigError style, batch
    demux reports *every* offending label in one raise: ``unknown`` lists
    each distinct ``META_TENANT`` label with no admitted tenant, and
    ``unlabelled`` counts requesting packets carrying no label at all, so
    callers can assert on the full violation set rather than fixing one
    label per exception.
    """

    def __init__(
        self,
        message: str,
        *,
        unknown: "tuple[str, ...] | list[str]" = (),
        unlabelled: int = 0,
    ):
        super().__init__(message)
        self.unknown = tuple(unknown)
        self.unlabelled = unlabelled


class CheckpointError(ReproError):
    """A serving checkpoint could not be written, read, or trusted.

    Raised for unreadable/truncated files, unknown magic or format
    versions, checksum mismatches, and payloads that fail structural
    validation.  ``path`` locates the offending file when one is involved.
    """

    def __init__(self, message: str, *, path: str | None = None):
        super().__init__(message)
        self.path = path


class WalError(ReproError):
    """A write-ahead log could not be written, read, or trusted.

    The WAL sibling of :class:`CheckpointError`: raised for unreadable
    files, unknown magic or format versions, and records that fail
    structural validation after their frame checksum verified.  (A frame
    that fails its checksum is *not* an error — it is a torn tail,
    truncated and counted by recovery.)  ``path`` locates the offending
    file when one is involved.
    """

    def __init__(self, message: str, *, path: str | None = None):
        super().__init__(message)
        self.path = path


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class FaultError(ReproError):
    """Base of the fault / self-healing branch of the hierarchy.

    Carries structured context so detection and recovery machinery (and
    tests) can reason about *where* a fault bit: the failing ``component``
    (e.g. ``"cell"``, ``"smbm"``, ``"replicated_smbm"``, ``"graphdb"``), the
    ``cycle`` (or simulated time) it was observed at, and the ``resource``
    (row id, server id, link name, ...) it touched.  All context fields are
    optional — raise sites fill in what they know.
    """

    def __init__(
        self,
        message: str,
        *,
        component: str | None = None,
        cycle: int | float | None = None,
        resource: int | str | None = None,
    ):
        super().__init__(message)
        self.component = component
        self.cycle = cycle
        self.resource = resource

    def context(self) -> dict[str, int | float | str | None]:
        """The structured context as a dict (for logs and assertions)."""
        return {
            "component": self.component,
            "cycle": self.cycle,
            "resource": self.resource,
        }


class IntegrityError(FaultError):
    """Stored state failed a parity/ECC or cross-replica consistency check."""


class RetryExhausted(FaultError):
    """A control-plane operation failed past its retry budget.

    ``attempts`` records how many tries were made before giving up.
    """

    def __init__(self, message: str, *, attempts: int | None = None, **context):
        super().__init__(message, **context)
        self.attempts = attempts


class DeadlineExceeded(FaultError):
    """A control-plane operation missed its deadline before applying.

    Raised by the controller when an op sat in its tenant queue past the
    configured per-op deadline: the op is failed fast *without* being
    applied (or logged), so a deadline failure never leaves partial
    state.  ``deadline_s`` records the budget that was missed and
    ``waited_s`` how long the op actually queued.
    """

    def __init__(self, message: str, *, deadline_s: float | None = None,
                 waited_s: float | None = None, **context):
        context.setdefault("component", "controller")
        super().__init__(message, **context)
        self.deadline_s = deadline_s
        self.waited_s = waited_s


class CircuitOpen(FaultError):
    """A tenant's control-plane circuit breaker is open: fail fast.

    Raised at submit time (the op is never queued, logged, or applied)
    while the breaker counts down its cooldown.  ``tenant`` names the
    tripped circuit and ``failures`` how many consecutive failures opened
    it, so callers can back off instead of queueing forever behind a
    wedged tenant.
    """

    def __init__(self, message: str, *, tenant: str | None = None,
                 failures: int | None = None, **context):
        context.setdefault("component", "controller")
        super().__init__(message, **context)
        self.tenant = tenant
        self.failures = failures


class Overloaded(FaultError):
    """A control op was shed because a bounded queue was saturated.

    The controller's load-shedding path: when a tenant's op queue is
    full, the lowest-priority op (the incoming one, or a queued one that
    a higher-priority arrival displaces) fails fast with this error and
    is counted as ``controller_shed_total{op=...}``.  The data path keeps
    serving the last-good plan throughout.
    """

    def __init__(self, message: str, *, tenant: str | None = None,
                 op: str | None = None, **context):
        context.setdefault("component", "controller")
        super().__init__(message, **context)
        self.tenant = tenant
        self.op = op


class CellFault(FaultError):
    """A physical Cell failed while evaluating a packet (dead unit).

    ``stage`` (1-based) and ``index`` locate the Cell inside its pipeline so
    fail-around recompilation knows which physical resource to avoid.
    """

    def __init__(
        self,
        message: str,
        *,
        stage: int | None = None,
        index: int | None = None,
        **context,
    ):
        context.setdefault("component", "cell")
        super().__init__(message, **context)
        self.stage = stage
        self.index = index
