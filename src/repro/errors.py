"""Exception hierarchy shared across the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class CapacityError(ReproError):
    """A hardware structure was asked to hold more state than it has."""


class ConfigurationError(ReproError):
    """A component was configured with invalid or inconsistent parameters."""


class CompilationError(ReproError):
    """A filter policy cannot be mapped onto the target pipeline."""


class RoutingError(ReproError):
    """A switching network could not realise the requested connection set."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""
