"""Register arrays with RMT's access constraint.

Section 2.2: "RMT allows access to at most a single entry per register array
per packet per pipeline stage (per clock cycle)".  This is the constraint
that makes table-wide filtering impossible in O(1) on a plain RMT pipeline —
and the one Thanos's SMBM (flip-flop based, whole-structure reads) removes.

:class:`RegisterArray` enforces the constraint explicitly: each packet
context may touch at most one index, and violating it raises.  The RMT
baseline benchmark (``bench_ablation_rmt_baseline``) uses this to demonstrate
the O(N) cost of a table scan the paper argues in section 2.2.
"""

from __future__ import annotations

from repro.errors import CapacityError, ConfigurationError

__all__ = ["RegisterArray"]


class RegisterArray:
    """A stateful register array inside one match-action stage."""

    def __init__(self, name: str, size: int, initial: int = 0):
        if size <= 0:
            raise ConfigurationError(f"register array size must be positive: {size}")
        self._name = name
        self._values = [initial] * size
        self._accessed_by: object | None = None

    @property
    def name(self) -> str:
        return self._name

    @property
    def size(self) -> int:
        return len(self._values)

    def begin_packet(self, token: object) -> None:
        """Open a packet context; the next accesses are charged to it."""
        self._accessed_by = None
        self._token = token

    def _charge(self, index: int) -> None:
        if not 0 <= index < len(self._values):
            raise CapacityError(
                f"register {self._name!r}: index {index} out of range "
                f"[0, {len(self._values)})"
            )
        if self._accessed_by is not None and self._accessed_by != index:
            raise ConfigurationError(
                f"register {self._name!r}: RMT allows one entry access per "
                f"packet per stage; already touched index {self._accessed_by}, "
                f"now index {index}"
            )
        self._accessed_by = index

    def read(self, index: int) -> int:
        """Read one entry (charged against the per-packet access budget)."""
        self._charge(index)
        return self._values[index]

    def write(self, index: int, value: int) -> None:
        """Write one entry (same single-entry budget as read)."""
        self._charge(index)
        self._values[index] = value

    def read_modify_write(self, index: int, delta: int) -> int:
        """Atomic increment, the classic stateful-ALU pattern; returns the
        new value.  Counts as the single access for this packet."""
        self._charge(index)
        self._values[index] += delta
        return self._values[index]

    def peek_all(self) -> list[int]:
        """Control-plane read of the whole array (not a data-plane op)."""
        return list(self._values)
