"""Probe packets carrying remote resource metrics (section 3, task 1).

Remote metrics (path congestion, server resource availability, ...) reach
the switch in probe packets, as in CONGA, HULA, and Contra.  The RMT
pipeline parses the probe header and extracts the metric values; Thanos then
applies them to the SMBM as a delete+add update.

Wire format (big-endian)::

    ether { dst:32, src:32, ethertype:16 }        # 0x88B5 = probe
    probe { resource_id:16, metric_1:32, ..., metric_M:32 }

Metric values are encoded with a +2^31 offset so that negative metric values
survive the unsigned wire fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import ConfigurationError
from repro.rmt.packet import FieldDef, HeaderDef, Packet
from repro.rmt.parser import ACCEPT, Parser, ParseState

__all__ = ["ETHERTYPE_PROBE", "ETHERTYPE_DATA", "ProbeUpdate", "ProbeCodec"]

ETHERTYPE_PROBE = 0x88B5
ETHERTYPE_DATA = 0x0800

_METRIC_OFFSET = 1 << 31

ETHER_HEADER = HeaderDef(
    "ether",
    (
        FieldDef("dst", 32),
        FieldDef("src", 32),
        FieldDef("ethertype", 16),
    ),
)


@dataclass(frozen=True)
class ProbeUpdate:
    """A decoded probe: the resource id and its fresh metric values."""

    resource_id: int
    metrics: dict[str, int]


class ProbeCodec:
    """Encode/decode probe packets for a fixed metric schema."""

    def __init__(self, metric_names: Sequence[str]):
        if not metric_names:
            raise ConfigurationError("probe schema needs at least one metric")
        self._metric_names = tuple(metric_names)
        fields = [FieldDef("resource_id", 16)]
        fields += [FieldDef(name, 32) for name in self._metric_names]
        self._probe_header = HeaderDef("probe", tuple(fields))

    @property
    def metric_names(self) -> tuple[str, ...]:
        return self._metric_names

    @property
    def probe_header(self) -> HeaderDef:
        return self._probe_header

    def build_parser(self) -> Parser:
        """A parser that accepts probe and plain data packets."""
        return Parser(
            [
                ParseState(
                    name="start",
                    header=ETHER_HEADER,
                    select_field="ethertype",
                    transitions={ETHERTYPE_PROBE: "probe"},
                    default=ACCEPT,
                ),
                ParseState(name="probe", header=self._probe_header),
            ],
            start="start",
        )

    def encode(
        self, resource_id: int, metrics: Mapping[str, int],
        src: int = 0, dst: int = 0,
    ) -> bytes:
        """Serialise a probe packet to wire bytes."""
        if set(metrics) != set(self._metric_names):
            raise ConfigurationError(
                f"metrics {sorted(metrics)} do not match probe schema "
                f"{sorted(self._metric_names)}"
            )
        packet = Packet()
        packet.push_header(
            "ether", {"dst": dst, "src": src, "ethertype": ETHERTYPE_PROBE}
        )
        packet.push_header(
            "probe",
            {
                "resource_id": resource_id,
                **{name: metrics[name] + _METRIC_OFFSET for name in self._metric_names},
            },
        )
        return packet.serialize({"ether": ETHER_HEADER, "probe": self._probe_header})

    def decode(self, packet: Packet) -> ProbeUpdate | None:
        """Extract the probe update from a parsed packet; None if not a probe."""
        if not packet.has_header("probe"):
            return None
        values = packet.header("probe")
        return ProbeUpdate(
            resource_id=values["resource_id"],
            metrics={
                name: values[name] - _METRIC_OFFSET for name in self._metric_names
            },
        )
