"""The programmable parser.

An RMT parser is a state machine: each state extracts one header type from
the byte stream and transitions on the value of one of the extracted fields
(e.g. an EtherType or protocol number).  Header processing is "the primary
job" of the RMT pipeline (section 3), and in Thanos it is what turns probe
packets into metric updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ConfigurationError
from repro.rmt.packet import HeaderDef, Packet

__all__ = ["ParseState", "Parser"]

#: Transition target meaning "parsing is complete".
ACCEPT = "accept"


@dataclass(frozen=True)
class ParseState:
    """One parser state.

    Extracts ``header`` and then either accepts (``select_field`` is None)
    or transitions on the value of ``select_field``: ``transitions`` maps
    field values to next state names, with ``default`` used for unmatched
    values (``None`` default means unmatched values are a parse error).
    """

    name: str
    header: HeaderDef
    select_field: str | None = None
    transitions: Mapping[int, str] = field(default_factory=dict)
    default: str | None = None

    def __post_init__(self) -> None:
        if self.select_field is not None:
            self.header.field(self.select_field)  # validates existence
        elif self.transitions:
            raise ConfigurationError(
                f"state {self.name!r} has transitions but no select field"
            )


class Parser:
    """A programmable parser: states, a start state, and an extract loop."""

    def __init__(self, states: list[ParseState], start: str):
        self._states = {s.name: s for s in states}
        if len(self._states) != len(states):
            raise ConfigurationError("duplicate parser state names")
        if start not in self._states:
            raise ConfigurationError(f"unknown start state {start!r}")
        for s in states:
            targets = list(s.transitions.values())
            if s.default is not None:
                targets.append(s.default)
            for t in targets:
                if t != ACCEPT and t not in self._states:
                    raise ConfigurationError(
                        f"state {s.name!r} transitions to unknown state {t!r}"
                    )
        self._start = start

    @property
    def header_defs(self) -> dict[str, HeaderDef]:
        """Header definitions keyed by header name (for serialisation)."""
        return {s.header.name: s.header for s in self._states.values()}

    def parse(self, data: bytes) -> Packet:
        """Run the state machine over ``data``; returns the parsed packet.

        The byte stream beyond the last parsed header is treated as payload
        and contributes only its length.
        """
        packet = Packet()
        state = self._states[self._start]
        offset = 0
        visited = 0
        while True:
            visited += 1
            if visited > len(self._states) + 1:
                raise ConfigurationError("parser loop: state cycle detected")
            values = state.header.unpack(data, offset)
            packet.push_header(state.header.name, values)
            offset += state.header.width_bytes
            if state.select_field is None:
                break
            key = values[state.select_field]
            target = state.transitions.get(key, state.default)
            if target is None:
                raise ConfigurationError(
                    f"state {state.name!r}: no transition for "
                    f"{state.select_field}={key}"
                )
            if target == ACCEPT:
                break
            state = self._states[target]
        packet.payload_bytes = len(data) - offset
        return packet
