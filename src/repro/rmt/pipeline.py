"""The feed-forward match-action pipeline.

Stages run strictly in order; a packet (and its metadata) only ever moves
forward (section 2.2).  Each stage owns its match tables and register
arrays; register access is charged per packet to enforce the
one-entry-per-array constraint.

A stage may also host a *module hook* — this is how Thanos's filter module
integrates "inline with the Match-Action stages" (section 3, Figure 8): the
hook sees the packet after the stage's tables ran, writes its result to the
packet metadata, and the following stages consume it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigurationError
from repro.rmt.match_table import MatchTable
from repro.rmt.packet import Packet
from repro.rmt.registers import RegisterArray

__all__ = ["MatchActionStage", "RMTPipeline"]

#: A module hook runs after a stage's tables; it may read/write metadata.
ModuleHook = Callable[[Packet], None]


@dataclass
class MatchActionStage:
    """One pipeline stage: tables applied in order plus register arrays."""

    name: str
    tables: list[MatchTable] = field(default_factory=list)
    registers: dict[str, RegisterArray] = field(default_factory=dict)
    hook: ModuleHook | None = None

    def add_register(self, array: RegisterArray) -> None:
        if array.name in self.registers:
            raise ConfigurationError(
                f"stage {self.name!r}: duplicate register {array.name!r}"
            )
        self.registers[array.name] = array

    def process(self, packet: Packet) -> None:
        for array in self.registers.values():
            array.begin_packet(packet)
        for table in self.tables:
            table.apply(packet)
        if self.hook is not None:
            self.hook(packet)


class RMTPipeline:
    """An ordered list of match-action stages (feed-forward)."""

    def __init__(self, stages: list[MatchActionStage]):
        names = [s.name for s in stages]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate stage names: {names}")
        self._stages = list(stages)
        self._packets_processed = 0

    @property
    def stages(self) -> list[MatchActionStage]:
        return list(self._stages)

    @property
    def packets_processed(self) -> int:
        return self._packets_processed

    def stage(self, name: str) -> MatchActionStage:
        for s in self._stages:
            if s.name == name:
                return s
        raise ConfigurationError(f"no stage named {name!r}")

    def process(self, packet: Packet) -> Packet:
        """One packet's traversal through every stage, in order."""
        for stage in self._stages:
            stage.process(packet)
        self._packets_processed += 1
        return packet
