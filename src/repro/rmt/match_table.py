"""Match tables: exact (SRAM) and ternary (TCAM).

A match table matches selected packet fields against its entries and, on a
hit, runs the entry's action.  As section 2.2 notes, match tables *cannot*
filter their own entries by custom policies — they only match the packet's
key — which is precisely the gap Thanos fills.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import CapacityError, ConfigurationError
from repro.rmt.packet import Packet

__all__ = ["MatchKind", "TableEntry", "MatchTable"]

#: An action receives the packet and the entry's action data.
Action = Callable[[Packet, dict[str, int]], None]


class MatchKind(enum.Enum):
    """How a table compares keys against entries."""

    EXACT = "exact"      # SRAM hash table
    TERNARY = "ternary"  # TCAM with per-entry value/mask and priority


@dataclass(frozen=True)
class TableEntry:
    """One table entry.

    For exact tables ``key`` is the tuple of field values.  For ternary
    tables ``key`` is the value tuple and ``mask`` selects which bits of
    each field participate; higher ``priority`` wins among multiple hits.
    """

    key: tuple[int, ...]
    action_name: str
    action_data: dict[str, int] = field(default_factory=dict)
    mask: tuple[int, ...] | None = None
    priority: int = 0


class MatchTable:
    """A match-action table over a fixed tuple of packet fields.

    ``key_fields`` name the match key as ``(header, field)`` pairs, or
    ``("meta", name)`` to match metadata.
    """

    def __init__(
        self,
        name: str,
        key_fields: Sequence[tuple[str, str]],
        kind: MatchKind = MatchKind.EXACT,
        capacity: int = 1024,
    ):
        if not key_fields:
            raise ConfigurationError(f"table {name!r} needs at least one key field")
        if capacity <= 0:
            raise ConfigurationError(f"table {name!r}: capacity must be positive")
        self._name = name
        self._key_fields = tuple(key_fields)
        self._kind = kind
        self._capacity = capacity
        self._actions: dict[str, Action] = {}
        self._exact: dict[tuple[int, ...], TableEntry] = {}
        self._ternary: list[TableEntry] = []

    @property
    def name(self) -> str:
        return self._name

    @property
    def kind(self) -> MatchKind:
        return self._kind

    def __len__(self) -> int:
        return len(self._exact) if self._kind is MatchKind.EXACT else len(self._ternary)

    # -- control plane ------------------------------------------------------------

    def register_action(self, name: str, action: Action) -> None:
        """Make an action available for entries to reference."""
        self._actions[name] = action

    def insert(self, entry: TableEntry) -> None:
        """Install an entry (control-plane operation)."""
        if len(entry.key) != len(self._key_fields):
            raise ConfigurationError(
                f"table {self._name!r}: key arity {len(entry.key)} != "
                f"{len(self._key_fields)}"
            )
        if entry.action_name not in self._actions:
            raise ConfigurationError(
                f"table {self._name!r}: unknown action {entry.action_name!r}"
            )
        if len(self) >= self._capacity:
            raise CapacityError(f"table {self._name!r} full ({self._capacity})")
        if self._kind is MatchKind.EXACT:
            if entry.mask is not None:
                raise ConfigurationError("exact tables take no mask")
            if entry.key in self._exact:
                raise ConfigurationError(
                    f"table {self._name!r}: duplicate key {entry.key}"
                )
            self._exact[entry.key] = entry
        else:
            if entry.mask is None or len(entry.mask) != len(entry.key):
                raise ConfigurationError("ternary entries need a same-arity mask")
            self._ternary.append(entry)
            self._ternary.sort(key=lambda e: -e.priority)

    def remove_exact(self, key: tuple[int, ...]) -> None:
        self._exact.pop(key, None)

    # -- data plane ---------------------------------------------------------------

    def _extract_key(self, packet: Packet) -> tuple[int, ...]:
        parts = []
        for scope, fname in self._key_fields:
            if scope == "meta":
                if fname not in packet.metadata:
                    raise ConfigurationError(
                        f"table {self._name!r}: packet missing metadata {fname!r}"
                    )
                parts.append(packet.metadata[fname])
            else:
                parts.append(packet.header(scope)[fname])
        return tuple(parts)

    def lookup(self, packet: Packet) -> TableEntry | None:
        """Match the packet; returns the winning entry or ``None`` (miss)."""
        key = self._extract_key(packet)
        if self._kind is MatchKind.EXACT:
            return self._exact.get(key)
        for entry in self._ternary:
            assert entry.mask is not None
            if all(
                (k & m) == (ek & m)
                for k, ek, m in zip(key, entry.key, entry.mask)
            ):
                return entry
        return None

    def apply(self, packet: Packet) -> bool:
        """Match and, on a hit, execute the action.  Returns hit/miss."""
        entry = self.lookup(packet)
        if entry is None:
            return False
        self._actions[entry.action_name](packet, dict(entry.action_data))
        return True
