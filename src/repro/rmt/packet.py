"""Packets, header definitions, and serialisation.

RMT parsers operate on raw header bytes.  A :class:`HeaderDef` declares a
header type as an ordered list of fixed-width fields; :class:`Packet` carries
a stack of header instances plus the per-packet metadata bus that match-action
stages (and Thanos's filter module) read and write.

Packets serialise to and parse from bytes, so the parser tests exercise the
real extraction path rather than dictionary lookups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ConfigurationError

__all__ = ["FieldDef", "HeaderDef", "Packet", "META_TENANT"]

#: Metadata key naming the tenant a packet belongs to on a virtualized
#: switch (set by the ingress classifier — in this model, the traffic
#: source).  Probe and data packets both carry it; a multi-tenant switch
#: demuxes on it and refuses to guess when it is absent.
META_TENANT = "tenant"


@dataclass(frozen=True)
class FieldDef:
    """One fixed-width unsigned field of a header."""

    name: str
    width_bits: int

    def __post_init__(self) -> None:
        if self.width_bits <= 0 or self.width_bits % 8:
            raise ConfigurationError(
                f"field {self.name!r}: width must be a positive multiple of 8 "
                f"bits (got {self.width_bits}); sub-byte fields are not "
                "needed by any header in this model"
            )


@dataclass(frozen=True)
class HeaderDef:
    """A header type: a name plus an ordered tuple of fields."""

    name: str
    fields: tuple[FieldDef, ...]

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate fields in header {self.name!r}")

    @property
    def width_bytes(self) -> int:
        return sum(f.width_bits for f in self.fields) // 8

    def field(self, name: str) -> FieldDef:
        for f in self.fields:
            if f.name == name:
                return f
        raise ConfigurationError(f"header {self.name!r} has no field {name!r}")

    def pack(self, values: Mapping[str, int]) -> bytes:
        """Serialise field values to bytes (big-endian, network order)."""
        if set(values) != {f.name for f in self.fields}:
            raise ConfigurationError(
                f"values {sorted(values)} do not match header {self.name!r} "
                f"fields {[f.name for f in self.fields]}"
            )
        out = bytearray()
        for f in self.fields:
            width = f.width_bits // 8
            value = values[f.name]
            if not 0 <= value < (1 << f.width_bits):
                raise ConfigurationError(
                    f"value {value} does not fit field {f.name!r} "
                    f"({f.width_bits} bits)"
                )
            out += value.to_bytes(width, "big")
        return bytes(out)

    def unpack(self, data: bytes, offset: int = 0) -> dict[str, int]:
        """Extract field values from bytes starting at ``offset``."""
        if offset + self.width_bytes > len(data):
            raise ConfigurationError(
                f"truncated packet: header {self.name!r} needs "
                f"{self.width_bytes} bytes at offset {offset}, "
                f"have {len(data) - offset}"
            )
        values = {}
        pos = offset
        for f in self.fields:
            width = f.width_bits // 8
            values[f.name] = int.from_bytes(data[pos : pos + width], "big")
            pos += width
        return values


@dataclass
class Packet:
    """A packet: an ordered stack of (header name, field values) plus the
    metadata bus and an opaque payload length."""

    headers: list[tuple[str, dict[str, int]]] = field(default_factory=list)
    metadata: dict[str, int] = field(default_factory=dict)
    payload_bytes: int = 0

    def header(self, name: str) -> dict[str, int]:
        for hname, values in self.headers:
            if hname == name:
                return values
        raise ConfigurationError(f"packet has no {name!r} header")

    def has_header(self, name: str) -> bool:
        return any(hname == name for hname, _values in self.headers)

    def push_header(self, name: str, values: Mapping[str, int]) -> None:
        self.headers.append((name, dict(values)))

    def serialize(self, defs: Mapping[str, HeaderDef]) -> bytes:
        """Concatenate all headers' bytes (payload is length-only)."""
        out = bytearray()
        for hname, values in self.headers:
            if hname not in defs:
                raise ConfigurationError(f"no definition for header {hname!r}")
            out += defs[hname].pack(values)
        return bytes(out)

    @property
    def total_bytes(self) -> int:
        """Wire size used by the network simulator (headers are counted by
        the caller's header definitions; metadata is switch-internal)."""
        return self.payload_bytes
