"""RMT pipeline substrate (sections 2.2 and 3).

A model of the Reconfigurable Match Table architecture that Thanos extends:

* :mod:`~repro.rmt.packet` — packets with header stacks and metadata;
* :mod:`~repro.rmt.parser` — the programmable parser (a state machine over
  serialised header bytes);
* :mod:`~repro.rmt.registers` — stateful register arrays with RMT's
  one-access-per-array-per-stage constraint;
* :mod:`~repro.rmt.match_table` — exact (SRAM) and ternary (TCAM) match
  tables with priority and actions;
* :mod:`~repro.rmt.pipeline` — the feed-forward match-action pipeline;
* :mod:`~repro.rmt.probe` — probe-packet formats carrying remote resource
  metrics, and their extraction in the RMT pipeline (section 3, task 1).
"""

from repro.rmt.packet import HeaderDef, FieldDef, Packet
from repro.rmt.parser import Parser, ParseState
from repro.rmt.registers import RegisterArray
from repro.rmt.match_table import MatchTable, MatchKind, TableEntry
from repro.rmt.pipeline import MatchActionStage, RMTPipeline
from repro.rmt.probe import ProbeCodec, ProbeUpdate

__all__ = [
    "HeaderDef",
    "FieldDef",
    "Packet",
    "Parser",
    "ParseState",
    "RegisterArray",
    "MatchTable",
    "MatchKind",
    "TableEntry",
    "MatchActionStage",
    "RMTPipeline",
    "ProbeCodec",
    "ProbeUpdate",
]
