"""The chained multi-dimensional filter module (Figure 8).

Bundles the SMBM resource table with a compiled filter policy.  The module
is triggered per packet: the packet passes through unmodified while the
programmed policy is applied to the resource table, and the output — the
filtered set of resource ids — is written to the packet's metadata for the
RMT stages that follow (section 3).

Packets that do not want filtering simply bypass the module
(:meth:`FilterModule.hook` leaves packets without the trigger flag alone).
"""

from __future__ import annotations

import time
from typing import Mapping, Sequence

from repro import obs
from repro.core.bitvector import BitVector
from repro.core.compiler import CompiledPolicy, PolicyCompiler
from repro.core.pipeline import PipelineParams
from repro.core.policy import Policy
from repro.core.smbm import SMBM
from repro.rmt.packet import Packet

__all__ = ["FilterModule"]

#: Metadata flag a packet sets to request filtering.
META_FILTER_REQUEST = "filter_request"
#: Metadata keys the module writes.
META_FILTER_OUTPUT = "filter_output"      # bit-vector value (int)
META_FILTER_SELECTED = "filter_selected"  # single id, or -1 if not a singleton


class FilterModule:
    """One filter module instance: resource table + programmed policy.

    For **stateless** policies (no round-robin/random units) the module
    memoizes the evaluation result keyed on the SMBM's write-version
    counter: back-to-back packets against an unchanged table cost a single
    comparison — the software analogue of the hardware answering the same
    table every clock cycle.  Any committed write bumps the version and so
    invalidates the cache.  Stateful policies are never memoized (their
    outputs advance per packet by design).
    """

    def __init__(
        self,
        capacity: int,
        metric_names: Sequence[str],
        policy: Policy,
        params: PipelineParams | None = None,
        *,
        lfsr_seed: int = 1,
        naive: bool = False,
        memoize: bool = True,
    ):
        self._smbm = SMBM(capacity, metric_names)
        self._compiled: CompiledPolicy = PolicyCompiler(params).compile(
            policy, lfsr_seed=lfsr_seed, naive=naive
        )
        self._evaluations = 0
        self._memoize = memoize and self._compiled.stateless
        # Single-entry memo: the SMBM version only moves forward, so older
        # results can never become valid again.
        self._memo_version: int | None = None
        self._memo_output: BitVector | None = None
        self._cache_hits = 0
        self._cache_misses = 0
        # Observability.  The memo-hit path runs in ~0.4us, so the hot
        # counters stay plain ints (above) and are turned into registry
        # samples only at collect time by a weakly-held hook — the enabled
        # and disabled paths execute identical per-packet code.  Only the
        # (much slower) miss path, which runs the whole pipeline, pays for a
        # timing capture, and only when a real registry is active.
        registry = obs.get_registry()
        self._obs_enabled = registry.enabled
        self._obs_policy = policy.name
        if self._obs_enabled:
            registry.add_hook(self._obs_collect)
            self._obs_eval_ns = registry.histogram(
                "filter_eval_ns", {"policy": policy.name},
                help="miss-path policy evaluation wall time (ns, pow2 buckets)",
            )
            self._obs_cycles = registry.counter(
                "filter_eval_cycles_total", {"policy": policy.name},
                help="modelled hardware cycles spent in miss-path evaluations",
            )

    def _obs_collect(self):
        """Collect hook: publish the per-packet int counters as samples."""
        labels = (("policy", self._obs_policy),)
        yield obs.Sample("filter_evaluations_total", self._evaluations,
                         labels=labels, help="per-packet policy evaluations")
        yield obs.Sample("filter_memo_hits_total", self._cache_hits,
                         labels=labels,
                         help="evaluations served from the version memo")
        yield obs.Sample("filter_memo_misses_total", self._cache_misses,
                         labels=labels,
                         help="memoized evaluations that ran the pipeline")

    @property
    def smbm(self) -> SMBM:
        """The resource table (writable through add/delete/update)."""
        return self._smbm

    @property
    def compiled(self) -> CompiledPolicy:
        return self._compiled

    @property
    def evaluations(self) -> int:
        """Number of per-packet policy evaluations performed."""
        return self._evaluations

    @property
    def memoized(self) -> bool:
        """Whether evaluations are being served from the version cache."""
        return self._memoize

    @property
    def cache_hits(self) -> int:
        """Evaluations answered from the memo without running the pipeline."""
        return self._cache_hits

    @property
    def cache_misses(self) -> int:
        """Memoized evaluations that had to run the pipeline (cold or
        invalidated by a table write)."""
        return self._cache_misses

    def counters(self) -> dict[str, int]:
        """Evaluation/cache counters for benchmark attribution reports."""
        return {
            "evaluations": self._evaluations,
            "cache_hits": self._cache_hits,
            "cache_misses": self._cache_misses,
        }

    @property
    def latency_cycles(self) -> int:
        """Deterministic processing latency added to a packet's pipeline
        traversal (the packet itself is unmodified and un-delayed relative
        to the pipeline: the module is fully pipelined)."""
        return self._compiled.latency_cycles

    # -- resource table maintenance --------------------------------------------------

    def update_resource(self, resource_id: int, metrics: Mapping[str, int]) -> None:
        """Delete+add update, the composite write of section 5.1.2."""
        if resource_id in self._smbm:
            self._smbm.update(resource_id, metrics)
        else:
            self._smbm.add(resource_id, metrics)

    def remove_resource(self, resource_id: int) -> None:
        self._smbm.delete(resource_id)

    # -- per-packet processing --------------------------------------------------------

    def evaluate(self) -> BitVector:
        """Apply the programmed policy to the current table once.

        Stateless policies are served from the version-keyed memo when the
        table is unchanged since the last evaluation.  Callers receive an
        independent copy, so mutating the result cannot corrupt the cache.
        """
        self._evaluations += 1
        if not self._memoize:
            return self._run_pipeline()
        version = self._smbm.version
        if version == self._memo_version:
            assert self._memo_output is not None
            self._cache_hits += 1
            return self._memo_output.copy()
        out = self._run_pipeline()
        self._memo_version = version
        self._memo_output = out
        self._cache_misses += 1
        return out.copy()

    def _run_pipeline(self) -> BitVector:
        """The miss path: run the compiled pipeline, attributing its wall
        time and deterministic hardware latency when metrics are enabled."""
        if not self._obs_enabled:
            return self._compiled.evaluate(self._smbm)
        t0 = time.perf_counter_ns()
        out = self._compiled.evaluate(self._smbm)
        self._obs_eval_ns.observe(time.perf_counter_ns() - t0)
        self._obs_cycles.inc(self._compiled.latency_cycles)
        return out

    def select(self) -> int | None:
        """Evaluate and return the singleton selection, if any."""
        out = self.evaluate()
        if out.popcount() != 1:
            return None
        return out.first_set()

    def hook(self, packet: Packet) -> None:
        """The per-stage module hook: filter on request, bypass otherwise."""
        if not packet.metadata.get(META_FILTER_REQUEST):
            return
        out = self.evaluate()
        packet.metadata[META_FILTER_OUTPUT] = out.value
        packet.metadata[META_FILTER_SELECTED] = (
            out.first_set() if out.popcount() == 1 else -1
        )
