"""The chained multi-dimensional filter module (Figure 8).

Bundles the SMBM resource table with a compiled filter policy.  The module
is triggered per packet: the packet passes through unmodified while the
programmed policy is applied to the resource table, and the output — the
filtered set of resource ids — is written to the packet's metadata for the
RMT stages that follow (section 3).

Packets that do not want filtering simply bypass the module
(:meth:`FilterModule.hook` leaves packets without the trigger flag alone).
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Mapping, Sequence

from repro import obs
from repro.analysis.domains import Region
from repro.analysis.symbolic import analyze_policy
from repro.analysis.verifier import TableSchema
from repro.core.bitvector import BitVector
from repro.core.cell import Cell
from repro.core.compiler import CompiledPolicy, PolicyCompiler
from repro.core.pipeline import PipelineParams
from repro.core.policy import Policy
from repro.core.smbm import SMBM
from repro.core.ufpu_reference import GoldenOracle
from repro.engine.batch import (  # re-exported: the metadata protocol is
    META_FILTER_EPOCH,            # defined at the engine layer so the
    META_FILTER_INPUT,            # batch buffer needs no switch imports
    META_FILTER_OUTPUT,
    META_FILTER_REQUEST,
    META_FILTER_SELECTED,
    PacketBatch,
)
from repro.engine.columnar import BatchedEvaluator
from repro.errors import (
    CellFault,
    ConfigError,
    ConfigurationError,
    IntegrityError,
)
from repro.rmt.packet import Packet

__all__ = [
    "FilterModule",
    "PacketBatch",
    "META_FILTER_REQUEST",
    "META_FILTER_OUTPUT",
    "META_FILTER_SELECTED",
    "META_FILTER_INPUT",
    "META_FILTER_EPOCH",
]


#: Why each pair of constructor flags is mutually exclusive; the single
#: :class:`~repro.errors.ConfigError` raised for a bad combination quotes
#: every violated pair's rationale, not just the first one hit.
_FLAG_CONFLICTS: dict[tuple[str, str], str] = {
    ("codegen", "self_healing"): (
        "the specialized kernel never routes through the physical Cells, "
        "so a Cell fault could neither surface nor be healed mid-traffic"
    ),
    ("codegen", "naive"): (
        "naive builds the O(N) reference data path as a differential "
        "oracle, while codegen replaces the data path with a specialized "
        "kernel — the oracle would never execute"
    ),
    ("naive", "tenant"): (
        "tenant slicing confines the plan to a Cell-column slice of the "
        "shared pipeline; the O(N) reference data path models a private "
        "full-table pipeline and cannot express a slice"
    ),
}


class FilterModule:
    """One filter module instance: resource table + programmed policy.

    For **stateless** policies (no round-robin/random units) the module
    memoizes the evaluation result keyed on the SMBM's write-version
    counter: back-to-back packets against an unchanged table cost a single
    comparison — the software analogue of the hardware answering the same
    table every clock cycle.  Any committed write bumps the version and so
    invalidates the cache.  Stateful policies are never memoized (their
    outputs advance per packet by design).
    """

    def __init__(
        self,
        capacity: int,
        metric_names: Sequence[str],
        policy: Policy,
        params: PipelineParams | None = None,
        *,
        lfsr_seed: int = 1,
        naive: bool = False,
        memoize: bool = True,
        self_healing: bool = False,
        sanitize: bool = False,
        verify: bool = True,
        codegen: bool = False,
        tenant: str | None = None,
        reserved_cells: "Iterable[tuple[int, int]]" = (),
        input_lines: "Iterable[int] | None" = None,
    ):
        tenant_mode = (
            tenant is not None
            or bool(reserved_cells)
            or input_lines is not None
        )
        flags = {
            "codegen": codegen,
            "self_healing": self_healing,
            "naive": naive,
            "tenant": tenant_mode,
        }
        conflicts = [pair for pair in _FLAG_CONFLICTS
                     if flags[pair[0]] and flags[pair[1]]]
        if conflicts:
            detail = "; ".join(
                f"{a}+{b}: {_FLAG_CONFLICTS[(a, b)]}" for a, b in conflicts
            )
            raise ConfigError(
                f"mutually exclusive FilterModule flags: {detail}",
                conflicts=conflicts,
            )
        self._tenant = tenant
        self._reserved = frozenset(
            (int(stage), int(index)) for stage, index in reserved_cells
        )
        self._input_lines = (
            None if input_lines is None
            else frozenset(int(line) for line in input_lines)
        )
        self._smbm = SMBM(capacity, metric_names, sanitize=sanitize,
                          tenant=tenant)
        # Compile inputs are kept so fail-around can recompile the same
        # policy onto the surviving Cells after a hardware fault.
        self._policy = policy
        self._params = params
        self._lfsr_seed = lfsr_seed
        self._naive = naive
        self._memoize_requested = memoize
        self._self_healing = self_healing
        self._sanitize = sanitize
        self._verify = verify
        # The table dimensions the static verifier checks the plan against
        # (width compatibility, timing closure at this N).
        self._schema = TableSchema(capacity, tuple(metric_names))
        # Shared golden model: compiled lazily, used by both self_test()
        # and the sanitizer's on-demand output check.
        self._oracle = GoldenOracle(policy, params, lfsr_seed=lfsr_seed)
        # Physical faults: everything ever injected (re-applied to every
        # recompiled pipeline — the hardware does not heal) vs the subset
        # *detected* so far, which compilation routes around.
        self._hw_dead: set[tuple[int, int]] = set()
        self._hw_stuck: dict[tuple[int, int], dict[int, int]] = {}
        self._routed_around: set[tuple[int, int]] = set()
        self._codegen_requested = codegen
        # A hitless hot-swap bumps the epoch; the watermark is stamped on
        # every filter output (scalar and batched) so a packet stream
        # spanning a swap separates cleanly into old-plan/new-plan halves.
        self._plan_epoch = 0
        self._swap_version: int | None = None
        self._compiled: CompiledPolicy = self._compile_policy(policy)
        self._codegen = self._compiled.codegen
        self._check_codegen_armed(self._compiled, policy)
        # The interpreted batch tier for plans that cannot (or were not
        # asked to) specialize; built lazily on the first masked batch.
        self._batch_eval: BatchedEvaluator | None = None
        self._batch_eval_tried = False
        self._evaluations = 0
        self._memoize = memoize and self._compiled.stateless
        # Single-entry memo: the SMBM version only moves forward, so older
        # results can never become valid again.
        self._memo_version: int | None = None
        self._memo_output: BitVector | None = None
        # Sanitizer-side soundness witness for the symbolic analyzer:
        # the feasible output region of the live plan, cached per
        # compiled plan (a hot-swap or fail-around recompile re-derives).
        self._semantic_cache: tuple[CompiledPolicy, Region] | None = None
        self._cache_hits = 0
        self._cache_misses = 0
        # Batch-tier attribution: how many rows each serving path handled.
        # "broadcast" = uniform rows collapsed to one memoized evaluation,
        # "engine" = columnar/codegen batch kernels, "fallback" = the
        # scalar per-row loop (stateful policies, ineligible plans).
        self._batches = 0
        self._batch_rows = 0
        self._batch_broadcast_rows = 0
        self._batch_engine_rows = 0
        self._batch_fallback_rows = 0
        if sanitize:
            # Memo-version coherence: a committed write bumps the table
            # version, so a memo entry keyed at (or past) the post-write
            # version means a stale result could be served as fresh.
            self._smbm.add_write_listener(self._sanitize_memo_listener)
        # Observability.  The memo-hit path runs in ~0.4us, so the hot
        # counters stay plain ints (above) and are turned into registry
        # samples only at collect time by a weakly-held hook — the enabled
        # and disabled paths execute identical per-packet code.  Only the
        # (much slower) miss path, which runs the whole pipeline, pays for a
        # timing capture, and only when a real registry is active.
        registry = obs.get_registry()
        self._obs_enabled = registry.enabled
        self._obs_policy = policy.name
        if self._obs_enabled:
            registry.add_hook(self._obs_collect)
            self._make_plan_instruments(registry)
        # Fault/repair instruments live off the per-packet path (faults are
        # rare events), so they are created unconditionally: against the null
        # registry they are shared no-op singletons.  With a tenant set they
        # carry the tenant label: each tenant's fault domain is a separate
        # series, so a fault in one tenant's slice never moves another's
        # counters.
        tlabels = {} if tenant is None else {"tenant": tenant}
        self._obs_cell_dead = registry.counter(
            "faults_detected_total", {"kind": "cell_dead", **tlabels},
            help="dead Cells detected (CellFault) and routed around",
        )
        self._obs_cell_stuck = registry.counter(
            "faults_detected_total", {"kind": "cell_stuck", **tlabels},
            help="silently corrupting Cells localized by self-test",
        )
        self._obs_repair_ns = registry.histogram(
            "repair_latency_ns", {"component": "filter_module", **tlabels},
            help="fault-to-recompiled recovery wall time (ns, pow2 buckets)",
        )
        self._obs_degraded = registry.gauge(
            "degraded_mode", {"policy": policy.name, **tlabels},
            help="Cells currently routed around (0 = healthy hardware)",
        )
        self._obs_swaps = registry.counter(
            "filter_hot_swaps_total", {"policy": policy.name, **tlabels},
            help="hitless policy hot-swaps installed on this module",
        )
        self._obs_cache_resets = registry.counter(
            "serving_cache_resets_total", tlabels or None,
            help="serving-cache invalidations (memo, batch evaluator, "
                 "codegen kernels) on install, hot-swap, fail-around, "
                 "and table restore",
        )
        # Count the install itself: construction runs the same
        # invalidation sequence every later plan/table change does.
        self._reset_serving_caches()

    def _plan_labels(self) -> dict[str, str]:
        """Labels of the per-plan series: policy name, plus the tenant when
        this module is one slice of a shared pipeline."""
        labels = {"policy": self._obs_policy}
        if self._tenant is not None:
            labels["tenant"] = self._tenant
        return labels

    def _make_plan_instruments(self, registry) -> None:
        """(Re)create the policy-labelled hot-path instruments.  Called at
        construction and again after a hot-swap: the policy label is part of
        the series identity, so a new plan gets fresh series."""
        labels = self._plan_labels()
        self._obs_eval_ns = registry.histogram(
            "filter_eval_ns", labels,
            help="miss-path policy evaluation wall time (ns, pow2 buckets)",
        )
        self._obs_cycles = registry.counter(
            "filter_eval_cycles_total", labels,
            help="modelled hardware cycles spent in miss-path evaluations",
        )
        self._obs_batch_size = registry.histogram(
            "filter_batch_size", labels,
            help="requesting rows per evaluate_batch call (pow2 buckets)",
        )

    def _obs_collect(self):
        """Collect hook: publish the per-packet int counters as samples."""
        labels = tuple(sorted(self._plan_labels().items()))
        yield obs.Sample("filter_evaluations_total", self._evaluations,
                         labels=labels, help="per-packet policy evaluations")
        yield obs.Sample("filter_memo_hits_total", self._cache_hits,
                         labels=labels,
                         help="evaluations served from the version memo")
        yield obs.Sample("filter_memo_misses_total", self._cache_misses,
                         labels=labels,
                         help="memoized evaluations that ran the pipeline")
        yield obs.Sample("filter_batches_total", self._batches,
                         labels=labels,
                         help="evaluate_batch calls")
        yield obs.Sample("filter_batch_rows_total", self._batch_rows,
                         labels=labels,
                         help="requesting rows seen by evaluate_batch")
        for path, rows in (("broadcast", self._batch_broadcast_rows),
                           ("engine", self._batch_engine_rows),
                           ("fallback", self._batch_fallback_rows)):
            yield obs.Sample(
                "filter_batch_path_rows_total", rows,
                labels=labels + (("path", path),),
                help="batch rows served, by serving path",
            )

    def _compile_policy(self, policy: Policy) -> CompiledPolicy:
        """Compile ``policy`` under this module's standing constraints: the
        tenant slice (reserved Cells + allowed input lines) and any Cells
        routed around after faults."""
        return PolicyCompiler(self._params).compile(
            policy, lfsr_seed=self._lfsr_seed, naive=self._naive,
            dead_cells=self._reserved | self._routed_around,
            input_lines=self._input_lines,
            verify=self._verify, schema=self._schema,
            codegen=self._codegen_requested,
        )

    def _check_codegen_armed(self, compiled: CompiledPolicy,
                             policy: Policy) -> None:
        if self._codegen_requested and compiled.codegen is None:
            blockers = [f.message for f in compiled.lint_findings
                        if f.rule == "TH012"]
            raise ConfigurationError(
                f"policy {policy.name!r} is not codegen-eligible (TH012): "
                + "; ".join(blockers)
            )

    @property
    def smbm(self) -> SMBM:
        """The resource table (writable through add/delete/update)."""
        return self._smbm

    @property
    def tenant(self) -> str | None:
        """The owning tenant, or ``None`` for a dedicated (solo) module."""
        return self._tenant

    @property
    def reserved_cells(self) -> frozenset[tuple[int, int]]:
        """Cells outside this module's slice of the shared pipeline —
        statically excluded from every compilation."""
        return self._reserved

    @property
    def input_lines(self) -> frozenset[int] | None:
        """Pipeline input lines this module may drive, or ``None`` when it
        owns the whole input stage."""
        return self._input_lines

    @property
    def plan_epoch(self) -> int:
        """Plan generation counter: 0 at construction, +1 per hot-swap."""
        return self._plan_epoch

    @property
    def swap_version(self) -> int | None:
        """The SMBM version the last hot-swap flipped on (``None`` = no
        swap yet).  Outputs produced at or past this version under the new
        epoch; the pair (version, epoch) is the swap boundary."""
        return self._swap_version

    @property
    def compiled(self) -> CompiledPolicy:
        return self._compiled

    @property
    def policy(self) -> Policy:
        """The currently programmed policy (the live one after a swap)."""
        return self._policy

    def restore_table(
        self, state: "Mapping[str, object]", *, plan_epoch: int | None = None
    ) -> None:
        """Restore the resource table from an SMBM checkpoint state.

        Every serving cache is dropped *before* the restore lands: the
        restored version counter may be lower than (or collide with) the
        live one, so version-keyed reuse across a restore is unsound — the
        memo, batch evaluator, and codegen kernels all rebuild against the
        restored table.  ``plan_epoch`` optionally re-stamps the module's
        epoch watermark so a migrated tenant's outputs keep the epoch
        lineage of the source module.
        """
        self._reset_serving_caches()
        self._smbm.restore_state(state)
        if plan_epoch is not None:
            if plan_epoch < 0:
                raise ConfigurationError(
                    f"plan_epoch must be >= 0, got {plan_epoch}"
                )
            self._plan_epoch = int(plan_epoch)

    @property
    def evaluations(self) -> int:
        """Number of per-packet policy evaluations performed."""
        return self._evaluations

    @property
    def memoized(self) -> bool:
        """Whether evaluations are being served from the version cache."""
        return self._memoize

    @property
    def cache_hits(self) -> int:
        """Evaluations answered from the memo without running the pipeline."""
        return self._cache_hits

    @property
    def cache_misses(self) -> int:
        """Memoized evaluations that had to run the pipeline (cold or
        invalidated by a table write)."""
        return self._cache_misses

    @property
    def codegen(self):
        """The plan's :class:`~repro.engine.codegen.PlanCodegen` tier, or
        ``None`` when the module was built without ``codegen=True``."""
        return self._codegen

    def counters(self) -> dict[str, int]:
        """Evaluation/cache counters for benchmark attribution reports."""
        return {
            "evaluations": self._evaluations,
            "cache_hits": self._cache_hits,
            "cache_misses": self._cache_misses,
        }

    def batch_counters(self) -> dict[str, int]:
        """Batch-tier row attribution for benchmark reports."""
        return {
            "batches": self._batches,
            "batch_rows": self._batch_rows,
            "broadcast_rows": self._batch_broadcast_rows,
            "engine_rows": self._batch_engine_rows,
            "fallback_rows": self._batch_fallback_rows,
        }

    @property
    def latency_cycles(self) -> int:
        """Deterministic processing latency added to a packet's pipeline
        traversal (the packet itself is unmodified and un-delayed relative
        to the pipeline: the module is fully pipelined)."""
        return self._compiled.latency_cycles

    # -- resource table maintenance --------------------------------------------------

    def update_resource(self, resource_id: int, metrics: Mapping[str, int]) -> None:
        """Delete+add update, the composite write of section 5.1.2."""
        if resource_id in self._smbm:
            self._smbm.update(resource_id, metrics)
        else:
            self._smbm.add(resource_id, metrics)

    def remove_resource(self, resource_id: int) -> None:
        self._smbm.delete(resource_id)

    # -- per-packet processing --------------------------------------------------------

    def evaluate(self) -> BitVector:
        """Apply the programmed policy to the current table once.

        Stateless policies are served from the version-keyed memo when the
        table is unchanged since the last evaluation.  Callers receive an
        independent copy, so mutating the result cannot corrupt the cache.

        Exception-safe: the memo entry is dropped *before* the pipeline
        runs and re-installed only on success, and only if the table version
        is unchanged after the run — a fault (or a concurrent table write
        from a fault handler) mid-evaluation can therefore never leave a
        half-populated entry keyed on a version the output does not match.
        """
        self._evaluations += 1
        if not self._memoize:
            return self._run_guarded()
        version = self._smbm.version
        if version == self._memo_version:
            assert self._memo_output is not None
            self._cache_hits += 1
            return self._memo_output.copy()
        self._memo_version = None
        self._memo_output = None
        out = self._run_guarded()
        if self._smbm.version == version:
            self._memo_version = version
            self._memo_output = out
        self._cache_misses += 1
        return out.copy()

    def _run_guarded(self) -> BitVector:
        """The miss path, with fail-around when self-healing is enabled."""
        if not self._self_healing:
            return self._run_pipeline()
        while True:
            try:
                return self._run_pipeline()
            except CellFault as fault:
                self._heal_dead(fault)

    def _run_pipeline(self) -> BitVector:
        """The miss path: run the specialized kernel when armed, else the
        compiled pipeline, attributing wall time and deterministic hardware
        latency when metrics are enabled."""
        if not self._obs_enabled:
            return self._evaluate_once()
        t0 = time.perf_counter_ns()
        out = self._evaluate_once()
        self._obs_eval_ns.observe(time.perf_counter_ns() - t0)
        self._obs_cycles.inc(self._compiled.latency_cycles)
        return out

    def _evaluate_once(self) -> BitVector:
        if self._codegen is None:
            out = self._compiled.evaluate(self._smbm)
            if self._sanitize:
                self._check_semantic_containment(out.value)
            return out
        out = BitVector.from_int(
            self._smbm.capacity, self._codegen.evaluate(self._smbm)
        )
        if self._sanitize:
            # The interpreted plan stays the differential oracle of the
            # generated code (the GoldenOracle pattern, one tier up).
            expected = self._compiled.evaluate(self._smbm)
            if out != expected:
                raise IntegrityError(
                    f"sanitizer: codegen kernel output {out.value:#x} "
                    f"disagrees with the interpreted plan "
                    f"{expected.value:#x} on policy {self._policy.name!r}",
                    component="filter_module",
                )
            self._check_semantic_containment(out.value)
        return out

    def _semantic_root_region(self) -> Region:
        """The symbolic analyzer's over-approximation of the rows the
        live plan can ever select, cached per compiled plan."""
        cache = self._semantic_cache
        if cache is None or cache[0] is not self._compiled:
            analysis = analyze_policy(
                self._compiled.policy, schema=self._schema
            )
            cache = (self._compiled, analysis.root_region)
            self._semantic_cache = cache
        return cache[1]

    def _check_semantic_containment(self, output_bits: int) -> None:
        """Sanitizer half of the soundness contract: every selected row
        must lie inside the plan's feasible region.  A hit outside it
        means a region the analyzer proved unreachable (TH017/TH018)
        received traffic — the analysis would be unsound."""
        if not output_bits:
            return
        region = self._semantic_root_region()
        bits = output_bits
        while bits:
            low = bits & -bits
            bits ^= low
            rid = low.bit_length() - 1
            if rid not in self._smbm:
                continue  # stale-bit checks belong to the oracle paths
            row = self._smbm.metrics_of(rid)
            if not region.contains(row):
                raise IntegrityError(
                    f"sanitizer: selected resource {rid} ({row}) lies "
                    f"outside the plan's feasible region "
                    f"{region.describe()} on policy "
                    f"{self._policy.name!r} — symbolic analysis unsound "
                    "or plan mis-evaluated",
                    component="filter_module",
                    resource=rid,
                )

    # -- runtime sanitizer -------------------------------------------------------------

    @property
    def sanitize(self) -> bool:
        """True when commit-time invariant checking is armed."""
        return self._sanitize

    def _sanitize_memo_listener(self, kind: str, resource_id: int, row) -> None:
        """Commit-time check: no memo entry may survive a committed write."""
        if (self._memo_version is not None
                and self._memo_version >= self._smbm.version):
            raise IntegrityError(
                f"sanitizer: memo keyed at version {self._memo_version} "
                f"but a {kind} of resource {resource_id} just committed "
                f"version {self._smbm.version} — stale results would be "
                "served as fresh",
                component="filter_module",
                resource=resource_id,
            )

    def sanitize_check(self) -> BitVector:
        """On-demand oracle comparison: fast path vs the O(N) reference.

        Evaluates the compiled fast path and the shared
        :class:`~repro.core.ufpu_reference.GoldenOracle` on the live table
        and raises :class:`~repro.errors.IntegrityError` on any mismatch.
        Returns the (agreed) output.  Only valid for stateless policies —
        a stateful unit's outputs advance per evaluation, so the two paths
        legitimately diverge.
        """
        if not self._compiled.stateless:
            raise ConfigurationError(
                "sanitize_check requires a stateless policy: stateful "
                "units legitimately diverge from the golden oracle"
            )
        expected = self._oracle.expected(self._smbm)
        actual = self._compiled.evaluate(self._smbm)
        if actual != expected:
            raise IntegrityError(
                f"sanitizer: fast path output {actual.value:#x} disagrees "
                f"with golden oracle {expected.value:#x} on policy "
                f"{self._policy.name!r}",
                component="filter_module",
            )
        self._check_semantic_containment(actual.value)
        return actual

    # -- fault injection, detection and fail-around ----------------------------------

    @property
    def self_healing(self) -> bool:
        return self._self_healing

    @property
    def routed_around(self) -> frozenset[tuple[int, int]]:
        """Detected-faulty Cells the current compilation avoids."""
        return frozenset(self._routed_around)

    @property
    def degraded(self) -> bool:
        """True while the policy runs on a reduced set of Cells."""
        return bool(self._routed_around)

    def inject_cell_kill(self, stage: int, index: int) -> None:
        """Physical fault: the Cell at (stage, index) dies.

        The fault persists across recompilations (hardware does not heal);
        detection happens on the next evaluation that routes through the
        Cell (loud :class:`~repro.errors.CellFault`) or via
        :meth:`self_test`.
        """
        self._hw_dead.add((stage, index))
        self._compiled.pipeline.cell_at(stage, index).kill()

    def inject_cell_stuck(self, stage: int, index: int, side: int,
                          stuck: int) -> None:
        """Physical fault: output column ``side`` wedges at ``stuck``.

        Silent corruption — nothing raises; only :meth:`self_test` (golden
        model comparison) can detect and localize it.
        """
        self._hw_stuck.setdefault((stage, index), {})[side] = stuck
        self._compiled.pipeline.cell_at(stage, index).inject_stuck(side, stuck)

    def remove_cell_stuck(self, stage: int, index: int, side: int) -> None:
        """Undo an injected stuck fault (an injector reverting a flip that
        turned out to be unobservable on the programmed policy)."""
        pos = (stage, index)
        sides = self._hw_stuck.get(pos)
        if sides is not None:
            sides.pop(side, None)
            if not sides:
                del self._hw_stuck[pos]
        self._compiled.pipeline.cell_at(stage, index).clear_stuck(side)

    def _recompile(self) -> None:
        """Map the policy onto the surviving Cells and re-arm the faults.

        Raises :class:`~repro.errors.CompilationError` only when the policy
        truly no longer fits the surviving Cells.
        """
        compiled = self._compile_policy(self._policy)
        self._rearm_faults(compiled)
        self._install(compiled)

    def _rearm_faults(self, compiled: CompiledPolicy) -> None:
        """The physical faults outlive any recompile: re-apply every
        injected fault not already excluded (excluded Cells are killed by
        the compilation itself and never routed through)."""
        pipeline = compiled.pipeline
        for pos in self._hw_dead - compiled.dead_cells:
            pipeline.cell_at(*pos).kill()
        for pos, sides in self._hw_stuck.items():
            if pos in compiled.dead_cells:
                continue
            cell = pipeline.cell_at(*pos)
            for side, stuck in sides.items():
                cell.inject_stuck(side, stuck)

    def _reset_serving_caches(self) -> None:
        """Drop every serving cache derived from the plan or the table.

        One sequence, used everywhere a cache could go stale: module
        install (construction), hitless hot-swap, fail-around
        recompilation, and checkpoint restore.  Covers the version-keyed
        scalar memo, the lazily-built interpreted batch evaluator, and the
        codegen tier's specialized kernels; counted once per reset on
        ``serving_cache_resets_total``.
        """
        self._memo_version = None
        self._memo_output = None
        self._batch_eval = None
        self._batch_eval_tried = False
        if self._codegen is not None:
            self._codegen.invalidate()
        self._obs_cache_resets.inc()

    def _install(self, compiled: CompiledPolicy) -> None:
        """Atomically make ``compiled`` the live plan: flip the plan
        reference and drop every plan-derived cache in one step, so no
        later evaluation can mix old-plan state with the new plan."""
        self._compiled = compiled
        self._codegen = compiled.codegen
        self._memoize = self._memoize_requested and compiled.stateless
        self._reset_serving_caches()

    def hot_swap(
        self,
        policy: Policy,
        *,
        gate: "Callable[[CompiledPolicy], None] | None" = None,
    ) -> int:
        """Hitlessly replace the programmed policy with ``policy``.

        The replacement is compiled *beside* the live plan (under the same
        tenant slice and fault exclusions), optionally vetted by ``gate``
        (e.g. a tenant manager's slice verifier — it may raise to abort the
        swap with the live plan untouched), then flipped in atomically on
        an SMBM version boundary: :attr:`swap_version` records the table
        version the flip observed, and every plan-derived cache (the
        version memo, the batched evaluator, the codegen kernel — which
        lives on the compiled plan itself) is invalidated in the same step.
        No packet ever sees a mix: outputs stamped with the old
        :attr:`plan_epoch` came entirely from the old plan, outputs with
        the new epoch entirely from the new one.

        Returns the new plan epoch.
        """
        compiled = self._compile_policy(policy)
        self._check_codegen_armed(compiled, policy)
        if gate is not None:
            gate(compiled)
        self._rearm_faults(compiled)
        # Flip.  Single-threaded cycle model: everything between here and
        # the epoch bump happens on one packet boundary.
        self._swap_version = self._smbm.version
        self._policy = policy
        self._obs_policy = policy.name
        self._oracle = GoldenOracle(policy, self._params,
                                    lfsr_seed=self._lfsr_seed)
        self._install(compiled)
        self._plan_epoch += 1
        self._obs_swaps.inc()
        if self._obs_enabled:
            # New policy label = new series identity for the hot-path
            # instruments; the old plan's series stay behind, frozen.
            self._make_plan_instruments(obs.get_registry())
        return self._plan_epoch

    def _heal_dead(self, fault: CellFault) -> tuple[int, int]:
        """Route around the dead Cell a CellFault just reported."""
        if fault.stage is None or fault.index is None:
            raise fault  # unlocatable: nothing to route around
        pos = (fault.stage, fault.index)
        if pos in self._routed_around:
            raise fault  # already excluded yet faulted again: give up loudly
        t0 = time.perf_counter_ns()
        self._routed_around.add(pos)
        try:
            self._recompile()
        except Exception:
            self._routed_around.discard(pos)
            raise
        self._obs_cell_dead.inc()
        self._obs_repair_ns.observe(time.perf_counter_ns() - t0)
        self._obs_degraded.set(len(self._routed_around))
        return pos

    def self_test(self) -> list[dict[str, object]]:
        """Built-in self-test: golden-model comparison with per-Cell
        localization, healing every fault it finds.

        Compares the fast-path pipeline against the shared
        :class:`~repro.core.ufpu_reference.GoldenOracle` (the O(N)
        reference pipeline, compiled once and reused by both this BIST and
        :meth:`sanitize_check`) on the live table.  On mismatch, each
        active physical Cell is replayed against a golden clone *on the
        inputs it actually saw*, so exactly the corrupted Cells are
        implicated; they are then routed around by recompilation.  Dead
        Cells discovered along the way are healed the same way.  Returns
        the faults found, e.g. ``[{"stage": 2, "index": 0, "kind":
        "cell_stuck"}]`` (empty = healthy).

        Only valid for stateless policies: a stateful unit's outputs advance
        per packet, so fast path and golden model legitimately disagree.
        """
        if not self._compiled.stateless:
            raise ConfigurationError(
                "self_test requires a stateless policy: stateful units "
                "legitimately diverge from a golden replay"
            )
        healed: list[dict[str, object]] = []
        while True:
            expected = self._oracle.expected(self._smbm)
            try:
                actual = self._compiled.evaluate(self._smbm)
                if actual == expected:
                    return healed
                found = self._localize_stuck()
            except CellFault as fault:
                stage, index = self._heal_dead(fault)
                healed.append(
                    {"stage": stage, "index": index, "kind": "cell_dead"}
                )
                continue
            healed.extend(found)

    def _localize_stuck(self) -> list[dict[str, object]]:
        """Replay each active Cell against a golden clone; heal the liars."""
        t0 = time.perf_counter_ns()
        probes = self._compiled.pipeline.evaluate_probed(self._smbm)
        chain = self._compiled.params.chain_length
        suspects: list[dict[str, object]] = []
        for (stage, index), (in1, in2, out1, out2) in sorted(probes.items()):
            cfg = self._compiled.config.stages[stage - 1].cells[index]
            golden_cell = Cell(chain, cfg, naive=True)
            g1, g2 = golden_cell.evaluate(in1, in2, self._smbm)
            if g1 != out1 or g2 != out2:
                suspects.append(
                    {"stage": stage, "index": index, "kind": "cell_stuck"}
                )
        if not suspects:
            raise IntegrityError(
                "fast path disagrees with the golden model but no Cell "
                "could be localized",
                component="filter_module",
            )
        for s in suspects:
            self._routed_around.add((s["stage"], s["index"]))
        try:
            self._recompile()
        except Exception:
            for s in suspects:
                self._routed_around.discard((s["stage"], s["index"]))
            raise
        self._obs_cell_stuck.inc(len(suspects))
        self._obs_repair_ns.observe(time.perf_counter_ns() - t0)
        self._obs_degraded.set(len(self._routed_around))
        return suspects

    def select(self) -> int | None:
        """Evaluate and return the singleton selection, if any."""
        out = self.evaluate()
        if out.popcount() != 1:
            return None
        return out.first_set()

    def hook(self, packet: Packet) -> None:
        """The per-stage module hook: filter on request, bypass otherwise."""
        if not packet.metadata.get(META_FILTER_REQUEST):
            return
        out = self.evaluate()
        packet.metadata[META_FILTER_OUTPUT] = out.value
        packet.metadata[META_FILTER_SELECTED] = (
            out.first_set() if out.popcount() == 1 else -1
        )
        packet.metadata[META_FILTER_EPOCH] = self._plan_epoch

    # -- batched processing -------------------------------------------------------------

    def _batch_engine(self):
        """The masked-row batch engine: the codegen tier when armed, else
        the interpreted columnar tier when the plan is expressible there
        (stateless, no caller-supplied inputs), else ``None``."""
        if self._codegen is not None:
            return self._codegen
        if not self._batch_eval_tried:
            self._batch_eval_tried = True
            if self._compiled.stateless and not self._compiled.tap_lines:
                try:
                    self._batch_eval = BatchedEvaluator(
                        self._policy, self._smbm.capacity
                    )
                except ConfigurationError:
                    self._batch_eval = None
        return self._batch_eval

    def evaluate_batch(
        self, packets: "Sequence[Packet] | PacketBatch"
    ) -> PacketBatch:
        """Filter a whole batch of packets through the columnar tiers.

        Accepts a packet sequence (columnarised here) or a prepared
        :class:`PacketBatch`.  Rows split by shape:

        * **uniform rows** (no ``META_FILTER_INPUT`` mask) of a stateless
          policy collapse to a *single* policy evaluation per batch — the
          version-keyed memo now effectively keys on the batch signature
          ``(smbm.version, uniform)``, and the result is broadcast;
        * **masked rows** run through the batch engine (the codegen batch
          kernel when armed, else the interpreted columnar evaluator);
        * anything neither tier can express (stateful policies,
          caller-supplied inputs) falls back to the scalar per-row path,
          preserving exact per-packet semantics.

        Rows not requesting filtering are left untouched.  The filled
        output columns are returned on the batch; for a batch built from
        packets, :meth:`PacketBatch.scatter` writes them back to packet
        metadata (done here automatically).
        """
        built_here = not isinstance(packets, PacketBatch)
        batch = PacketBatch.from_packets(packets) if built_here else packets
        rows = batch.requesting_indices()
        self._batches += 1
        self._batch_rows += len(rows)
        if self._obs_enabled:
            self._obs_batch_size.observe(len(rows))
        if not rows:
            return batch
        outputs = batch.outputs
        masks = batch.input_masks
        uniform = [i for i in rows if masks is None or masks[i] is None]
        masked = [i for i in rows if masks is not None and masks[i] is not None]
        if uniform:
            if self._compiled.stateless:
                out = self.evaluate().value
                for i in uniform:
                    outputs[i] = out
                self._batch_broadcast_rows += len(uniform)
            else:
                # Stateful outputs advance per packet: no collapse is legal.
                for i in uniform:
                    outputs[i] = self.evaluate().value
                self._batch_fallback_rows += len(uniform)
        if masked:
            row_masks = [masks[i] for i in masked]  # type: ignore[index]
            engine = self._batch_engine()
            if engine is not None:
                outs = engine.evaluate_masks(self._smbm, row_masks)
                self._batch_engine_rows += len(masked)
            else:
                outs = [
                    self._compiled.evaluate_restricted(self._smbm, m).value
                    for m in row_masks
                ]
                self._evaluations += len(masked)
                self._batch_fallback_rows += len(masked)
            if self._sanitize:
                # Masked rows restrict the *input* table; the feasible
                # region still over-approximates every output row, so the
                # batched tiers are held to the same soundness contract
                # as the scalar path.
                for out in outs:
                    self._check_semantic_containment(out)
            for i, out in zip(masked, outs):
                outputs[i] = out
        selected = batch.selected
        epochs = batch.epochs
        epoch = self._plan_epoch
        for i in rows:
            out = outputs[i]
            assert out is not None
            selected[i] = (
                (out & -out).bit_length() - 1 if out.bit_count() == 1 else -1
            )
            epochs[i] = epoch
        if built_here:
            batch.scatter()
        return batch
