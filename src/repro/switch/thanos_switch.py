"""The integrated Thanos switch (section 3, Figure 8).

Ties together the four tasks of implementing a filter policy:

1. **Calculate resource metric values** — probe packets are parsed by the
   RMT parser and decoded into metric updates (remote metrics); local
   metrics arrive through event hooks (:meth:`ThanosSwitch.on_event`,
   modelling the event-driven RMT extension the paper cites).
2. **Store resources and their metrics** — the filter module's SMBM.
3. **Implement the filter policy** — the compiled filter pipeline, run
   inline between ingress and egress match-action stages.
4. **Process the filter output** — egress RMT stages read the result from
   packet metadata (e.g. to pick an output port).
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.core.pipeline import PipelineParams
from repro.core.policy import Policy
from repro.errors import ConfigurationError
from repro.rmt.packet import Packet
from repro.rmt.pipeline import MatchActionStage, RMTPipeline
from repro.rmt.probe import ProbeCodec
from repro.switch.filter_module import META_FILTER_REQUEST, FilterModule

__all__ = ["ThanosSwitch"]

#: A local-metric event handler maps (event name, event args) to SMBM writes.
EventHandler = Callable[["ThanosSwitch", Mapping[str, int]], None]


class ThanosSwitch:
    """A switch with one RMT pipeline and one inline filter module."""

    def __init__(
        self,
        capacity: int,
        metric_names: Sequence[str],
        policy: Policy,
        params: PipelineParams | None = None,
        ingress_stages: list[MatchActionStage] | None = None,
        egress_stages: list[MatchActionStage] | None = None,
        *,
        lfsr_seed: int = 1,
        codegen: bool = False,
    ):
        self._codec = ProbeCodec(metric_names)
        self._parser = self._codec.build_parser()
        self._filter = FilterModule(
            capacity, metric_names, policy, params,
            lfsr_seed=lfsr_seed, codegen=codegen,
        )
        filter_stage = MatchActionStage(name="thanos-filter", hook=self._filter.hook)
        stages = list(ingress_stages or [])
        stages.append(filter_stage)
        stages.extend(egress_stages or [])
        # Batched serving is only sound when the filter is the sole stage:
        # other stages' tables and register charges must interleave with
        # each packet, which a columnar pass cannot reproduce.
        self._filter_only = len(stages) == 1
        self._pipeline = RMTPipeline(stages)
        self._event_handlers: dict[str, EventHandler] = {}
        self._probes_processed = 0

    @property
    def filter_module(self) -> FilterModule:
        return self._filter

    @property
    def pipeline(self) -> RMTPipeline:
        return self._pipeline

    @property
    def probes_processed(self) -> int:
        return self._probes_processed

    # -- remote metrics: the probe path (section 3, task 1) -----------------------------

    def receive_bytes(self, data: bytes) -> Packet:
        """Parse wire bytes and process the resulting packet."""
        return self.process(self._parser.parse(data))

    def process(self, packet: Packet) -> Packet:
        """Process one packet: probe packets update the SMBM, data packets
        traverse the pipeline (and trigger filtering when they request it)."""
        update = self._codec.decode(packet)
        if update is not None:
            self._filter.update_resource(update.resource_id, update.metrics)
            self._probes_processed += 1
            return packet
        return self._pipeline.process(packet)

    def process_batch(self, packets: Sequence[Packet]) -> list[Packet]:
        """Process a packet stream, serving data packets in columnar batches.

        Probe packets are decoded and applied to the SMBM **in arrival
        order** — they act as batch boundaries, so every data packet sees
        exactly the table state it would have seen under per-packet
        :meth:`process`.  The runs of data packets between probes go
        through :meth:`FilterModule.evaluate_batch` when the filter is the
        only RMT stage; with ingress/egress stages present each packet
        falls back to the per-packet pipeline (those stages' tables and
        register charges must interleave per packet).  Note the RMT
        pipeline's ``packets_processed`` counter only advances on the
        per-packet path; batched rows are counted by the filter module's
        own batch counters.
        """
        run: list[Packet] = []

        def flush() -> None:
            if not run:
                return
            if self._filter_only:
                self._filter.evaluate_batch(run)
            else:
                for p in run:
                    self._pipeline.process(p)
            run.clear()

        for packet in packets:
            update = self._codec.decode(packet)
            if update is not None:
                flush()  # writes may not reorder past pending reads
                self._filter.update_resource(update.resource_id, update.metrics)
                self._probes_processed += 1
            else:
                run.append(packet)
        flush()
        return list(packets)

    def filter_for(self, packet: Packet) -> Packet:
        """Convenience: mark the packet for filtering and process it."""
        packet.metadata[META_FILTER_REQUEST] = 1
        return self.process(packet)

    # -- local metrics: event-driven updates (section 3, task 1) ------------------------

    def register_event(self, name: str, handler: EventHandler) -> None:
        """Register a custom event (e.g. queue enqueue/dequeue)."""
        if name in self._event_handlers:
            raise ConfigurationError(f"event {name!r} already registered")
        self._event_handlers[name] = handler

    def on_event(self, name: str, **args: int) -> None:
        """Fire a local event; the handler typically updates the SMBM."""
        handler = self._event_handlers.get(name)
        if handler is None:
            raise ConfigurationError(f"no handler for event {name!r}")
        handler(self, args)
