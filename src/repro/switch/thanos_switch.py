"""The integrated Thanos switch (section 3, Figure 8).

Ties together the four tasks of implementing a filter policy:

1. **Calculate resource metric values** — probe packets are parsed by the
   RMT parser and decoded into metric updates (remote metrics); local
   metrics arrive through event hooks (:meth:`ThanosSwitch.on_event`,
   modelling the event-driven RMT extension the paper cites).
2. **Store resources and their metrics** — the filter module's SMBM.
3. **Implement the filter policy** — the compiled filter pipeline, run
   inline between ingress and egress match-action stages.
4. **Process the filter output** — egress RMT stages read the result from
   packet metadata (e.g. to pick an output port).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from repro.core.pipeline import PipelineParams
from repro.core.policy import Policy
from repro.errors import ConfigurationError
from repro.rmt.packet import META_TENANT, Packet
from repro.rmt.pipeline import MatchActionStage, RMTPipeline
from repro.rmt.probe import ProbeCodec
from repro.switch.filter_module import META_FILTER_REQUEST, FilterModule
from repro.tenancy.demux import TenantDemux

if TYPE_CHECKING:  # pragma: no cover - avoids a runtime switch<->tenancy cycle
    from repro.tenancy.manager import TenantManager

__all__ = ["ThanosSwitch", "META_TENANT"]

#: A local-metric event handler maps (event name, event args) to SMBM writes.
EventHandler = Callable[["ThanosSwitch", Mapping[str, int]], None]


class ThanosSwitch:
    """A switch with one RMT pipeline and one inline filter module — or,
    in multi-tenant mode (:meth:`multi_tenant`), one demuxed filter stage
    serving every admitted tenant's slice of the shared pipeline."""

    def __init__(
        self,
        capacity: int,
        metric_names: Sequence[str],
        policy: Policy | None,
        params: PipelineParams | None = None,
        ingress_stages: list[MatchActionStage] | None = None,
        egress_stages: list[MatchActionStage] | None = None,
        *,
        lfsr_seed: int = 1,
        codegen: bool = False,
        tenants: "TenantManager | None" = None,
    ):
        if (policy is None) == (tenants is None):
            raise ConfigurationError(
                "exactly one of policy (dedicated switch) or tenants "
                "(multi-tenant switch) must be given"
            )
        self._tenants = tenants
        self._demux = None if tenants is None else TenantDemux(tenants)
        if tenants is not None:
            metric_names = tenants.metric_names
        self._codec = ProbeCodec(metric_names)
        self._parser = self._codec.build_parser()
        if tenants is None:
            assert policy is not None
            self._filter: FilterModule | None = FilterModule(
                capacity, metric_names, policy, params,
                lfsr_seed=lfsr_seed, codegen=codegen,
            )
            hook = self._filter.hook
        else:
            # Per-tenant demux: the filter stage routes each requesting
            # packet to its owning tenant's module by the META_TENANT
            # metadata key (set by the ingress classifier).
            self._filter = None
            hook = self._tenant_hook
        filter_stage = MatchActionStage(name="thanos-filter", hook=hook)
        stages = list(ingress_stages or [])
        stages.append(filter_stage)
        stages.extend(egress_stages or [])
        # Batched serving is only sound when the filter is the sole stage:
        # other stages' tables and register charges must interleave with
        # each packet, which a columnar pass cannot reproduce.
        self._filter_only = len(stages) == 1
        self._pipeline = RMTPipeline(stages)
        self._event_handlers: dict[str, EventHandler] = {}
        self._probes_processed = 0

    @classmethod
    def multi_tenant(
        cls,
        tenants: "TenantManager",
        ingress_stages: list[MatchActionStage] | None = None,
        egress_stages: list[MatchActionStage] | None = None,
    ) -> "ThanosSwitch":
        """A virtualized switch serving every tenant admitted on
        ``tenants``.  Probe and data packets must carry the
        ``META_TENANT`` metadata key; the switch demuxes to the owning
        tenant's filter module and SMBM and never guesses."""
        return cls(
            0, tenants.metric_names, None, tenants.params,
            ingress_stages, egress_stages, tenants=tenants,
        )

    @property
    def filter_module(self) -> FilterModule:
        if self._filter is None:
            raise ConfigurationError(
                "a multi-tenant switch has one filter module per tenant: "
                "use tenants.get(name).module"
            )
        return self._filter

    @property
    def tenants(self) -> "TenantManager | None":
        """The tenant manager, or ``None`` for a dedicated switch."""
        return self._tenants

    def _tenant_of(self, packet: Packet) -> FilterModule:
        """Demux: the filter module owning this packet's traffic."""
        assert self._demux is not None
        return self._demux.resolve(packet).module

    def _tenant_hook(self, packet: Packet) -> None:
        """The demuxed filter stage: route to the owner, bypass otherwise."""
        if not packet.metadata.get(META_FILTER_REQUEST):
            return
        self._tenant_of(packet).hook(packet)

    @property
    def pipeline(self) -> RMTPipeline:
        return self._pipeline

    @property
    def probes_processed(self) -> int:
        return self._probes_processed

    # -- remote metrics: the probe path (section 3, task 1) -----------------------------

    def receive_bytes(self, data: bytes) -> Packet:
        """Parse wire bytes and process the resulting packet."""
        return self.process(self._parser.parse(data))

    def process(self, packet: Packet) -> Packet:
        """Process one packet: probe packets update the SMBM, data packets
        traverse the pipeline (and trigger filtering when they request it)."""
        update = self._codec.decode(packet)
        if update is not None:
            module = (self._filter if self._tenants is None
                      else self._tenant_of(packet))
            module.update_resource(update.resource_id, update.metrics)
            self._probes_processed += 1
            return packet
        return self._pipeline.process(packet)

    def process_batch(self, packets: Sequence[Packet]) -> list[Packet]:
        """Process a packet stream, serving data packets in columnar batches.

        Probe packets are decoded and applied to the SMBM **in arrival
        order** — they act as batch boundaries, so every data packet sees
        exactly the table state it would have seen under per-packet
        :meth:`process`.  The runs of data packets between probes go
        through :meth:`FilterModule.evaluate_batch` when the filter is the
        only RMT stage; with ingress/egress stages present each packet
        falls back to the per-packet pipeline (those stages' tables and
        register charges must interleave per packet).  Note the RMT
        pipeline's ``packets_processed`` counter only advances on the
        per-packet path; batched rows are counted by the filter module's
        own batch counters.
        """
        run: list[Packet] = []

        def flush() -> None:
            if not run:
                return
            if not self._filter_only:
                for p in run:
                    self._pipeline.process(p)
            elif self._tenants is None:
                assert self._filter is not None
                self._filter.evaluate_batch(run)
            else:
                # Demux the run into per-tenant sub-batches.  Tenants'
                # tables are disjoint, so sub-batch order is immaterial;
                # within each tenant arrival order is preserved.  Every
                # routing violation in the run (all distinct unknown
                # labels, all unlabelled packets) surfaces in the one
                # RoutingError the demux raises.
                assert self._demux is not None
                for name, pkts in self._demux.partition(run).items():
                    self._tenants.get(name).module.evaluate_batch(pkts)
            run.clear()

        for packet in packets:
            update = self._codec.decode(packet)
            if update is not None:
                flush()  # writes may not reorder past pending reads
                module = (self._filter if self._tenants is None
                          else self._tenant_of(packet))
                module.update_resource(update.resource_id, update.metrics)
                self._probes_processed += 1
            else:
                run.append(packet)
        flush()
        return list(packets)

    def filter_for(self, packet: Packet) -> Packet:
        """Convenience: mark the packet for filtering and process it."""
        packet.metadata[META_FILTER_REQUEST] = 1
        return self.process(packet)

    # -- local metrics: event-driven updates (section 3, task 1) ------------------------

    def register_event(self, name: str, handler: EventHandler) -> None:
        """Register a custom event (e.g. queue enqueue/dequeue)."""
        if name in self._event_handlers:
            raise ConfigurationError(f"event {name!r} already registered")
        self._event_handlers[name] = handler

    def on_event(self, name: str, **args: int) -> None:
        """Fire a local event; the handler typically updates the SMBM."""
        handler = self._event_handlers.get(name)
        if handler is None:
            raise ConfigurationError(f"no handler for event {name!r}")
        handler(self, args)
