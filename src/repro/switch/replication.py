"""SMBM replication across multi-pipelined data planes (section 5.1.5).

Modern switch chips run several parallel packet pipelines; Thanos places one
filter module per pipeline and **synchronously applies every write to every
replica** instead of re-circulating probe packets.  The flip-flop design
lets updates issued from different pipelines land in parallel — *unless two
pipelines update the same resource entry in the same clock cycle*, which is
a write contention.

The paper avoids contention operationally: probes for the same resource
always follow one network path, hence arrive on one pipeline.
:class:`ReplicatedSMBM` models the synchronous-update design and *detects*
contention; what happens next is configurable:

* ``on_contention="raise"`` (default) — :class:`WriteContention` is raised
  and **no** staged write of the cycle is applied.  The commit is atomic:
  either every replica sees the cycle's writes or none does, and the staged
  set is always cleared, so the structure stays usable after the exception.
* ``on_contention="arbitrate"`` — the write from the lowest-numbered
  pipeline wins (a fixed-priority hardware arbiter); the losers are dropped
  and counted.  Replicas stay synchronised because all of them apply the
  same winner.

Replicas can still diverge through *faults* (an SEU in one replica's rows, a
partially failed apply): :meth:`diverged_replicas` detects this by
majority vote over replica contents and :meth:`repair` resyncs the minority
replicas from the majority state — the self-healing path a permanently
wedged ``check_synchronised`` assertion does not provide.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro import obs
from repro.analysis.races import RaceDetector
from repro.core.smbm import SMBM
from repro.errors import ConfigurationError, FaultError, IntegrityError, ReproError

__all__ = ["WriteContention", "ReplicatedSMBM"]


class WriteContention(FaultError):
    """Two pipelines updated the same SMBM entry in the same cycle."""

    def __init__(self, message: str, **context):
        context.setdefault("component", "replicated_smbm")
        super().__init__(message, **context)


@dataclass(frozen=True)
class _PendingWrite:
    pipeline: int
    kind: str
    resource_id: int
    metrics: dict[str, int] | None


class ReplicatedSMBM:
    """N synchronised SMBM replicas, one per packet pipeline.

    Writes are staged per cycle with :meth:`issue_update` /
    :meth:`issue_delete` (tagged by originating pipeline) and applied to all
    replicas at :meth:`commit_cycle`.  Two writes to the same resource id in
    one cycle either raise :class:`WriteContention` or are arbitrated,
    depending on ``on_contention``.
    """

    def __init__(self, pipelines: int, capacity: int, metric_names: Sequence[str],
                 *, on_contention: str = "raise", sanitize: bool = False):
        if pipelines < 1:
            raise ReproError(f"need at least one pipeline, got {pipelines}")
        if on_contention not in ("raise", "arbitrate"):
            raise ConfigurationError(
                f"on_contention must be 'raise' or 'arbitrate', "
                f"got {on_contention!r}"
            )
        self._replicas = [
            SMBM(capacity, metric_names, sanitize=sanitize)
            for _ in range(pipelines)
        ]
        self._pending: list[_PendingWrite] = []
        self._cycles = 0
        self._on_contention = on_contention
        self._arbitrations = 0
        self._sanitize = sanitize
        # Sanitizer mode arms a lockset-style race detector over every
        # commit cycle's raw staged write set (fed before dedup or
        # arbitration, so it sees exactly the writers that contended) and
        # asserts replica synchrony after each successful commit.
        self._race_detector: RaceDetector | None = (
            RaceDetector() if sanitize else None
        )
        registry = obs.get_registry()
        self._obs_enabled = registry.enabled
        self._obs_contentions = registry.counter(
            "replica_write_contentions_total",
            help="same-resource same-cycle write clashes (raised or arbitrated)",
        )
        self._obs_detected = registry.counter(
            "faults_detected_total", {"kind": "replica_divergence"},
            help="replicas found out of sync by majority vote",
        )
        self._obs_repairs = registry.counter(
            "replica_repairs_total",
            help="diverged replicas resynced from the majority state",
        )
        self._obs_repair_ns = registry.histogram(
            "repair_latency_ns", {"component": "replicated_smbm"},
            help="wall time of replica majority-vote resyncs (ns, pow2 buckets)",
        )

    @property
    def pipelines(self) -> int:
        return len(self._replicas)

    @property
    def cycles(self) -> int:
        return self._cycles

    @property
    def arbitrations(self) -> int:
        """Contended writes resolved by the fixed-priority arbiter."""
        return self._arbitrations

    @property
    def sanitize(self) -> bool:
        """True when per-commit invariant checking is armed."""
        return self._sanitize

    @property
    def race_detector(self) -> RaceDetector | None:
        """The armed race detector (None unless ``sanitize=True``)."""
        return self._race_detector

    def replica(self, pipeline: int) -> SMBM:
        """The replica read by a given pipeline's filter module."""
        return self._replicas[pipeline]

    def issue_update(
        self, pipeline: int, resource_id: int, metrics: Mapping[str, int]
    ) -> None:
        """Stage a delete+add update from one pipeline for this cycle."""
        self._pending.append(
            _PendingWrite(pipeline, "update", resource_id, dict(metrics))
        )

    def issue_delete(self, pipeline: int, resource_id: int) -> None:
        self._pending.append(_PendingWrite(pipeline, "delete", resource_id, None))

    def commit_cycle(self) -> None:
        """Apply this cycle's writes synchronously to every replica.

        Exception-safe: contention is detected over the *whole* staged set
        before any replica is touched, and the staged set is cleared no
        matter how the commit ends — a raised :class:`WriteContention` (or a
        mid-apply :class:`~repro.errors.CapacityError`) never leaves stale
        writes behind to replay into a later cycle.
        """
        self._cycles += 1
        if self._race_detector is not None:
            # Feed the *raw* staged set — before dedup/arbitration — so the
            # detector reports exactly the writers that physically contended
            # for a flip-flop row, including pairs arbitration resolves.
            self._race_detector.observe_cycle(
                self._cycles,
                [(w.pipeline, w.resource_id) for w in self._pending],
            )
        try:
            by_resource: dict[int, _PendingWrite] = {}
            for write in self._pending:
                clash = by_resource.get(write.resource_id)
                if clash is None or clash.pipeline == write.pipeline:
                    by_resource[write.resource_id] = write
                    continue
                self._obs_contentions.inc()
                if self._on_contention == "raise":
                    raise WriteContention(
                        f"pipelines {clash.pipeline} and {write.pipeline} both "
                        f"wrote resource {write.resource_id} in cycle "
                        f"{self._cycles}; the paper precludes this by pinning "
                        "a resource's probes to one network path",
                        cycle=self._cycles, resource=write.resource_id,
                    )
                # Fixed-priority arbiter: the lowest-numbered pipeline wins.
                self._arbitrations += 1
                if write.pipeline < clash.pipeline:
                    by_resource[write.resource_id] = write
            for write in by_resource.values():
                for replica in self._replicas:
                    if write.kind == "delete":
                        replica.delete(write.resource_id)
                    else:
                        assert write.metrics is not None
                        replica.delete(write.resource_id)
                        replica.add(write.resource_id, write.metrics)
            if self._sanitize and by_resource:
                self.check_synchronised()
        finally:
            self._pending.clear()

    # -- checkpoint / restore ----------------------------------------------------

    def export_state(self) -> dict[str, object]:
        """Bit-faithful export of every replica plus the commit counters.

        Replicas are exported individually (not deduplicated to one copy):
        a checkpoint taken while a replica is diverged must restore the
        divergence exactly, or the post-restore :meth:`diverged_replicas` /
        :meth:`repair` behaviour would differ from the live structure's.
        """
        return {
            "pipelines": len(self._replicas),
            "replicas": [r.export_state() for r in self._replicas],
            "cycles": self._cycles,
            "arbitrations": self._arbitrations,
        }

    def restore_state(self, state: Mapping[str, object]) -> None:
        """Restore a state produced by :meth:`export_state`, in place.

        The pipeline count must match; any writes staged but not committed
        are discarded (a checkpoint is only taken on a commit boundary).
        """
        replicas = state.get("replicas")
        if (not isinstance(replicas, list)
                or len(replicas) != len(self._replicas)):
            raise ConfigurationError(
                f"checkpoint holds {len(replicas) if isinstance(replicas, list) else '?'} "
                f"replicas, structure has {len(self._replicas)} pipelines"
            )
        for replica, sub in zip(self._replicas, replicas):
            replica.restore_state(sub)
        self._cycles = int(state["cycles"])  # type: ignore[arg-type]
        self._arbitrations = int(state["arbitrations"])  # type: ignore[arg-type]
        self._pending.clear()

    # -- divergence detection and repair -----------------------------------------

    def _majority(self) -> tuple[dict[int, dict[str, int]], list[int]]:
        """Majority-vote contents and the replicas disagreeing with it.

        Replicas vote with their full relational snapshot; the most common
        snapshot wins (ties break toward the lowest replica index, the
        deterministic choice a hardware arbiter would make).
        """
        snapshots = [replica.snapshot() for replica in self._replicas]
        best_idx = 0
        best_count = 0
        for i, snap in enumerate(snapshots):
            count = sum(1 for other in snapshots if other == snap)
            if count > best_count:
                best_idx, best_count = i, count
        majority = snapshots[best_idx]
        diverged = [
            i for i, snap in enumerate(snapshots) if snap != majority
        ]
        return majority, diverged

    def diverged_replicas(self) -> list[int]:
        """Indices of replicas whose contents disagree with the majority."""
        return self._majority()[1]

    def repair(self) -> list[int]:
        """Resync every diverged replica from the majority state.

        Returns the indices repaired.  Each diverged replica is brought to
        the majority contents with delete/add writes — rows it should not
        have are removed, rows that differ (or are missing) are rewritten.
        Detection and repair are counted and timed through ``repro.obs``.
        """
        t0 = time.perf_counter_ns() if self._obs_enabled else 0
        majority, diverged = self._majority()
        for i in diverged:
            replica = self._replicas[i]
            for rid in list(replica.snapshot()):
                if rid not in majority:
                    replica.delete(rid)
            for rid, row in majority.items():
                if rid in replica and replica.metrics_of(rid) == row:
                    continue
                replica.delete(rid)
                replica.add(rid, row)
        if diverged:
            self._obs_detected.inc(len(diverged))
            self._obs_repairs.inc(len(diverged))
            if self._obs_enabled:
                self._obs_repair_ns.observe(time.perf_counter_ns() - t0)
        return diverged

    def check_synchronised(self) -> None:
        """Assert all replicas hold identical contents."""
        reference = self._replicas[0].snapshot()
        for i, replica in enumerate(self._replicas[1:], start=1):
            if replica.snapshot() != reference:
                raise IntegrityError(
                    f"replica {i} diverged from replica 0",
                    component="replicated_smbm", cycle=self._cycles, resource=i,
                )
