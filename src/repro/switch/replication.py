"""SMBM replication across multi-pipelined data planes (section 5.1.5).

Modern switch chips run several parallel packet pipelines; Thanos places one
filter module per pipeline and **synchronously applies every write to every
replica** instead of re-circulating probe packets.  The flip-flop design
lets updates issued from different pipelines land in parallel — *unless two
pipelines update the same resource entry in the same clock cycle*, which is
a write contention.

The paper avoids contention operationally: probes for the same resource
always follow one network path, hence arrive on one pipeline.
:class:`ReplicatedSMBM` models the synchronous-update design and *detects*
contention, so tests can show both that the norm is safe and that the
hazard is real when the operational assumption is violated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.smbm import SMBM
from repro.errors import ReproError

__all__ = ["WriteContention", "ReplicatedSMBM"]


class WriteContention(ReproError):
    """Two pipelines updated the same SMBM entry in the same cycle."""


@dataclass(frozen=True)
class _PendingWrite:
    pipeline: int
    kind: str
    resource_id: int
    metrics: dict[str, int] | None


class ReplicatedSMBM:
    """N synchronised SMBM replicas, one per packet pipeline.

    Writes are staged per cycle with :meth:`issue_update` /
    :meth:`issue_delete` (tagged by originating pipeline) and applied to all
    replicas at :meth:`commit_cycle`.  Two writes to the same resource id
    in one cycle raise :class:`WriteContention`.
    """

    def __init__(self, pipelines: int, capacity: int, metric_names: Sequence[str]):
        if pipelines < 1:
            raise ReproError(f"need at least one pipeline, got {pipelines}")
        self._replicas = [SMBM(capacity, metric_names) for _ in range(pipelines)]
        self._pending: list[_PendingWrite] = []
        self._cycles = 0

    @property
    def pipelines(self) -> int:
        return len(self._replicas)

    @property
    def cycles(self) -> int:
        return self._cycles

    def replica(self, pipeline: int) -> SMBM:
        """The replica read by a given pipeline's filter module."""
        return self._replicas[pipeline]

    def issue_update(
        self, pipeline: int, resource_id: int, metrics: Mapping[str, int]
    ) -> None:
        """Stage a delete+add update from one pipeline for this cycle."""
        self._pending.append(
            _PendingWrite(pipeline, "update", resource_id, dict(metrics))
        )

    def issue_delete(self, pipeline: int, resource_id: int) -> None:
        self._pending.append(_PendingWrite(pipeline, "delete", resource_id, None))

    def commit_cycle(self) -> None:
        """Apply this cycle's writes synchronously to every replica."""
        self._cycles += 1
        by_resource: dict[int, _PendingWrite] = {}
        for write in self._pending:
            clash = by_resource.get(write.resource_id)
            if clash is not None and clash.pipeline != write.pipeline:
                self._pending.clear()
                raise WriteContention(
                    f"pipelines {clash.pipeline} and {write.pipeline} both "
                    f"wrote resource {write.resource_id} in cycle "
                    f"{self._cycles}; the paper precludes this by pinning a "
                    "resource's probes to one network path"
                )
            by_resource[write.resource_id] = write
        for write in by_resource.values():
            for replica in self._replicas:
                if write.kind == "delete":
                    replica.delete(write.resource_id)
                else:
                    assert write.metrics is not None
                    replica.delete(write.resource_id)
                    replica.add(write.resource_id, write.metrics)
        self._pending.clear()

    def check_synchronised(self) -> None:
        """Assert all replicas hold identical contents."""
        reference = self._replicas[0].snapshot()
        for i, replica in enumerate(self._replicas[1:], start=1):
            if replica.snapshot() != reference:
                raise ReproError(f"replica {i} diverged from replica 0")
