"""The integrated Thanos switch (section 3, Figure 8).

* :class:`~repro.switch.filter_module.FilterModule` — SMBM + compiled filter
  pipeline, triggered per packet, writing its result to packet metadata;
* :class:`~repro.switch.thanos_switch.ThanosSwitch` — RMT ingress stages, the
  inline filter module, and RMT egress stages, with the probe path and
  local-metric event hooks;
* :class:`~repro.switch.replication.ReplicatedSMBM` — synchronised SMBM
  replicas for multi-pipelined data planes (section 5.1.5), including write
  contention detection.
"""

from repro.switch.filter_module import FilterModule
from repro.switch.thanos_switch import ThanosSwitch
from repro.switch.replication import ReplicatedSMBM, WriteContention

__all__ = ["FilterModule", "ThanosSwitch", "ReplicatedSMBM", "WriteContention"]
