"""Dependency-free observability: metrics registry, exporters, trace spans.

Disabled by default — the active registry is the no-op
:data:`~repro.obs.metrics.NULL_REGISTRY` and instrumented components do no
extra work.  Opt in around a scope::

    from repro import obs

    with obs.use_registry(obs.MetricsRegistry()) as reg:
        module = FilterModule(...)   # constructed inside: instrumented
        ...
        print(obs.to_prometheus(reg))

or process-wide with :func:`set_registry`.  Components capture the active
registry at construction time; objects built while the null registry was
active stay uninstrumented.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from repro.obs.export import series_key, snapshot, to_prometheus
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Sample,
)
from repro.obs.trace import NULL_SPAN, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "Sample",
    "Span",
    "Tracer",
    "get_registry",
    "set_registry",
    "use_registry",
    "get_tracer",
    "snapshot",
    "series_key",
    "to_prometheus",
]

_active_registry: MetricsRegistry = NULL_REGISTRY
_active_tracer: Tracer = Tracer(NULL_REGISTRY)


def get_registry() -> MetricsRegistry:
    """The active registry (the no-op null registry unless opted in)."""
    return _active_registry


def get_tracer() -> Tracer:
    """A tracer bound to the active registry."""
    return _active_tracer


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` process-wide (None restores the null registry);
    returns the previously active registry."""
    global _active_registry, _active_tracer
    previous = _active_registry
    _active_registry = registry if registry is not None else NULL_REGISTRY
    _active_tracer = Tracer(_active_registry)
    return previous


@contextlib.contextmanager
def use_registry(registry: MetricsRegistry | None = None) -> Iterator[MetricsRegistry]:
    """Scoped opt-in: install ``registry`` (a fresh one by default), restore
    the previous registry on exit, yield the installed registry."""
    installed = registry if registry is not None else MetricsRegistry()
    previous = set_registry(installed)
    try:
        yield installed
    finally:
        set_registry(previous)
