"""Scoped trace spans with wall-clock and hardware-cycle attribution.

A :class:`Span` measures one scoped unit of work: wall time via
``time.perf_counter_ns`` plus an optional count of *modelled hardware
cycles* attributed by the caller (the clocked models know exactly how many
cycles an operation costs — e.g. a compiled policy's deterministic
``latency_cycles`` — so software spans can report both "how long did the
simulation take" and "how long would the hardware take").

Per span name the tracer maintains, in its registry:

* ``span_calls_total{span=...}`` — completed spans;
* ``span_wall_ns{span=...}`` — power-of-two histogram of wall time;
* ``span_cycles_total{span=...}`` — attributed hardware cycles.

Against a :class:`~repro.obs.metrics.NullRegistry` the tracer hands out a
shared no-op span whose enter/exit do nothing — not even read the clock —
so disabled tracing costs two trivial method calls per scope.
"""

from __future__ import annotations

import time

from repro.obs.metrics import MetricsRegistry, NullRegistry

__all__ = ["Span", "Tracer", "NULL_SPAN"]


class Span:
    """One timed scope; use as a context manager or begin()/finish() pair."""

    __slots__ = ("tracer", "name", "cycles", "_t0", "wall_ns")

    def __init__(self, tracer: "Tracer", name: str):
        self.tracer = tracer
        self.name = name
        self.cycles = 0
        self.wall_ns = 0
        self._t0 = 0

    def add_cycles(self, n: int) -> None:
        """Attribute ``n`` modelled hardware cycles to this span."""
        self.cycles += n

    def begin(self) -> "Span":
        self._t0 = time.perf_counter_ns()
        return self

    def finish(self) -> None:
        self.wall_ns = time.perf_counter_ns() - self._t0
        self.tracer._record(self)

    def __enter__(self) -> "Span":
        return self.begin()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish()


class _NullSpan(Span):
    """Shared do-nothing span: enter/exit never touch the clock."""

    __slots__ = ()

    def add_cycles(self, n: int) -> None:
        pass

    def begin(self) -> "Span":
        return self

    def finish(self) -> None:
        pass


class Tracer:
    """Factory for spans recording into one registry."""

    def __init__(self, registry: MetricsRegistry):
        self._registry = registry
        self._enabled = registry.enabled

    @property
    def enabled(self) -> bool:
        return self._enabled

    def span(self, name: str) -> Span:
        """A new span; the caller enters/exits it (``with tracer.span(..)``)."""
        if not self._enabled:
            return NULL_SPAN
        return Span(self, name)

    def _record(self, span: Span) -> None:
        labels = {"span": span.name}
        self._registry.counter(
            "span_calls_total", labels, help="completed trace spans"
        ).inc()
        self._registry.histogram(
            "span_wall_ns", labels, help="span wall time (ns, pow2 buckets)"
        ).observe(span.wall_ns)
        if span.cycles:
            self._registry.counter(
                "span_cycles_total", labels,
                help="modelled hardware cycles attributed to spans",
            ).inc(span.cycles)


_NULL_TRACER = Tracer(NullRegistry())
NULL_SPAN = _NullSpan(_NULL_TRACER, "null")
