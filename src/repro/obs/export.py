"""Registry read side: Prometheus text exposition and JSON snapshots.

``to_prometheus`` renders the classic text format (``# HELP`` / ``# TYPE``
lines, ``name{label="value"} value`` samples, cumulative ``_bucket`` series
with ``le`` bounds plus ``_count``/``_sum`` for histograms).

``snapshot`` returns the same data as a plain ``dict`` that round-trips
through ``json.dumps`` — the machine-readable artefact benchmarks embed in
their JSON outputs and CI asserts against.
"""

from __future__ import annotations

import math

from repro.obs.metrics import Histogram, Labels, MetricsRegistry, Sample

__all__ = ["to_prometheus", "snapshot", "series_key"]


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: Labels, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = tuple(labels) + tuple(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def series_key(name: str, labels: Labels = ()) -> str:
    """The snapshot dict key for one series: ``name{k="v",...}``."""
    return name + _format_labels(labels)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render every series in Prometheus text exposition format."""
    samples, histograms = registry.collect()
    lines: list[str] = []
    seen_meta: set[str] = set()

    def meta(name: str, kind: str, help_text: str) -> None:
        if name in seen_meta:
            return
        seen_meta.add(name)
        if help_text:
            lines.append(f"# HELP {name} {_escape(help_text)}")
        lines.append(f"# TYPE {name} {kind}")

    for s in samples:
        meta(s.name, s.kind, s.help)
        lines.append(
            f"{s.name}{_format_labels(s.labels)} {_format_value(s.value)}"
        )
    for h in histograms:
        meta(h.name, "histogram", h.help)
        bounds = h.bucket_bounds()
        for le, cum in zip(bounds, h.cumulative()):
            le_str = "+Inf" if le == math.inf else _format_value(le)
            lines.append(
                f"{h.name}_bucket{_format_labels(h.labels, (('le', le_str),))} "
                f"{cum}"
            )
        lines.append(f"{h.name}_count{_format_labels(h.labels)} {h.count}")
        lines.append(f"{h.name}_sum{_format_labels(h.labels)} {h.sum}")
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot(registry: MetricsRegistry) -> dict:
    """JSON-serialisable view: {counters, gauges, histograms} keyed by
    ``name{label="value",...}``."""
    samples, histograms = registry.collect()
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    for s in samples:
        target = counters if s.kind == "counter" else gauges
        target[series_key(s.name, s.labels)] = s.value
    hists: dict[str, dict] = {}
    for h in histograms:
        bounds = h.bucket_bounds()
        hists[series_key(h.name, h.labels)] = {
            "count": h.count,
            "sum": h.sum,
            "buckets": [
                # (upper bound, count in bucket) — non-cumulative, finite
                # bounds only; the final entry is the overflow bucket.
                ["+Inf" if b == math.inf else b, c]
                for b, c in zip(bounds, h.buckets)
                if c  # sparse: empty buckets omitted
            ],
        }
    return {"counters": counters, "gauges": gauges, "histograms": hists}
