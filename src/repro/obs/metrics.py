"""Metrics primitives: counters, gauges, power-of-two histograms, registry.

The observability layer is **opt-in**: the process-wide default registry is
:data:`NULL_REGISTRY`, whose instruments are shared no-op singletons — no
allocation, no side effects, no state.  Benchmarks and simulations that want
numbers install a real :class:`MetricsRegistry` (usually through
:func:`repro.obs.use_registry`) *before* constructing the objects they want
instrumented: components capture the active registry once, at construction
time, so the hot path never performs a global lookup.

Two instrumentation styles coexist, chosen by how hot the call site is:

* **event-time** — rare events (table writes, index rebuilds, packet drops,
  flow completions) call ``counter.inc()`` / ``histogram.observe()``
  directly; against the null registry these are no-op method calls.
* **collect-time hooks** — hot counters (memo hits at ~0.4us/call, per-cell
  activations) stay plain Python ints on the owning object, exactly as
  before; the object registers a *collect hook* that converts those ints
  into samples only when the registry is read (export / snapshot).  The hot
  path therefore pays nothing whether metrics are enabled or not, which is
  what keeps the enabled-vs-disabled benchmark overhead inside the <5%
  budget.  Hooks are held through weak references, so instrumented objects
  die normally and their samples simply stop appearing.
"""

from __future__ import annotations

import weakref
from typing import Callable, Iterable, Iterator, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Sample",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
]

#: (key, value) label pairs, e.g. (("policy", "l4lb"), ("stage", "2")).
Labels = tuple[tuple[str, str], ...]


def _canon_labels(labels: Mapping[str, str] | Labels | None) -> Labels:
    if not labels:
        return ()
    if isinstance(labels, Mapping):
        items = labels.items()
    else:
        items = labels
    return tuple(sorted((str(k), str(v)) for k, v in items))


class Sample:
    """One exported time-series point: (name, labels, kind, value).

    ``kind`` is ``"counter"`` or ``"gauge"``; histogram instruments export
    themselves directly rather than through samples.  Samples are what
    collect hooks return; the registry merges (sums) samples that share
    (name, labels) across hooks, so several instrumented objects aggregate
    naturally into one series.
    """

    __slots__ = ("name", "labels", "kind", "value", "help")

    def __init__(self, name: str, value: float, *, kind: str = "counter",
                 labels: Mapping[str, str] | Labels | None = None,
                 help: str = ""):
        self.name = name
        self.labels = _canon_labels(labels)
        self.kind = kind
        self.value = value
        self.help = help


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "labels", "help", "_value")

    def __init__(self, name: str, labels: Labels = (), help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    def inc(self, n: int = 1) -> None:
        self._value += n


class Gauge:
    """A value that can go up and down (occupancy, utilisation)."""

    __slots__ = ("name", "labels", "help", "_value")

    def __init__(self, name: str, labels: Labels = (), help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        self._value = value

    def inc(self, n: float = 1.0) -> None:
        self._value += n

    def dec(self, n: float = 1.0) -> None:
        self._value -= n


class Histogram:
    """Fixed-bucket power-of-two histogram.

    Bucket ``i`` counts observations ``v`` with ``bit_length(int(v)) == i``,
    i.e. ``v`` in ``[2**(i-1), 2**i)`` (bucket 0 holds v < 1).  The last
    bucket is the overflow (+Inf) bucket.  Power-of-two bounds make the
    observe path a single ``int.bit_length()`` — no bisect, no float math —
    which is what a latency histogram on a microsecond-scale path needs.

    Observations are expected in an integral unit chosen by the call site
    (nanoseconds, microseconds, bytes, ...; name the instrument after the
    unit, e.g. ``*_ns``).
    """

    __slots__ = ("name", "labels", "help", "buckets", "_count", "_sum")

    #: Default number of finite buckets: 2**39 ns ~ 9 minutes of latency.
    DEFAULT_BUCKETS = 40

    def __init__(self, name: str, labels: Labels = (), help: str = "",
                 num_buckets: int = DEFAULT_BUCKETS):
        if num_buckets < 1:
            raise ValueError(f"histogram needs >= 1 bucket, got {num_buckets}")
        self.name = name
        self.labels = labels
        self.help = help
        self.buckets = [0] * (num_buckets + 1)  # trailing overflow bucket
        self._count = 0
        self._sum = 0

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> int:
        return self._sum

    def observe(self, value: float) -> None:
        v = int(value)
        if v < 0:
            v = 0
        idx = v.bit_length()
        if idx >= len(self.buckets):
            idx = len(self.buckets) - 1
        self.buckets[idx] += 1
        self._count += 1
        self._sum += v

    def bucket_bounds(self) -> list[float]:
        """Upper bound of each bucket; the last is +Inf."""
        finite = len(self.buckets) - 1
        return [float(2 ** i) for i in range(finite)] + [float("inf")]

    def cumulative(self) -> list[int]:
        """Cumulative counts per bucket (Prometheus ``le`` semantics)."""
        out = []
        acc = 0
        for c in self.buckets:
            acc += c
            out.append(acc)
        return out


#: A collect hook: called at registry read time, yields Samples.
CollectHook = Callable[[], Iterable[Sample]]


class MetricsRegistry:
    """Names and owns instruments; merges collect-hook samples at read time.

    ``counter``/``gauge``/``histogram`` are get-or-create by
    ``(name, labels)``, so independent components sharing a metric name
    accumulate into the same instrument.  ``add_hook`` registers a
    collect-time sample source (held weakly when it is a bound method, so an
    instrumented object's lifetime is unchanged).
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[tuple[str, Labels], Counter] = {}
        self._gauges: dict[tuple[str, Labels], Gauge] = {}
        self._histograms: dict[tuple[str, Labels], Histogram] = {}
        self._hooks: list[weakref.WeakMethod | Callable[[], Iterable[Sample]]] = []

    # -- instrument factories ---------------------------------------------------

    def counter(self, name: str,
                labels: Mapping[str, str] | Labels | None = None,
                help: str = "") -> Counter:
        key = (name, _canon_labels(labels))
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter(name, key[1], help)
        return inst

    def gauge(self, name: str,
              labels: Mapping[str, str] | Labels | None = None,
              help: str = "") -> Gauge:
        key = (name, _canon_labels(labels))
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge(name, key[1], help)
        return inst

    def histogram(self, name: str,
                  labels: Mapping[str, str] | Labels | None = None,
                  help: str = "",
                  num_buckets: int = Histogram.DEFAULT_BUCKETS) -> Histogram:
        key = (name, _canon_labels(labels))
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(
                name, key[1], help, num_buckets=num_buckets
            )
        return inst

    # -- collect hooks -----------------------------------------------------------

    def add_hook(self, hook: CollectHook) -> None:
        """Register a collect-time sample source.

        Bound methods are held through :class:`weakref.WeakMethod`: when the
        owning object is garbage collected the hook silently drops out.
        Plain functions/closures are held strongly.
        """
        if hasattr(hook, "__self__"):
            self._hooks.append(weakref.WeakMethod(hook))
        else:
            self._hooks.append(hook)

    def _run_hooks(self) -> dict[tuple[str, str, Labels], Sample]:
        merged: dict[tuple[str, str, Labels], Sample] = {}
        live: list[weakref.WeakMethod | Callable[[], Iterable[Sample]]] = []
        for entry in self._hooks:
            if isinstance(entry, weakref.WeakMethod):
                hook = entry()
                if hook is None:
                    continue  # owner died; prune below
            else:
                hook = entry
            live.append(entry)
            for sample in hook():
                key = (sample.name, sample.kind, sample.labels)
                existing = merged.get(key)
                if existing is None:
                    merged[key] = Sample(
                        sample.name, sample.value, kind=sample.kind,
                        labels=sample.labels, help=sample.help,
                    )
                else:
                    existing.value += sample.value
        self._hooks = live
        return merged

    # -- read side ----------------------------------------------------------------

    def collect(self) -> tuple[list[Sample], list[Histogram]]:
        """All current series: direct instruments merged with hook samples."""
        merged = self._run_hooks()
        for (name, labels), c in self._counters.items():
            key = (name, "counter", labels)
            if key in merged:
                merged[key].value += c.value
            else:
                merged[key] = Sample(name, c.value, kind="counter",
                                     labels=labels, help=c.help)
        for (name, labels), g in self._gauges.items():
            key = (name, "gauge", labels)
            if key in merged:
                merged[key].value += g.value
            else:
                merged[key] = Sample(name, g.value, kind="gauge",
                                     labels=labels, help=g.help)
        samples = sorted(merged.values(), key=lambda s: (s.name, s.labels))
        histograms = [
            self._histograms[key] for key in sorted(self._histograms)
        ]
        return samples, histograms

    def value_of(self, name: str,
                 labels: Mapping[str, str] | Labels | None = None) -> float:
        """Current value of one series (0.0 when absent); sums over all
        label sets when ``labels`` is None and several exist."""
        want = _canon_labels(labels)
        samples, _ = self.collect()
        total = 0.0
        for s in samples:
            if s.name == name and (labels is None or s.labels == want):
                total += s.value
        return total


class _NullCounter(Counter):
    """Shared do-nothing counter: the disabled path's instrument."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, n: float = 1.0) -> None:
        pass

    def dec(self, n: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null", num_buckets=1)


class NullRegistry(MetricsRegistry):
    """The default, disabled registry: every factory returns a shared no-op
    singleton, hooks are dropped, collect is always empty.

    Instrumented components check :attr:`enabled` to skip work (timing
    captures, hook registration) entirely when observability is off.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, labels=None, help: str = "") -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str, labels=None, help: str = "") -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str, labels=None, help: str = "",
                  num_buckets: int = Histogram.DEFAULT_BUCKETS) -> Histogram:
        return _NULL_HISTOGRAM

    def add_hook(self, hook: CollectHook) -> None:
        pass


#: The process-wide disabled registry (the default active registry).
NULL_REGISTRY = NullRegistry()
