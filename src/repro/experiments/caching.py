"""The Figure 19 experiment: in-network caching of graph queries.

Re-runs the section 7.2.2 trace with spine switches implementing Policy 2,
but now each query first consults the leaf switch's SMBM cache of popular
nodes.  A hit is answered at the switch (one switch round trip, no server
processing); a miss follows the full path.  The figure is the CDF of
response time with caching normalised to no caching: the cached ~50% of
queries improve by 2.8-4x.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graphdb.cache import InNetworkCache
from repro.graphdb.cluster import GraphDBCluster, QueryResult
from repro.graphdb.graph import CourseGraph
from repro.netsim.sim import Simulator
from repro.workloads.traces import ResourceConsumptionTrace, ZipfQueryTrace

__all__ = ["CachingExperimentConfig", "CachingExperimentResult",
           "run_caching_experiment"]


@dataclass(frozen=True)
class CachingExperimentConfig:
    """Knobs for one Figure 19 run."""

    enable_cache: bool = True
    seed: int = 5
    n_servers: int = 4
    n_queries: int = 2000
    query_rate_hz: float = 600.0
    n_nodes: int = 200
    cached_nodes: int = 64
    zipf_alpha: float = 1.4
    network_rtt_s: float = 500e-6
    switch_rtt_s: float = 320e-6


@dataclass(frozen=True)
class CachingExperimentResult:
    config: CachingExperimentConfig
    results: list[QueryResult]

    def response_times(self) -> list[float]:
        return [r.response_time for r in self.results]

    def cache_hit_fraction(self) -> float:
        hits = sum(1 for r in self.results if r.served_from_cache)
        return hits / len(self.results) if self.results else 0.0


class _CachingCluster(GraphDBCluster):
    """A cluster whose leaf switch answers cache hits directly."""

    def __init__(self, *args, cache: InNetworkCache | None,
                 switch_rtt_s: float, **kwargs):
        super().__init__(*args, **kwargs)
        self._cache = cache
        self._switch_rtt = switch_rtt_s

    def _dispatch(self, query) -> None:
        if self._cache is not None and self._cache.serve(query) is not None:
            # Answered at the leaf switch: only the client<->switch hop.
            self.results.append(
                QueryResult(
                    query=query, server=-1,
                    response_time=self._switch_rtt,
                    served_from_cache=True,
                )
            )
            return
        super()._dispatch(query)


def run_caching_experiment(
    config: CachingExperimentConfig,
) -> CachingExperimentResult:
    """One pass over the trace, with or without the leaf cache."""
    sim = Simulator()
    rng = random.Random(config.seed)
    graph = CourseGraph.random(config.n_nodes, rng, edge_probability=0.03)
    qtrace = ZipfQueryTrace(
        config.n_nodes, random.Random(config.seed + 1), alpha=config.zipf_alpha
    )
    cache = None
    if config.enable_cache:
        cache = InNetworkCache(graph, qtrace.popular_nodes(config.cached_nodes))
    trace = ResourceConsumptionTrace(config.n_servers, random.Random(config.seed + 2))
    cluster = _CachingCluster(
        sim, config.n_servers, 2, trace,
        network_rtt_s=config.network_rtt_s,
        cache=cache,
        switch_rtt_s=config.switch_rtt_s,
        lfsr_seed=config.seed % 4093 + 1,
    )
    queries = qtrace.generate(
        config.n_queries, clients=[0, 1, 2, 3], rate_hz=config.query_rate_hz
    )
    cluster.submit_trace(queries)
    sim.run(until=queries[-1].arrival_time + 120.0)
    return CachingExperimentResult(config=config, results=cluster.results)
