"""The Figure 17 experiment: performance-aware routing.

Web-search flows arrive as a Poisson process between random host pairs on a
leaf-spine fabric; leaf switches route flowlets over the spines with one of
the three section 7.2.3 policies; the output is the mean FCT.

Scale substitutions versus the paper (documented in DESIGN.md): the paper
simulates ~450 hosts at 10 Gbps; we default to 32 hosts at 1 Gbps with flow
sizes scaled by 0.1, which keeps per-run event counts within a Python
budget while preserving the relative ordering of the policies.  The spine
count (8) exceeds the paper's top-X (5), so Policy 3's triple top-X
intersection is meaningfully selective.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.pipeline import PipelineParams
from repro.errors import ConfigurationError
from repro.netsim.probes import PathMetricsDirectory, ProbeService
from repro.netsim.sim import Simulator
from repro.netsim.topology import build_leaf_spine
from repro.policies.routing import RandomUplinkPolicy, ThanosRoutingPolicy
from repro.workloads.poisson import PoissonFlowGenerator
from repro.workloads.websearch import WebSearchFlowSizes

__all__ = ["RoutingExperimentConfig", "RoutingExperimentResult",
           "run_routing_experiment"]


@dataclass(frozen=True)
class RoutingExperimentConfig:
    """Knobs for one Figure 17 run."""

    policy: str = "policy1"          # policy1 | policy2 | policy3
    load: float = 0.5
    seed: int = 1
    # Fabric: the Figure 15 leaf-spine by default, or the paper's FatTree
    # simulator topology with ``topology="fat_tree"`` (then ``fat_tree_k``
    # applies and the leaf/spine counts are ignored).
    topology: str = "leaf_spine"
    fat_tree_k: int = 4
    n_leaf: int = 8
    n_spine: int = 8
    hosts_per_leaf: int = 4
    bandwidth_bps: float = 1e9
    duration_s: float = 0.05
    drain_s: float = 0.4
    flow_scale: float = 0.1
    top_x: int = 5
    # "snapshot": periodic metric snapshots (staleness model, fast);
    # "inband": real source-routed probe packets that accumulate worst-link
    # metrics and consume fabric bandwidth (the full section 3 mechanism).
    probe_mode: str = "snapshot"
    probe_period_s: float = 1e-3
    flowlet_gap_s: float = 5e-3
    metrics_tau_s: float = 3e-3
    # Fabric asymmetry: this many spines run their leaf links at
    # ``degraded_fraction`` of nominal rate (auto-negotiated down), the
    # regime where congestion-aware routing separates from random spreading.
    degraded_spines: int = 1
    degraded_fraction: float = 0.25
    # Flaky links: this many spines (taken from the high end) corrupt a
    # fraction of packets.  A lossy link reads as lightly utilised, so
    # utilisation-only routing (Policy 2) is drawn to it; Policy 3's loss
    # dimension filters it out.
    flaky_spines: int = 2
    flaky_error_rate: float = 0.10


@dataclass(frozen=True)
class RoutingExperimentResult:
    config: RoutingExperimentConfig
    mean_fct: float
    p99_fct: float
    completed: int
    drops: int
    policy_decisions: int


class _Deferred:
    """Placeholder forwarding policy installed before the network exists."""

    def __init__(self) -> None:
        self.inner = None

    def choose(self, switch, packet, candidates):
        if self.inner is None:
            raise ConfigurationError("forwarding policy not yet installed")
        return self.inner.choose(switch, packet, candidates)


def run_routing_experiment(config: RoutingExperimentConfig) -> RoutingExperimentResult:
    """Run one (policy, load) point of Figure 17."""
    sim = Simulator()
    shared = _Deferred()
    if config.topology == "leaf_spine":
        net = build_leaf_spine(
            sim,
            n_leaf=config.n_leaf,
            n_spine=config.n_spine,
            hosts_per_leaf=config.hosts_per_leaf,
            bandwidth_bps=config.bandwidth_bps,
            policy_factory=lambda n: shared,
            flowlet_gap_s=config.flowlet_gap_s,
            metrics_tau_s=config.metrics_tau_s,
        )
        core_names = [f"spine{s}" for s in range(config.n_spine)]
        edge_names = [f"leaf{l}" for l in range(config.n_leaf)]

        def core_links(core: str):
            for edge in edge_names:
                yield net.link_between(edge, core)
                yield net.link_between(core, edge)

    elif config.topology == "fat_tree":
        from repro.netsim.topology import build_fat_tree

        net = build_fat_tree(
            sim,
            k=config.fat_tree_k,
            bandwidth_bps=config.bandwidth_bps,
            policy_factory=lambda n: shared,
            flowlet_gap_s=config.flowlet_gap_s,
            metrics_tau_s=config.metrics_tau_s,
        )
        half = config.fat_tree_k // 2
        core_names = [f"core{c}" for c in range(half * half)]

        def core_links(core: str):
            index = int(core.removeprefix("core"))
            a = index // half
            for pod in range(config.fat_tree_k):
                agg = f"agg{pod}_{a}"
                yield net.link_between(agg, core)
                yield net.link_between(core, agg)

    else:
        raise ConfigurationError(
            f"unknown topology {config.topology!r}; "
            "expected leaf_spine or fat_tree"
        )

    # Degrade the first cores/spines, make the last ones flaky.
    rate = config.bandwidth_bps * config.degraded_fraction
    for core in core_names[: config.degraded_spines]:
        for link in core_links(core):
            link.renegotiate(rate)
    error_rng = random.Random(config.seed + 77)
    flaky = core_names[len(core_names) - config.flaky_spines:] \
        if config.flaky_spines else []
    for core in flaky:
        for link in core_links(core):
            link.set_error_rate(config.flaky_error_rate, error_rng)

    rng = random.Random(config.seed)
    if config.policy == "policy1":
        shared.inner = RandomUplinkPolicy(random.Random(config.seed + 10))
    elif config.probe_mode == "snapshot":
        directory = PathMetricsDirectory(net)
        service = ProbeService(sim, period_s=config.probe_period_s)
        shared.inner = ThanosRoutingPolicy(
            net, directory, service, config.policy,
            top_x=config.top_x,
            params=PipelineParams(n=8, k=4, f=2, chain_length=8),
            rng=random.Random(config.seed + 10),
        )
        service.start()
    elif config.probe_mode == "inband":
        from repro.netsim.inband_probes import InbandProbeService

        directory = PathMetricsDirectory(net)
        policy_obj = ThanosRoutingPolicy(
            net, directory, None, config.policy,
            top_x=config.top_x,
            params=PipelineParams(n=8, k=4, f=2, chain_length=8),
            rng=random.Random(config.seed + 10),
        )
        shared.inner = policy_obj
        inband = InbandProbeService(
            sim, net, policy_obj.deliver_path_metrics,
            period_s=config.probe_period_s,
        )
        inband.start()
    else:
        raise ConfigurationError(
            f"unknown probe mode {config.probe_mode!r}; "
            "expected snapshot or inband"
        )

    sizes = WebSearchFlowSizes(random.Random(config.seed + 1),
                               scale=config.flow_scale)
    generator = PoissonFlowGenerator(
        random.Random(config.seed + 2), list(net.hosts), sizes,
        config.load, config.bandwidth_bps,
    )
    for flow in generator.flows(duration_s=config.duration_s):
        sim.at(flow.start_time, lambda f=flow: net.start_flow(f))
    sim.run(until=config.duration_s + config.drain_s)

    decisions = sum(s.policy_decisions for s in net.switches.values())
    return RoutingExperimentResult(
        config=config,
        mean_fct=net.recorder.mean_fct(),
        p99_fct=net.recorder.percentile_fct(99),
        completed=len(net.recorder.completed),
        drops=net.total_drops(),
        policy_decisions=decisions,
    )
