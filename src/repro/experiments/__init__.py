"""Experiment harnesses for the paper's evaluation (section 7.2).

Each module reproduces one figure's experiment and is shared by the
benchmark suite (``benchmarks/``) and the runnable examples
(``examples/``):

* :mod:`~repro.experiments.routing` — Figure 17, performance-aware routing;
* :mod:`~repro.experiments.portlb` — Figure 18, port load balancing (DRILL);
* :mod:`~repro.experiments.l4lb` — Figure 16, L4 load balancing over the
  graph database servers;
* :mod:`~repro.experiments.caching` — Figure 19, in-network query caching.
"""

from repro.experiments.routing import RoutingExperimentConfig, run_routing_experiment
from repro.experiments.portlb import PortLBExperimentConfig, run_portlb_experiment
from repro.experiments.l4lb import L4LBExperimentConfig, run_l4lb_experiment
from repro.experiments.caching import CachingExperimentConfig, run_caching_experiment

__all__ = [
    "RoutingExperimentConfig",
    "run_routing_experiment",
    "PortLBExperimentConfig",
    "run_portlb_experiment",
    "L4LBExperimentConfig",
    "run_l4lb_experiment",
    "CachingExperimentConfig",
    "run_caching_experiment",
]
