"""The Figure 18 experiment: load balancing over switch ports (DRILL).

Same traffic as Figure 17, but forwarding decisions are made *per packet*
from purely local state (egress queue depths):

* Policy 1 — random port;
* Policy 2 — least queued port;
* Policy 3 — DRILL(d, m).

The DRILL policy runs in its fast mode here (identical semantics to the
compiled Thanos pipeline, see ``tests/policies/test_portlb_l4lb.py``); the
``drill_mode`` knob switches to the full pipeline for small runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.netsim.sim import Simulator
from repro.netsim.topology import build_leaf_spine
from repro.policies.portlb import DrillPolicy, LeastQueuedPortPolicy, RandomPortPolicy
from repro.workloads.poisson import PoissonFlowGenerator
from repro.workloads.websearch import WebSearchFlowSizes

__all__ = ["PortLBExperimentConfig", "PortLBExperimentResult",
           "run_portlb_experiment"]


@dataclass(frozen=True)
class PortLBExperimentConfig:
    """Knobs for one Figure 18 run."""

    policy: str = "policy1"          # policy1 | policy2 | policy3
    load: float = 0.5
    seed: int = 1
    d: int = 2
    m: int = 1
    drill_mode: str = "fast"
    n_leaf: int = 8
    n_spine: int = 8
    hosts_per_leaf: int = 4
    bandwidth_bps: float = 1e9
    duration_s: float = 0.05
    drain_s: float = 0.4
    flow_scale: float = 0.1
    # How often queue registers are sampled into the decision snapshot; all
    # decisions within one period share it (multi-pipeline staleness).
    # Zero = a fresh snapshot per decision (DRILL's per-packet updates).
    update_period_s: float = 0.0
    # Fabric asymmetry, as in the routing experiment: DRILL's randomised
    # sampling has to steer around slow ports that random spraying hits.
    degraded_spines: int = 2
    degraded_fraction: float = 0.1


@dataclass(frozen=True)
class PortLBExperimentResult:
    config: PortLBExperimentConfig
    mean_fct: float
    p99_fct: float
    completed: int
    drops: int


def _policy_factory(config: PortLBExperimentConfig):
    counter = {"n": 0}

    def factory(_net):
        counter["n"] += 1
        seed = config.seed * 1000 + counter["n"]
        if config.policy == "policy1":
            return RandomPortPolicy(random.Random(seed))
        if config.policy == "policy2":
            return LeastQueuedPortPolicy(update_period_s=config.update_period_s)
        if config.policy == "policy3":
            return DrillPolicy(
                d=config.d, m=config.m, mode=config.drill_mode,
                rng=random.Random(seed), lfsr_seed=seed % 4093 + 1,
                update_period_s=config.update_period_s,
            )
        raise ConfigurationError(f"unknown port LB policy {config.policy!r}")

    return factory


def run_portlb_experiment(config: PortLBExperimentConfig) -> PortLBExperimentResult:
    """Run one (policy, load) point of Figure 18."""
    sim = Simulator()
    net = build_leaf_spine(
        sim,
        n_leaf=config.n_leaf,
        n_spine=config.n_spine,
        hosts_per_leaf=config.hosts_per_leaf,
        bandwidth_bps=config.bandwidth_bps,
        policy_factory=_policy_factory(config),
        flowlet_gap_s=None,  # DRILL decides per packet
    )
    for sp in range(config.degraded_spines):
        rate = config.bandwidth_bps * config.degraded_fraction
        for l in range(config.n_leaf):
            net.link_between(f"leaf{l}", f"spine{sp}").renegotiate(rate)
            net.link_between(f"spine{sp}", f"leaf{l}").renegotiate(rate)
    sizes = WebSearchFlowSizes(random.Random(config.seed + 1),
                               scale=config.flow_scale)
    generator = PoissonFlowGenerator(
        random.Random(config.seed + 2), list(net.hosts), sizes,
        config.load, config.bandwidth_bps,
    )
    for flow in generator.flows(duration_s=config.duration_s):
        sim.at(flow.start_time, lambda f=flow: net.start_flow(f))
    sim.run(until=config.duration_s + config.drain_s)
    return PortLBExperimentResult(
        config=config,
        mean_fct=net.recorder.mean_fct(),
        p99_fct=net.recorder.percentile_fct(99),
        completed=len(net.recorder.completed),
        drops=net.total_drops(),
    )
