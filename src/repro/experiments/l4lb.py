"""The Figure 16 experiment: L4 load balancing over database servers.

Clients replay a Zipf query trace against the replicated graph database;
the spine load balancer maps each query with Policy 1 (random) or Policy 2
(resource-aware random with fallback); servers process at a speed set by
their synthetic background load.  The figure is the CDF of per-percentile
response-time improvement of Policy 2 over Policy 1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graphdb.cluster import GraphDBCluster
from repro.netsim.sim import Simulator
from repro.workloads.traces import ResourceConsumptionTrace, ZipfQueryTrace

__all__ = ["L4LBExperimentConfig", "L4LBExperimentResult", "run_l4lb_experiment"]


@dataclass(frozen=True)
class L4LBExperimentConfig:
    """Knobs for one Figure 16 run (one policy)."""

    which_policy: int = 1
    seed: int = 5
    n_servers: int = 12
    n_queries: int = 2000
    query_rate_hz: float = 150.0
    n_nodes: int = 200
    probe_period_s: float = 10e-3
    network_rtt_s: float = 200e-6
    # Background-load shape: servers oscillate between nearly idle and
    # nearly saturated, so a random pick routinely lands on a busy server
    # while the resource-aware filter finds the idle ones.
    base_cpu: float = 0.75
    cpu_swing: float = 0.20
    # Background-load period; the trace must complete several cycles within
    # the experiment so results average over server states.
    trace_period_s: float = 8.0
    # Eligibility threshold, aligned with the servers' full-speed plateau
    # (a query uses at most ~35% of a CPU, so cpu < 65% means full speed).
    cpu_limit: int = 65


@dataclass(frozen=True)
class L4LBExperimentResult:
    config: L4LBExperimentConfig
    response_times: list[float]
    by_query: dict[int, float]

    def mean(self) -> float:
        return sum(self.response_times) / len(self.response_times)

    def percentile(self, p: float) -> float:
        ordered = sorted(self.response_times)
        rank = min(len(ordered) - 1, max(0, int(round(p / 100 * (len(ordered) - 1)))))
        return ordered[rank]

    def per_query_ratios(self, other: "L4LBExperimentResult") -> list[float]:
        """Figure 16's quantity: this run's response time divided by the
        other run's, per query, sorted ascending (a CDF's x-values)."""
        common = sorted(set(self.by_query) & set(other.by_query))
        return sorted(self.by_query[q] / other.by_query[q] for q in common)


def run_l4lb_experiment(config: L4LBExperimentConfig) -> L4LBExperimentResult:
    """Run one policy's pass over the query trace."""
    sim = Simulator()
    trace = ResourceConsumptionTrace(
        config.n_servers, random.Random(config.seed),
        base_cpu=config.base_cpu, cpu_swing=config.cpu_swing,
        period_s=config.trace_period_s,
    )
    cluster = GraphDBCluster(
        sim, config.n_servers, config.which_policy, trace,
        probe_period_s=config.probe_period_s,
        network_rtt_s=config.network_rtt_s,
        cpu_limit=config.cpu_limit,
        lfsr_seed=config.seed % 4093 + 1,
    )
    qtrace = ZipfQueryTrace(config.n_nodes, random.Random(config.seed + 1))
    queries = qtrace.generate(
        config.n_queries, clients=[0, 1, 2, 3], rate_hz=config.query_rate_hz
    )
    cluster.submit_trace(queries)
    sim.run(until=queries[-1].arrival_time + 120.0)
    return L4LBExperimentResult(
        config=config,
        response_times=cluster.response_times(),
        by_query={r.query.query_id: r.response_time for r in cluster.results},
    )
