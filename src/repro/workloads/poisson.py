"""Poisson flow arrivals at a target network load (section 7.2.3).

"Flows arrive according to a Poisson process and the source and destination
for each flow is chosen uniformly at random."  The arrival rate is derived
from the target load: ``load * n_hosts * access_bw / mean_flow_size``
(aggregate offered bytes as a fraction of aggregate access capacity).
"""

from __future__ import annotations

import random
from typing import Iterator, Protocol, Sequence

from repro.errors import ConfigurationError
from repro.netsim.transport import TcpFlow

__all__ = ["PoissonFlowGenerator"]


class SizeSampler(Protocol):
    def sample(self) -> int: ...
    def mean(self) -> float: ...


class PoissonFlowGenerator:
    """Generates a schedule of TcpFlows at a given load."""

    def __init__(
        self,
        rng: random.Random,
        hosts: Sequence[int],
        sizes: SizeSampler,
        load: float,
        access_bw_bps: float,
        first_flow_id: int = 0,
    ):
        if not 0 < load < 1.5:
            raise ConfigurationError(f"load {load} outside the sane range (0, 1.5)")
        if len(hosts) < 2:
            raise ConfigurationError("need at least two hosts for traffic")
        self._rng = rng
        self._hosts = list(hosts)
        self._sizes = sizes
        self._load = load
        self._access_bw = access_bw_bps
        self._next_id = first_flow_id

    @property
    def arrival_rate_hz(self) -> float:
        """Aggregate flow arrival rate for the target load."""
        bytes_per_sec = self._load * len(self._hosts) * self._access_bw / 8
        return bytes_per_sec / self._sizes.mean()

    def flows(self, duration_s: float, start_at: float = 0.0) -> Iterator[TcpFlow]:
        """Yield flows with Poisson inter-arrivals over ``duration_s``."""
        t = start_at
        rate = self.arrival_rate_hz
        while True:
            t += self._rng.expovariate(rate)
            if t >= start_at + duration_s:
                return
            src = self._rng.choice(self._hosts)
            dst = self._rng.choice(self._hosts)
            while dst == src:
                dst = self._rng.choice(self._hosts)
            yield TcpFlow(
                flow_id=self._next_id,
                src=src,
                dst=dst,
                size_bytes=self._sizes.sample(),
                start_time=t,
            )
            self._next_id += 1
